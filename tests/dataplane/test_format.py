"""The packed-artifact container: header, integrity, atomicity, laziness."""

import hashlib
import struct

import pytest

from repro.dataplane.format import (
    FORMAT_VERSION,
    HEADER,
    KIND_EVENTS,
    KIND_REQUESTS,
    MAGIC,
    DataPlaneError,
    MappedArtifact,
    StringTable,
    inspect_header,
    pack_string_table,
    pack_u32s,
    read_u32s,
    write_artifact,
)
from repro.obs.metrics import get_metrics, reset_metrics


@pytest.fixture(autouse=True)
def fresh_metrics():
    reset_metrics()
    yield
    reset_metrics()


def counter(name):
    return get_metrics().as_dict()["counters"].get(f"dataplane.{name}", 0)


class TestWriteArtifact:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "x.bin"
        written = write_artifact(path, KIND_EVENTS, b"payload")
        assert written == HEADER.size + len(b"payload")
        with MappedArtifact(path) as artifact:
            assert bytes(artifact.payload) == b"payload"
            assert artifact.kind == KIND_EVENTS
            assert artifact.version == FORMAT_VERSION

    def test_header_fields(self, tmp_path):
        path = tmp_path / "x.bin"
        write_artifact(path, KIND_REQUESTS, b"abc")
        raw = path.read_bytes()
        magic, kind, version, length, digest = HEADER.unpack(raw[: HEADER.size])
        assert magic == MAGIC
        assert kind == KIND_REQUESTS
        assert version == FORMAT_VERSION
        assert length == 3
        assert digest == hashlib.sha256(b"abc").digest()

    def test_no_tmp_file_left_behind(self, tmp_path):
        write_artifact(tmp_path / "x.bin", KIND_EVENTS, b"p")
        assert [p.name for p in tmp_path.iterdir()] == ["x.bin"]

    def test_write_counters(self, tmp_path):
        write_artifact(tmp_path / "x.bin", KIND_EVENTS, b"payload")
        assert counter("files_written") == 1
        assert counter("bytes_written") == HEADER.size + 7


class TestMappedArtifact:
    def test_corrupt_payload_detected(self, tmp_path):
        path = tmp_path / "x.bin"
        write_artifact(path, KIND_EVENTS, b"payload-bytes")
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(DataPlaneError, match="sha256 mismatch"):
            MappedArtifact(path)
        assert counter("integrity_errors") == 1

    def test_corruption_skippable_without_verify(self, tmp_path):
        path = tmp_path / "x.bin"
        write_artifact(path, KIND_EVENTS, b"payload-bytes")
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        with MappedArtifact(path, verify=False) as artifact:
            assert len(artifact.payload) == len(b"payload-bytes")

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "x.bin"
        path.write_bytes(b"NOPE" + b"\0" * 60)
        with pytest.raises(DataPlaneError, match="bad magic"):
            MappedArtifact(path)

    def test_version_mismatch(self, tmp_path):
        path = tmp_path / "x.bin"
        payload = b"p"
        header = HEADER.pack(
            MAGIC, KIND_EVENTS, FORMAT_VERSION + 1, 1, hashlib.sha256(payload).digest()
        )
        path.write_bytes(header + payload)
        with pytest.raises(DataPlaneError, match="unsupported version"):
            MappedArtifact(path)

    def test_kind_mismatch(self, tmp_path):
        path = tmp_path / "x.bin"
        write_artifact(path, KIND_EVENTS, b"p")
        with pytest.raises(DataPlaneError, match="kind"):
            MappedArtifact(path, expect_kind=KIND_REQUESTS)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "x.bin"
        path.write_bytes(MAGIC)
        with pytest.raises(DataPlaneError):
            MappedArtifact(path)

    def test_truncated_payload(self, tmp_path):
        path = tmp_path / "x.bin"
        write_artifact(path, KIND_EVENTS, b"payload-bytes")
        raw = path.read_bytes()
        path.write_bytes(raw[:-4])
        with pytest.raises(DataPlaneError, match="truncated payload"):
            MappedArtifact(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(DataPlaneError, match="cannot open"):
            MappedArtifact(tmp_path / "absent.bin")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "x.bin"
        path.write_bytes(b"")
        with pytest.raises(DataPlaneError):
            MappedArtifact(path)

    def test_close_is_idempotent(self, tmp_path):
        path = tmp_path / "x.bin"
        write_artifact(path, KIND_EVENTS, b"p")
        artifact = MappedArtifact(path)
        artifact.close()
        artifact.close()

    def test_map_counters(self, tmp_path):
        path = tmp_path / "x.bin"
        write_artifact(path, KIND_EVENTS, b"payload")
        with MappedArtifact(path):
            pass
        assert counter("files_mapped") == 1
        assert counter("bytes_mapped") == HEADER.size + 7


class TestStringTable:
    def test_roundtrip(self):
        strings = ["", "hello", "héllo ünïcode", "x" * 1000]
        packed = pack_string_table(strings)
        table = StringTable(memoryview(packed), 0)
        assert len(table) == len(strings)
        assert [table.get(i) for i in range(len(strings))] == strings
        assert table.end == len(packed)

    def test_repeated_get_returns_same_object(self):
        table = StringTable(memoryview(pack_string_table(["shared"])), 0)
        assert table.get(0) is table.get(0)

    def test_offset_embedding(self):
        prefix = b"\xde\xad\xbe\xef"
        packed = prefix + pack_string_table(["a", "bc"])
        table = StringTable(memoryview(packed), len(prefix))
        assert table.get(1) == "bc"


class TestU32Helpers:
    def test_roundtrip(self):
        values = (0, 1, 2**32 - 1, 42)
        packed = b"pad" + pack_u32s(values)
        assert read_u32s(memoryview(packed), 3, 4) == values


class TestInspectHeader:
    def test_fields(self, tmp_path):
        path = tmp_path / "x.bin"
        write_artifact(path, KIND_EVENTS, b"abc")
        info = inspect_header(path)
        assert info["kind"] == "events"
        assert info["version"] == FORMAT_VERSION
        assert info["payload_bytes"] == 3
        assert info["sha256"] == hashlib.sha256(b"abc").hexdigest()
        assert info["file_bytes"] == HEADER.size + 3

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "x.bin"
        path.write_bytes(b"JUNKJUNK" + b"\0" * 48)
        with pytest.raises(DataPlaneError, match="bad magic"):
            inspect_header(path)
