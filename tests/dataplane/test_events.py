"""Packed token-event segments and the directory-level cache."""

import hashlib

import pytest

from repro.dataplane.events import (
    SEGMENT_SUFFIX,
    EventSegmentReader,
    PackedEventCache,
    write_event_segment,
)
from repro.dataplane.format import DataPlaneError
from repro.obs.metrics import get_metrics, reset_metrics


@pytest.fixture(autouse=True)
def fresh_metrics():
    reset_metrics()
    yield
    reset_metrics()


def digest_of(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


EVENTS_A = (
    ("keyword", "if", ()),
    ("literal", "adblock", ("fn:check", "if")),
    ("literal", "adblock", ("fn:check", "if")),
)
EVENTS_B = (("keyword", "var", ("top",)),)

ENTRIES = [
    (digest_of("a"), True, EVENTS_A, False, False),
    (digest_of("b"), True, EVENTS_B, True, False),
    (digest_of("b"), False, (), False, True),
    (digest_of("c"), True, (), False, False),
]


class TestEventSegment:
    def test_roundtrip_preserves_everything(self, tmp_path):
        path = tmp_path / f"one{SEGMENT_SUFFIX}"
        write_event_segment(path, ENTRIES, extractor_version=7)
        reader = EventSegmentReader(path)
        assert reader.extractor_version == 7
        assert reader.script_count == len(ENTRIES)
        for digest, unpack, events, parse_error, bailout in ENTRIES:
            got = reader.get(digest, unpack)
            assert got is not None
            g_digest, g_unpack, g_events, g_parse_error, g_bailout = got
            assert (g_digest, g_unpack) == (digest, unpack)
            assert [tuple(e) for e in g_events] == [tuple(e) for e in events]
            assert (g_parse_error, g_bailout) == (parse_error, bailout)
        reader.close()

    def test_unpack_flag_is_part_of_the_key(self, tmp_path):
        path = tmp_path / f"one{SEGMENT_SUFFIX}"
        write_event_segment(path, ENTRIES, extractor_version=1)
        reader = EventSegmentReader(path)
        assert reader.get(digest_of("a"), False) is None
        assert reader.get(digest_of("b"), False) is not None
        reader.close()

    def test_missing_digest_is_none(self, tmp_path):
        path = tmp_path / f"one{SEGMENT_SUFFIX}"
        write_event_segment(path, ENTRIES, extractor_version=1)
        reader = EventSegmentReader(path)
        assert reader.get(digest_of("zzz"), True) is None
        reader.close()

    def test_shared_strings_decode_to_shared_objects(self, tmp_path):
        """Equal strings across events come back as one str object."""
        path = tmp_path / f"one{SEGMENT_SUFFIX}"
        write_event_segment(path, ENTRIES, extractor_version=1)
        reader = EventSegmentReader(path)
        _, _, events, _, _ = reader.get(digest_of("a"), True)
        assert events[1][1] is events[2][1]  # "adblock" decoded once
        assert events[1][2] is events[2][2]  # context tuple cached
        reader.close()

    def test_rows_read_counted(self, tmp_path):
        path = tmp_path / f"one{SEGMENT_SUFFIX}"
        write_event_segment(path, ENTRIES, extractor_version=1)
        reader = EventSegmentReader(path)
        reader.get(digest_of("a"), True)
        counters = get_metrics().as_dict()["counters"]
        assert counters.get("dataplane.rows_read") == len(EVENTS_A)
        reader.close()

    def test_corrupt_segment_raises(self, tmp_path):
        path = tmp_path / f"one{SEGMENT_SUFFIX}"
        write_event_segment(path, ENTRIES, extractor_version=1)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(DataPlaneError):
            EventSegmentReader(path)


class TestPackedEventCache:
    def test_store_then_lookup(self, tmp_path):
        cache = PackedEventCache(tmp_path, extractor_version=3)
        assert cache.store(ENTRIES) == len(ENTRIES)
        assert cache.segments == 1
        got = cache.lookup(digest_of("a"), True)
        assert got is not None
        assert [tuple(e) for e in got[2]] == [tuple(e) for e in EVENTS_A]
        cache.close()

    def test_fresh_mount_sees_previous_store(self, tmp_path):
        writer = PackedEventCache(tmp_path, extractor_version=3)
        writer.store(ENTRIES)
        writer.close()
        cache = PackedEventCache(tmp_path, extractor_version=3)
        assert cache.segments == 1
        assert cache.lookup(digest_of("b"), True) is not None
        cache.close()

    def test_extractor_version_isolates(self, tmp_path):
        writer = PackedEventCache(tmp_path, extractor_version=3)
        writer.store(ENTRIES)
        writer.close()
        cache = PackedEventCache(tmp_path, extractor_version=4)
        assert cache.segments == 0
        assert cache.lookup(digest_of("a"), True) is None
        cache.close()

    def test_corrupt_segment_degrades_to_miss(self, tmp_path):
        writer = PackedEventCache(tmp_path, extractor_version=3)
        writer.store(ENTRIES[:2])
        writer.store(ENTRIES[2:])
        writer.close()
        segments = sorted(writer.root.glob(f"*{SEGMENT_SUFFIX}"))
        assert len(segments) == 2
        raw = bytearray(segments[0].read_bytes())
        raw[-1] ^= 0xFF
        segments[0].write_bytes(bytes(raw))
        cache = PackedEventCache(tmp_path, extractor_version=3)
        assert cache.segments == 1  # the corrupt one was skipped, not fatal
        assert cache.lookup(*ENTRIES[2][:2]) is not None
        cache.close()
        counters = get_metrics().as_dict()["counters"]
        assert counters.get("dataplane.integrity_errors", 0) >= 1

    def test_empty_store_is_noop(self, tmp_path):
        cache = PackedEventCache(tmp_path, extractor_version=3)
        assert cache.store([]) == 0
        assert cache.segments == 0
        cache.close()

    def test_later_segment_wins_duplicate_keys(self, tmp_path):
        cache = PackedEventCache(tmp_path, extractor_version=3)
        cache.store([(digest_of("a"), True, EVENTS_B, False, False)])
        cache.store([(digest_of("a"), True, EVENTS_A, False, False)])
        got = cache.lookup(digest_of("a"), True)
        assert [tuple(e) for e in got[2]] == [tuple(e) for e in EVENTS_A]
        cache.close()
