"""Source tables and the ``python -m repro.dataplane`` inspect CLI."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.dataplane.sources import SourceTable, write_source_table

SRC_ROOT = str(Path(__file__).resolve().parents[2] / "src")


class TestSourceTable:
    def test_roundtrip(self, tmp_path):
        sources = ["var a = 1;", "", "function noop() {}"]
        path = tmp_path / "sources.rdps"
        write_source_table(path, sources)
        with SourceTable(path) as table:
            assert len(table) == 3
            assert [table.get(i) for i in range(3)] == sources

    def test_repeated_get_shares_object(self, tmp_path):
        path = tmp_path / "sources.rdps"
        write_source_table(path, ["shared source"])
        with SourceTable(path) as table:
            assert table.get(0) is table.get(0)


def run_cli(*args):
    return subprocess.run(
        [sys.executable, "-m", "repro.dataplane", *args],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": SRC_ROOT, "PATH": "/usr/bin:/bin"},
    )


class TestInspectCli:
    @pytest.fixture()
    def artifact(self, tmp_path):
        path = tmp_path / "sources.rdps"
        write_source_table(path, ["var a = 1;", "var b = 2;"])
        return path

    def test_inspect_text(self, artifact):
        proc = run_cli("inspect", str(artifact))
        assert proc.returncode == 0
        assert "sources" in proc.stdout
        assert str(artifact) in proc.stdout

    def test_inspect_json(self, artifact):
        proc = run_cli("inspect", "--json", str(artifact))
        assert proc.returncode == 0
        (info,) = [json.loads(line) for line in proc.stdout.splitlines()]
        assert info["kind"] == "sources"
        assert info["sources"] == 2

    def test_inspect_events_segment(self, tmp_path):
        from repro.dataplane.events import write_event_segment

        path = tmp_path / "seg.rdpe"
        write_event_segment(
            path,
            [("ab" * 32, True, (("keyword", "if", ()),), False, False)],
            extractor_version=9,
        )
        proc = run_cli("inspect", "--json", str(path))
        assert proc.returncode == 0
        (info,) = [json.loads(line) for line in proc.stdout.splitlines()]
        assert info["kind"] == "events"
        assert info["extractor_version"] == 9
        assert info["scripts"] == 1
        assert info["events"] == 1

    def test_inspect_corrupt_file_fails(self, tmp_path):
        bad = tmp_path / "bad.bin"
        bad.write_bytes(b"JUNK" + b"\0" * 60)
        proc = run_cli("inspect", str(bad))
        assert proc.returncode == 1
        assert "bad magic" in proc.stderr

    def test_inspect_missing_file_fails(self, tmp_path):
        proc = run_cli("inspect", str(tmp_path / "absent.bin"))
        assert proc.returncode == 1
