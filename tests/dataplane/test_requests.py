"""Columnar request tables must mirror the HAR files bit for bit."""

from datetime import date

import pytest

from repro.dataplane.format import DataPlaneError
from repro.dataplane.requests import RequestTable, write_request_table
from repro.wayback.crawler import CrawlRecord, CrawlResult, CrawlStatus
from repro.web.har import HarFile
from repro.web.http import Exchange, Request, Response


def har_with(urls, page="http://site.test/"):
    har = HarFile(page_url=page)
    for url in urls:
        har.add(Exchange(request=Request(url=url), response=Response(body="x" * 10)))
    return har


@pytest.fixture()
def crawl():
    return CrawlResult(
        records=[
            CrawlRecord(
                domain="a.com",
                month=date(2015, 3, 1),
                status=CrawlStatus.OK,
                har=har_with(
                    [
                        "http://a.com/",
                        "http://cdn.a.com/ads.js",
                        "http://a.com/",  # duplicate, must survive in urls()
                    ]
                ),
            ),
            CrawlRecord(
                domain="a.com", month=date(2015, 4, 1), status=CrawlStatus.OUTDATED
            ),
            CrawlRecord(
                domain="b.com",
                month=date(2015, 3, 1),
                status=CrawlStatus.OK,
                har=har_with(["http://b.com/", "http://tracker.test/pixel.gif"]),
            ),
        ]
    )


class TestRequestTable:
    def test_slots_cover_usable_records_only(self, tmp_path, crawl):
        path = tmp_path / "requests.rdpr"
        assert write_request_table(path, crawl) == 2
        with RequestTable(path) as table:
            assert table.slots() == [
                ("a.com", date(2015, 3, 1)),
                ("b.com", date(2015, 3, 1)),
            ]
            assert ("a.com", date(2015, 4, 1)) not in table
            assert ("a.com", date(2015, 3, 1)) in table

    def test_urls_keep_order_and_duplicates(self, tmp_path, crawl):
        path = tmp_path / "requests.rdpr"
        write_request_table(path, crawl)
        with RequestTable(path) as table:
            assert table.urls("a.com", date(2015, 3, 1)) == [
                "http://a.com/",
                "http://cdn.a.com/ads.js",
                "http://a.com/",
            ]

    def test_request_urls_equal_harfile(self, tmp_path, crawl):
        path = tmp_path / "requests.rdpr"
        write_request_table(path, crawl)
        with RequestTable(path) as table:
            for record in crawl.records:
                if record.har is None:
                    continue
                assert (
                    table.request_urls(record.domain, record.month)
                    == record.har.request_urls()
                )

    def test_scan_yields_every_row(self, tmp_path, crawl):
        path = tmp_path / "requests.rdpr"
        write_request_table(path, crawl)
        with RequestTable(path) as table:
            rows = list(table.scan())
        assert len(rows) == 5
        urls = [row[0] for row in rows]
        assert urls[:3] == [
            "http://a.com/",
            "http://cdn.a.com/ads.js",
            "http://a.com/",
        ]
        for url, method, status, mime, size in rows:
            assert method == "GET"
            assert status == 200
            assert isinstance(mime, str)
            assert size == 10

    def test_empty_crawl(self, tmp_path):
        path = tmp_path / "requests.rdpr"
        assert write_request_table(path, CrawlResult()) == 0
        with RequestTable(path) as table:
            assert table.slots() == []
            assert list(table.scan()) == []

    def test_corrupt_table_raises(self, tmp_path, crawl):
        path = tmp_path / "requests.rdpr"
        write_request_table(path, crawl)
        raw = bytearray(path.read_bytes())
        raw[60] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(DataPlaneError):
            RequestTable(path)

    def test_mapped_bytes_exposed(self, tmp_path, crawl):
        path = tmp_path / "requests.rdpr"
        write_request_table(path, crawl)
        with RequestTable(path) as table:
            assert table.mapped_bytes == path.stat().st_size
