"""Shard splitting and the persistent worker pool.

``split_shards`` has two contracts: a *correctness* one (the flattened
shards ARE the flattened groups — order preserved, nothing dropped or
duplicated, group boundaries respected) and a *balance* one (no shard
degenerates: in particular one big trailing group must not be appended
to an already-full shard). The property test drives both with seeded
random workloads.
"""

import os
import random

import pytest

from repro.analysis.pool import (
    PersistentPool,
    ensure_persistent_pool,
    get_persistent_pool,
    set_persistent_pool,
    split_shards,
)


def flatten(groups):
    return [item for group in groups for item in group]


class TestSplitShardsBasics:
    def test_empty(self):
        assert split_shards([], 4) == []
        assert split_shards([[], []], 4) == []

    def test_single_shard(self):
        assert split_shards([[1, 2], [3]], 1) == [[1, 2, 3]]

    def test_fewer_groups_than_shards(self):
        shards = split_shards([[1], [2]], 8)
        assert shards == [[1], [2]]

    def test_groups_stay_whole(self):
        groups = [[1, 2, 3], [4, 5], [6], [7, 8, 9, 10]]
        shards = split_shards(groups, 3)
        # Every group lands in exactly one shard, unsplit.
        starts = set()
        at = 0
        for shard in shards:
            starts.add(at)
            at += len(shard)
        group_starts = {0, 3, 5, 6}
        assert starts <= group_starts

    def test_trailing_large_group_gets_its_own_shard(self):
        """The tail-imbalance fix: [1] + [big] must not merge when two
        shards are available."""
        groups = [[1], list(range(100))]
        shards = split_shards(groups, 2)
        assert len(shards) == 2
        assert len(shards[0]) == 1
        assert len(shards[1]) == 100


class TestSplitShardsProperty:
    @pytest.mark.parametrize("seed", range(25))
    def test_random_workloads(self, seed):
        rng = random.Random(seed)
        groups = [
            [f"{g}:{i}" for i in range(rng.choice([0, 1, 2, 3, 5, 8, 40, 100]))]
            for g in range(rng.randint(0, 30))
        ]
        shard_count = rng.randint(1, 8)
        shards = split_shards(groups, shard_count)
        items = flatten(groups)

        # Correctness: concatenation reproduces the serial order exactly.
        assert flatten(shards) == items
        # No empty shards, never more shards than requested.
        assert all(shards)
        assert len(shards) <= shard_count

        if len(shards) > 1:
            # Balance: no shard exceeds the ideal size by more than the
            # largest single group (the unavoidable granularity).
            largest_group = max(len(group) for group in groups if group)
            ideal = len(items) / len(shards)
            assert max(len(s) for s in shards) <= ideal + largest_group


class TestPersistentPool:
    @pytest.fixture(autouse=True)
    def isolate_singleton(self):
        previous = set_persistent_pool(None)
        yield
        set_persistent_pool(previous)

    def test_publish_before_fork_accepts_anything(self):
        pool = PersistentPool(2)
        value = {"k": 1}
        assert pool.publish("state", value)
        assert pool.matches("state", value)
        assert not pool.matches("state", {"k": 1})  # identity, not equality
        pool.close()

    def test_run_returns_results_in_payload_order(self):
        pool = PersistentPool(2)
        pool.publish("base", 100)
        results = pool.run(_add_base, [5, 1, 9, 3], key="base")
        assert results == [105, 101, 109, 103]
        assert pool.runs == 1
        pool.close()

    def test_state_frozen_after_fork(self):
        pool = PersistentPool(2)
        value = [1, 2]
        pool.publish("v", value)
        pool.publish("base", 0)
        pool.run(_add_base, [0], key="base")
        assert pool.forked
        assert pool.publish("v", value)  # identical object: no-op, fine
        assert not pool.publish("v", [1, 2])  # new object: rejected
        assert not pool.publish("new", 3)
        pool.close()

    def test_workers_inherit_published_state(self):
        pool = PersistentPool(2)
        pool.publish("table", {"a": 10, "b": 20})
        results = pool.run(_read_table, ["a", "b", "a"], key="table")
        assert results == [10, 20, 10]
        pool.close()

    def test_worker_state_cached_across_runs(self):
        pool = PersistentPool(1)
        pool.publish("seed", 7)
        first = pool.run(_builds_counted, [0], key="seed", make=_count_builds)
        second = pool.run(_builds_counted, [0], key="seed", make=_count_builds)
        # One worker, same (key, make): the derived state was built once.
        assert first == [1]
        assert second == [1]
        pool.close()

    def test_singleton_lifecycle(self):
        assert get_persistent_pool() is None
        pool = ensure_persistent_pool(2)
        assert get_persistent_pool() is pool
        assert ensure_persistent_pool(4) is pool  # idempotent
        set_persistent_pool(None)
        assert get_persistent_pool() is None


# -- module-level tasks (must be picklable) --------------------------------------


def _add_base(base, payload):
    return base + payload


def _read_table(table, key):
    return table[key]


_BUILDS = 0


def _count_builds(_seed):
    global _BUILDS
    _BUILDS += 1
    return _BUILDS


def _builds_counted(builds, _payload):
    return builds
