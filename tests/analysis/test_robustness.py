"""Tests for bootstrap confidence intervals and seed sensitivity."""

import numpy as np
import pytest

from repro.analysis.robustness import (
    Interval,
    bootstrap_mean,
    bootstrap_proportion,
    bootstrap_statistic,
    seed_sensitivity,
)


class TestBootstrapProportion:
    def test_estimate_is_the_proportion(self):
        interval = bootstrap_proportion(33, 100)
        assert interval.estimate == pytest.approx(0.33)

    def test_interval_contains_estimate(self):
        interval = bootstrap_proportion(50, 400)
        assert interval.contains(interval.estimate)

    def test_more_data_narrows_interval(self):
        small = bootstrap_proportion(10, 100, seed=1)
        large = bootstrap_proportion(1000, 10_000, seed=1)
        assert large.width < small.width

    def test_extremes(self):
        assert bootstrap_proportion(0, 50).estimate == 0.0
        assert bootstrap_proportion(50, 50).estimate == 1.0
        zero = bootstrap_proportion(0, 0)
        assert zero.width == 0.0

    def test_roughly_matches_binomial_theory(self):
        # p=0.1, n=1000 → se ≈ sqrt(p(1-p)/n) ≈ 0.0095; 95% CI width ≈ 0.037.
        interval = bootstrap_proportion(100, 1000, n_resamples=4000, seed=2)
        assert 0.02 < interval.width < 0.06


class TestBootstrapMean:
    def test_constant_data_zero_width(self):
        interval = bootstrap_mean([5.0] * 30)
        assert interval.width == 0.0
        assert interval.estimate == 5.0

    def test_empty(self):
        assert bootstrap_mean([]).estimate == 0.0

    def test_seeded_reproducible(self):
        data = list(range(50))
        a = bootstrap_mean(data, seed=7)
        b = bootstrap_mean(data, seed=7)
        assert (a.low, a.high) == (b.low, b.high)


class TestBootstrapStatistic:
    def test_median(self):
        rng = np.random.default_rng(3)
        data = rng.normal(10, 2, size=200)
        interval = bootstrap_statistic(data, np.median, seed=3)
        assert interval.contains(interval.estimate)
        assert 9 < interval.estimate < 11

    def test_cdf_at_point(self):
        data = np.array([-50, -10, 0, 30, 90, 200], dtype=float)
        frac_within_100 = lambda xs: float(np.mean(xs <= 100))
        interval = bootstrap_statistic(data, frac_within_100, seed=4)
        assert interval.estimate == pytest.approx(5 / 6)


class TestSeedSensitivity:
    def test_runs_across_seeds(self):
        values = seed_sensitivity(lambda seed: float(seed % 3), seeds=[1, 2, 3, 4])
        assert values == [1.0, 2.0, 0.0, 1.0]

    def test_world_adoption_rate_stability(self):
        """The headline adoption rate should be stable across seeds."""
        from repro.synthesis.world import SyntheticWorld, WorldConfig

        def adoption(seed):
            world = SyntheticWorld(WorldConfig(n_sites=150, live_top=150), seed=seed)
            return sum(s.uses_anti_adblock for s in world.sites) / len(world.sites)

        rates = seed_sensitivity(adoption, seeds=[1, 2, 3])
        assert all(0.04 <= rate <= 0.20 for rate in rates)


class TestIntervalApi:
    def test_str(self):
        text = str(Interval(estimate=0.5, low=0.4, high=0.6))
        assert "0.5000" in text and "[0.4000, 0.6000]" in text
