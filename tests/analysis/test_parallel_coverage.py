"""Sharded (``REPRO_WORKERS > 1``) replay must reproduce the serial output.

The acceptance bar for the parallel §4 engine is not "approximately the
same figures" but *byte-identical* results: the shard merge preserves
dict insertion order, per-domain accumulators, and even object identity
of shared month dates, so a pickle of the parallel result equals the
serial one bit for bit.
"""

import json
import pickle

import pytest

from repro.analysis.coverage import CoverageAnalyzer
from repro.analysis.profile import profile_record
from repro.experiments.context import ExperimentContext
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import disable_tracing, enable_tracing, get_tracer


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext.create(scale=0.01)


@pytest.fixture(scope="module")
def serial(ctx):
    analyzer = CoverageAnalyzer(ctx.histories)
    coverage = analyzer.analyze(ctx.crawl, workers=1)
    delays = analyzer.detection_delays(ctx.crawl, coverage=coverage, workers=1)
    return coverage, delays


class TestParallelEqualsSerial:
    def test_analyze_is_byte_identical(self, ctx, serial):
        coverage, _ = serial
        parallel = CoverageAnalyzer(ctx.histories).analyze(ctx.crawl, workers=3)
        assert parallel.http_series == coverage.http_series
        assert parallel.html_series == coverage.html_series
        assert parallel.first_detected == coverage.first_detected
        assert parallel.site_first_seen == coverage.site_first_seen
        assert parallel.third_party_detection == coverage.third_party_detection
        assert pickle.dumps(parallel) == pickle.dumps(coverage)

    def test_detection_delays_are_byte_identical(self, ctx, serial):
        coverage, delays = serial
        analyzer = CoverageAnalyzer(ctx.histories)
        parallel = analyzer.detection_delays(ctx.crawl, coverage=coverage, workers=3)
        assert parallel == delays
        assert pickle.dumps(parallel) == pickle.dumps(delays)

    def test_worker_count_larger_than_domains_is_safe(self, ctx, serial):
        coverage, _ = serial
        oversubscribed = CoverageAnalyzer(ctx.histories).analyze(
            ctx.crawl, workers=64
        )
        assert pickle.dumps(oversubscribed) == pickle.dumps(coverage)

    def test_parallel_merges_perf_counters(self, ctx):
        analyzer = CoverageAnalyzer(ctx.histories)
        analyzer.analyze(ctx.crawl, workers=2)
        assert analyzer.perf.records > 0
        assert analyzer.perf.match_calls > 0
        assert analyzer.perf.elapsed > 0

    def test_work_metrics_merge_is_byte_identical(self, ctx):
        """The sharding-invariant counters merge to exactly the serial
        totals — and absorbing them into the unified metrics registry
        serializes byte-identically regardless of run mode."""
        serial_analyzer = CoverageAnalyzer(ctx.histories)
        serial_analyzer.analyze(ctx.crawl, workers=1)
        parallel_analyzer = CoverageAnalyzer(ctx.histories)
        parallel_analyzer.analyze(ctx.crawl, workers=3)
        serial_work = serial_analyzer.perf.work_metrics()
        parallel_work = parallel_analyzer.perf.work_metrics()
        assert serial_work["records"] > 0
        assert json.dumps(serial_work) == json.dumps(parallel_work)

        serial_registry = MetricsRegistry()
        serial_registry.absorb("replay", serial_work)
        parallel_registry = MetricsRegistry()
        parallel_registry.absorb("replay", parallel_work)
        assert json.dumps(serial_registry.as_dict()) == json.dumps(
            parallel_registry.as_dict()
        )


class TestPerfReset:
    def test_repeated_analyze_does_not_accumulate(self, ctx):
        """Back-to-back analyze() calls each start from zero counters."""
        analyzer = CoverageAnalyzer(ctx.histories)
        analyzer.analyze(ctx.crawl, workers=1)
        first = analyzer.perf.work_metrics()
        assert first["records"] > 0
        analyzer.analyze(ctx.crawl, workers=1)
        assert analyzer.perf.work_metrics() == first

    def test_reset_applies_to_parallel_runs_too(self, ctx):
        analyzer = CoverageAnalyzer(ctx.histories)
        analyzer.analyze(ctx.crawl, workers=2)
        first = analyzer.perf.work_metrics()
        analyzer.analyze(ctx.crawl, workers=2)
        assert analyzer.perf.work_metrics() == first


class TestParallelSpans:
    def test_sharded_run_reports_per_worker_payloads(self, ctx):
        enable_tracing()
        try:
            CoverageAnalyzer(ctx.histories).analyze(ctx.crawl, workers=3)
            roots = get_tracer().roots
        finally:
            disable_tracing()
            get_tracer().reset()
        analyze_spans = [root for root in roots if root.name == "replay:analyze"]
        assert len(analyze_spans) == 1
        shards = [
            child
            for child in analyze_spans[0].children
            if child.name.startswith("shard:")
        ]
        assert len(shards) == analyze_spans[0].attributes["shards"]
        assert len(shards) > 1
        assert sum(child.attributes["records"] for child in shards) > 0
        assert all(child.wall_s >= 0.0 for child in shards)


class TestProfileFastPath:
    def test_profiles_are_memoized_per_record(self, ctx):
        record = next(r for r in ctx.crawl.records if r.usable)
        first = profile_record(record)
        second = profile_record(record)
        assert first is second
        assert first.domain == record.domain
        assert len(first.urls) == len(record.truncated_urls())

    def test_profile_match_agrees_with_raw_match(self, ctx):
        analyzer = CoverageAnalyzer(ctx.histories)
        matchers = analyzer._final_matchers()
        checked = 0
        for record in ctx.crawl.records:
            if not record.usable:
                continue
            profile = profile_record(record)
            for url_profile, url in zip(profile.urls, record.truncated_urls()):
                for matcher in matchers.values():
                    raw = matcher.first_match(
                        url,
                        record.domain,
                        url_profile.resource_type,
                        url_profile.third_party,
                    )
                    fast = matcher.first_match_profile(url_profile, record.domain)
                    assert raw == fast
                    checked += 1
            if checked > 500:
                break
        assert checked > 0
