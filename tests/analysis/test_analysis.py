"""Tests for the §3/§4 analysis modules on hand-built inputs."""

from datetime import date

import pytest

from repro.analysis.comparison import (
    cdf,
    exception_stats,
    overlap_analysis,
    rank_distribution,
)
from repro.analysis.coverage import CoverageAnalyzer
from repro.analysis.evolution import (
    composition_stats,
    evolution_series,
    mean_update_cadence,
    update_cadence,
)
from repro.analysis.report import percent, render_cdf, render_multi_series, render_table
from repro.filterlist.classify import RuleType
from repro.filterlist.history import FilterListHistory
from repro.synthesis.alexa import DomainPopulation
from repro.wayback.crawler import CrawlRecord, CrawlResult, CrawlStatus
from repro.wayback.rewrite import wayback_url
from repro.web.har import HarFile
from repro.web.http import Exchange, Request, Response


def history_from(revisions):
    history = FilterListHistory("test")
    for when, text in revisions:
        history.add_revision(when, text)
    return history


class TestEvolution:
    def test_series_counts_types(self):
        history = history_from(
            [
                (date(2014, 1, 1), "||a.com^\n"),
                (date(2014, 2, 1), "||a.com^\nb.com###x\n"),
            ]
        )
        series = evolution_series(history)
        assert series.totals == [1, 2]
        assert series.series[RuleType.HTML_WITH_DOMAIN] == [0, 1]

    def test_series_until_cutoff(self):
        history = history_from(
            [
                (date(2014, 1, 1), "||a.com^\n"),
                (date(2015, 1, 1), "||a.com^\n||b.com^\n"),
            ]
        )
        series = evolution_series(history, until=date(2014, 6, 1))
        assert series.totals == [1]

    def test_composition_stats(self):
        history = history_from(
            [(date(2014, 1, 1), "||a.com^\n||b.com^\nc.com###x\n")]
        )
        stats = composition_stats(history)
        assert stats.total_rules == 3
        assert stats.http_percent == pytest.approx(200 / 3)

    def test_update_cadence(self):
        history = history_from(
            [
                (date(2014, 1, 1), "||a.com^\n"),
                (date(2014, 1, 8), "||a.com^\n||b.com^\n"),
                (date(2014, 2, 8), "||a.com^\n||b.com^\n||c.com^\n"),
            ]
        )
        cadence = update_cadence(history)
        assert [days for _, days in cadence] == [7, 31]
        assert mean_update_cadence(history) == pytest.approx(19.0)

    def test_update_cadence_single_revision_has_no_gaps(self):
        history = history_from([(date(2014, 1, 1), "||a.com^\n")])
        assert update_cadence(history) == []
        assert mean_update_cadence(history) == 0.0

    def test_update_cadence_same_day_revisions_zero_gap(self):
        history = history_from(
            [
                (date(2014, 1, 1), "||a.com^\n"),
                (date(2014, 1, 1), "||a.com^\n||b.com^\n"),
            ]
        )
        assert update_cadence(history) == [(date(2014, 1, 1), 0)]
        assert mean_update_cadence(history) == 0.0


class TestComparison:
    def test_overlap_analysis_direction(self):
        a = history_from([(date(2012, 1, 1), "||x.com^\n||y.com^\n")])
        b = history_from(
            [
                (date(2014, 1, 1), "||x.com^\n"),
                (date(2014, 6, 1), "||x.com^\n||y.com^\n||z.com^\n"),
            ]
        )
        overlap = overlap_analysis(a, b)
        assert overlap.overlap_count == 2
        assert overlap.first_in_a == 2
        assert overlap.first_in_b == 0
        assert all(delta < 0 for delta in overlap.differences_days)

    def test_same_day(self):
        a = history_from([(date(2014, 1, 1), "||x.com^\n")])
        b = history_from([(date(2014, 1, 1), "||x.com^\n")])
        overlap = overlap_analysis(a, b)
        assert overlap.same_day == 1

    def test_exception_stats(self):
        history = history_from(
            [(date(2014, 1, 1), "||a.com^\n@@||b.com^\n@@||c.com/x.js\n")]
        )
        stats = exception_stats(history)
        assert stats.exception_domains == 2
        assert stats.non_exception_domains == 1
        assert stats.ratio == 2.0

    def test_rank_distribution(self):
        population = DomainPopulation(seed=1)
        top_domain = population.domain_at(100)
        tail_domain = population.domain_at(2_000_000)
        history = history_from(
            [(date(2014, 1, 1), f"||{top_domain}^\n||{tail_domain}^\n||unknown.example^\n")]
        )
        distribution = rank_distribution(history, population)
        assert distribution.counts["1-5K"] == 1
        assert distribution.counts[">1M"] == 1
        assert distribution.unranked == 1
        assert distribution.total == 3

    def test_cdf_monotone(self):
        points = cdf([-500, -100, 0, 50, 900])
        values = [v for _, v in points]
        assert values == sorted(values)
        assert values[-1] == 1.0

    def test_cdf_empty(self):
        assert all(v == 0.0 for _, v in cdf([]))


def record_for(domain, month, urls, html=""):
    har = HarFile(page_url=f"http://{domain}/")
    for url in urls:
        har.add(Exchange(request=Request(url=url), response=Response(body="x" * 100)))
    return CrawlRecord(
        domain=domain, month=month, status=CrawlStatus.OK, har=har, html=html
    )


class TestCoverageAnalyzer:
    def histories(self):
        aak = history_from(
            [
                (date(2014, 2, 1), "||pagefair.com^$third-party\n"),
                (date(2015, 2, 1), "||pagefair.com^$third-party\n||histats.com^$third-party\n"),
            ]
        )
        ce = history_from(
            [(date(2011, 5, 1), "@@||news.com/ads.js\nnews.com###adblock-notice\n")]
        )
        return {"AAK": aak, "CE": ce}

    def crawl(self):
        prefix_month = date(2014, 6, 1)
        records = [
            record_for(
                "news.com",
                prefix_month,
                [
                    wayback_url("http://news.com/", prefix_month),
                    wayback_url("http://pagefair.com/measure.js", prefix_month),
                    wayback_url("http://news.com/ads.js", prefix_month),
                ],
                html="<body><div id='adblock-notice'>x</div></body>",
            ),
            record_for(
                "clean.com",
                prefix_month,
                [wayback_url("http://clean.com/app.js", prefix_month)],
            ),
        ]
        return CrawlResult(records=records)

    def test_http_match_truncates_wayback(self):
        analyzer = CoverageAnalyzer(self.histories())
        coverage = analyzer.analyze(self.crawl())
        assert coverage.http_series["AAK"][date(2014, 6, 1)] == 1
        assert "news.com" in coverage.first_detected["AAK"]

    def test_exception_rule_does_not_block(self):
        analyzer = CoverageAnalyzer(self.histories())
        coverage = analyzer.analyze(self.crawl())
        # CE's only HTTP rule is an exception: no HTTP trigger...
        assert coverage.http_series["CE"][date(2014, 6, 1)] == 0

    def test_html_rule_triggers(self):
        analyzer = CoverageAnalyzer(self.histories())
        coverage = analyzer.analyze(self.crawl())
        # ...but its element rule hides the static notice.
        assert coverage.html_series["CE"][date(2014, 6, 1)] == 1

    def test_contemporaneous_matching(self):
        analyzer = CoverageAnalyzer(self.histories())
        month = date(2014, 6, 1)
        early = record_for(
            "h.com", month, [wayback_url("http://histats.com/js15_as.js", month)]
        )
        assert analyzer.http_match("AAK", early) is None  # rule arrives 2015
        late_month = date(2015, 6, 1)
        late = record_for(
            "h.com", late_month, [wayback_url("http://histats.com/js15_as.js", late_month)]
        )
        assert analyzer.http_match("AAK", late) is not None

    def test_third_party_share(self):
        analyzer = CoverageAnalyzer(self.histories())
        coverage = analyzer.analyze(self.crawl())
        assert coverage.third_party_share("AAK") == 1.0

    def test_detection_delays_shapes(self):
        analyzer = CoverageAnalyzer(self.histories())
        crawl = self.crawl()
        delays = analyzer.detection_delays(crawl)
        # news.com first seen 2014-06; AAK rule (pagefair) exists 2014-02:
        # delay is negative (rule predates observation).
        assert delays["AAK"] and delays["AAK"][0] < 0
        # CE any-matches news.com via its bait exception, rule since 2011.
        assert delays["CE"] and delays["CE"][0] < 0


class TestReport:
    def test_render_table_alignment(self):
        text = render_table(["a", "bbbb"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_render_multi_series(self):
        series = {"X": {date(2014, 1, 1): 3}, "Y": {date(2014, 1, 1): 5}}
        text = render_multi_series(series)
        assert "2014-01" in text and "3" in text and "5" in text

    def test_render_cdf(self):
        text = render_cdf([(0, 0.5), (100, 1.0)])
        assert "50.0%" in text and "100.0%" in text

    def test_percent(self):
        assert percent(0.925) == "92.5%"
