"""The persistent pool must change wall-clock, never bytes.

Every engine that can route a fan-out through the process-wide
:class:`~repro.analysis.pool.PersistentPool` — the §4 replay, the §3
history folds, the §4.3 live crawl, §5 feature extraction — must produce
pickle-byte-identical results with and without it. These tests stand a
real forked pool up with published context state, run each engine both
ways, and compare bytes.
"""

import pickle

import pytest

from repro.analysis.coverage import CoverageAnalyzer
from repro.analysis.histfold import run_folds
from repro.analysis.livecrawl import LiveCrawler
from repro.analysis.pool import (
    PersistentPool,
    get_persistent_pool,
    set_persistent_pool,
)
from repro.experiments.context import ExperimentContext


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext.create(scale=0.01)


@pytest.fixture()
def pool(ctx):
    """A persistent pool with the context's state published, torn down after."""
    pool = PersistentPool(2)
    pool.publish("world", ctx.world)
    pool.publish("lists", ctx.lists)
    pool.publish("histories", ctx.histories)
    pool.publish("crawl", ctx.crawl)
    previous = set_persistent_pool(pool)
    try:
        yield pool
    finally:
        set_persistent_pool(previous)


@pytest.fixture()
def no_pool():
    previous = set_persistent_pool(None)
    try:
        yield
    finally:
        set_persistent_pool(previous)


class TestCoverageViaPersistentPool:
    def test_byte_identical_and_pool_used(self, ctx, pool):
        serial = CoverageAnalyzer(ctx.histories).analyze(ctx.crawl, workers=1)
        runs_before = pool.runs
        persistent = CoverageAnalyzer(ctx.histories).analyze(ctx.crawl, workers=2)
        assert pool.runs > runs_before  # the persistent route was taken
        assert pickle.dumps(persistent) == pickle.dumps(serial)

    def test_foreign_crawl_falls_back(self, ctx, pool):
        """A crawl that is not the published one must not use the pool."""
        from repro.wayback.crawler import CrawlResult

        other = CrawlResult(records=list(ctx.crawl.records))
        runs_before = pool.runs
        result = CoverageAnalyzer(ctx.histories).analyze(other, workers=2)
        assert pool.runs == runs_before  # identity guard rejected it
        assert pickle.dumps(result) == pickle.dumps(
            CoverageAnalyzer(ctx.histories).analyze(ctx.crawl, workers=1)
        )


class TestHistfoldViaPersistentPool:
    @staticmethod
    def jobs(ctx):
        from repro.analysis.evolution import composition_stats, evolution_series

        return [
            ("evo-aak", evolution_series, ctx.lists["aak"]),
            ("evo-ce", evolution_series, ctx.lists["combined_easylist"]),
            ("comp-aak", composition_stats, ctx.lists["aak"]),
            ("comp-el", composition_stats, ctx.lists["easylist"]),
        ]

    def test_results_equal_and_pool_used(self, ctx, pool):
        """Fold results are value-equal (the folds' documented contract:
        rendered artifacts are byte-identical; the in-memory results
        cross a process boundary, so pickle *bytes* can differ through
        lost object sharing — exactly as with fork-per-run pools)."""
        serial = run_folds(self.jobs(ctx), workers=1)
        runs_before = pool.runs
        persistent = run_folds(self.jobs(ctx), workers=2)
        assert pool.runs > runs_before
        assert persistent == serial

    def test_persistent_equals_fork_per_run(self, ctx, pool):
        persistent = run_folds(self.jobs(ctx), workers=2)
        set_persistent_pool(None)
        fork_per_run = run_folds(self.jobs(ctx), workers=2)
        assert persistent == fork_per_run

    def test_unpublished_arg_falls_back(self, ctx, pool):
        from repro.analysis.evolution import evolution_series
        from repro.filterlist.history import FilterListHistory

        foreign = FilterListHistory("foreign")
        jobs = [("foreign", evolution_series, foreign)]
        runs_before = pool.runs
        result = run_folds(jobs, workers=2)
        assert pool.runs == runs_before  # not reachable from published state
        assert result == run_folds(jobs, workers=1)


class TestLiveCrawlViaPersistentPool:
    def test_byte_identical_across_all_modes(self, ctx, pool):
        serial = LiveCrawler(ctx.world, ctx.histories).crawl(workers=1)
        runs_before = pool.runs
        persistent = LiveCrawler(ctx.world, ctx.histories).crawl(
            workers=2, wave_size=37
        )
        assert pool.runs > runs_before
        assert pickle.dumps(persistent) == pickle.dumps(serial)

    def test_fork_per_wave_matches_serial(self, ctx, no_pool):
        serial = LiveCrawler(ctx.world, ctx.histories).crawl(workers=1)
        parallel = LiveCrawler(ctx.world, ctx.histories).crawl(
            workers=2, wave_size=37
        )
        assert get_persistent_pool() is None
        assert pickle.dumps(parallel) == pickle.dumps(serial)


class TestFeatstoreViaPersistentPool:
    def test_byte_identical_and_pool_used(self, ctx, pool, tmp_path):
        from repro.core.featstore import FeatureStore

        sources = ctx.corpus.sources()
        serial = FeatureStore(cache_dir=str(tmp_path / "a"), packed=True)
        baseline = serial.events_for_corpus(sources, workers=1)
        runs_before = pool.runs
        persistent = FeatureStore(cache_dir=str(tmp_path / "b"), packed=True)
        via_pool = persistent.events_for_corpus(sources, workers=2)
        assert pool.runs > runs_before
        assert pickle.dumps(via_pool) == pickle.dumps(baseline)
