"""Unit tests for the replay engine's perf counters and bounded caches."""

import pytest

from repro.analysis.perf import (
    LRUCache,
    PerfCounters,
    matcher_cache_size,
    repro_workers,
)


class TestKnobs:
    def test_workers_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert repro_workers() == 1

    def test_workers_env_parsing(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert repro_workers() == 4
        monkeypatch.setenv("REPRO_WORKERS", "0")
        assert repro_workers() == 1
        monkeypatch.setenv("REPRO_WORKERS", "nope")
        assert repro_workers() == 1

    def test_matcher_cache_env_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_MATCHER_CACHE", raising=False)
        assert matcher_cache_size() == 512
        monkeypatch.setenv("REPRO_MATCHER_CACHE", "8")
        assert matcher_cache_size() == 8
        monkeypatch.setenv("REPRO_MATCHER_CACHE", "1")
        assert matcher_cache_size() == 2


class TestPerfCounters:
    def test_rates(self):
        perf = PerfCounters(records=100, match_calls=4, candidates_probed=10)
        perf.elapsed = 2.0
        assert perf.records_per_second() == 50.0
        assert perf.probes_per_call() == 2.5

    def test_rates_guard_division_by_zero(self):
        perf = PerfCounters()
        assert perf.records_per_second() == 0.0
        assert perf.probes_per_call() == 0.0
        assert perf.matcher_hit_rate() == 0.0

    def test_snapshot_and_since_report_deltas(self):
        perf = PerfCounters(match_calls=10, candidates_probed=40)
        snap = perf.snapshot()
        perf.match_calls += 5
        perf.candidates_probed += 7
        delta = perf.since(snap)
        assert delta.match_calls == 5
        assert delta.candidates_probed == 7
        assert delta.records == 0

    def test_merge_sums_counts_and_maxes_elapsed(self):
        a = PerfCounters(records=3, matcher_full_builds=1)
        a.elapsed = 2.0
        b = PerfCounters(records=4, matcher_incremental_builds=6)
        b.elapsed = 5.0
        a.merge(b)
        assert a.records == 7
        assert a.matcher_full_builds == 1
        assert a.matcher_incremental_builds == 6
        assert a.elapsed == 5.0

    def test_hit_rate_and_render(self):
        perf = PerfCounters(
            records=10,
            matcher_cache_hits=9,
            matcher_full_builds=1,
            profile_builds=2,
            profile_hits=8,
        )
        perf.elapsed = 1.0
        assert perf.matcher_hit_rate() == pytest.approx(0.9)
        text = perf.render()
        assert "10 records" in text
        assert "90.0% cache hits" in text

    def test_as_dict_includes_derived_rates(self):
        data = PerfCounters(records=1).as_dict()
        assert data["records"] == 1
        for key in ("records_per_second", "probes_per_call", "matcher_hit_rate"):
            assert key in data


class TestLRUCache:
    def test_put_get_roundtrip(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing", "fallback") == "fallback"
        assert "a" in cache and len(cache) == 1

    def test_evicts_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a" so "b" is coldest
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache

    def test_put_refreshes_existing_key(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh + overwrite
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert "b" not in cache

    def test_capacity_validation_and_clear(self):
        with pytest.raises(ValueError):
            LRUCache(0)
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0
