"""Focused unit tests for the live-web crawler (§4.3)."""

from datetime import date

import pytest

from repro.analysis.livecrawl import LiveCrawler
from repro.filterlist.history import FilterListHistory
from repro.synthesis.world import SyntheticWorld, WorldConfig


@pytest.fixture(scope="module")
def world():
    return SyntheticWorld(WorldConfig(n_sites=100, live_top=300))


def history_with(lines, name="L", when=date(2016, 1, 1)):
    history = FilterListHistory(name)
    history.add_revision(when, "\n".join(lines) + "\n")
    return history


class TestLiveCrawler:
    def test_vendor_rule_matches_adopters(self, world):
        histories = {"L": history_with(["||pagefair.com^$third-party"])}
        result = LiveCrawler(world, histories).crawl(check_html=False)
        pagefair_adopters = sum(
            1
            for rank in range(1, world.config.live_top + 1)
            if (p := world.profile_for_rank(rank)).deployment is not None
            and p.deployment.vendor is not None
            and p.deployment.vendor.name == "PageFair"
        )
        # Every reachable PageFair adopter triggers; unreachable sites
        # (~0.6%) may shave a few off.
        assert result.http_matches["L"] >= 0.9 * pagefair_adopters
        assert result.third_party_share("L") == 1.0

    def test_empty_list_matches_nothing(self, world):
        histories = {"E": FilterListHistory("E")}
        # An empty history has no latest revision: crawler must tolerate it.
        crawler = LiveCrawler(world, histories)
        result = crawler.crawl(check_html=False)
        assert result.http_matches.get("E", 0) == 0

    def test_detected_domains_recorded(self, world):
        histories = {"L": history_with(["||blockadblock.com^"])}
        result = LiveCrawler(world, histories).crawl(check_html=False)
        assert len(result.detected_domains["L"]) == result.http_matches["L"]

    def test_matched_scripts_are_anti_adblock_sources(self, world):
        histories = {"L": history_with(["||pagefair.com^$third-party"])}
        result = LiveCrawler(world, histories).crawl(check_html=False)
        from repro.jsast import parse

        assert result.matched_scripts
        for source in result.matched_scripts[:5]:
            parse(source)

    def test_html_matching_optional(self, world):
        histories = {"L": history_with(["###adblock-notice"])}
        no_html = LiveCrawler(world, histories).crawl(check_html=False)
        assert no_html.html_matches["L"] == 0
