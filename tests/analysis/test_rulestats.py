"""The rule-stats plane: accounting correctness, determinism, reporting.

Three layers of guarantees under test:

- **unit**: scoped sinks, payload round trips, delta/merge algebra, the
  on-disk accumulator, dead-rule pruning;
- **integration**: instrumented matchers/adblockers record hits without
  changing a single match outcome;
- **end to end**: the §4 replay produces byte-identical canonical
  payloads and report JSON across serial, fork-per-run, and
  persistent-pool execution, and stats-on never changes result bytes.
"""

import json
import pickle
from datetime import date

import pytest

from repro.analysis.coverage import CoverageAnalyzer
from repro.analysis.livecrawl import LiveCrawler
from repro.analysis.pool import PersistentPool, set_persistent_pool
from repro.analysis.rulestats import (
    RuleStatsCollector,
    RuleStatsStore,
    ScopedRuleStats,
    build_rule_report,
    get_rule_stats,
    set_rule_stats,
    strip_timing,
)
from repro.core.rulegen import prune_dead_rules
from repro.experiments.context import ExperimentContext
from repro.filterlist.history import FilterListHistory
from repro.filterlist.matcher import NetworkMatcher
from repro.filterlist.parser import parse_filter_list
from repro.filterlist.rules import NetworkRule
from repro.web.adblocker import Adblocker
from repro.web.dom import parse_html


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext.create(scale=0.01)


@pytest.fixture()
def fresh_collector():
    """Install a fresh global collector; restore the previous one after."""
    previous = set_rule_stats(RuleStatsCollector())
    try:
        yield get_rule_stats()
    finally:
        set_rule_stats(previous)


@pytest.fixture()
def stats_off():
    previous = set_rule_stats(None)
    try:
        yield
    finally:
        set_rule_stats(previous)


@pytest.fixture()
def no_pool():
    previous = set_persistent_pool(None)
    try:
        yield
    finally:
        set_persistent_pool(previous)


RULES = [
    NetworkRule.parse("||ads.example.com^"),
    NetworkRule.parse("||tracker.net/pixel.gif"),
    NetworkRule.parse("/never-matches-anything/"),
]

URLS = [
    "http://ads.example.com/banner.js",
    "http://tracker.net/pixel.gif?x=1",
    "http://tracker.net/pixel.gif",
    "http://benign.org/app.js",
]


class TestScopedRuleStats:
    def test_record_call_accumulates(self):
        scope = ScopedRuleStats()
        scope.record_call(3, 500, RULES[0])
        scope.record_call(1, 700, None)
        assert scope.calls == 2
        assert scope.hits == {RULES[0].raw: 1}
        assert scope.cost.total == 2
        assert scope.latency_ns.total == 2
        assert scope.has_data()

    def test_element_hits(self):
        scope = ScopedRuleStats()
        scope.record_element_hit("##.overlay")
        scope.record_element_hit("##.overlay")
        assert scope.hits == {"##.overlay": 2}

    def test_payload_round_trip(self):
        scope = ScopedRuleStats()
        scope.checks["b"] = 2
        scope.checks["a"] = 1
        scope.record_call(2, 900, RULES[1])
        payload = scope.as_payload()
        assert list(payload["checks"]) == ["a", "b"]  # key-sorted
        other = ScopedRuleStats()
        other.merge_payload(payload)
        assert other.as_payload() == payload

    def test_merge_sums(self):
        a, b = ScopedRuleStats(), ScopedRuleStats()
        a.record_call(1, 300, RULES[0])
        b.record_call(4, 300, RULES[0])
        a.merge_payload(b.as_payload())
        assert a.calls == 2
        assert a.hits[RULES[0].raw] == 2
        assert a.cost.total == 2


class TestCollectorPayloads:
    def test_empty_scopes_are_omitted(self):
        collector = RuleStatsCollector()
        collector.scope("idle")
        collector.scope("busy").record_call(1, 100, None)
        assert list(collector.as_payload()["lists"]) == ["busy"]

    def test_delta_since_then_merge_reconstructs(self):
        """The worker protocol: snapshot, work, ship delta, parent merges."""
        parent = RuleStatsCollector()
        parent.scope("AAK").record_call(2, 100, RULES[0])
        worker = RuleStatsCollector()
        worker.merge_payload(parent.as_payload())  # forked copy
        snapshot = worker.snapshot()
        worker.scope("AAK").record_call(5, 100, RULES[1])
        worker.scope("CE").record_call(1, 100, None)
        parent.merge_payload(worker.delta_since(snapshot))

        direct = RuleStatsCollector()
        direct.scope("AAK").record_call(2, 100, RULES[0])
        direct.scope("AAK").record_call(5, 100, RULES[1])
        direct.scope("CE").record_call(1, 100, None)
        assert strip_timing(parent.as_payload()) == strip_timing(direct.as_payload())
        # Timing histograms merge too (totals match even if buckets are
        # timing-dependent in real runs; here the inputs are fixed).
        assert parent.as_payload() == direct.as_payload()

    def test_delta_is_empty_when_idle(self):
        collector = RuleStatsCollector()
        collector.scope("AAK").record_call(1, 100, None)
        assert collector.delta_since(collector.snapshot())["lists"] == {}

    def test_shard_merge_is_order_independent(self):
        deltas = []
        for rule, probed in ((RULES[0], 2), (RULES[1], 7), (None, 1)):
            shard = RuleStatsCollector()
            shard.scope("AAK").record_call(probed, 100, rule)
            deltas.append(shard.as_payload())
        forward, backward = RuleStatsCollector(), RuleStatsCollector()
        for delta in deltas:
            forward.merge_payload(delta)
        for delta in reversed(deltas):
            backward.merge_payload(delta)
        assert json.dumps(forward.as_payload()) == json.dumps(backward.as_payload())

    def test_canonical_payload_strips_timing(self):
        collector = RuleStatsCollector()
        collector.scope("AAK").record_call(1, 12345, RULES[0])
        canonical = collector.canonical_payload()
        assert "latency_ns" not in canonical["lists"]["AAK"]
        assert "cost" in canonical["lists"]["AAK"]

    def test_manifest_summary_totals(self):
        collector = RuleStatsCollector()
        scope = collector.scope("AAK")
        scope.record_call(3, 100, RULES[0])
        scope.record_call(2, 100, RULES[0])
        scope.checks.update({"a": 4})
        summary = collector.manifest_summary()
        assert summary["totals"] == {
            "calls": 2,
            "hits": 2,
            "checks": 4,
            "rules_hit": 1,
        }
        assert summary["lists"]["AAK"]["rules_checked"] == 1

    def test_absorb_into_metrics(self):
        from repro.obs.metrics import MetricsRegistry

        collector = RuleStatsCollector()
        collector.scope("AAK").record_call(3, 100, RULES[0])
        registry = MetricsRegistry()
        collector.absorb_into(registry)
        data = registry.as_dict()
        assert data["counters"]["rules.hits"] == 1
        assert "rules.cost.AAK" in data["histograms"]
        assert "rules.latency_ns.AAK" in data["histograms"]


class TestGlobalCollector:
    def test_set_and_restore(self):
        mine = RuleStatsCollector()
        previous = set_rule_stats(mine)
        try:
            assert get_rule_stats() is mine
        finally:
            set_rule_stats(previous)

    def test_env_disabled_resolves_to_none(self, stats_off):
        assert get_rule_stats() is None


class TestMatcherIntegration:
    def test_outcomes_identical_with_stats_on(self):
        plain = NetworkMatcher(RULES)
        recorded = NetworkMatcher(RULES)
        recorded.rule_stats = ScopedRuleStats()
        for url in URLS:
            assert recorded.first_match(url) is plain.first_match(url)
            assert recorded.match(url).blocked == plain.match(url).blocked

    def test_hits_and_checks_recorded(self):
        matcher = NetworkMatcher(RULES)
        scope = matcher.rule_stats = ScopedRuleStats()
        for url in URLS:
            matcher.first_match(url)
        # One _first pass per hit, two (block + allow polarity) per miss:
        # three of the URLs hit, one misses.
        assert scope.calls == 5
        assert scope.hits[RULES[0].raw] == 1
        assert scope.hits[RULES[1].raw] == 2
        assert sum(scope.checks.values()) == scope.cost.sum
        assert scope.latency_ns.total == scope.calls

    def test_copy_carries_the_sink(self):
        matcher = NetworkMatcher(RULES)
        matcher.rule_stats = ScopedRuleStats()
        assert matcher.copy().rule_stats is matcher.rule_stats

    def test_disabled_costs_no_recording(self):
        matcher = NetworkMatcher(RULES)
        assert matcher.rule_stats is None
        matcher.first_match(URLS[0])  # must not raise, nothing recorded


class TestAdblockerElementHits:
    def test_element_rule_hits_reach_the_scope(self):
        filter_list = parse_filter_list(
            "##.adblock-overlay\n||ads.example.com^", name="test"
        )
        adblocker = Adblocker([filter_list])
        scope = adblocker.rule_stats = ScopedRuleStats()
        document = parse_html("<body><div class='adblock-overlay'></div></body>")
        triggered = adblocker.hide_elements(document, "http://site.com/")
        assert len(triggered) == 1
        assert scope.hits == {"##.adblock-overlay": 1}
        # The network matcher inherits the same sink via the property.
        adblocker.should_block("http://ads.example.com/a.js", "http://site.com/")
        assert scope.hits["||ads.example.com^"] == 1


class TestStore:
    KEY = {"schema": 1, "seed": 1, "scale": 0.01}

    def _payload(self, probed=2):
        collector = RuleStatsCollector()
        collector.scope("AAK").record_call(probed, 100, RULES[0])
        return collector.as_payload()

    def test_accumulates_across_merges(self, tmp_path):
        store = RuleStatsStore(tmp_path)
        store.merge_into(self.KEY, self._payload())
        path = store.merge_into(self.KEY, self._payload())
        assert path.name == f"rulestats-{store.key_digest(self.KEY)}.json"
        loaded = store.load(self.KEY)
        assert loaded["lists"]["AAK"]["calls"] == 2
        assert loaded["lists"]["AAK"]["hits"][RULES[0].raw] == 2

    def test_distinct_keys_do_not_collide(self, tmp_path):
        store = RuleStatsStore(tmp_path)
        store.merge_into(self.KEY, self._payload())
        store.merge_into({**self.KEY, "seed": 2}, self._payload())
        assert len(list(tmp_path.glob("rulestats-*.json"))) == 2
        merged = store.load_merged()
        assert merged["lists"]["AAK"]["calls"] == 2

    def test_missing_key_loads_none(self, tmp_path):
        assert RuleStatsStore(tmp_path).load(self.KEY) is None
        assert RuleStatsStore(tmp_path / "absent").load_merged()["lists"] == {}


class TestPrune:
    LIST_TEXT = "\n".join(
        [
            "||ads.example.com^",
            "||tracker.net/pixel.gif",
            "/never-matches-anything/",
            "@@||benign.org/app.js",
        ]
    )

    def test_prunes_unhit_rules(self):
        filter_list = parse_filter_list(self.LIST_TEXT, name="aak")
        result = prune_dead_rules(filter_list, {"||ads.example.com^": 3})
        assert result.kept == 1
        assert result.dropped == 3
        assert result.pruned.name == "aak-pruned"
        assert "/never-matches-anything/" in result.dropped_rules
        assert result.dropped_fraction == 0.75

    def test_keep_exceptions(self):
        filter_list = parse_filter_list(self.LIST_TEXT, name="aak")
        result = prune_dead_rules(
            filter_list, {"||ads.example.com^": 3}, keep_exceptions=True
        )
        kept_raws = [parsed.rule.raw for parsed in result.pruned.rules]
        assert "@@||benign.org/app.js" in kept_raws
        assert result.kept == 2

    def test_pruned_list_reproduces_decisions_on_observed_traffic(self):
        filter_list = parse_filter_list(self.LIST_TEXT, name="aak")
        full = NetworkMatcher(filter_list.network_rules)
        scope = full.rule_stats = ScopedRuleStats()
        for url in URLS:
            full.first_match(url)
        pruned_list = prune_dead_rules(filter_list, scope.hits).pruned
        pruned = NetworkMatcher(pruned_list.network_rules)
        for url in URLS:
            assert pruned.first_match(url) is full.first_match(url)


class TestRuleReport:
    @staticmethod
    def _history():
        history = FilterListHistory("AAK")
        history.add_revision(date(2014, 1, 1), "||ads.example.com^")
        history.add_revision(
            date(2015, 1, 1), "||ads.example.com^\n/never-matches-anything/"
        )
        return history

    def _payload(self):
        collector = RuleStatsCollector()
        scope = collector.scope("AAK")
        scope.record_call(2, 100, RULES[0])
        scope.checks.update({"/never-matches-anything/": 9, RULES[0].raw: 2})
        return collector.as_payload()

    def test_dead_rule_series_and_shares(self):
        report = build_rule_report(self._payload(), {"AAK": self._history()})
        entry = report.data["lists"]["AAK"]
        assert entry["rules_total"] == 2
        assert entry["dead_rules"] == 1
        assert entry["dead_fraction"] == 0.5
        assert [point["dead"] for point in entry["dead_rule_series"]] == [0, 1]
        assert entry["top_dead_cost"][0]["rule"] == "/never-matches-anything/"
        assert entry["dead_cost_share"] == pytest.approx(9 / 11, abs=1e-6)

    def test_report_without_history_still_has_totals(self):
        report = build_rule_report(self._payload(), {})
        entry = report.data["lists"]["AAK"]
        assert entry["hits_total"] == 1
        assert "rules_total" not in entry

    def test_overlap(self):
        other = FilterListHistory("CE")
        other.add_revision(date(2015, 1, 1), "||ads.example.com^\n##.ce-only")
        payload = self._payload()
        ce = RuleStatsCollector()
        ce.merge_payload(payload)
        ce.scope("CE").record_call(1, 100, RULES[0])
        report = build_rule_report(
            ce.as_payload(), {"AAK": self._history(), "CE": other}
        )
        (pair,) = report.data["overlap"]
        assert pair["lists"] == ["AAK", "CE"]
        assert pair["rules_shared"] == 1
        assert pair["hit_rules_shared"] == 1

    def test_canonical_json_excludes_timing(self):
        report = build_rule_report(self._payload(), {"AAK": self._history()})
        assert "latency_ns" not in report.to_json()
        assert "latency_ns" in report.to_json(include_timing=True)
        assert report.timing["AAK"]["latency_quantiles_ns"]["p50"] is not None

    def test_render_embeds_canonical_json(self):
        report = build_rule_report(self._payload(), {"AAK": self._history()})
        rendered = report.render()
        assert '"Filter the filters"' in rendered
        assert "== canonical JSON ==" in rendered
        assert report.to_json() in rendered


def _coverage_canonical(ctx, workers):
    """Run the §4.2 replay under a fresh collector; return (result, payload)."""
    collector = RuleStatsCollector()
    previous = set_rule_stats(collector)
    try:
        result = CoverageAnalyzer(ctx.histories).analyze(ctx.crawl, workers=workers)
    finally:
        set_rule_stats(previous)
    return result, json.dumps(collector.canonical_payload(), sort_keys=True)


def _live_canonical(ctx, workers):
    collector = RuleStatsCollector()
    previous = set_rule_stats(collector)
    try:
        result = LiveCrawler(ctx.world, ctx.histories).crawl(
            workers=workers, wave_size=37
        )
    finally:
        set_rule_stats(previous)
    return result, json.dumps(collector.canonical_payload(), sort_keys=True)


class TestEndToEndDeterminism:
    def test_coverage_serial_vs_fork_parallel(self, ctx, no_pool):
        serial_result, serial_payload = _coverage_canonical(ctx, workers=1)
        fork_result, fork_payload = _coverage_canonical(ctx, workers=2)
        assert serial_payload == fork_payload
        assert pickle.dumps(serial_result) == pickle.dumps(fork_result)
        assert json.loads(serial_payload)["lists"]  # non-trivial accounting

    def test_coverage_via_persistent_pool(self, ctx):
        serial_result, serial_payload = _coverage_canonical(ctx, workers=1)
        pool = PersistentPool(2)
        pool.publish("world", ctx.world)
        pool.publish("lists", ctx.lists)
        pool.publish("histories", ctx.histories)
        pool.publish("crawl", ctx.crawl)
        previous = set_persistent_pool(pool)
        try:
            runs_before = pool.runs
            pool_result, pool_payload = _coverage_canonical(ctx, workers=2)
            assert pool.runs > runs_before
        finally:
            set_persistent_pool(previous)
        assert serial_payload == pool_payload
        assert pickle.dumps(serial_result) == pickle.dumps(pool_result)

    def test_live_crawl_serial_vs_parallel(self, ctx, no_pool):
        serial_result, serial_payload = _live_canonical(ctx, workers=1)
        fork_result, fork_payload = _live_canonical(ctx, workers=2)
        assert serial_payload == fork_payload
        assert pickle.dumps(serial_result) == pickle.dumps(fork_result)
        assert json.loads(serial_payload)["lists"]

    def test_stats_on_never_changes_results(self, ctx, no_pool, stats_off):
        baseline = CoverageAnalyzer(ctx.histories).analyze(ctx.crawl, workers=1)
        with_stats, _ = _coverage_canonical(ctx, workers=1)
        assert pickle.dumps(baseline) == pickle.dumps(with_stats)

    def test_report_json_identical_across_modes(self, ctx, no_pool):
        _, serial_payload = _coverage_canonical(ctx, workers=1)
        _, fork_payload = _coverage_canonical(ctx, workers=2)
        serial_report = build_rule_report(json.loads(serial_payload), ctx.histories)
        fork_report = build_rule_report(json.loads(fork_payload), ctx.histories)
        assert serial_report.to_json() == fork_report.to_json()
        assert serial_report.render() == fork_report.render()
