"""Tests for the ASCII chart renderer."""

from datetime import date

from repro.analysis.charts import cdf_chart, line_chart


def series(*counts, start_year=2014):
    return {
        date(start_year + i // 12, 1 + i % 12, 1): value
        for i, value in enumerate(counts)
    }


class TestLineChart:
    def test_contains_markers_and_legend(self):
        chart = line_chart({"A": series(0, 1, 2, 3), "B": series(3, 2, 1, 0)})
        assert "* A" in chart
        assert "o B" in chart
        assert "*" in chart.splitlines()[0] or any("*" in line for line in chart.splitlines())

    def test_title_first_line(self):
        chart = line_chart({"A": series(1, 2)}, title="Figure X")
        assert chart.splitlines()[0] == "Figure X"

    def test_peak_on_axis(self):
        chart = line_chart({"A": series(0, 5, 10)})
        assert "10 |" in chart

    def test_year_labels(self):
        chart = line_chart({"A": series(*range(30))})
        assert "2014" in chart
        assert "2015" in chart

    def test_empty(self):
        assert line_chart({}, title="t") == "t"

    def test_resampling_bounds_width(self):
        chart = line_chart({"A": series(*range(200))}, width=40)
        plot_lines = [l for l in chart.splitlines() if "|" in l]
        assert all(len(line) <= 40 + 8 for line in plot_lines)

    def test_zero_series(self):
        chart = line_chart({"A": series(0, 0, 0)})
        assert "|" in chart  # renders without dividing by zero


class TestCdfChart:
    def test_monotone_curve_renders(self):
        points = [(x, min(1.0, max(0.0, (x + 1080) / 2160))) for x in range(-1080, 1081, 180)]
        chart = cdf_chart(points, title="CDF")
        assert chart.splitlines()[0] == "CDF"
        assert "100%" in chart
        assert "0%" in chart

    def test_x_labels(self):
        chart = cdf_chart([(-100, 0.2), (400, 0.9)])
        assert "-100" in chart and "400" in chart

    def test_empty(self):
        assert cdf_chart([], title="t") == "t"
