"""Tests for the HTTP models and page snapshots."""

from repro.web.http import Exchange, Request, Response
from repro.web.page import PageSnapshot, Script, Subresource


class TestRequest:
    def test_resource_type_inferred(self):
        assert Request(url="http://a.com/x.js").resource_type == "script"
        assert Request(url="http://a.com/x.png").resource_type == "image"
        assert Request(url="http://a.com/api").resource_type == "other"

    def test_explicit_type_kept(self):
        request = Request(url="http://a.com/x.js", resource_type="xmlhttprequest")
        assert request.resource_type == "xmlhttprequest"

    def test_host_and_domain(self):
        request = Request(url="http://cdn.a.com/x.js")
        assert request.host == "cdn.a.com"
        assert request.domain == "a.com"

    def test_third_party_for(self):
        request = Request(url="http://tracker.net/p.gif")
        assert request.third_party_for("a.com")
        assert not request.third_party_for("tracker.net")


class TestResponse:
    def test_body_size_utf8(self):
        assert Response(body="abc").body_size == 3
        assert Response(body="é").body_size == 2

    def test_redirect_detection(self):
        response = Response(status=302, headers={"Location": "https://b.com/"})
        assert response.is_redirect
        assert response.redirect_location == "https://b.com/"

    def test_non_redirect_has_no_location(self):
        assert Response(status=200, headers={"Location": "x"}).redirect_location is None

    def test_exchange_url(self):
        exchange = Exchange(request=Request(url="http://a.com/"), response=Response())
        assert exchange.url == "http://a.com/"


class TestPageSnapshot:
    def make(self):
        return PageSnapshot(
            url="http://www.news.com/",
            html="<body></body>",
            subresources=[Subresource(url="http://cdn.news.com/a.js")],
            scripts=[
                Script(source="var a;", url="http://cdn.news.com/a.js"),
                Script(source="var inline;"),
                Script(source="detect();", url="http://v.com/d.js", is_anti_adblock=True, vendor="V"),
            ],
        )

    def test_domain_is_registered(self):
        assert self.make().domain == "news.com"

    def test_script_partitions(self):
        snapshot = self.make()
        assert len(snapshot.external_scripts()) == 2
        assert len(snapshot.inline_scripts()) == 1
        assert len(snapshot.anti_adblock_scripts()) == 1
        assert snapshot.uses_anti_adblock

    def test_request_urls(self):
        assert self.make().request_urls() == ["http://cdn.news.com/a.js"]

    def test_clean_page(self):
        snapshot = PageSnapshot(url="http://a.com/")
        assert not snapshot.uses_anti_adblock
        assert snapshot.anti_adblock_scripts() == []
