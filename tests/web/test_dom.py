"""Unit tests for the DOM and HTML parser."""

from repro.web.dom import Document, Element, parse_html

SAMPLE_HTML = """<!DOCTYPE html>
<html lang="en">
<head><title>News Site</title>
<script src="http://cdn.site.com/app.js"></script>
</head>
<body>
<div id="header" class="top nav">Header</div>
<div id="content">
  <p class="article">Hello <b>world</b></p>
  <img src="/logo.png">
  <div id="adblock-notice" class="overlay modal">Please disable your adblocker</div>
</div>
</body>
</html>"""


class TestParseHtml:
    def test_head_and_body(self):
        document = parse_html(SAMPLE_HTML)
        assert document.head is not None
        assert document.body is not None

    def test_html_attrs_merged_to_root(self):
        document = parse_html(SAMPLE_HTML)
        assert document.root.attrs["lang"] == "en"

    def test_get_element_by_id(self):
        document = parse_html(SAMPLE_HTML)
        notice = document.get_element_by_id("adblock-notice")
        assert notice is not None
        assert notice.classes == ["overlay", "modal"]

    def test_nesting(self):
        document = parse_html(SAMPLE_HTML)
        notice = document.get_element_by_id("adblock-notice")
        assert notice.parent.attrs["id"] == "content"

    def test_void_elements_do_not_nest(self):
        document = parse_html(SAMPLE_HTML)
        img = document.root.get_elements_by_tag("img")[0]
        assert img.children == []
        assert img.parent.attrs["id"] == "content"

    def test_text_captured(self):
        document = parse_html(SAMPLE_HTML)
        notice = document.get_element_by_id("adblock-notice")
        assert "disable your adblocker" in notice.text

    def test_unclosed_tags_tolerated(self):
        document = parse_html("<body><div id=a><p>one<p>two</body>")
        assert document.get_element_by_id("a") is not None

    def test_stray_close_ignored(self):
        document = parse_html("<body></span><div id=x></div></body>")
        assert document.get_element_by_id("x") is not None


class TestElementQueries:
    def test_get_by_class(self):
        document = parse_html(SAMPLE_HTML)
        found = document.root.get_elements_by_class("overlay")
        assert len(found) == 1

    def test_iter_preorder(self):
        root = Element("html")
        body = root.make_child("body")
        first = body.make_child("div", {"id": "1"})
        first.make_child("span", {"id": "2"})
        body.make_child("div", {"id": "3"})
        ids = [e.attrs.get("id") for e in root.iter() if e.attrs.get("id")]
        assert ids == ["1", "2", "3"]


class TestVisibility:
    def test_hidden_element_excluded(self):
        document = parse_html(SAMPLE_HTML)
        notice = document.get_element_by_id("adblock-notice")
        notice.hidden = True
        visible_ids = {e.attrs.get("id") for e in document.visible_elements()}
        assert "adblock-notice" not in visible_ids
        assert "content" in visible_ids

    def test_hiding_inherited_by_children(self):
        document = parse_html(SAMPLE_HTML)
        document.get_element_by_id("content").hidden = True
        visible = document.visible_elements()
        assert all(e.attrs.get("id") != "adblock-notice" for e in visible)


class TestSerialization:
    def test_roundtrip_ids(self):
        document = parse_html(SAMPLE_HTML)
        html = document.to_html()
        reparsed = parse_html(html)
        assert reparsed.get_element_by_id("adblock-notice") is not None

    def test_new_page_scaffold(self):
        document = Document.new_page(title="T")
        assert document.head.children[0].tag == "title"
        assert document.body is not None
