"""Tests for HAR files, the adblocker, and the simulated browser."""

from repro.filterlist.parser import parse_filter_list
from repro.web.adblocker import Adblocker
from repro.web.browser import Browser
from repro.web.dom import parse_html
from repro.web.har import HarFile, is_partial, merge_hars
from repro.web.http import Exchange, Request, Response
from repro.web.page import PageSnapshot, Script, Subresource

ANTI_ADBLOCK_LIST = """[Adblock Plus 2.0]
||pagefair.com^$third-party
||blockadblock.com^
@@||news-site.com/ads.js
news-site.com###adblock-notice
##.adblock-overlay
other.com#@#.adblock-overlay
"""


def make_har(urls, sizes=None):
    har = HarFile(page_url="http://site.com/")
    sizes = sizes or [100] * len(urls)
    for url, size in zip(urls, sizes):
        har.add(
            Exchange(
                request=Request(url=url),
                response=Response(body="x" * size),
            )
        )
    return har


class TestHar:
    def test_request_urls_dedup(self):
        har = make_har(["http://a.com/1", "http://a.com/1", "http://a.com/2"])
        assert har.request_urls() == ["http://a.com/1", "http://a.com/2"]

    def test_total_size(self):
        har = make_har(["u1", "u2"], sizes=[100, 50])
        assert har.total_size == 150

    def test_merge_union(self):
        har1 = make_har(["http://a.com/1", "http://a.com/2"])
        har2 = make_har(["http://a.com/2", "http://a.com/3"])
        merged = har1.merge(har2)
        assert merged.request_urls() == [
            "http://a.com/1",
            "http://a.com/2",
            "http://a.com/3",
        ]

    def test_merge_hars_many(self):
        merged = merge_hars([make_har(["u1"]), make_har(["u2"]), make_har(["u3"])])
        assert len(merged.request_urls()) == 3

    def test_merge_hars_empty(self):
        assert merge_hars([]) is None

    def test_json_roundtrip(self):
        har = make_har(["http://a.com/x.js"])
        restored = HarFile.from_json(har.to_json())
        assert restored.page_url == har.page_url
        assert restored.request_urls() == har.request_urls()
        assert restored.entries[0].response.body == har.entries[0].response.body

    def test_partial_detection(self):
        small = make_har(["u"], sizes=[5])
        assert is_partial(small, yearly_average_size=1000)
        assert not is_partial(small, yearly_average_size=40)

    def test_partial_with_zero_average(self):
        assert not is_partial(make_har(["u"]), yearly_average_size=0)


class TestAdblocker:
    def make(self):
        return Adblocker([parse_filter_list(ANTI_ADBLOCK_LIST)])

    def test_blocks_third_party_vendor(self):
        adblocker = self.make()
        assert adblocker.should_block(
            "http://pagefair.com/measure.js", page_url="http://news-site.com/"
        )

    def test_vendor_not_blocked_first_party(self):
        adblocker = self.make()
        assert not adblocker.should_block(
            "http://pagefair.com/about.html", page_url="http://pagefair.com/"
        )

    def test_exception_rule_allows_and_logs(self):
        adblocker = Adblocker(
            [parse_filter_list("/ads.js\n@@||news-site.com/ads.js\n")]
        )
        blocked = adblocker.should_block(
            "http://news-site.com/ads.js", page_url="http://news-site.com/"
        )
        assert not blocked
        assert any(e.kind == "request-allowed" for e in adblocker.log.entries)

    def test_element_hiding_domain_rule(self):
        adblocker = self.make()
        document = parse_html(
            "<body><div id='adblock-notice'>disable</div></body>"
        )
        triggered = adblocker.hide_elements(document, "http://news-site.com/")
        assert [r.selector for r in triggered] == ["#adblock-notice"]
        assert document.get_element_by_id("adblock-notice").hidden

    def test_element_hiding_respects_domain(self):
        adblocker = self.make()
        document = parse_html("<body><div id='adblock-notice'></div></body>")
        triggered = adblocker.hide_elements(document, "http://unrelated.com/")
        assert triggered == []

    def test_generic_element_rule(self):
        adblocker = self.make()
        document = parse_html("<body><div class='adblock-overlay'></div></body>")
        triggered = adblocker.hide_elements(document, "http://anywhere.net/")
        assert len(triggered) == 1

    def test_element_exception_disables_generic(self):
        adblocker = self.make()
        document = parse_html("<body><div class='adblock-overlay'></div></body>")
        triggered = adblocker.hide_elements(document, "http://other.com/")
        assert triggered == []

    def test_log_collects_element_rules(self):
        adblocker = self.make()
        document = parse_html("<body><div class='adblock-overlay'></div></body>")
        adblocker.hide_elements(document, "http://x.com/")
        assert len(adblocker.log.triggered_element_rules()) == 1


class TestBrowser:
    def snapshot(self):
        return PageSnapshot(
            url="http://news-site.com/",
            html="<body><div id='adblock-notice'>x</div></body>",
            subresources=[
                Subresource(url="http://cdn.news-site.com/app.js", resource_type="script"),
                Subresource(url="http://pagefair.com/measure.js", resource_type="script"),
            ],
            scripts=[Script(source="var x = 1;", url="http://cdn.news-site.com/app.js")],
        )

    def test_visit_records_har(self):
        result = Browser().visit(self.snapshot())
        urls = result.request_urls
        assert "http://news-site.com/" in urls
        assert "http://pagefair.com/measure.js" in urls
        assert len(result.har.entries) == 3

    def test_visit_with_adblocker_blocks(self):
        adblocker = Adblocker([parse_filter_list(ANTI_ADBLOCK_LIST)])
        result = Browser(adblocker=adblocker).visit(self.snapshot())
        assert result.blocked_urls == ["http://pagefair.com/measure.js"]
        assert "http://pagefair.com/measure.js" not in result.request_urls

    def test_visit_with_adblocker_hides_elements(self):
        adblocker = Adblocker([parse_filter_list(ANTI_ADBLOCK_LIST)])
        result = Browser(adblocker=adblocker).visit(self.snapshot())
        assert [rule.selector for rule in result.hidden_rules] == ["#adblock-notice"]

    def test_url_rewriter_applied(self):
        prefix = "http://web.archive.org/web/2016/"
        result = Browser(url_rewriter=lambda u: prefix + u).visit(self.snapshot())
        assert all(u.startswith(prefix) for u in result.request_urls)

    def test_rules_match_original_urls_under_rewriting(self):
        """Blocking decisions must see the un-rewritten URL (paper §4.2)."""
        adblocker = Adblocker([parse_filter_list(ANTI_ADBLOCK_LIST)])
        prefix = "http://web.archive.org/web/2016/"
        result = Browser(
            adblocker=adblocker, url_rewriter=lambda u: prefix + u
        ).visit(self.snapshot())
        assert result.blocked_urls == [prefix + "http://pagefair.com/measure.js"]
