"""Unit tests for URL utilities."""

from repro.web.url import (
    hostname,
    is_third_party,
    normalize_url,
    registered_domain,
    resource_type_from_url,
    split_url,
)


class TestSplitUrl:
    def test_full_url(self):
        parts = split_url("https://www.example.com:8443/a/b?x=1#frag")
        assert parts.scheme == "https"
        assert parts.host == "www.example.com"
        assert parts.port == 8443
        assert parts.path == "/a/b"
        assert parts.query == "x=1"
        assert parts.fragment == "frag"

    def test_geturl_roundtrip(self):
        url = "https://example.com/a?b=1#c"
        assert split_url(url).geturl() == url

    def test_no_path(self):
        parts = split_url("http://example.com")
        assert parts.path == "/"

    def test_scheme_relative(self):
        parts = split_url("//cdn.example.com/x.js")
        assert parts.host == "cdn.example.com"
        assert parts.scheme == "http"

    def test_host_lowercased(self):
        assert split_url("http://EXAMPLE.com/X").host == "example.com"
        assert split_url("http://EXAMPLE.com/X").path == "/X"


class TestRegisteredDomain:
    def test_simple(self):
        assert registered_domain("www.example.com") == "example.com"

    def test_deep_subdomain(self):
        assert registered_domain("a.b.c.example.com") == "example.com"

    def test_multi_label_suffix(self):
        assert registered_domain("news.bbc.co.uk") == "bbc.co.uk"

    def test_bare_domain_unchanged(self):
        assert registered_domain("example.com") == "example.com"

    def test_accepts_full_url(self):
        assert registered_domain("https://cdn.example.com/x.js") == "example.com"

    def test_ip_unchanged(self):
        assert registered_domain("192.168.1.1") == "192.168.1.1"


class TestThirdParty:
    def test_same_registered_domain_is_first_party(self):
        assert not is_third_party("http://cdn.example.com/x.js", "example.com")

    def test_cross_domain_is_third_party(self):
        assert is_third_party("http://pagefair.com/x.js", "example.com")

    def test_www_still_first_party(self):
        assert not is_third_party("http://www.example.com/x", "example.com")


class TestResourceType:
    def test_script(self):
        assert resource_type_from_url("http://x.com/a.js") == "script"

    def test_image(self):
        assert resource_type_from_url("http://x.com/a.png") == "image"

    def test_stylesheet(self):
        assert resource_type_from_url("http://x.com/style.css?v=1") == "stylesheet"

    def test_unknown_is_default(self):
        assert resource_type_from_url("http://x.com/api/data") == "other"


class TestNormalize:
    def test_scheme_relative_gets_scheme(self):
        assert normalize_url("//www.npttech.com/advertising.js") == (
            "http://www.npttech.com/advertising.js"
        )

    def test_absolute_untouched(self):
        assert normalize_url("https://a.com/x") == "https://a.com/x"
