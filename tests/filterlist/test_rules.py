"""Unit tests for filter-rule parsing and matching."""

import pytest

from repro.filterlist.rules import (
    DomainOption,
    ElementRule,
    NetworkRule,
    RuleParseError,
    domain_matches,
    parse_rule,
)


class TestDomainMatches:
    def test_exact(self):
        assert domain_matches("example.com", "example.com")

    def test_subdomain(self):
        assert domain_matches("ads.example.com", "example.com")

    def test_not_suffix_trick(self):
        assert not domain_matches("evilexample.com", "example.com")

    def test_case_insensitive(self):
        assert domain_matches("Example.COM", "example.com")

    def test_parent_does_not_match_child(self):
        assert not domain_matches("example.com", "ads.example.com")


class TestDomainOption:
    def test_parse_includes_and_excludes(self):
        option = DomainOption.parse("a.com|~b.com|c.org")
        assert option.include == ("a.com", "c.org")
        assert option.exclude == ("b.com",)

    def test_applies_to_included(self):
        option = DomainOption.parse("a.com")
        assert option.applies_to("a.com")
        assert option.applies_to("sub.a.com")
        assert not option.applies_to("b.com")

    def test_exclude_wins(self):
        option = DomainOption.parse("a.com|~special.a.com")
        assert option.applies_to("a.com")
        assert not option.applies_to("special.a.com")

    def test_only_excludes_matches_rest(self):
        option = DomainOption.parse("~a.com")
        assert option.applies_to("b.com")
        assert not option.applies_to("a.com")


class TestNetworkRuleParsing:
    def test_domain_anchor(self):
        rule = NetworkRule.parse("||example1.com")
        assert rule.anchor_domain
        assert rule.pattern == "example1.com"

    def test_paper_rule2_script_option(self):
        rule = NetworkRule.parse("||example1.com$script")
        assert rule.types == {"script"}

    def test_paper_rule3_script_and_domain(self):
        rule = NetworkRule.parse("||example1.com$script,domain=example2.com")
        assert rule.types == {"script"}
        assert rule.domains.include == ("example2.com",)

    def test_paper_rule4_path_rule(self):
        rule = NetworkRule.parse("/example.js$script,domain=example2.com")
        assert not rule.anchor_domain
        assert rule.pattern == "/example.js"

    def test_exception_rule(self):
        rule = NetworkRule.parse("@@||example.com$script")
        assert rule.is_exception

    def test_start_and_end_anchor(self):
        rule = NetworkRule.parse("|http://exact.example.com/|")
        assert rule.anchor_start and rule.anchor_end

    def test_third_party_options(self):
        assert NetworkRule.parse("||pagefair.com^$third-party").third_party is True
        assert NetworkRule.parse("||x.com^$~third-party").third_party is False

    def test_negated_type(self):
        rule = NetworkRule.parse("||x.com^$~image")
        assert rule.negated_types == {"image"}

    def test_unknown_option_raises(self):
        with pytest.raises(RuleParseError):
            NetworkRule.parse("||x.com$bogusoption")

    def test_dollar_in_pattern_not_options(self):
        rule = NetworkRule.parse("/path/page$")
        assert rule.pattern == "/path/page$"
        assert not rule.types


class TestNetworkRuleMatching:
    def test_domain_anchor_matches_host_and_subdomain(self):
        rule = NetworkRule.parse("||example.com^")
        assert rule.matches("http://example.com/ads.js")
        assert rule.matches("https://cdn.example.com/x")
        assert not rule.matches("http://notexample.com/")
        assert not rule.matches("http://example.com.evil.net/x")

    def test_domain_anchor_no_mid_host_match(self):
        rule = NetworkRule.parse("||ample.com^")
        assert not rule.matches("http://example.com/")

    def test_substring_rule(self):
        rule = NetworkRule.parse("/ads.js?")
        assert rule.matches("http://site.com/static/ads.js?v=1")
        assert not rule.matches("http://site.com/static/ads.json")

    def test_wildcard(self):
        rule = NetworkRule.parse("||cdn.com/*/advert-")
        assert rule.matches("http://cdn.com/v2/advert-banner.js")
        assert not rule.matches("http://cdn.com/advert.js")

    def test_separator_caret(self):
        rule = NetworkRule.parse("||example.com^")
        assert rule.matches("http://example.com/")
        assert rule.matches("http://example.com:8000/")
        assert rule.matches("http://example.com")  # ^ matches end of URL

    def test_end_anchor(self):
        rule = NetworkRule.parse("/advertising.js|")
        assert rule.matches("http://www.npttech.com/advertising.js")
        assert not rule.matches("http://www.npttech.com/advertising.js?x=1")

    def test_resource_type_filtering(self):
        rule = NetworkRule.parse("||example.com^$script")
        assert rule.matches("http://example.com/a.js", resource_type="script")
        assert not rule.matches("http://example.com/a.js", resource_type="image")

    def test_domain_tag_filtering(self):
        rule = NetworkRule.parse("||bait.com^$domain=news.com")
        assert rule.matches("http://bait.com/x", page_domain="news.com")
        assert rule.matches("http://bait.com/x", page_domain="www.news.com")
        assert not rule.matches("http://bait.com/x", page_domain="other.com")

    def test_third_party_filtering(self):
        rule = NetworkRule.parse("||pagefair.com^$third-party")
        assert rule.matches("http://pagefair.com/js", third_party=True)
        assert not rule.matches("http://pagefair.com/js", third_party=False)

    def test_case_insensitive_matching(self):
        rule = NetworkRule.parse("/AdBlock-Detect.js")
        assert rule.matches("http://x.com/adblock-detect.js")

    def test_regex_rule(self):
        rule = NetworkRule.parse(r"/banner[0-9]+\.gif/")
        assert rule.is_regex
        assert rule.matches("http://x.com/banner42.gif")
        assert not rule.matches("http://x.com/banner.gif")


class TestTaxonomyHelpers:
    def test_anchor_domain_name(self):
        assert NetworkRule.parse("||pagefair.com^$third-party").anchor_domain_name() == "pagefair.com"
        assert NetworkRule.parse("/ads.js?").anchor_domain_name() is None

    def test_targeted_domains_anchor_plus_tag(self):
        rule = NetworkRule.parse("||pagefair.com/js$domain=mlg.com")
        assert rule.targeted_domains() == ["pagefair.com", "mlg.com"]

    def test_targeted_domains_dedup(self):
        rule = NetworkRule.parse("||a.com^$domain=a.com")
        assert rule.targeted_domains() == ["a.com"]


class TestElementRule:
    def test_paper_rule1_id_on_domain(self):
        rule = ElementRule.parse("example.com###examplebanner")
        assert rule.include_domains == ("example.com",)
        assert rule.selector == "#examplebanner"

    def test_paper_rule2_class(self):
        rule = ElementRule.parse("example.com##.examplebanner")
        assert rule.selector == ".examplebanner"

    def test_paper_rule3_generic(self):
        rule = ElementRule.parse("###examplebanner")
        assert rule.include_domains == ()
        assert not rule.has_domain

    def test_exception_element_rule(self):
        rule = ElementRule.parse("example.com#@##elementbanner")
        assert rule.is_exception

    def test_multiple_domains(self):
        rule = ElementRule.parse("a.com,b.com,~c.a.com##.overlay")
        assert rule.include_domains == ("a.com", "b.com")
        assert rule.exclude_domains == ("c.a.com",)

    def test_applies_to(self):
        rule = ElementRule.parse("a.com,~sub.a.com##.x")
        assert rule.applies_to("a.com")
        assert not rule.applies_to("sub.a.com")
        assert not rule.applies_to("b.com")

    def test_generic_applies_everywhere(self):
        rule = ElementRule.parse("###notice")
        assert rule.applies_to("anything.com")

    def test_empty_selector_raises(self):
        with pytest.raises(RuleParseError):
            ElementRule.parse("example.com##")


class TestParseRuleDispatch:
    def test_dispatch_element(self):
        assert isinstance(parse_rule("smashboards.com###noticeMain"), ElementRule)

    def test_dispatch_network(self):
        assert isinstance(parse_rule("||pagefair.com^$third-party"), NetworkRule)

    def test_comment_rejected(self):
        with pytest.raises(RuleParseError):
            parse_rule("! comment line")

    def test_blank_rejected(self):
        with pytest.raises(RuleParseError):
            parse_rule("   ")
