"""Tests for the Figure 1 rule taxonomy and revision histories."""

from datetime import date

import pytest

from repro.filterlist.classify import (
    RuleType,
    classify_rule,
    count_rule_types,
    domains_by_exception_status,
    http_html_split,
    rule_type_percentages,
    targeted_domains,
)
from repro.filterlist.history import FilterListHistory, combine_histories
from repro.filterlist.rules import parse_rule


def rules(*lines):
    return [parse_rule(line) for line in lines]


class TestClassifyRule:
    def test_html_with_domain(self):
        assert classify_rule(parse_rule("a.com###x")) is RuleType.HTML_WITH_DOMAIN

    def test_html_without_domain(self):
        assert classify_rule(parse_rule("###x")) is RuleType.HTML_NO_DOMAIN

    def test_http_anchor(self):
        assert classify_rule(parse_rule("||a.com^")) is RuleType.HTTP_ANCHOR

    def test_http_tag(self):
        assert classify_rule(parse_rule("/x.js$domain=a.com")) is RuleType.HTTP_TAG

    def test_http_anchor_and_tag(self):
        rule = parse_rule("||a.com/x.js$domain=b.com")
        assert classify_rule(rule) is RuleType.HTTP_ANCHOR_AND_TAG

    def test_http_plain(self):
        assert classify_rule(parse_rule("/ads.js?")) is RuleType.HTTP_NO_ANCHOR_NO_TAG

    def test_exception_does_not_change_type(self):
        assert classify_rule(parse_rule("@@||a.com^")) is RuleType.HTTP_ANCHOR


class TestCounts:
    SAMPLE = rules(
        "||a.com^",
        "||b.com^$domain=c.com",
        "/x.$domain=d.com",
        "/generic.js",
        "e.com###id",
        "###generic",
    )

    def test_count_rule_types_covers_all_categories(self):
        counts = count_rule_types(self.SAMPLE)
        assert sum(counts.values()) == 6
        assert all(count == 1 for count in counts.values())

    def test_percentages_sum_to_100(self):
        percentages = rule_type_percentages(self.SAMPLE)
        assert abs(sum(percentages.values()) - 100.0) < 1e-9

    def test_percentages_empty(self):
        assert all(v == 0.0 for v in rule_type_percentages([]).values())

    def test_http_html_split(self):
        split = http_html_split(self.SAMPLE)
        assert split["http"] == pytest.approx(4 / 6 * 100)
        assert split["html"] == pytest.approx(2 / 6 * 100)

    def test_targeted_domains_order_and_dedup(self):
        domains = targeted_domains(
            rules("||a.com^", "||b.com^$domain=a.com", "c.com###x")
        )
        assert domains == ["a.com", "b.com", "c.com"]

    def test_exception_status_partition(self):
        split = domains_by_exception_status(
            rules("||a.com^", "@@||b.com^", "@@||a.com/x.js")
        )
        assert split["non_exception"] == {"a.com"}
        assert split["exception"] == {"b.com", "a.com"}


class TestHistory:
    def make_history(self):
        history = FilterListHistory("test")
        history.add_revision(date(2014, 1, 1), "||a.com^\n")
        history.add_revision(date(2014, 2, 1), "||a.com^\n||b.com^\nc.com###x\n")
        history.add_revision(date(2014, 3, 1), "||a.com^\n||b.com^\nc.com###x\n||d.com^\n")
        return history

    def test_version_at(self):
        history = self.make_history()
        assert len(history.version_at(date(2014, 2, 15)).rules) == 3
        assert history.version_at(date(2013, 12, 1)) is None
        assert history.version_at(date(2020, 1, 1)).date == date(2014, 3, 1)

    def test_revisions_sorted_regardless_of_insert_order(self):
        history = FilterListHistory("t")
        history.add_revision(date(2015, 1, 1), "||b.com^\n")
        history.add_revision(date(2014, 1, 1), "||a.com^\n")
        assert [revision.date for revision in history] == [
            date(2014, 1, 1),
            date(2015, 1, 1),
        ]

    def test_delta(self):
        history = self.make_history()
        delta = history.delta(1)
        assert set(delta.added) == {"||b.com^", "c.com###x"}
        assert delta.removed == []

    def test_churn_rates(self):
        history = self.make_history()
        assert history.average_churn_per_revision() == 1.5  # (2 + 1) / 2
        days = (date(2014, 3, 1) - date(2014, 1, 1)).days
        assert history.average_churn_per_day() == 3 / days

    def test_domain_first_appearance(self):
        history = self.make_history()
        first = history.domain_first_appearance()
        assert first["a.com"] == date(2014, 1, 1)
        assert first["b.com"] == date(2014, 2, 1)
        assert first["c.com"] == date(2014, 2, 1)
        assert first["d.com"] == date(2014, 3, 1)

    def test_rule_type_series(self):
        history = self.make_history()
        series = history.rule_type_series()
        assert len(series) == 3
        final_date, final_counts = series[-1]
        assert final_date == date(2014, 3, 1)
        assert sum(final_counts.values()) == 4

    def test_targeted_domains_latest(self):
        assert self.make_history().targeted_domains_latest() == [
            "a.com",
            "b.com",
            "c.com",
            "d.com",
        ]


class TestCombineHistories:
    def test_combined_easylist_semantics(self):
        easylist = FilterListHistory("easylist")
        easylist.add_revision(date(2011, 5, 1), "||a.com^\n")
        easylist.add_revision(date(2014, 1, 1), "||a.com^\n||b.com^\n")
        awrl = FilterListHistory("awrl")
        awrl.add_revision(date(2013, 12, 1), "w.com###warning\n")
        combined = combine_histories("combined", easylist, awrl)
        # Dates: union of both histories' revision dates.
        assert [revision.date for revision in combined] == [
            date(2011, 5, 1),
            date(2013, 12, 1),
            date(2014, 1, 1),
        ]
        # Before AWRL exists, the combined list is EasyList alone.
        assert len(combined.version_at(date(2012, 1, 1)).rules) == 1
        # Afterwards both contribute.
        assert len(combined.version_at(date(2014, 6, 1)).rules) == 3
