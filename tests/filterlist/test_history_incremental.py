"""Tests for the incremental §3 history engine.

Covers the parsed-rule cache (interning, bounding, counters), lazy
delta-backed revisions, the streaming fold vs the full-scan reference,
memo invalidation, and the churn edge-case fixes.
"""

from datetime import date

import pytest

from repro.filterlist.history import FilterListHistory, Revision, RevisionDelta
from repro.filterlist.parser import (
    ParsedRuleCache,
    get_history_counters,
    get_rule_cache,
    parse_filter_list,
    set_rule_cache,
)
from repro.filterlist.rules import RuleParseError


@pytest.fixture(autouse=True)
def fresh_cache():
    """Each test sees its own unbounded-enough parsed-rule cache."""
    previous = set_rule_cache(ParsedRuleCache(capacity=4096))
    yield get_rule_cache()
    set_rule_cache(previous)


def history_from(revisions):
    history = FilterListHistory("test")
    for when, payload in revisions:
        history.add_revision(when, payload)
    return history


class TestParsedRuleCache:
    def test_each_distinct_line_parsed_once(self, fresh_cache):
        parse_filter_list("||a.com^\n##.x\n")
        parse_filter_list("||a.com^\n##.x\n||b.com^\n")
        assert fresh_cache.misses == 3
        assert fresh_cache.hits == 2

    def test_identical_lines_share_one_rule_object(self, fresh_cache):
        first = parse_filter_list("||a.com^\n")
        second = parse_filter_list("||a.com^\n")
        assert first.rules[0].rule is second.rules[0].rule

    def test_capacity_bounds_the_cache(self):
        cache = ParsedRuleCache(capacity=2)
        for index in range(5):
            cache.lookup(f"||site{index}.com^")
        assert len(cache) == 2

    def test_lru_eviction_keeps_recently_used(self):
        cache = ParsedRuleCache(capacity=2)
        cache.lookup("||a.com^")
        cache.lookup("||b.com^")
        cache.lookup("||a.com^")  # refresh a
        cache.lookup("||c.com^")  # evicts b
        misses = cache.misses
        cache.lookup("||a.com^")
        assert cache.misses == misses  # still cached
        cache.lookup("||b.com^")
        assert cache.misses == misses + 1  # was evicted

    def test_unparseable_lines_cached_as_errors(self, fresh_cache):
        first = parse_filter_list("||a.com^\n##\n")
        second = parse_filter_list("##\n")
        assert fresh_cache.misses == 2  # the bad line parsed once
        assert len(first.errors) == 1 and len(second.errors) == 1
        assert first.errors[0].startswith("line 2:")
        assert second.errors[0].startswith("line 1:")

    def test_strict_mode_still_raises_on_cached_error(self):
        parse_filter_list("##\n")  # caches the parse error
        with pytest.raises(RuleParseError):
            parse_filter_list("##\n", strict=True)

    def test_uncached_path_bypasses_the_cache(self, fresh_cache):
        parse_filter_list("||a.com^\n", cache=False)
        assert fresh_cache.hits == 0 and fresh_cache.misses == 0

    def test_counters_flow_into_history_counters(self):
        before = get_history_counters().snapshot()
        parse_filter_list("||a.com^\n||a.com^\n")
        delta = get_history_counters().since(before)
        assert delta.lines_parsed == 1
        assert delta.cache_hits == 1


class TestDeltaRevisions:
    def test_delta_revision_materializes_lazily(self):
        history = history_from([(date(2014, 1, 1), "||a.com^\n##.x\n")])
        revision = history.add_revision(
            date(2014, 2, 1), RevisionDelta(added=["||b.com^"], removed=["##.x"])
        )
        assert revision._filter_list is None  # still a delta
        assert revision.rule_lines() == ["||a.com^", "||b.com^"]
        assert revision._filter_list is not None  # now cached

    def test_delta_chain_materializes_through_intermediates(self):
        history = history_from([(date(2014, 1, 1), "||a.com^\n")])
        history.add_revision(date(2014, 2, 1), RevisionDelta(added=["||b.com^"]))
        history.add_revision(date(2014, 3, 1), RevisionDelta(added=["||c.com^"]))
        last = history.add_revision(
            date(2014, 4, 1), RevisionDelta(removed=["||a.com^"])
        )
        assert last.rule_lines() == ["||b.com^", "||c.com^"]
        # the walk cached every intermediate revision too
        assert history[1]._filter_list is not None
        assert history[2].rule_lines() == ["||a.com^", "||b.com^", "||c.com^"]

    def test_removed_drops_all_occurrences(self):
        history = history_from([(date(2014, 1, 1), "||a.com^\n||b.com^\n||a.com^\n")])
        revision = history.add_revision(
            date(2014, 2, 1), RevisionDelta(removed=["||a.com^"])
        )
        assert revision.rule_lines() == ["||b.com^"]

    def test_unparseable_added_lines_become_errors(self):
        history = history_from([(date(2014, 1, 1), "||a.com^\n")])
        revision = history.add_revision(
            date(2014, 2, 1), RevisionDelta(added=["##", "||b.com^"])
        )
        assert revision.rule_lines() == ["||a.com^", "||b.com^"]
        assert len(revision.filter_list.errors) == 1

    def test_delta_into_empty_history_rejected(self):
        history = FilterListHistory("empty")
        with pytest.raises(ValueError):
            history.add_revision(date(2014, 1, 1), RevisionDelta(added=["||a.com^"]))

    def test_delta_predating_latest_rejected(self):
        history = history_from([(date(2014, 5, 1), "||a.com^\n")])
        with pytest.raises(ValueError):
            history.add_revision(date(2014, 1, 1), RevisionDelta(added=["||b.com^"]))

    def test_revision_constructor_needs_exactly_one_source(self):
        with pytest.raises(ValueError):
            Revision(date(2014, 1, 1))
        with pytest.raises(ValueError):
            Revision(date(2014, 1, 1), delta=RevisionDelta())

    def test_materialization_counted(self):
        history = history_from([(date(2014, 1, 1), "||a.com^\n")])
        history.add_revision(date(2014, 2, 1), RevisionDelta(added=["||b.com^"]))
        before = get_history_counters().snapshot()
        history[1].rule_lines()
        assert get_history_counters().since(before).revisions_materialized == 1


class TestStreamingFold:
    def _mixed_history(self):
        history = history_from(
            [(date(2014, 1, 1), "||a.com^\n##.x\nb.com###y\n")]
        )
        history.add_revision(
            date(2014, 2, 1),
            RevisionDelta(added=["@@||c.com^$script"], removed=["##.x"]),
        )
        history.add_revision(
            date(2014, 3, 1),
            RevisionDelta(added=["/ads$domain=d.com", "##.x"], removed=[]),
        )
        return history

    def test_series_match_full_scan(self):
        history = self._mixed_history()
        assert history.rule_type_series() == history.rule_type_series_full_scan()
        assert history.total_rules_series() == history.total_rules_series_full_scan()
        assert (
            history.domain_first_appearance()
            == history.domain_first_appearance_full_scan()
        )

    def test_readded_line_keeps_earliest_first_appearance(self):
        history = self._mixed_history()
        # ##.x was removed in Feb and re-added in Mar; b.com###y stays put
        first = history.domain_first_appearance()
        assert first["b.com"] == date(2014, 1, 1)

    def test_fold_uses_stored_deltas(self):
        history = self._mixed_history()
        before = get_history_counters().snapshot()
        history.rule_type_series()
        delta = get_history_counters().since(before)
        assert delta.revisions_folded == 3
        assert delta.delta_folds == 2  # both delta-backed revisions

    def test_fold_memoized_until_next_revision(self):
        history = self._mixed_history()
        history.rule_type_series()
        before = get_history_counters().snapshot()
        history.rule_type_series()
        history.domain_first_appearance()
        assert get_history_counters().since(before).revisions_folded == 0
        history.add_revision(date(2014, 4, 1), RevisionDelta(added=["||e.com^"]))
        assert history.total_rules_series()[-1][1] == 6
        assert history.total_rules_series() == history.total_rules_series_full_scan()

    def test_series_return_fresh_copies(self):
        history = self._mixed_history()
        history.rule_type_series()[0][1].clear()
        assert history.rule_type_series() == history.rule_type_series_full_scan()
        history.domain_first_appearance().clear()
        assert history.domain_first_appearance() != {}

    def test_out_of_order_text_insert_falls_back_to_scan(self):
        history = self._mixed_history()
        # Bisect a full-text revision between the delta revisions: the last
        # delta's stored predecessor is no longer its sorted predecessor.
        history.add_revision(date(2014, 2, 15), "||z.com^\n")
        assert history.rule_type_series() == history.rule_type_series_full_scan()
        assert history.total_rules_series() == history.total_rules_series_full_scan()
        assert (
            history.domain_first_appearance()
            == history.domain_first_appearance_full_scan()
        )

    def test_fold_correct_under_tiny_cache(self):
        previous = set_rule_cache(ParsedRuleCache(capacity=2))
        try:
            history = self._mixed_history()
            assert history.rule_type_series() == history.rule_type_series_full_scan()
            assert (
                history.domain_first_appearance()
                == history.domain_first_appearance_full_scan()
            )
        finally:
            set_rule_cache(previous)

    def test_set_based_delta_still_matches(self):
        history = self._mixed_history()
        for index in range(1, len(history)):
            delta = history.delta(index)
            previous = set(history[index - 1].rule_lines())
            current = set(history[index].rule_lines())
            assert set(delta.added) == current - previous
            assert set(delta.removed) == previous - current


class TestChurnEdgeCases:
    def test_single_revision_churn_is_zero(self):
        history = history_from([(date(2014, 1, 1), "||a.com^\n")])
        assert history.average_churn_per_revision() == 0.0
        assert history.average_churn_per_day() == 0.0

    def test_same_day_revisions_attribute_churn_to_one_day(self):
        history = history_from(
            [
                (date(2014, 1, 1), "||a.com^\n"),
                (date(2014, 1, 1), "||a.com^\n||b.com^\n||c.com^\n"),
            ]
        )
        # zero-day span counts as one day instead of silently reporting 0
        assert history.average_churn_per_day() == 2.0
        assert history.average_churn_per_revision() == 2.0

    def test_multi_day_churn_unchanged(self):
        history = history_from(
            [
                (date(2014, 1, 1), "||a.com^\n"),
                (date(2014, 1, 11), "||a.com^\n||b.com^\n"),
            ]
        )
        assert history.average_churn_per_day() == pytest.approx(0.1)

    def test_churn_with_delta_revisions_matches_set_semantics(self):
        history = history_from([(date(2014, 1, 1), "||a.com^\n")])
        # duplicate add of an existing line is not "newly present"
        history.add_revision(
            date(2014, 1, 31), RevisionDelta(added=["||a.com^", "||b.com^"])
        )
        assert history.average_churn_per_revision() == 1.0
        assert history.average_churn_per_day() == pytest.approx(1 / 30)
