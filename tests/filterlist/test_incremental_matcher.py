"""Incremental matcher construction must agree with from-scratch builds.

The §4 replay derives revision N+1's matcher from revision N's via
``FilterListHistory.network_rule_delta`` + ``NetworkMatcher.apply_delta``.
These tests walk a synthetic history with adds, removes, and modifies and
assert the derived matcher equals a from-scratch build rule-for-rule and
answer-for-answer.
"""

from datetime import date

from repro.filterlist.history import FilterListHistory
from repro.filterlist.matcher import NetworkMatcher, index_token
from repro.filterlist.parser import parse_filter_list

#: A history exercising every delta shape: pure adds, a modify (one add +
#: one remove of the same pattern family), a pure remove, and exception
#: rules with options.
REVISIONS = [
    (
        date(2014, 1, 1),
        "||ads.example.com^\n/banner/*\n",
    ),
    (
        date(2014, 2, 1),
        "||ads.example.com^\n/banner/*\n||tracker.net^$third-party\n",
    ),
    (
        date(2014, 3, 1),
        # modify: /banner/* -> /banner/*$script ; add an exception rule
        "||ads.example.com^\n/banner/*$script\n||tracker.net^$third-party\n"
        "@@||cdn.example.com/allowed.js\n",
    ),
    (
        date(2014, 4, 1),
        # remove tracker.net; add a regex rule (rest bucket) and a
        # domain-scoped rule
        "||ads.example.com^\n/banner/*$script\n"
        "@@||cdn.example.com/allowed.js\n/adframe\\d+/\n"
        "||blocker-widget.com^$domain=news.example\n",
    ),
]

URLS = [
    ("http://ads.example.com/x.js", "example.com", "script", True),
    ("http://site.com/banner/top.png", "site.com", "image", False),
    ("http://site.com/banner/run.js", "site.com", "script", False),
    ("http://tracker.net/pixel.gif", "example.com", "image", True),
    ("http://cdn.example.com/allowed.js", "example.com", "script", True),
    ("http://host.io/adframe12/detect.js", "news.example", "script", True),
    ("http://blocker-widget.com/check.js", "news.example", "script", True),
    ("http://blocker-widget.com/check.js", "other.org", "script", True),
    ("http://plain.site/app.js", "plain.site", "script", False),
]


def build_history():
    history = FilterListHistory("synthetic")
    for when, text in REVISIONS:
        history.add_revision(when, text)
    return history


def rule_keys(matcher):
    return sorted(rule.raw for rule in matcher.rules())


def assert_same_answers(derived, scratch):
    for url, page_domain, resource_type, third_party in URLS:
        want = scratch.match(url, page_domain, resource_type, third_party)
        got = derived.match(url, page_domain, resource_type, third_party)
        assert got == want, f"match() diverged on {url}"
        want_first = scratch.first_match(url, page_domain, resource_type, third_party)
        got_first = derived.first_match(url, page_domain, resource_type, third_party)
        assert got_first == want_first, f"first_match() diverged on {url}"


class TestIncrementalConstruction:
    def test_chain_matches_from_scratch_every_revision(self):
        history = build_history()
        matcher = None
        for i, revision in enumerate(history.revisions):
            if matcher is None:
                matcher = NetworkMatcher(revision.filter_list.network_rules)
            else:
                added, removed = history.network_rule_delta(i)
                matcher = matcher.apply_delta(added, removed)
            scratch = NetworkMatcher(revision.filter_list.network_rules)
            assert len(matcher) == len(scratch)
            assert rule_keys(matcher) == rule_keys(scratch)
            assert_same_answers(matcher, scratch)

    def test_apply_delta_leaves_receiver_untouched(self):
        history = build_history()
        base = NetworkMatcher(history[0].filter_list.network_rules)
        before = rule_keys(base)
        added, removed = history.network_rule_delta(1)
        derived = base.apply_delta(added, removed)
        assert rule_keys(base) == before
        assert len(derived) == len(history[1].filter_list.network_rules)

    def test_index_token_is_deterministic_per_rule(self):
        parsed = parse_filter_list(
            "||ads.example.com^\n/banner/*$script\n/adframe\\d+/\n"
        )
        for rule in parsed.network_rules:
            assert index_token(rule) == index_token(rule)
        tokens = [index_token(rule) for rule in parsed.network_rules]
        # host rule indexes under its longest literal token; the regex rule
        # falls into the rest bucket.
        assert "example" in tokens
        assert None in tokens

    def test_copy_is_structurally_independent(self):
        history = build_history()
        base = NetworkMatcher(history[-1].filter_list.network_rules)
        clone = base.copy()
        victim = history[-1].filter_list.network_rules[0]
        assert clone.remove_rule(victim)
        assert len(clone) == len(base) - 1
        assert victim.raw in rule_keys(base)

    def test_remove_missing_rule_is_a_noop(self):
        history = build_history()
        base = NetworkMatcher(history[0].filter_list.network_rules)
        stranger = parse_filter_list("||nowhere.invalid^\n").network_rules[0]
        assert not base.remove_rule(stranger)
        assert len(base) == len(history[0].filter_list.network_rules)
