"""Tests for the CSS selector engine used by element-hiding rules."""

import pytest

from repro.filterlist.selectors import (
    SelectorParseError,
    parse_selector,
    parse_selector_group,
    select,
)
from repro.web.dom import parse_html

DOC = parse_html(
    """
<body>
  <div id="wrap" class="outer page">
    <div id="notice" class="adblock-overlay modal" data-kind="warning">
      <p class="msg">disable your adblocker</p>
    </div>
    <span class="msg standalone">hi</span>
  </div>
  <div class="adblock-overlay secondary"></div>
</body>
"""
)


def ids(elements):
    return sorted(e.attrs.get("id", e.attrs.get("class", "")) for e in elements)


class TestParsing:
    def test_id_selector(self):
        selector = parse_selector("#notice")
        assert selector.parts[0].id == "notice"

    def test_class_selector(self):
        selector = parse_selector(".adblock-overlay")
        assert selector.parts[0].classes == ["adblock-overlay"]

    def test_compound(self):
        selector = parse_selector("div#notice.modal")
        part = selector.parts[0]
        assert part.tag == "div" and part.id == "notice" and part.classes == ["modal"]

    def test_attribute_with_value(self):
        selector = parse_selector('[data-kind="warning"]')
        assert selector.parts[0].attributes == [("data-kind", "=", "warning")]

    def test_attribute_presence(self):
        selector = parse_selector("[data-kind]")
        assert selector.parts[0].attributes == [("data-kind", "present", "")]

    def test_descendant_chain(self):
        selector = parse_selector("#wrap .msg")
        assert len(selector.parts) == 2
        assert selector.combinators == [" "]

    def test_child_combinator(self):
        selector = parse_selector("#notice > .msg")
        assert selector.combinators == [">"]

    def test_group(self):
        group = parse_selector_group("#a, .b")
        assert len(group) == 2

    def test_empty_raises(self):
        with pytest.raises(SelectorParseError):
            parse_selector("  ")

    def test_dangling_combinator_raises(self):
        with pytest.raises(SelectorParseError):
            parse_selector("#a >")


class TestMatching:
    def test_select_by_id(self):
        found = select(DOC.root, "#notice")
        assert len(found) == 1
        assert found[0].attrs["id"] == "notice"

    def test_select_by_class_multiple(self):
        found = select(DOC.root, ".adblock-overlay")
        assert len(found) == 2

    def test_compound_narrows(self):
        found = select(DOC.root, "div.adblock-overlay.modal")
        assert len(found) == 1

    def test_tag_selector(self):
        assert len(select(DOC.root, "p")) == 1

    def test_universal(self):
        assert len(select(DOC.root, "*")) >= 6

    def test_attribute_match(self):
        found = select(DOC.root, '[data-kind="warning"]')
        assert ids(found) == ["notice"]

    def test_attribute_substring_ops(self):
        assert select(DOC.root, '[data-kind^="warn"]')
        assert select(DOC.root, '[data-kind$="ing"]')
        assert select(DOC.root, '[data-kind*="arni"]')
        assert not select(DOC.root, '[data-kind^="x"]')

    def test_descendant(self):
        found = select(DOC.root, "#wrap .msg")
        assert len(found) == 2

    def test_deep_descendant(self):
        found = select(DOC.root, "body .msg")
        assert len(found) == 2

    def test_child_only_direct(self):
        assert len(select(DOC.root, "#notice > .msg")) == 1
        assert len(select(DOC.root, "#wrap > p")) == 0

    def test_chain_of_three(self):
        found = select(DOC.root, "body #wrap #notice")
        assert len(found) == 1

    def test_no_match(self):
        assert select(DOC.root, "#absent") == []
