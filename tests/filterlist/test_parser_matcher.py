"""Tests for filter-list document parsing and the URL matching engine."""

from repro.filterlist.matcher import NetworkMatcher
from repro.filterlist.parser import parse_filter_list, serialize_filter_list
from repro.filterlist.rules import NetworkRule

SAMPLE_LIST = """[Adblock Plus 2.0]
! Title: Sample Anti-Adblock List
! Version: 201607010830
! comment line
||pagefair.com^$third-party
||blockadblock.com^
!-------------- General anti-adblock --------------!
/adblock-detect.
/ads.js?
@@||numerama.com/ads.js
!-------------- Anti-adblock warnings --------------!
smashboards.com###noticeMain
yocast.tv###notice
###adblock-overlay
example.com#@##whitelisted
"""


class TestListParsing:
    def test_counts(self):
        parsed = parse_filter_list(SAMPLE_LIST, name="sample")
        assert len(parsed.network_rules) == 5
        assert len(parsed.element_rules) == 4

    def test_metadata(self):
        parsed = parse_filter_list(SAMPLE_LIST)
        assert parsed.metadata["title"] == "Sample Anti-Adblock List"
        assert parsed.metadata["version"] == "201607010830"
        assert parsed.metadata["header"] == "Adblock Plus 2.0"

    def test_sections_tracked(self):
        parsed = parse_filter_list(SAMPLE_LIST)
        assert parsed.sections() == [
            "",
            "General anti-adblock",
            "Anti-adblock warnings",
        ]

    def test_section_filtering(self):
        parsed = parse_filter_list(SAMPLE_LIST)
        warnings = parsed.section_rules("warnings")
        assert len(warnings) == 4
        assert all("#" in parsed_rule.rule.raw for parsed_rule in warnings)

    def test_section_substring_match_is_case_insensitive(self):
        parsed = parse_filter_list(SAMPLE_LIST)
        assert len(parsed.section_rules("ANTI-ADBLOCK")) == 7

    def test_bad_lines_collected_not_raised(self):
        parsed = parse_filter_list("||ok.com^\n||bad.com$nonsenseopt\n")
        assert len(parsed) == 1
        assert len(parsed.errors) == 1

    def test_roundtrip_serialization(self):
        parsed = parse_filter_list(SAMPLE_LIST, name="sample")
        text = serialize_filter_list(parsed)
        reparsed = parse_filter_list(text)
        assert reparsed.rule_lines() == parsed.rule_lines()
        assert reparsed.sections() == parsed.sections()


class TestNetworkMatcher:
    def make_matcher(self):
        parsed = parse_filter_list(SAMPLE_LIST)
        return NetworkMatcher(parsed.network_rules)

    def test_blocks_anchor_rule(self):
        matcher = self.make_matcher()
        result = matcher.match("http://blockadblock.com/check.js")
        assert result.blocked
        assert result.rule.raw == "||blockadblock.com^"

    def test_third_party_rule_needs_flag(self):
        matcher = self.make_matcher()
        assert matcher.match("http://pagefair.com/a.js", third_party=True).blocked
        assert not matcher.match("http://pagefair.com/a.js", third_party=False).blocked

    def test_exception_overrides_block(self):
        matcher = self.make_matcher()
        result = matcher.match("http://numerama.com/ads.js?v=2")
        assert not result.blocked
        assert result.exception is not None

    def test_exception_only_on_listed_site(self):
        matcher = self.make_matcher()
        assert matcher.match("http://other.com/ads.js?x").blocked

    def test_first_match_includes_exceptions(self):
        matcher = self.make_matcher()
        rule = matcher.first_match("http://numerama.com/ads.js?v=2")
        assert rule is not None

    def test_no_match(self):
        matcher = self.make_matcher()
        assert matcher.first_match("http://plain-site.org/app.js") is None
        assert not matcher.match("http://plain-site.org/app.js").blocked

    def test_tokenless_rules_still_match(self):
        # A rule whose pattern has no 3+ char literal token.
        matcher = NetworkMatcher([NetworkRule.parse("/a?*")])
        assert matcher.match("http://x.com/a?b=1").blocked

    def test_len(self):
        assert len(self.make_matcher()) == 5

    def test_many_rules_index_correctness(self):
        rules = [NetworkRule.parse(f"||site{i}.com^") for i in range(500)]
        matcher = NetworkMatcher(rules)
        assert matcher.match("http://site250.com/x").blocked
        assert not matcher.match("http://site999.com/x").blocked
