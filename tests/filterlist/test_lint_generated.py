"""Characterisation: linting the *generated* filter lists.

Real crowdsourced lists carry dead weight, and whether a rule is dead
depends on context: the Combined EasyList's bait-whitelisting ``@@`` rules
override *full* EasyList ad-blocking rules, so they look dead when the
anti-adblock sections are analysed in isolation (which is precisely the
§3.3 caveat — "the behavior of individual filter rules is dependent on
other rules in the filter list").
"""

import pytest

from repro.filterlist.lint import lint_rules
from repro.synthesis.listgen import FilterListGenerator
from repro.synthesis.world import SyntheticWorld, WorldConfig


@pytest.fixture(scope="module")
def generator():
    return FilterListGenerator(SyntheticWorld(WorldConfig(n_sites=200, live_top=400)))


class TestGeneratedListHygiene:
    def test_no_duplicates_in_generated_lists(self, generator):
        for history in (generator.generate_aak(), generator.generate_full_easylist()):
            report = lint_rules(history.latest().rules)
            assert report.of_kind("duplicate") == []

    def test_exceptions_gain_life_with_full_context(self, generator):
        """Some anti-adblock exceptions are only alive against the full
        EasyList (its generic ad rules are what they override)."""
        anti = generator.generate_easylist_antiadblock().latest().rules
        full = generator.generate_full_easylist().latest().rules
        dead_isolated = len(lint_rules(anti).of_kind("dead-exception"))
        dead_full = len(lint_rules(full).of_kind("dead-exception"))
        assert dead_full <= dead_isolated

    def test_bait_exceptions_alive_in_full_list(self, generator):
        """The numerama-pattern generic bait exceptions specifically."""
        full = generator.generate_full_easylist().latest().rules
        report = lint_rules(full)
        dead_raws = {finding.rule.raw for finding in report.of_kind("dead-exception")}
        assert "@@/ads.js|$script" not in dead_raws
        assert "@@/advertising.js|$script" not in dead_raws

    def test_broad_vendor_rules_not_shadowed(self, generator):
        aak = generator.generate_aak().latest().rules
        report = lint_rules(aak)
        shadowed_raws = {finding.rule.raw for finding in report.of_kind("shadowed")}
        assert "||pagefair.com^$third-party" not in shadowed_raws
