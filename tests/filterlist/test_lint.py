"""Tests for the filter-list linter."""

import pytest

from repro.filterlist.lint import (
    deduplicate_against,
    lint_rules,
    probe_urls,
    shadows,
)
from repro.filterlist.rules import NetworkRule, parse_rule


def rule(text):
    return NetworkRule.parse(text)


class TestProbeUrls:
    def test_anchor_rule_probe_matches_itself(self):
        r = rule("||pagefair.com/measure.js")
        assert all(r.matches(url) for url in probe_urls(r))

    def test_substring_rule_probe_matches_itself(self):
        r = rule("/adblock-detect.")
        probes = probe_urls(r)
        assert any(r.matches(url) for url in probes)

    def test_wildcard_filled(self):
        r = rule("||cdn.com/*/ads.js")
        assert all("x" in url for url in probe_urls(r))


class TestShadows:
    def test_broad_anchor_shadows_path(self):
        broad = rule("||pagefair.com^")
        narrow = rule("||pagefair.com/measure.js")
        assert shadows(broad, narrow)
        assert not shadows(narrow, broad)

    def test_subdomain_shadowed_by_parent(self):
        broad = rule("||example.com^")
        narrow = rule("||cdn.example.com/x.js")
        assert shadows(broad, narrow)

    def test_unrelated_not_shadowed(self):
        assert not shadows(rule("||a.com^"), rule("||b.com^"))

    def test_polarity_mismatch_never_shadows(self):
        assert not shadows(rule("||a.com^"), rule("@@||a.com/x.js"))

    def test_exception_shadowing_exception(self):
        assert shadows(rule("@@||a.com^"), rule("@@||a.com/ads.js"))

    def test_type_constrained_broad_does_not_shadow_untyped(self):
        broad = rule("||a.com^$script")
        narrow = rule("||a.com/x.png")
        assert not shadows(broad, narrow)

    def test_type_constrained_narrow_is_shadowed_by_same_type(self):
        broad = rule("||a.com^$script")
        narrow = rule("||a.com/x.js$script")
        assert shadows(broad, narrow)

    def test_domain_tagged_broad_does_not_shadow_global(self):
        broad = rule("||a.com^$domain=one.com")
        narrow = rule("||a.com/x.js")
        assert not shadows(broad, narrow)

    def test_third_party_mismatch(self):
        broad = rule("||a.com^$third-party")
        narrow = rule("||a.com/x.js")
        assert not shadows(broad, narrow)

    def test_identical_raw_not_self_shadowing(self):
        assert not shadows(rule("||a.com^"), rule("||a.com^"))


class TestLintRules:
    def test_duplicates_found(self):
        report = lint_rules([rule("||a.com^"), rule("||a.com^")])
        assert len(report.of_kind("duplicate")) == 1

    def test_shadowed_found(self):
        report = lint_rules([rule("||v.com^"), rule("||v.com/detect.js")])
        shadowed = report.of_kind("shadowed")
        assert len(shadowed) == 1
        assert shadowed[0].rule.raw == "||v.com/detect.js"

    def test_dead_exception_found(self):
        report = lint_rules([rule("@@||site.com/never-blocked.js")])
        assert len(report.of_kind("dead-exception")) == 1

    def test_live_exception_not_flagged(self):
        report = lint_rules(
            [rule("/ads.js?"), rule("@@||site.com/ads.js?v=1")]
        )
        assert report.of_kind("dead-exception") == []

    def test_clean_list(self):
        report = lint_rules(
            [rule("||a.com^"), rule("||b.com^$third-party"), parse_rule("c.com###x")]
        )
        assert len(report) == 0

    def test_describe(self):
        report = lint_rules([rule("||v.com^"), rule("||v.com/x.js")])
        text = report.findings[0].describe()
        assert "shadowed" in text and "||v.com^" in text

    def test_element_rules_pass_through(self):
        report = lint_rules([parse_rule("a.com###x"), parse_rule("a.com###x")])
        assert len(report.of_kind("duplicate")) == 1


class TestDeduplicateAgainst:
    def test_exact_duplicate_dropped(self):
        kept, dropped = deduplicate_against(
            [rule("||v.com^$third-party")], [rule("||v.com^$third-party")]
        )
        assert kept == []
        assert dropped[0].kind == "duplicate"

    def test_shadowed_candidate_dropped(self):
        kept, dropped = deduplicate_against(
            [rule("||pagefair.com/static/measure.js")],
            [rule("||pagefair.com^")],
        )
        assert kept == []
        assert dropped[0].kind == "shadowed"
        assert dropped[0].by.raw == "||pagefair.com^"

    def test_novel_candidate_kept(self):
        kept, dropped = deduplicate_against(
            [rule("||newvendor.net^$third-party")], [rule("||old.com^")]
        )
        assert len(kept) == 1
        assert dropped == []

    def test_ml_workflow_integration(self):
        """Candidates from rulegen deduplicate against an existing list."""
        from repro.core.rulegen import DetectedScript, RuleGenerator

        detections = [
            DetectedScript(url="http://pagefair.com/measure.js", page_domain=f"s{i}.com")
            for i in range(4)
        ] + [DetectedScript(url="http://fresh.net/d.js", page_domain=f"s{i}.com") for i in range(4)]
        generated = RuleGenerator(vendor_threshold=3).generate(detections)
        kept, dropped = deduplicate_against(
            generated.rules, [rule("||pagefair.com^$third-party")]
        )
        raws = {r.raw for r in kept}
        assert "||fresh.net^$third-party" in raws
        assert all("pagefair" not in r for r in raws)
        assert any("pagefair" in f.rule.raw for f in dropped)
