"""Property-based tests (hypothesis) on core data structures and invariants."""

import json
import string

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chi2 import chi_square_scores
from repro.core.vectorize import Vectorizer
from repro.analysis.comparison import cdf
from repro.filterlist.matcher import NetworkMatcher
from repro.filterlist.rules import NetworkRule, domain_matches
from repro.jsast.tokenizer import tokenize
from repro.wayback.rewrite import parse_timestamp, format_timestamp, truncate_wayback, wayback_url
from repro.web.har import HarFile
from repro.web.http import Exchange, Request, Response
from repro.web.url import is_third_party, registered_domain, split_url

# -- strategies -------------------------------------------------------------

label = st.text(alphabet=string.ascii_lowercase + string.digits, min_size=1, max_size=8).filter(
    lambda s: not s[0].isdigit() and not s.endswith("-")
)
domain = st.builds(lambda a, b: f"{a}.{b}", label, st.sampled_from(["com", "net", "org", "io", "tv"]))
subdomain = st.builds(lambda sub, dom: f"{sub}.{dom}", label, domain)
path_segment = st.text(alphabet=string.ascii_lowercase + string.digits, min_size=1, max_size=6)
url = st.builds(
    lambda dom, segments, ext: f"http://{dom}/" + "/".join(segments) + ext,
    st.one_of(domain, subdomain),
    st.lists(path_segment, min_size=0, max_size=3),
    st.sampled_from(["", ".js", ".css", ".png", ".html"]),
)

dates = st.dates(min_value=__import__("datetime").date(2000, 1, 2), max_value=__import__("datetime").date(2030, 12, 31))


# -- tokenizer ----------------------------------------------------------------


class TestTokenizerProperties:
    @given(st.text(alphabet=string.printable, max_size=40))
    @settings(max_examples=150)
    def test_string_literal_roundtrip(self, text):
        escaped = (
            text.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
            .replace("\r", "\\r")
            .replace(" ", "\\u2028")
            .replace(" ", "\\u2029")
        )
        token = tokenize(f'"{escaped}"')[0]
        assert token.kind == "string"
        assert token.value == text.replace("\x0b", "\x0b").replace("\x0c", "\x0c")

    @given(st.floats(min_value=0, max_value=1e15, allow_nan=False))
    @settings(max_examples=100)
    def test_number_roundtrip(self, value):
        token = tokenize(repr(value))[0]
        assert token.kind == "number"
        assert token.value == float(repr(value))

    @given(st.lists(st.sampled_from(["var", "x", "42", "+", "(", ")", ";", "'s'"]), max_size=15))
    @settings(max_examples=100)
    def test_token_concatenation_never_crashes(self, pieces):
        source = " ".join(pieces)
        tokens = tokenize(source)
        assert tokens[-1].kind == "eof"


# -- URLs ------------------------------------------------------------------------


class TestUrlProperties:
    @given(url)
    @settings(max_examples=200)
    def test_registered_domain_idempotent(self, value):
        once = registered_domain(value)
        assert registered_domain(once) == once

    @given(url)
    @settings(max_examples=200)
    def test_own_domain_never_third_party(self, value):
        assert not is_third_party(value, registered_domain(value))

    @given(url)
    @settings(max_examples=200)
    def test_split_host_is_lowercase_and_in_url(self, value):
        parts = split_url(value)
        assert parts.host == parts.host.lower()
        assert parts.host in value

    @given(st.one_of(domain, subdomain))
    @settings(max_examples=100)
    def test_domain_matches_reflexive(self, value):
        assert domain_matches(value, value)

    @given(label, domain)
    @settings(max_examples=100)
    def test_subdomain_matches_parent(self, sub, parent):
        assert domain_matches(f"{sub}.{parent}", parent)


# -- wayback rewriting ------------------------------------------------------------


class TestWaybackProperties:
    @given(url, dates)
    @settings(max_examples=200)
    def test_truncate_inverts_rewrite(self, original, when):
        assert truncate_wayback(wayback_url(original, when)) == original

    @given(dates)
    @settings(max_examples=100)
    def test_timestamp_roundtrip(self, when):
        assert parse_timestamp(format_timestamp(when)) == when


# -- filter rules ---------------------------------------------------------------


class TestFilterRuleProperties:
    @given(domain, st.lists(path_segment, min_size=0, max_size=2))
    @settings(max_examples=150)
    def test_domain_anchor_matches_own_site(self, dom, segments):
        rule = NetworkRule.parse(f"||{dom}^")
        target = f"http://{dom}/" + "/".join(segments)
        assert rule.matches(target)

    @given(domain, domain)
    @settings(max_examples=150)
    def test_exception_always_dominates(self, dom_a, dom_b):
        rules = [
            NetworkRule.parse(f"||{dom_a}^"),
            NetworkRule.parse(f"@@||{dom_a}^"),
            NetworkRule.parse(f"||{dom_b}^"),
        ]
        matcher = NetworkMatcher(rules)
        assert not matcher.match(f"http://{dom_a}/x.js").blocked

    @given(st.lists(domain, min_size=1, max_size=20, unique=True), url)
    @settings(max_examples=100)
    def test_matcher_agrees_with_bruteforce(self, rule_domains, target):
        rules = [NetworkRule.parse(f"||{d}^") for d in rule_domains]
        matcher = NetworkMatcher(rules)
        brute = any(rule.matches(target) for rule in rules)
        assert bool(matcher.match(target).blocked) == brute


# -- HAR ---------------------------------------------------------------------------


class TestHarProperties:
    @given(st.lists(url, min_size=0, max_size=8), st.lists(st.integers(0, 5000), min_size=8, max_size=8))
    @settings(max_examples=100)
    def test_json_roundtrip_preserves_urls_and_sizes(self, urls, sizes):
        har = HarFile(page_url="http://page.com/")
        for target, size in zip(urls, sizes):
            har.add(Exchange(request=Request(url=target), response=Response(body="y" * size)))
        restored = HarFile.from_json(har.to_json())
        assert restored.request_urls() == har.request_urls()
        assert restored.total_size == har.total_size
        json.loads(har.to_json())  # valid JSON

    @given(st.lists(url, min_size=0, max_size=6), st.lists(url, min_size=0, max_size=6))
    @settings(max_examples=100)
    def test_merge_is_union(self, urls_a, urls_b):
        har_a = HarFile(page_url="http://p.com/")
        har_b = HarFile(page_url="http://p.com/")
        for target in urls_a:
            har_a.add(Exchange(request=Request(url=target), response=Response()))
        for target in urls_b:
            har_b.add(Exchange(request=Request(url=target), response=Response()))
        merged = har_a.merge(har_b)
        seen = set()
        expected = [u for u in urls_a + urls_b if not (u in seen or seen.add(u))]
        assert merged.request_urls() == expected


# -- ML primitives ----------------------------------------------------------------


class TestMlProperties:
    @given(
        st.integers(min_value=4, max_value=30),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=60)
    def test_chi2_nonnegative_and_bounded(self, n, m, seed):
        rng = np.random.default_rng(seed)
        X = rng.integers(0, 2, size=(n, m))
        y = rng.integers(0, 2, size=n)
        scores = chi_square_scores(X, y)
        assert (scores >= -1e-12).all()
        assert (scores <= n + 1e-9).all()

    @given(
        st.lists(
            st.sets(st.sampled_from(["a", "b", "c", "d", "e", "f"]), max_size=6),
            min_size=4,
            max_size=30,
        ),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=60)
    def test_vectorizer_output_binary_and_stable(self, feature_sets, seed):
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 2, size=len(feature_sets))
        vectorizer = Vectorizer(top_k=None)
        X = vectorizer.fit_transform(feature_sets, labels)
        assert set(np.unique(X)) <= {0, 1}
        assert np.array_equal(vectorizer.transform(feature_sets), X)

    @given(st.lists(st.integers(-2000, 2000), max_size=50))
    @settings(max_examples=100)
    def test_cdf_monotone_and_bounded(self, values):
        points = cdf(values)
        probabilities = [p for _, p in points]
        assert probabilities == sorted(probabilities)
        assert all(0.0 <= p <= 1.0 for p in probabilities)


# -- filter-list linter --------------------------------------------------------


class TestLintProperties:
    @given(domain, path_segment)
    @settings(max_examples=100)
    def test_anchor_always_shadows_subpath(self, dom, segment):
        from repro.filterlist.lint import shadows
        from repro.filterlist.rules import NetworkRule

        broad = NetworkRule.parse(f"||{dom}^")
        narrow = NetworkRule.parse(f"||{dom}/{segment}.js")
        assert shadows(broad, narrow)
        assert not shadows(narrow, broad)

    @given(st.lists(domain, min_size=1, max_size=12, unique=True))
    @settings(max_examples=60)
    def test_lint_clean_on_distinct_anchor_rules(self, domains):
        from repro.filterlist.lint import lint_rules
        from repro.filterlist.rules import NetworkRule

        rules = [NetworkRule.parse(f"||{d}^") for d in domains]
        report = lint_rules(rules)
        # Distinct registered domains can only shadow one another when one
        # is a subdomain of another; our generated names never are.
        assert report.of_kind("duplicate") == []
        assert report.of_kind("shadowed") == []

    @given(st.lists(domain, min_size=1, max_size=8, unique=True), domain)
    @settings(max_examples=60)
    def test_deduplicate_idempotent(self, existing_domains, fresh):
        from repro.filterlist.lint import deduplicate_against
        from repro.filterlist.rules import NetworkRule

        existing = [NetworkRule.parse(f"||{d}^") for d in existing_domains]
        candidates = [NetworkRule.parse(f"||{d}/x.js") for d in existing_domains]
        candidates.append(NetworkRule.parse(f"||{fresh}.fresh-tld.example^"))
        kept, _ = deduplicate_against(candidates, existing)
        kept_again, dropped_again = deduplicate_against(kept, existing)
        assert [r.raw for r in kept_again] == [r.raw for r in kept]


# -- incremental history engine --------------------------------------------------


#: Parseable rule lines of rotating Figure 1 type built from random domains.
rule_line = st.builds(
    lambda d, kind: [
        f"||{d}^",
        f"@@||{d}^$script",
        f"{d}###x",
        f"/ads-{d.split('.')[0]}$domain={d}",
        f"##.c-{d.split('.')[0]}",
    ][kind],
    domain,
    st.integers(0, 4),
)


class TestHistoryProperties:
    @given(
        pool=st.lists(rule_line, min_size=4, max_size=20, unique=True),
        ops=st.lists(
            st.tuples(
                st.lists(st.integers(0, 100), max_size=5),  # add (pool indices)
                st.lists(st.integers(0, 100), max_size=3),  # remove (pool indices)
            ),
            min_size=1,
            max_size=6,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_delta_roundtrip_and_streaming_series(self, pool, ops):
        from datetime import date, timedelta

        from repro.filterlist.history import FilterListHistory, RevisionDelta
        from repro.filterlist.parser import ParsedRuleCache, set_rule_cache

        previous_cache = set_rule_cache(ParsedRuleCache(capacity=4096))
        try:
            start = date(2014, 1, 1)
            base = pool[: max(1, len(pool) // 2)]
            history = FilterListHistory("prop")
            history.add_revision(start, "\n".join(base) + "\n")
            current = list(base)
            expected = [list(current)]
            for step, (add_idx, rem_idx) in enumerate(ops, start=1):
                added = [pool[j % len(pool)] for j in add_idx]
                removed = sorted({pool[j % len(pool)] for j in rem_idx})
                history.add_revision(
                    start + timedelta(days=step),
                    RevisionDelta(added=added, removed=removed),
                )
                gone = set(removed)
                current = [line for line in current if line not in gone] + added
                expected.append(list(current))

            # Applying the delta chain reconstructs every revision exactly
            # (order and multiplicity, not just set membership).
            for index, lines in enumerate(expected):
                assert history[index].rule_lines() == lines

            # delta(i) applied to revision i-1 reproduces revision i's set.
            for index in range(1, len(history)):
                delta = history.delta(index)
                previous = set(history[index - 1].rule_lines())
                reconstructed = (previous - set(delta.removed)) | set(delta.added)
                assert reconstructed == set(history[index].rule_lines())

            # Streaming folds are pinned equal to the full-scan reference.
            assert history.rule_type_series() == history.rule_type_series_full_scan()
            assert (
                history.total_rules_series() == history.total_rules_series_full_scan()
            )
            assert (
                history.domain_first_appearance()
                == history.domain_first_appearance_full_scan()
            )
        finally:
            set_rule_cache(previous_cache)

    @given(
        texts=st.lists(
            st.lists(rule_line, min_size=0, max_size=8),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_full_text_histories_fold_equal_to_reference(self, texts):
        from datetime import date, timedelta

        from repro.filterlist.history import FilterListHistory

        start = date(2015, 1, 1)
        history = FilterListHistory("prop")
        for step, lines in enumerate(texts):
            history.add_revision(start + timedelta(days=step), "\n".join(lines) + "\n")
        assert history.rule_type_series() == history.rule_type_series_full_scan()
        assert history.total_rules_series() == history.total_rules_series_full_scan()
        assert (
            history.domain_first_appearance()
            == history.domain_first_appearance_full_scan()
        )
