"""Env-knob validation: one place, warn once, never silently mis-parse."""

import logging

import pytest

from repro.obs import config as obs_config
from repro.obs.config import (
    ConfigSnapshot,
    config_snapshot,
    history_cache_size,
    matcher_cache_size,
    repro_scale,
    repro_workers,
)


@pytest.fixture(autouse=True)
def _fresh_warnings(monkeypatch):
    """Each test sees a clean warn-once ledger and no REPRO_* knobs."""
    monkeypatch.setattr(obs_config, "_WARNED", set())
    for var in obs_config.KNOBS:
        monkeypatch.delenv(var, raising=False)


class TestScale:
    def test_default(self):
        assert repro_scale() == obs_config.DEFAULT_SCALE

    def test_valid(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert repro_scale() == 0.5

    def test_garbage_warns_and_defaults(self, monkeypatch, caplog):
        monkeypatch.setenv("REPRO_SCALE", "lots")
        with caplog.at_level(logging.WARNING, logger="repro.obs.config"):
            assert repro_scale() == obs_config.DEFAULT_SCALE
        assert "REPRO_SCALE" in caplog.text

    def test_nonpositive_warns_and_defaults(self, monkeypatch, caplog):
        monkeypatch.setenv("REPRO_SCALE", "-1")
        with caplog.at_level(logging.WARNING, logger="repro.obs.config"):
            assert repro_scale() == obs_config.DEFAULT_SCALE
        assert "REPRO_SCALE" in caplog.text


class TestWorkers:
    def test_default_serial(self):
        assert repro_workers() == 1

    def test_valid(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert repro_workers() == 4

    def test_zero_and_garbage_default_to_serial(self, monkeypatch, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.obs.config"):
            monkeypatch.setenv("REPRO_WORKERS", "0")
            assert repro_workers() == 1
            monkeypatch.setenv("REPRO_WORKERS", "fuor")
            assert repro_workers() == 1
        assert caplog.text.count("REPRO_WORKERS") == 2


class TestMatcherCache:
    def test_default(self):
        assert matcher_cache_size() == obs_config.DEFAULT_MATCHER_CACHE

    def test_clamps_to_minimum_with_warning(self, monkeypatch, caplog):
        monkeypatch.setenv("REPRO_MATCHER_CACHE", "1")
        with caplog.at_level(logging.WARNING, logger="repro.obs.config"):
            assert matcher_cache_size() == 2
        assert "REPRO_MATCHER_CACHE" in caplog.text


class TestHistoryCache:
    def test_default(self):
        assert history_cache_size() == obs_config.DEFAULT_HISTORY_CACHE

    def test_valid(self, monkeypatch):
        monkeypatch.setenv("REPRO_HISTORY_CACHE", "1024")
        assert history_cache_size() == 1024

    def test_clamps_to_minimum_with_warning(self, monkeypatch, caplog):
        monkeypatch.setenv("REPRO_HISTORY_CACHE", "0")
        with caplog.at_level(logging.WARNING, logger="repro.obs.config"):
            assert history_cache_size() == 2
        assert "REPRO_HISTORY_CACHE" in caplog.text

    def test_garbage_warns_and_defaults(self, monkeypatch, caplog):
        monkeypatch.setenv("REPRO_HISTORY_CACHE", "huge")
        with caplog.at_level(logging.WARNING, logger="repro.obs.config"):
            assert history_cache_size() == obs_config.DEFAULT_HISTORY_CACHE
        assert "REPRO_HISTORY_CACHE" in caplog.text

    def test_recorded_in_snapshot(self, monkeypatch):
        monkeypatch.setenv("REPRO_HISTORY_CACHE", "4096")
        snapshot = config_snapshot()
        assert snapshot.history_cache == 4096
        assert snapshot.raw_env == {"REPRO_HISTORY_CACHE": "4096"}


class TestWarnOnce:
    def test_same_bad_value_warns_exactly_once(self, monkeypatch, caplog):
        monkeypatch.setenv("REPRO_WORKERS", "nope")
        with caplog.at_level(logging.WARNING, logger="repro.obs.config"):
            for _ in range(5):
                assert repro_workers() == 1
        assert caplog.text.count("REPRO_WORKERS") == 1

    def test_distinct_bad_values_each_warn(self, monkeypatch, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.obs.config"):
            monkeypatch.setenv("REPRO_WORKERS", "bad1")
            repro_workers()
            monkeypatch.setenv("REPRO_WORKERS", "bad2")
            repro_workers()
        assert caplog.text.count("REPRO_WORKERS") == 2


class TestSnapshot:
    def test_resolves_all_knobs_and_keeps_raw(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.2")
        monkeypatch.setenv("REPRO_WORKERS", "broken")
        snapshot = config_snapshot()
        assert isinstance(snapshot, ConfigSnapshot)
        assert snapshot.scale == 0.2
        assert snapshot.workers == 1  # fell back, but the typo is recorded
        assert snapshot.matcher_cache == obs_config.DEFAULT_MATCHER_CACHE
        assert snapshot.raw_env == {"REPRO_SCALE": "0.2", "REPRO_WORKERS": "broken"}

    def test_explicit_environ_mapping(self):
        snapshot = config_snapshot({"REPRO_SCALE": "1.0"})
        assert snapshot.scale == 1.0
        assert snapshot.raw_env == {"REPRO_SCALE": "1.0"}

    def test_as_dict_is_json_ready(self):
        data = config_snapshot({}).as_dict()
        assert set(data) == {
            "scale",
            "workers",
            "matcher_cache",
            "history_cache",
            "feature_cache",
            "run_cache",
            "list_patch",
            "max_retries",
            "retry_base_ms",
            "crawl_journal",
            "fault_seed",
            "data_plane",
            "pool_persist",
            "rule_stats",
            "rule_stats_dir",
            "serve_port",
            "serve_batch",
            "serve_wait_ms",
            "serve_workers",
            "serve_shards",
            "raw_env",
        }


class TestRuleStatsKnobs:
    def test_default_off(self):
        assert obs_config.rule_stats_enabled() is False
        assert obs_config.rule_stats_dir() is None

    def test_enable(self, monkeypatch):
        monkeypatch.setenv("REPRO_RULE_STATS", "1")
        assert obs_config.rule_stats_enabled() is True

    def test_garbage_warns_and_defaults(self, monkeypatch, caplog):
        monkeypatch.setenv("REPRO_RULE_STATS", "maybe")
        with caplog.at_level(logging.WARNING, logger="repro.obs.config"):
            assert obs_config.rule_stats_enabled() is False
        assert "REPRO_RULE_STATS" in caplog.text

    def test_dir_resolves(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_RULE_STATS_DIR", str(tmp_path))
        assert obs_config.rule_stats_dir() == str(tmp_path)

    def test_dir_rejects_plain_file(self, monkeypatch, tmp_path, caplog):
        target = tmp_path / "not-a-dir"
        target.write_text("x")
        monkeypatch.setenv("REPRO_RULE_STATS_DIR", str(target))
        with caplog.at_level(logging.WARNING, logger="repro.obs.config"):
            assert obs_config.rule_stats_dir() is None
        assert "REPRO_RULE_STATS_DIR" in caplog.text

    def test_recorded_in_snapshot(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_RULE_STATS", "1")
        monkeypatch.setenv("REPRO_RULE_STATS_DIR", str(tmp_path))
        snapshot = config_snapshot()
        assert snapshot.rule_stats is True
        assert snapshot.rule_stats_dir == str(tmp_path)
        assert snapshot.as_dict()["rule_stats"] is True


class TestServeKnobs:
    def test_defaults(self):
        assert obs_config.serve_port() == obs_config.DEFAULT_SERVE_PORT
        assert obs_config.serve_batch_size() == obs_config.DEFAULT_SERVE_BATCH
        assert obs_config.serve_wait_ms() == obs_config.DEFAULT_SERVE_WAIT_MS
        assert obs_config.serve_workers() == obs_config.DEFAULT_SERVE_WORKERS

    def test_valid_values(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_PORT", "0")  # 0 = ephemeral
        monkeypatch.setenv("REPRO_SERVE_BATCH", "128")
        monkeypatch.setenv("REPRO_SERVE_WAIT_MS", "5.5")
        monkeypatch.setenv("REPRO_SERVE_WORKERS", "4")
        assert obs_config.serve_port() == 0
        assert obs_config.serve_batch_size() == 128
        assert obs_config.serve_wait_ms() == 5.5
        assert obs_config.serve_workers() == 4

    def test_port_out_of_range_warns_and_defaults(self, monkeypatch, caplog):
        monkeypatch.setenv("REPRO_SERVE_PORT", "70000")
        with caplog.at_level(logging.WARNING, logger="repro.obs.config"):
            assert obs_config.serve_port() == obs_config.DEFAULT_SERVE_PORT
        assert "REPRO_SERVE_PORT" in caplog.text

    def test_port_bad_value_warns_once(self, monkeypatch, caplog):
        monkeypatch.setenv("REPRO_SERVE_PORT", "http")
        with caplog.at_level(logging.WARNING, logger="repro.obs.config"):
            for _ in range(3):
                assert obs_config.serve_port() == obs_config.DEFAULT_SERVE_PORT
        assert caplog.text.count("REPRO_SERVE_PORT") == 1

    def test_batch_clamps_to_one(self, monkeypatch, caplog):
        monkeypatch.setenv("REPRO_SERVE_BATCH", "0")
        with caplog.at_level(logging.WARNING, logger="repro.obs.config"):
            assert obs_config.serve_batch_size() == 1
        assert "REPRO_SERVE_BATCH" in caplog.text

    def test_negative_wait_warns_and_defaults(self, monkeypatch, caplog):
        monkeypatch.setenv("REPRO_SERVE_WAIT_MS", "-3")
        with caplog.at_level(logging.WARNING, logger="repro.obs.config"):
            assert obs_config.serve_wait_ms() == obs_config.DEFAULT_SERVE_WAIT_MS
        assert "REPRO_SERVE_WAIT_MS" in caplog.text

    def test_zero_wait_disables_linger(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_WAIT_MS", "0")
        assert obs_config.serve_wait_ms() == 0.0

    def test_workers_clamps_to_zero(self, monkeypatch, caplog):
        monkeypatch.setenv("REPRO_SERVE_WORKERS", "-2")
        with caplog.at_level(logging.WARNING, logger="repro.obs.config"):
            assert obs_config.serve_workers() == 0
        assert "REPRO_SERVE_WORKERS" in caplog.text

    def test_recorded_in_snapshot(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_BATCH", "32")
        monkeypatch.setenv("REPRO_SERVE_WORKERS", "2")
        snapshot = config_snapshot()
        assert snapshot.serve_batch == 32
        assert snapshot.serve_workers == 2
        data = snapshot.as_dict()
        assert data["serve_batch"] == 32
        assert data["serve_port"] == obs_config.DEFAULT_SERVE_PORT
        assert snapshot.raw_env == {
            "REPRO_SERVE_BATCH": "32",
            "REPRO_SERVE_WORKERS": "2",
        }


class TestPerfAliases:
    def test_perf_module_reexports_the_validated_knobs(self):
        from repro.analysis import perf

        assert perf.repro_workers is repro_workers
        assert perf.matcher_cache_size is matcher_cache_size
