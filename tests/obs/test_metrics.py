"""Metrics-registry tests: counters, gauges, absorb, deterministic merge."""

import json

from repro.analysis.perf import PerfCounters
from repro.obs.metrics import MetricsRegistry, get_metrics, reset_metrics


class TestCountersAndGauges:
    def test_count_accumulates(self):
        registry = MetricsRegistry()
        registry.count("crawl.slots")
        registry.count("crawl.slots", 4)
        assert registry.counter("crawl.slots") == 5
        assert registry.counter("never.touched") == 0

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("stage.crawl.wall_s", 1.0)
        registry.gauge("stage.crawl.wall_s", 2.5)
        assert registry.as_dict()["gauges"]["stage.crawl.wall_s"] == 2.5

    def test_len_and_reset(self):
        registry = MetricsRegistry()
        registry.count("a")
        registry.gauge("b", 1.0)
        assert len(registry) == 2
        registry.reset()
        assert len(registry) == 0


class TestAbsorb:
    def test_absorbs_perf_counters_ints_as_counters(self):
        perf = PerfCounters(records=10, match_calls=3)
        perf.elapsed = 1.5
        registry = MetricsRegistry()
        registry.absorb("replay", perf)
        data = registry.as_dict()
        assert data["counters"]["replay.records"] == 10
        assert data["counters"]["replay.match_calls"] == 3
        # Floats (elapsed, derived rates) land as gauges.
        assert data["gauges"]["replay.elapsed"] == 1.5
        assert "replay.records_per_second" in data["gauges"]

    def test_absorbs_plain_mapping_and_skips_non_numbers(self):
        registry = MetricsRegistry()
        registry.absorb("x", {"count": 2, "rate": 0.5, "name": "skip", "flag": True})
        data = registry.as_dict()
        assert data["counters"] == {"x.count": 2}
        assert data["gauges"] == {"x.rate": 0.5}


class TestDeterministicMerge:
    def test_serialization_is_insertion_order_independent(self):
        forward = MetricsRegistry()
        forward.count("a", 1)
        forward.count("b", 2)
        forward.gauge("t", 0.5)
        backward = MetricsRegistry()
        backward.gauge("t", 0.5)
        backward.count("b", 2)
        backward.count("a", 1)
        assert json.dumps(forward.as_dict()) == json.dumps(backward.as_dict())

    def test_merge_sums_counters_maxes_gauges(self):
        left = MetricsRegistry()
        left.count("records", 10)
        left.gauge("elapsed", 2.0)
        right = MetricsRegistry()
        right.count("records", 5)
        right.count("only_right", 1)
        right.gauge("elapsed", 3.0)
        left.merge(right)
        data = left.as_dict()
        assert data["counters"]["records"] == 15
        assert data["counters"]["only_right"] == 1
        assert data["gauges"]["elapsed"] == 3.0

    def test_sharded_merge_equals_single_registry(self):
        """Merging N shard registries (any order) matches one big one."""
        whole = MetricsRegistry()
        shards = [MetricsRegistry() for _ in range(3)]
        for index, shard in enumerate(shards):
            for key in ("replay.records", "crawl.slots"):
                shard.count(key, index + 1)
                whole.count(key, index + 1)
        merged_forward = MetricsRegistry()
        for shard in shards:
            merged_forward.merge(shard)
        merged_reverse = MetricsRegistry()
        for shard in reversed(shards):
            merged_reverse.merge(shard)
        assert (
            json.dumps(merged_forward.as_dict())
            == json.dumps(merged_reverse.as_dict())
            == json.dumps(whole.as_dict())
        )

    def test_render_is_sorted(self):
        registry = MetricsRegistry()
        registry.count("z.last", 1)
        registry.count("a.first", 2)
        lines = registry.render().splitlines()
        assert lines == ["a.first=2", "z.last=1"]


class TestGlobalRegistry:
    def test_reset_clears_the_shared_instance(self):
        registry = get_metrics()
        registry.count("scratch", 1)
        assert reset_metrics() is registry
        assert registry.counter("scratch") == 0
