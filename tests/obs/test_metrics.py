"""Metrics-registry tests: counters, gauges, histograms, absorb, merge."""

import json

from repro.analysis.perf import PerfCounters
from repro.obs.hist import Histogram, ns_buckets
from repro.obs.metrics import MetricsRegistry, get_metrics, reset_metrics


class TestCountersAndGauges:
    def test_count_accumulates(self):
        registry = MetricsRegistry()
        registry.count("crawl.slots")
        registry.count("crawl.slots", 4)
        assert registry.counter("crawl.slots") == 5
        assert registry.counter("never.touched") == 0

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("stage.crawl.wall_s", 1.0)
        registry.gauge("stage.crawl.wall_s", 2.5)
        assert registry.as_dict()["gauges"]["stage.crawl.wall_s"] == 2.5

    def test_len_and_reset(self):
        registry = MetricsRegistry()
        registry.count("a")
        registry.gauge("b", 1.0)
        assert len(registry) == 2
        registry.reset()
        assert len(registry) == 0


class TestAbsorb:
    def test_absorbs_perf_counters_ints_as_counters(self):
        perf = PerfCounters(records=10, match_calls=3)
        perf.elapsed = 1.5
        registry = MetricsRegistry()
        registry.absorb("replay", perf)
        data = registry.as_dict()
        assert data["counters"]["replay.records"] == 10
        assert data["counters"]["replay.match_calls"] == 3
        # Floats (elapsed, derived rates) land as gauges.
        assert data["gauges"]["replay.elapsed"] == 1.5
        assert "replay.records_per_second" in data["gauges"]

    def test_absorbs_plain_mapping_and_skips_non_numbers(self):
        registry = MetricsRegistry()
        registry.absorb("x", {"count": 2, "rate": 0.5, "name": "skip", "flag": True})
        data = registry.as_dict()
        assert data["counters"] == {"x.count": 2}
        assert data["gauges"] == {"x.rate": 0.5}


class TestNestedAbsorb:
    def test_nested_mappings_flatten_with_dotted_keys(self):
        registry = MetricsRegistry()
        registry.absorb(
            "rules",
            {"totals": {"hits": 3, "share": 0.5}, "calls": 7},
        )
        data = registry.as_dict()
        assert data["counters"]["rules.totals.hits"] == 3
        assert data["counters"]["rules.calls"] == 7
        assert data["gauges"]["rules.totals.share"] == 0.5

    def test_nested_absorb_stays_order_independent(self):
        forward = MetricsRegistry()
        forward.absorb("x", {"b": {"n": 1}, "a": 2})
        backward = MetricsRegistry()
        backward.absorb("x", {"a": 2, "b": {"n": 1}})
        assert json.dumps(forward.as_dict()) == json.dumps(backward.as_dict())


class TestHistograms:
    def test_hist_records_and_serializes(self):
        registry = MetricsRegistry()
        registry.hist("match.cost", 3)
        registry.hist("match.cost", 900)
        data = registry.as_dict()
        assert "match.cost" in data["histograms"]
        assert data["histograms"]["match.cost"]["total"] == 2

    def test_hist_with_explicit_bounds(self):
        registry = MetricsRegistry()
        registry.hist("lat", 300, bounds=ns_buckets())
        assert registry.histogram("lat").bounds == ns_buckets()

    def test_absorb_histogram_copies_then_merges(self):
        source = Histogram((1, 2))
        source.observe(1)
        registry = MetricsRegistry()
        registry.absorb_histogram("h", source)
        source.observe(2)  # registry's copy must not see this
        assert registry.histogram("h").total == 1
        registry.absorb_histogram("h", source)
        assert registry.histogram("h").total == 3

    def test_merge_folds_histograms(self):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.hist("h", 1)
        right.hist("h", 5)
        right.hist("only_right", 2)
        left.merge(right)
        assert left.histogram("h").total == 2
        assert left.histogram("only_right").total == 1

    def test_len_reset_and_render_cover_histograms(self):
        registry = MetricsRegistry()
        registry.hist("h", 4)
        assert len(registry) == 1
        assert any(line.startswith("h=p50:") for line in registry.render().splitlines())
        registry.reset()
        assert len(registry) == 0


class TestDeterministicMerge:
    def test_serialization_is_insertion_order_independent(self):
        forward = MetricsRegistry()
        forward.count("a", 1)
        forward.count("b", 2)
        forward.gauge("t", 0.5)
        backward = MetricsRegistry()
        backward.gauge("t", 0.5)
        backward.count("b", 2)
        backward.count("a", 1)
        assert json.dumps(forward.as_dict()) == json.dumps(backward.as_dict())

    def test_merge_sums_counters_maxes_gauges(self):
        left = MetricsRegistry()
        left.count("records", 10)
        left.gauge("elapsed", 2.0)
        right = MetricsRegistry()
        right.count("records", 5)
        right.count("only_right", 1)
        right.gauge("elapsed", 3.0)
        left.merge(right)
        data = left.as_dict()
        assert data["counters"]["records"] == 15
        assert data["counters"]["only_right"] == 1
        assert data["gauges"]["elapsed"] == 3.0

    def test_sharded_merge_equals_single_registry(self):
        """Merging N shard registries (any order) matches one big one."""
        whole = MetricsRegistry()
        shards = [MetricsRegistry() for _ in range(3)]
        for index, shard in enumerate(shards):
            for key in ("replay.records", "crawl.slots"):
                shard.count(key, index + 1)
                whole.count(key, index + 1)
        merged_forward = MetricsRegistry()
        for shard in shards:
            merged_forward.merge(shard)
        merged_reverse = MetricsRegistry()
        for shard in reversed(shards):
            merged_reverse.merge(shard)
        assert (
            json.dumps(merged_forward.as_dict())
            == json.dumps(merged_reverse.as_dict())
            == json.dumps(whole.as_dict())
        )

    def test_render_is_sorted(self):
        registry = MetricsRegistry()
        registry.count("z.last", 1)
        registry.count("a.first", 2)
        lines = registry.render().splitlines()
        assert lines == ["a.first=2", "z.last=1"]


class TestGlobalRegistry:
    def test_reset_clears_the_shared_instance(self):
        registry = get_metrics()
        registry.count("scratch", 1)
        assert reset_metrics() is registry
        assert registry.counter("scratch") == 0
