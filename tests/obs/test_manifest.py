"""Run-manifest tests: event log, run.json schema, validation CLI."""

import json

import pytest

from repro.obs.hist import Histogram
from repro.obs.manifest import (
    SCHEMA,
    SCHEMA_V1,
    SCHEMA_V2,
    RunManifest,
    artifact_digest,
    git_sha,
    load_and_validate,
    validate_manifest,
)


@pytest.fixture
def manifest(tmp_path):
    return RunManifest(tmp_path / "run.json")


def _finalize(manifest, **overrides):
    kwargs = dict(
        seed=42,
        config={"scale": 0.08, "workers": 1, "matcher_cache": 512, "raw_env": {}},
        metrics={"counters": {"crawl.slots": 3}, "gauges": {}},
        spans=[{"name": "stage:crawl", "status": "ok", "wall_s": 0.5, "cpu_s": 0.4}],
        experiments=["fig6"],
    )
    kwargs.update(overrides)
    return manifest.finalize(**kwargs)


class TestEventLog:
    def test_events_are_sequenced_jsonl(self, manifest, tmp_path):
        manifest.event("custom", detail="x")
        lines = (tmp_path / "run.jsonl").read_text().splitlines()
        events = [json.loads(line) for line in lines]
        assert [event["event"] for event in events] == ["run_start", "custom"]
        assert [event["seq"] for event in events] == [0, 1]
        assert all("ts" in event for event in events)

    def test_stages_and_artifacts_are_logged(self, manifest, tmp_path):
        manifest.record_stage("crawl", wall_s=1.25, cpu_s=1.0, sites=50)
        manifest.record_artifact("fig6", "rendered artifact text", wall_s=0.2)
        events = [
            json.loads(line)
            for line in (tmp_path / "run.jsonl").read_text().splitlines()
        ]
        kinds = [event["event"] for event in events]
        assert kinds == ["run_start", "stage", "artifact"]
        assert events[1]["name"] == "crawl"
        assert events[2]["sha256"] == artifact_digest("rendered artifact text")

    def test_sink_unpacks_tracer_payloads(self, manifest, tmp_path):
        """The tracer hands the sink one dict; its ``event`` key is the kind."""
        manifest.sink({"event": "span_start", "name": "crawl", "depth": 1})
        events = [
            json.loads(line)
            for line in (tmp_path / "run.jsonl").read_text().splitlines()
        ]
        assert events[-1]["event"] == "span_start"
        assert events[-1]["name"] == "crawl"

    def test_fresh_manifest_truncates_stale_events(self, tmp_path):
        (tmp_path / "run.jsonl").write_text('{"event": "stale"}\n')
        RunManifest(tmp_path / "run.json")
        lines = (tmp_path / "run.jsonl").read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["event"] == "run_start"


class TestFinalize:
    def test_run_json_written_and_valid(self, manifest, tmp_path):
        manifest.record_stage("crawl", wall_s=1.0)
        manifest.record_artifact("fig6", "artifact")
        written = _finalize(manifest)
        on_disk = json.loads((tmp_path / "run.json").read_text())
        assert on_disk["schema"] == SCHEMA
        assert on_disk["seed"] == 42
        assert on_disk["stages"] == written["stages"]
        assert on_disk["artifacts"]["fig6"]["sha256"] == artifact_digest("artifact")
        assert validate_manifest(on_disk) == []

    def test_artifact_digest_is_sha256_hex(self):
        digest = artifact_digest("text")
        assert len(digest) == 64
        assert digest != artifact_digest("other text")

    def test_git_sha_in_repo(self):
        sha = git_sha()
        # This test runs inside the repo checkout, so a SHA must resolve.
        assert sha is None or (len(sha) == 40 and set(sha) <= set("0123456789abcdef"))


class TestValidation:
    def test_missing_keys_reported(self):
        errors = validate_manifest({"schema": SCHEMA})
        assert any("missing key" in error for error in errors)

    def test_wrong_schema_version(self, manifest):
        data = _finalize(manifest)
        data["schema"] = "repro.run-manifest/999"
        assert any("schema" in error for error in validate_manifest(data))

    def test_bad_stage_and_artifact_entries(self, manifest):
        data = _finalize(manifest)
        data["stages"] = [{"wall_s": 1.0}, {"name": "x"}]
        data["artifacts"] = {"fig6": {"sha256": "short", "bytes": "no"}}
        errors = validate_manifest(data)
        assert any("stages[0]" in error for error in errors)
        assert any("stages[1]" in error for error in errors)
        assert any("bad sha256" in error for error in errors)
        assert any("bad bytes" in error for error in errors)

    def test_bad_span_nodes(self, manifest):
        data = _finalize(manifest)
        data["spans"] = [{"name": "ok", "status": "weird", "children": ["junk"]}]
        errors = validate_manifest(data)
        assert any("bad status" in error for error in errors)
        assert any("children[0]" in error for error in errors)

    def test_load_and_validate_roundtrip(self, manifest, tmp_path):
        _finalize(manifest)
        assert load_and_validate(tmp_path / "run.json") == []
        assert load_and_validate(tmp_path / "missing.json") != []

    def test_not_an_object(self):
        assert validate_manifest([1, 2]) == ["manifest is not a JSON object"]


class TestSchemaVersions:
    def test_current_schema_is_v2(self):
        assert SCHEMA == SCHEMA_V2 == "repro.run-manifest/2"

    def test_v1_manifest_still_validates(self, manifest):
        """Back-compat: an old run.json (no histograms section) is valid v1."""
        data = _finalize(manifest)
        data["schema"] = SCHEMA_V1
        del data["metrics"]["histograms"]
        data.pop("rules", None)
        assert validate_manifest(data) == []

    def test_v2_requires_histograms_section(self, manifest):
        data = _finalize(manifest)
        del data["metrics"]["histograms"]
        assert any("histograms" in error for error in validate_manifest(data))

    def test_v2_accepts_serialized_histograms(self, manifest):
        hist = Histogram((1, 2, 4))
        hist.observe(3)
        data = _finalize(
            manifest,
            metrics={
                "counters": {},
                "gauges": {},
                "histograms": {"rules.cost.AAK": hist.as_dict()},
            },
        )
        assert validate_manifest(data) == []

    def test_v2_rejects_malformed_histogram(self, manifest):
        bad = {"bounds": [1, 2], "counts": [0, 0], "sum": 0, "total": 0}
        data = _finalize(
            manifest,
            metrics={"counters": {}, "gauges": {}, "histograms": {"h": bad}},
        )
        errors = validate_manifest(data)
        assert any("histograms[h]" in error for error in errors)

    def test_v2_rules_section_validates(self, manifest):
        data = _finalize(manifest)
        data["rules"] = {
            "totals": {"calls": 5, "hits": 2, "checks": 9, "rules_hit": 1},
            "lists": {"AAK": {"calls": 5, "hits": 2}},
        }
        assert validate_manifest(data) == []
        data["rules"] = {"totals": {"hits": "many"}, "lists": {}}
        assert any("rules" in error for error in validate_manifest(data))

    def test_serve_section_validates(self, manifest):
        data = _finalize(manifest)
        data["serve"] = {
            "port": 7675,
            "epoch": 2,
            "workers": 0,
            "queries": 640,
            "batches": 11,
            "reloads": 2,
            "dropped": 0,
        }
        assert validate_manifest(data) == []

    def test_serve_section_rejects_bad_entries(self, manifest):
        data = _finalize(manifest)
        data["serve"] = "up"
        assert any("serve" in error for error in validate_manifest(data))
        data["serve"] = {"port": "7675", "epoch": 0, "workers": 0}
        assert any("port" in error for error in validate_manifest(data))
        data["serve"] = {
            "port": 7675,
            "epoch": 0,
            "workers": 0,
            "queries": -1,
        }
        assert any("queries" in error for error in validate_manifest(data))
        # Booleans are not counters, even though bool subclasses int.
        data["serve"] = {
            "port": 7675,
            "epoch": 0,
            "workers": 0,
            "dropped": True,
        }
        assert any("dropped" in error for error in validate_manifest(data))

    def test_manifest_without_serve_section_still_validates(self, manifest):
        data = _finalize(manifest)
        assert "serve" not in data
        assert validate_manifest(data) == []


class TestValidateCli:
    def test_cli_accepts_good_manifest(self, manifest, tmp_path, capsys):
        from repro.obs.__main__ import main

        _finalize(manifest)
        assert main(["validate", str(tmp_path / "run.json")]) == 0
        assert "ok" in capsys.readouterr().out

    def test_cli_rejects_bad_manifest(self, tmp_path, capsys):
        from repro.obs.__main__ import main

        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert main(["validate", str(bad)]) == 1
        assert "missing key" in capsys.readouterr().err

    def test_cli_usage_errors(self, capsys):
        from repro.obs.__main__ import main

        assert main([]) == 2
        assert main(["validate"]) == 2
        assert main(["--help"]) == 0
