"""Span-tree tests: nesting, exception safety, disabled-mode overhead."""

import pytest

from repro.obs.trace import (
    NULL_SPAN,
    Span,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    span,
    tracing_enabled,
)


@pytest.fixture(autouse=True)
def _global_tracer_off():
    """Every test leaves the process-global tracer disabled and empty."""
    yield
    disable_tracing()
    get_tracer().reset()


class TestNesting:
    def test_children_attach_to_open_parent(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer") as outer:
            with tracer.span("middle"):
                with tracer.span("inner"):
                    pass
            with tracer.span("sibling"):
                pass
        assert [root.name for root in tracer.roots] == ["outer"]
        assert [child.name for child in outer.children] == ["middle", "sibling"]
        assert outer.children[0].children[0].name == "inner"

    def test_sequential_roots(self):
        tracer = Tracer(enabled=True)
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [root.name for root in tracer.roots] == ["first", "second"]

    def test_durations_and_status(self):
        tracer = Tracer(enabled=True)
        with tracer.span("work") as recorded:
            pass
        assert recorded.status == "ok"
        assert recorded.wall_s >= 0.0
        assert recorded.cpu_s >= 0.0

    def test_attributes_and_counters(self):
        tracer = Tracer(enabled=True)
        with tracer.span("stage", sites=4) as recorded:
            recorded.set(phase="merge")
            recorded.count("records", 3)
            recorded.count("records")
        assert recorded.attributes == {"sites": 4, "phase": "merge"}
        assert recorded.counters == {"records": 4}

    def test_child_payload_grafting(self):
        tracer = Tracer(enabled=True)
        with tracer.span("parallel") as parent:
            parent.add_child_payload("shard:0", wall_s=1.5, cpu_s=1.25, records=7)
        child = parent.children[0]
        assert child.name == "shard:0"
        assert child.wall_s == 1.5
        assert child.attributes == {"records": 7}
        assert child.status == "ok"


class TestExceptionSafety:
    def test_exception_recorded_and_reraised(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(ValueError):
            with tracer.span("doomed") as recorded:
                raise ValueError("boom")
        assert recorded.status == "error"
        assert "boom" in recorded.error
        assert recorded.wall_s is not None
        # The stack unwound completely; the next span is a fresh root.
        with tracer.span("after"):
            pass
        assert [root.name for root in tracer.roots] == ["doomed", "after"]

    def test_exception_unwinds_nested_spans(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(RuntimeError):
            with tracer.span("outer") as outer:
                with tracer.span("inner") as inner:
                    raise RuntimeError("deep")
        assert inner.status == "error"
        assert outer.status == "error"
        assert tracer._stack == []


class TestDisabledMode:
    def test_disabled_returns_shared_null_span(self):
        assert not tracing_enabled()
        first = span("anything", key="value")
        second = span("other")
        assert first is NULL_SPAN
        assert second is NULL_SPAN

    def test_null_span_api_is_inert(self):
        with span("nothing") as recorded:
            recorded.set(a=1)
            recorded.count("x")
            recorded.add_child_payload("shard:0", wall_s=1.0)
        assert recorded is NULL_SPAN
        assert get_tracer().roots == []

    def test_null_span_never_swallows_exceptions(self):
        with pytest.raises(KeyError):
            with span("nothing"):
                raise KeyError("still raised")

    def test_disabled_overhead_is_one_branch(self):
        """The disabled path allocates nothing: same singleton each call."""
        spans = {id(span(f"s{i}")) for i in range(1000)}
        assert spans == {id(NULL_SPAN)}


class TestGlobalTracer:
    def test_enable_records_and_disable_stops(self):
        tracer = enable_tracing()
        with span("visible"):
            pass
        disable_tracing()
        with span("invisible"):
            pass
        assert [root.name for root in tracer.roots] == ["visible"]

    def test_sink_receives_start_and_end_events(self):
        events = []
        enable_tracing(sink=events.append)
        with span("emitting"):
            pass
        kinds = [event["event"] for event in events]
        assert kinds == ["span_start", "span_end"]
        assert events[1]["status"] == "ok"
        assert events[1]["wall_s"] >= 0.0


class TestExport:
    def test_as_dict_roundtrip_shape(self):
        tracer = Tracer(enabled=True)
        with tracer.span("root", scale=0.1) as root:
            root.count("items", 2)
            with tracer.span("leaf"):
                pass
        data = tracer.as_dicts()
        assert len(data) == 1
        assert data[0]["name"] == "root"
        assert data[0]["attributes"] == {"scale": 0.1}
        assert data[0]["counters"] == {"items": 2}
        assert data[0]["children"][0]["name"] == "leaf"

    def test_render_is_indented_tree(self):
        tracer = Tracer(enabled=True)
        with tracer.span("root"):
            with tracer.span("leaf"):
                pass
        text = tracer.render()
        lines = text.splitlines()
        assert lines[0].startswith("root")
        assert lines[1].startswith("  leaf")


class TestSpanStandalone:
    def test_span_without_tracer_still_times(self):
        with Span("loose") as recorded:
            pass
        assert recorded.status == "ok"
        assert recorded.wall_s is not None
