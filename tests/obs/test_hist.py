"""Fixed-bucket histograms: bucketing, merge algebra, serialization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.hist import Histogram, count_buckets, merge_histogram_dicts, ns_buckets


class TestBucketFamilies:
    def test_ns_buckets_are_log_spaced_and_increasing(self):
        bounds = ns_buckets()
        assert bounds[0] == 256
        assert all(b == a * 4 for a, b in zip(bounds, bounds[1:]))
        assert bounds[-1] >= 4_000_000_000  # covers multi-second calls

    def test_count_buckets_start_at_zero(self):
        bounds = count_buckets()
        assert bounds[0] == 0
        assert list(bounds) == sorted(set(bounds))


class TestObserve:
    def test_zero_lands_in_first_count_bucket(self):
        hist = Histogram(count_buckets())
        hist.observe(0)
        assert hist.counts[0] == 1
        assert hist.total == 1
        assert hist.sum == 0

    def test_bounds_are_inclusive_upper_edges(self):
        hist = Histogram((10, 20))
        hist.observe(10)  # == first bound -> first bucket
        hist.observe(11)  # > first bound -> second bucket
        assert hist.counts == [1, 1, 0]

    def test_overflow_bucket(self):
        hist = Histogram((10, 20))
        hist.observe(21)
        assert hist.counts == [0, 0, 1]

    def test_weighted_observe(self):
        hist = Histogram((10,))
        hist.observe(5, count=3)
        assert hist.total == 3
        assert hist.sum == 15

    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram((5, 5))


class TestPercentiles:
    def test_empty_is_none(self):
        assert Histogram((1, 2)).percentile(50) is None

    def test_reports_bucket_upper_bound(self):
        hist = Histogram((1, 2, 4, 8))
        for value in (1, 1, 2, 8):
            hist.observe(value)
        assert hist.percentile(50) == 1
        assert hist.percentile(99) == 8

    def test_overflow_clamps_to_last_finite_bound(self):
        hist = Histogram((1, 2))
        hist.observe(100)
        assert hist.percentile(99) == 2

    def test_quantiles_keys(self):
        hist = Histogram((1,))
        hist.observe(1)
        assert set(hist.quantiles()) == {"p50", "p90", "p99"}

    def test_mean(self):
        hist = Histogram((10,))
        hist.observe(4)
        hist.observe(6)
        assert hist.mean() == 5.0
        assert Histogram((10,)).mean() is None


class TestMergeSubtract:
    def test_merge_sums_counts(self):
        a, b = Histogram((1, 2)), Histogram((1, 2))
        a.observe(1)
        b.observe(2)
        b.observe(3)
        a.merge(b)
        assert a.counts == [1, 1, 1]
        assert a.total == 3

    def test_merge_rejects_mismatched_bounds(self):
        with pytest.raises(ValueError):
            Histogram((1,)).merge(Histogram((2,)))

    def test_subtract_recovers_delta(self):
        before = Histogram((1, 2))
        before.observe(1)
        after = before.copy()
        after.observe(2)
        delta = after.subtract(before)
        assert delta.counts == [0, 1, 0]
        assert delta.total == 1

    def test_round_trip_dict(self):
        hist = Histogram(count_buckets())
        for v in (0, 3, 900):
            hist.observe(v)
        again = Histogram.from_dict(hist.as_dict())
        assert again == hist

    def test_from_dict_rejects_bad_count_vector(self):
        data = Histogram((1, 2)).as_dict()
        data["counts"] = [0]
        with pytest.raises(ValueError):
            Histogram.from_dict(data)

    def test_merge_histogram_dicts(self):
        a = Histogram((1, 2))
        a.observe(1)
        b = Histogram((1, 2))
        b.observe(2)
        target = {"x": a.as_dict()}
        merge_histogram_dicts(target, {"x": b.as_dict(), "y": b.as_dict()})
        assert Histogram.from_dict(target["x"]).total == 2
        assert Histogram.from_dict(target["y"]).total == 1


values = st.lists(st.integers(min_value=0, max_value=10_000), max_size=60)


class TestProperties:
    @given(values)
    @settings(max_examples=60, deadline=None)
    def test_serialization_round_trips(self, samples):
        hist = Histogram(count_buckets())
        for v in samples:
            hist.observe(v)
        assert Histogram.from_dict(hist.as_dict()) == hist

    @given(values, values, values)
    @settings(max_examples=60, deadline=None)
    def test_merge_is_associative_and_commutative(self, xs, ys, zs):
        def build(samples):
            hist = Histogram(count_buckets())
            for v in samples:
                hist.observe(v)
            return hist

        left = build(xs).merge(build(ys)).merge(build(zs))
        right = build(zs).merge(build(xs).copy().merge(build(ys)))
        swapped = build(ys).merge(build(xs)).merge(build(zs))
        assert left == right == swapped

    @given(values)
    @settings(max_examples=60, deadline=None)
    def test_percentiles_are_monotone(self, samples):
        hist = Histogram(count_buckets())
        for v in samples:
            hist.observe(v)
        if hist.total == 0:
            assert hist.percentile(50) is None
            return
        p50, p90, p99 = (hist.percentile(p) for p in (50, 90, 99))
        assert p50 <= p90 <= p99
