"""Unit tests for the JavaScript tokenizer."""

import pytest

from repro.jsast.tokenizer import TokenizeError, tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)]


def raws(source):
    return [t.raw for t in tokenize(source) if t.kind != "eof"]


class TestBasicTokens:
    def test_empty_source_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind == "eof"

    def test_identifier(self):
        (tok, _eof) = tokenize("foo")
        assert tok.kind == "identifier"
        assert tok.value == "foo"

    def test_identifier_with_dollar_and_underscore(self):
        assert tokenize("$_var1")[0].value == "$_var1"

    def test_keyword_recognition(self):
        assert tokenize("function")[0].kind == "keyword"
        assert tokenize("var")[0].kind == "keyword"
        assert tokenize("typeof")[0].kind == "keyword"

    def test_literal_keywords_are_keyword_kind(self):
        for word in ("true", "false", "null", "undefined"):
            assert tokenize(word)[0].kind == "keyword"

    def test_keyword_prefix_is_identifier(self):
        tok = tokenize("variable")[0]
        assert tok.kind == "identifier"

    def test_punctuator_longest_match(self):
        assert raws("=== == =") == ["===", "==", "="]
        assert raws(">>>= >>> >> >") == [">>>=", ">>>", ">>", ">"]

    def test_unexpected_character_raises(self):
        with pytest.raises(TokenizeError):
            tokenize("var a = #")


class TestNumbers:
    def test_integer(self):
        assert tokenize("42")[0].value == 42.0

    def test_float(self):
        assert tokenize("3.14")[0].value == pytest.approx(3.14)

    def test_leading_dot_float(self):
        assert tokenize(".5")[0].value == 0.5

    def test_exponent(self):
        assert tokenize("1e3")[0].value == 1000.0
        assert tokenize("2.5e-2")[0].value == pytest.approx(0.025)

    def test_hex(self):
        assert tokenize("0xFF")[0].value == 255.0
        assert tokenize("0x10")[0].value == 16.0

    def test_bad_hex_raises(self):
        with pytest.raises(TokenizeError):
            tokenize("0x")

    def test_number_then_dot_method(self):
        toks = raws("1..toString")
        assert toks == ["1.", ".", "toString"]


class TestStrings:
    def test_double_quoted(self):
        assert tokenize('"hello"')[0].value == "hello"

    def test_single_quoted(self):
        assert tokenize("'hi'")[0].value == "hi"

    def test_escapes(self):
        assert tokenize(r'"\n\t\\"')[0].value == "\n\t\\"

    def test_quote_escape(self):
        assert tokenize(r'"say \"hi\""')[0].value == 'say "hi"'

    def test_hex_escape(self):
        assert tokenize(r'"\x41"')[0].value == "A"

    def test_unicode_escape(self):
        assert tokenize(r'"A"')[0].value == "A"

    def test_unknown_escape_passes_through(self):
        assert tokenize(r'"\q"')[0].value == "q"

    def test_unterminated_raises(self):
        with pytest.raises(TokenizeError):
            tokenize('"abc')

    def test_newline_in_string_raises(self):
        with pytest.raises(TokenizeError):
            tokenize('"ab\ncd"')

    def test_line_continuation(self):
        assert tokenize('"ab\\\ncd"')[0].value == "abcd"


class TestComments:
    def test_line_comment_skipped(self):
        assert kinds("// comment\nfoo") == ["identifier", "eof"]

    def test_block_comment_skipped(self):
        assert kinds("/* block */ foo") == ["identifier", "eof"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(TokenizeError):
            tokenize("/* oops")

    def test_multiline_block_comment_sets_newline_flag(self):
        tokens = tokenize("a /* x\ny */ b")
        assert tokens[1].newline_before is True


class TestRegexDisambiguation:
    def test_regex_at_start(self):
        tok = tokenize("/ab+c/gi")[0]
        assert tok.kind == "regex"
        assert tok.value == ("ab+c", "gi")

    def test_regex_after_assignment(self):
        tokens = tokenize("x = /foo/")
        assert tokens[2].kind == "regex"

    def test_division_after_identifier(self):
        tokens = tokenize("a / b")
        assert tokens[1].kind == "punct"
        assert tokens[1].raw == "/"

    def test_division_after_close_paren(self):
        tokens = tokenize("(a) / 2")
        punct = [t for t in tokens if t.kind == "punct"]
        assert any(t.raw == "/" for t in punct)
        assert all(t.kind != "regex" for t in tokens)

    def test_regex_after_open_paren(self):
        tokens = tokenize("f(/x/)")
        assert any(t.kind == "regex" for t in tokens)

    def test_regex_with_class_containing_slash(self):
        tok = tokenize("/[/]/")[0]
        assert tok.kind == "regex"
        assert tok.value == ("[/]", "")

    def test_regex_escaped_slash(self):
        tok = tokenize(r"/a\/b/")[0]
        assert tok.value == (r"a\/b", "")

    def test_regex_after_return(self):
        tokens = tokenize("return /x/")
        assert tokens[1].kind == "regex"

    def test_unterminated_regex_raises(self):
        with pytest.raises(TokenizeError):
            tokenize("x = /abc")


class TestPositionsAndNewlines:
    def test_line_numbers(self):
        tokens = tokenize("a\nb\nc")
        assert [t.line for t in tokens[:3]] == [1, 2, 3]

    def test_newline_before_flag(self):
        tokens = tokenize("a\nb c")
        assert tokens[0].newline_before is False
        assert tokens[1].newline_before is True
        assert tokens[2].newline_before is False

    def test_crlf_counts_one_line(self):
        tokens = tokenize("a\r\nb")
        assert tokens[1].line == 2

    def test_column_tracking(self):
        tokens = tokenize("ab cd")
        assert tokens[0].column == 1
        assert tokens[1].column == 4
