"""Tests for the JavaScript code generator."""

import numpy as np
import pytest

from repro.jsast.codegen import to_source
from repro.jsast.parser import parse
from repro.jsast.unpack import unpack_source
from repro.synthesis.scripts import ANTI_ADBLOCK_FAMILIES, BENIGN_FAMILIES


def regen(source):
    """Generate, reparse, regenerate — the idempotence round trip."""
    first = to_source(parse(source))
    second = to_source(parse(first))
    return first, second


class TestIdempotence:
    SNIPPETS = [
        "var a = 1, b;",
        "function f(a, b) { return a + b; }",
        "if (a) { b(); } else if (c) { d(); } else { e(); }",
        "for (var i = 0; i < 10; i++) { work(i); }",
        "for (key in obj) { use(key); }",
        "for (;;) break;",
        "while (x) { x--; }",
        "do { tick(); } while (alive);",
        "try { risky(); } catch (e) { log(e); } finally { done(); }",
        "switch (x) { case 1: a(); break; default: b(); }",
        "throw new Error('boom');",
        "outer: for (;;) { continue outer; }",
        "var o = { a: 1, 'b c': 2, 3: x, get size() { return 1; } };",
        "var arr = [1, , 'two', [3]];",
        "x = a ? b : c;",
        "a = b = c + d * e - f / g % h;",
        "(function() { var hidden = 1; })();",
        "r = /ab+c/gi.test(s);",
        "obj.method(1)(2)[key].prop;",
        "new Foo(new Bar(), 2).init();",
        "x = typeof y === 'undefined' ? void 0 : -y;",
        "i++; --j; !done; ~bits;",
        "a, b, c;",
        "x = (a, b);",
        "var n = 1.5e3 + 0xff;",
        "s = 'it\\'s\\n';",
        "if (a && b || !c) d();",
        "var neg = -(a + b);",
        "debugger;",
        "with (obj) { use(prop); }",
    ]

    @pytest.mark.parametrize("source", SNIPPETS)
    def test_roundtrip_idempotent(self, source):
        first, second = regen(source)
        assert first == second

    @pytest.mark.parametrize("source", SNIPPETS)
    def test_regenerated_source_parses(self, source):
        first, _ = regen(source)
        parse(first)  # must not raise


class TestGeneratedScripts:
    @pytest.mark.parametrize("family", sorted(ANTI_ADBLOCK_FAMILIES))
    def test_anti_adblock_families_roundtrip(self, family):
        source = ANTI_ADBLOCK_FAMILIES[family](np.random.default_rng(5))
        first, second = regen(source)
        assert first == second

    @pytest.mark.parametrize("family", sorted(BENIGN_FAMILIES))
    def test_benign_families_roundtrip(self, family):
        source = BENIGN_FAMILIES[family](np.random.default_rng(6))
        first, second = regen(source)
        assert first == second


class TestUnpackedMaterialisation:
    def test_unpacked_program_serialises(self):
        packed = "eval('var adblockDetected = true; notify(adblockDetected);');"
        result = unpack_source(packed)
        source = to_source(result.program)
        assert "adblockDetected" in source
        assert "eval" not in source
        parse(source)

    def test_statement_guard_for_function_expression(self):
        program = parse("(function() { go(); })();")
        source = to_source(program)
        parse(source)


class TestSemanticsPreserved:
    def test_operator_precedence_preserved(self):
        source = "x = (a + b) * c;"
        program = parse(source)
        regenerated = to_source(program)
        reparsed = parse(regenerated)
        # The tree shape must survive: multiplication at the top.
        expr = reparsed.body[0].expression.right
        assert expr.operator == "*"
        assert expr.left.operator == "+"

    def test_else_if_chain_preserved(self):
        source = "if (a) b(); else if (c) d(); else e();"
        reparsed = parse(to_source(parse(source)))
        statement = reparsed.body[0]
        assert statement.alternate is not None
        assert statement.alternate.alternate is not None

    def test_string_escapes(self):
        program = parse("var s = 'line\\nbreak\\t\\'quote\\'';")
        reparsed = parse(to_source(program))
        assert reparsed.body[0].declarations[0].init.value == "line\nbreak\t'quote'"
