"""Unit tests for the JavaScript parser."""

import pytest

from repro.jsast import nodes as N
from repro.jsast.parser import ParseError, parse
from repro.jsast.walker import find_all, find_first


def expr(source):
    """Parse a single expression statement and return its expression."""
    program = parse(source)
    assert len(program.body) == 1
    statement = program.body[0]
    assert isinstance(statement, N.ExpressionStatement)
    return statement.expression


class TestPrimaries:
    def test_number_literal(self):
        node = expr("42;")
        assert isinstance(node, N.Literal)
        assert node.value == 42.0

    def test_string_literal(self):
        assert expr("'hi';").value == "hi"

    def test_boolean_and_null(self):
        assert expr("true;").value is True
        assert expr("false;").value is False
        assert expr("null;").value is None

    def test_this_expression(self):
        assert isinstance(expr("this;"), N.ThisExpression)

    def test_regex_literal(self):
        node = expr("/ab/g;")
        assert node.regex == ("ab", "g")

    def test_array_literal(self):
        node = expr("[1, 2, 3];")
        assert isinstance(node, N.ArrayExpression)
        assert len(node.elements) == 3

    def test_array_elision(self):
        node = expr("[1, , 3];")
        assert node.elements[1] is None

    def test_object_literal(self):
        node = expr("({a: 1, 'b': 2, 3: 4});")
        assert isinstance(node, N.ObjectExpression)
        assert len(node.properties) == 3

    def test_object_keyword_key(self):
        node = expr("({new: 1, if: 2});")
        assert [p.key.name for p in node.properties] == ["new", "if"]

    def test_object_getter(self):
        node = expr("({get x() { return 1; }});")
        assert node.properties[0].kind == "get"

    def test_nested_object(self):
        node = expr("({a: {b: {c: 1}}});")
        inner = node.properties[0].value.properties[0].value
        assert isinstance(inner, N.ObjectExpression)


class TestOperators:
    def test_precedence_multiplication_over_addition(self):
        node = expr("1 + 2 * 3;")
        assert node.operator == "+"
        assert node.right.operator == "*"

    def test_left_associativity(self):
        node = expr("1 - 2 - 3;")
        assert node.operator == "-"
        assert node.left.operator == "-"

    def test_logical_nodes(self):
        node = expr("a && b || c;")
        assert isinstance(node, N.LogicalExpression)
        assert node.operator == "||"
        assert node.left.operator == "&&"

    def test_equality_levels(self):
        node = expr("a === b !== c;")
        assert node.operator == "!=="

    def test_instanceof_and_in(self):
        assert expr("a instanceof B;").operator == "instanceof"
        assert expr("'x' in obj;").operator == "in"

    def test_unary(self):
        node = expr("typeof x;")
        assert isinstance(node, N.UnaryExpression)
        assert node.operator == "typeof"

    def test_nested_unary(self):
        node = expr("!!x;")
        assert node.argument.operator == "!"

    def test_prefix_and_postfix_update(self):
        pre = expr("++x;")
        post = expr("x++;")
        assert pre.prefix is True
        assert post.prefix is False

    def test_conditional(self):
        node = expr("a ? b : c;")
        assert isinstance(node, N.ConditionalExpression)

    def test_assignment_right_associative(self):
        node = expr("a = b = c;")
        assert isinstance(node.right, N.AssignmentExpression)

    def test_compound_assignment(self):
        assert expr("a += 1;").operator == "+="

    def test_invalid_assignment_target(self):
        with pytest.raises(ParseError):
            parse("1 = 2;")

    def test_sequence_expression(self):
        node = expr("a, b, c;")
        assert isinstance(node, N.SequenceExpression)
        assert len(node.expressions) == 3


class TestCallsAndMembers:
    def test_member_dot(self):
        node = expr("a.b.c;")
        assert isinstance(node, N.MemberExpression)
        assert node.property.name == "c"
        assert node.object.property.name == "b"

    def test_member_keyword_property(self):
        node = expr("promise.catch;")
        assert node.property.name == "catch"

    def test_computed_member(self):
        node = expr("a['b'];")
        assert node.computed is True

    def test_call_no_args(self):
        node = expr("f();")
        assert isinstance(node, N.CallExpression)
        assert node.arguments == []

    def test_call_with_args(self):
        node = expr("f(1, 'two', x);")
        assert len(node.arguments) == 3

    def test_chained_call(self):
        node = expr("f()();")
        assert isinstance(node.callee, N.CallExpression)

    def test_method_call_chain(self):
        node = expr("document.getElementsByTagName('head')[0].appendChild(s);")
        assert isinstance(node, N.CallExpression)
        assert node.callee.property.name == "appendChild"

    def test_new_with_arguments(self):
        node = expr("new Date(2016, 1);")
        assert isinstance(node, N.NewExpression)
        assert len(node.arguments) == 2

    def test_new_without_arguments(self):
        node = expr("new Date;")
        assert isinstance(node, N.NewExpression)
        assert node.arguments == []

    def test_new_member_callee(self):
        node = expr("new foo.Bar();")
        assert isinstance(node.callee, N.MemberExpression)

    def test_new_then_call_on_result(self):
        node = expr("new X().go();")
        assert isinstance(node, N.CallExpression)
        assert isinstance(node.callee.object, N.NewExpression)


class TestStatements:
    def test_var_declaration(self):
        program = parse("var a = 1, b;")
        declaration = program.body[0]
        assert isinstance(declaration, N.VariableDeclaration)
        assert len(declaration.declarations) == 2
        assert declaration.declarations[1].init is None

    def test_function_declaration(self):
        program = parse("function f(a, b) { return a + b; }")
        fn = program.body[0]
        assert isinstance(fn, N.FunctionDeclaration)
        assert fn.id.name == "f"
        assert [p.name for p in fn.params] == ["a", "b"]

    def test_function_expression(self):
        node = expr("(function named() {});")
        assert isinstance(node, N.FunctionExpression)
        assert node.id.name == "named"

    def test_iife(self):
        node = expr("(function() { var x = 1; })();")
        assert isinstance(node, N.CallExpression)

    def test_if_else(self):
        program = parse("if (a) b(); else c();")
        statement = program.body[0]
        assert statement.alternate is not None

    def test_dangling_else(self):
        program = parse("if (a) if (b) c(); else d();")
        outer = program.body[0]
        assert outer.alternate is None
        assert outer.consequent.alternate is not None

    def test_for_classic(self):
        program = parse("for (var i = 0; i < 10; i++) { work(i); }")
        loop = program.body[0]
        assert isinstance(loop, N.ForStatement)
        assert isinstance(loop.init, N.VariableDeclaration)

    def test_for_empty_clauses(self):
        loop = parse("for (;;) break;").body[0]
        assert loop.init is None and loop.test is None and loop.update is None

    def test_for_in_var(self):
        loop = parse("for (var key in obj) {}").body[0]
        assert isinstance(loop, N.ForInStatement)

    def test_for_in_bare(self):
        loop = parse("for (key in obj) {}").body[0]
        assert isinstance(loop, N.ForInStatement)
        assert isinstance(loop.left, N.Identifier)

    def test_while(self):
        assert isinstance(parse("while (x) x--;").body[0], N.WhileStatement)

    def test_do_while(self):
        assert isinstance(parse("do { x(); } while (y);").body[0], N.DoWhileStatement)

    def test_switch(self):
        program = parse(
            "switch (x) { case 1: a(); break; case 2: b(); break; default: c(); }"
        )
        statement = program.body[0]
        assert isinstance(statement, N.SwitchStatement)
        assert len(statement.cases) == 3
        assert statement.cases[2].test is None

    def test_try_catch_finally(self):
        statement = parse("try { a(); } catch (e) { b(e); } finally { c(); }").body[0]
        assert statement.handler.param.name == "e"
        assert statement.finalizer is not None

    def test_try_requires_handler(self):
        with pytest.raises(ParseError):
            parse("try { a(); }")

    def test_throw(self):
        assert isinstance(parse("throw new Error('x');").body[0], N.ThrowStatement)

    def test_labeled_statement(self):
        statement = parse("outer: for (;;) { break outer; }").body[0]
        assert isinstance(statement, N.LabeledStatement)
        breaks = find_all(statement, lambda n: isinstance(n, N.BreakStatement))
        assert breaks[0].label.name == "outer"

    def test_with_statement(self):
        assert isinstance(parse("with (obj) { a(); }").body[0], N.WithStatement)

    def test_empty_statement(self):
        assert isinstance(parse(";").body[0], N.EmptyStatement)


class TestASI:
    def test_missing_semicolon_at_newline(self):
        program = parse("var a = 1\nvar b = 2")
        assert len(program.body) == 2

    def test_missing_semicolon_before_close_brace(self):
        program = parse("function f() { return 1 }")
        assert isinstance(program.body[0].body.body[0], N.ReturnStatement)

    def test_missing_semicolon_at_eof(self):
        assert len(parse("x = 1").body) == 1

    def test_return_asi(self):
        program = parse("function f() { return\n1; }")
        ret = program.body[0].body.body[0]
        assert ret.argument is None

    def test_no_asi_without_newline(self):
        with pytest.raises(ParseError):
            parse("var a = 1 var b = 2")

    def test_postfix_not_across_newline(self):
        program = parse("a\n++b")
        assert len(program.body) == 2


class TestRealWorldSnippets:
    """The paper's own code listings must parse."""

    BUSINESSINSIDER_BAIT = """
    var script = document.createElement("script");
    script.setAttribute("async", true);
    script.setAttribute("src", "//www.npttech.com/advertising.js");
    script.setAttribute("onerror", "setAdblockerCookie(true);");
    script.setAttribute("onload", "setAdblockerCookie(false);");
    document.getElementsByTagName("head")[0].appendChild(script);
    var setAdblockerCookie = function(adblocker) {
        var d = new Date();
        d.setTime(d.getTime() + 60 * 60 * 24 * 30 * 1000);
        document.cookie = "__adblocker=" + (adblocker ? "true" : "false")
            + "; expires=" + d.toUTCString() + "; path=/";
    };
    """

    BLOCKADBLOCK_BAIT = """
    BlockAdBlock.prototype._creatBait = function() {
        var bait = document.createElement('div');
        bait.setAttribute('class', this._options.baitClass);
        bait.setAttribute('style', this._options.baitStyle);
        this._var.bait = window.document.body.appendChild(bait);
        this._var.bait.offsetParent;
        this._var.bait.offsetHeight;
        if (this._options.debug === true) {
            this._log('_creatBait', 'Bait has been created');
        }
    };
    BlockAdBlock.prototype._checkBait = function(loop) {
        var detected = false;
        if (window.document.body.getAttribute('abp') !== null
            || this._var.bait.offsetParent === null
            || this._var.bait.offsetHeight == 0
            || this._var.bait.clientWidth == 0) {
            detected = true;
        }
    };
    """

    NUMERAMA_CHECK = """
    canRunAds = true;
    var adblockStatus = 'inactive';
    if (window.canRunAds === undefined) {
        adblockStatus = 'active';
    }
    """

    def test_businessinsider_snippet(self):
        program = parse(self.BUSINESSINSIDER_BAIT)
        calls = find_all(program, lambda n: isinstance(n, N.CallExpression))
        assert len(calls) >= 6

    def test_blockadblock_snippet(self):
        program = parse(self.BLOCKADBLOCK_BAIT)
        member = find_first(
            program,
            lambda n: isinstance(n, N.MemberExpression)
            and isinstance(n.property, N.Identifier)
            and n.property.name == "offsetHeight",
        )
        assert member is not None

    def test_numerama_snippet(self):
        program = parse(self.NUMERAMA_CHECK)
        assert len(program.body) == 3


class TestWalker:
    def test_walk_counts(self):
        from repro.jsast.walker import count_nodes

        # Program, ExpressionStatement, BinaryExpression, two Identifiers
        assert count_nodes(parse("a + b;")) == 5

    def test_walk_with_ancestors_parent(self):
        from repro.jsast.walker import walk_with_ancestors

        program = parse("f(x);")
        for node, ancestors in walk_with_ancestors(program):
            if isinstance(node, N.Identifier) and node.name == "x":
                assert isinstance(ancestors[-1], N.CallExpression)
                return
        pytest.fail("identifier x not found")

    def test_replace_child(self):
        program = parse("a;")
        statement = program.body[0]
        new = N.Identifier(name="b")
        assert statement.replace_child(statement.expression, new)
        assert statement.expression is new
