"""Unit tests for the static eval() unpacker."""

from repro.jsast import nodes as N
from repro.jsast.parser import parse
from repro.jsast.unpack import MAX_UNPACK_ROUNDS, fold_constant_string, unpack_source
from repro.jsast.walker import find_all, find_first


def fold(source):
    program = parse(source + ";")
    return fold_constant_string(program.body[0].expression)


class TestConstantFolding:
    def test_string_literal(self):
        assert fold("'abc'") == "abc"

    def test_number_literal(self):
        assert fold("42") == "42"

    def test_concatenation(self):
        assert fold("'a' + 'b' + 'c'") == "abc"

    def test_concat_with_number(self):
        assert fold("'v' + 1") == "v1"

    def test_from_char_code(self):
        assert fold("String.fromCharCode(104, 105)") == "hi"

    def test_from_char_code_non_literal_fails(self):
        assert fold("String.fromCharCode(x)") is None

    def test_array_join(self):
        assert fold("['a', 'b'].join('')") == "ab"

    def test_array_join_default_separator(self):
        assert fold("['a', 'b'].join()") == "a,b"

    def test_split_join_reverse(self):
        assert fold("'cba'.split('').reverse().join('')") == "abc"

    def test_replace(self):
        assert fold("'a_b'.replace('_', '.')") == "a.b"

    def test_non_constant_returns_none(self):
        assert fold("x + 'b'") is None

    def test_sequence_takes_last(self):
        assert fold("(1, 'last')") == "last"


class TestEvalUnpacking:
    def test_simple_eval(self):
        result = unpack_source("eval('var adblock = true;');")
        assert result.was_packed
        declaration = find_first(
            result.program, lambda n: isinstance(n, N.VariableDeclarator)
        )
        assert declaration.id.name == "adblock"

    def test_eval_concat(self):
        result = unpack_source("eval('var a' + 'dblock = 1;');")
        assert result.was_packed
        assert "adblock = 1" in result.unpacked_sources[0]

    def test_nested_eval(self):
        inner = "var detected = true;"
        middle = f"eval({inner!r});"
        outer = f"eval({middle!r});"
        result = unpack_source(outer)
        assert result.rounds == 2
        assert find_first(
            result.program,
            lambda n: isinstance(n, N.VariableDeclarator) and n.id.name == "detected",
        )

    def test_window_eval(self):
        result = unpack_source("window.eval('var x = 1;');")
        assert result.was_packed

    def test_settimeout_string(self):
        result = unpack_source("setTimeout('checkAds();', 100);")
        assert result.was_packed
        call = find_first(
            result.program,
            lambda n: isinstance(n, N.CallExpression)
            and isinstance(n.callee, N.Identifier)
            and n.callee.name == "checkAds",
        )
        assert call is not None

    def test_document_write_script(self):
        source = "document.write('<script>var baited = 1;</scr' + 'ipt>');"
        result = unpack_source(source)
        assert result.was_packed
        assert find_first(
            result.program,
            lambda n: isinstance(n, N.VariableDeclarator) and n.id.name == "baited",
        )

    def test_eval_of_dynamic_value_untouched(self):
        result = unpack_source("eval(userInput);")
        assert not result.was_packed

    def test_eval_of_garbage_string_untouched(self):
        result = unpack_source("eval('}{not js');")
        assert not result.was_packed

    def test_unpack_plain_program_noop(self):
        source = "var a = 1; function f() { return a; }"
        result = unpack_source(source)
        assert result.rounds == 0
        assert len(result.program.body) == 2

    def test_eval_in_expression_context(self):
        result = unpack_source("var r = eval('var inner = 2;') || 0;")
        assert result.was_packed
        assert find_first(
            result.program,
            lambda n: isinstance(n, N.VariableDeclarator) and n.id.name == "inner",
        )

    def test_eval_inside_function_body(self):
        source = "function go() { eval('var hidden = 3;'); }"
        result = unpack_source(source)
        assert result.was_packed
        assert find_first(
            result.program,
            lambda n: isinstance(n, N.VariableDeclarator) and n.id.name == "hidden",
        )


class TestPackedPacker:
    def test_dean_edwards_packer(self):
        # eval(function(p,a,c,k,e,d){...}('0 1=2',3,3,'var|x|5'.split('|'),0,{}))
        packed = (
            "eval(function(p,a,c,k,e,d){e=function(c){return c};"
            "if(!''.replace(/^/,String)){while(c--){d[c]=k[c]||c}"
            "k=[function(e){return d[e]}];e=function(){return'\\\\w+'};c=1};"
            "return p}('0 1=2;',3,3,'var|x|5'.split('|'),0,{}))"
        )
        result = unpack_source(packed)
        assert result.was_packed
        declaration = find_first(
            result.program, lambda n: isinstance(n, N.VariableDeclarator)
        )
        assert declaration is not None
        assert declaration.id.name == "x"

    def test_packer_payload_substitution_counts(self):
        from repro.jsast.unpack import _packed_substitute

        out = _packed_substitute("0 1=2;", 10, ["var", "abd", "5"])
        assert out == "var abd=5;"

    def test_base62_encoding(self):
        from repro.jsast.unpack import _encode_base

        assert _encode_base(0, 62) == "0"
        assert _encode_base(10, 62) == "a"
        assert _encode_base(61, 62) == "Z"
        assert _encode_base(62, 62) == "10"


class TestUnpackedTreeIsAnalysable:
    def test_features_visible_after_unpack(self):
        """The point of unpacking: bait logic becomes statically visible."""
        payload = (
            "var bait = document.createElement('div');"
            "if (bait.offsetHeight == 0) { detected = true; }"
        )
        result = unpack_source(f"eval({payload!r});")
        members = find_all(
            result.program,
            lambda n: isinstance(n, N.MemberExpression)
            and isinstance(n.property, N.Identifier)
            and n.property.name == "offsetHeight",
        )
        assert members


class TestRoundCapBailout:
    @staticmethod
    def nested_eval(depth):
        source = "var x = 1;"
        for _ in range(depth):
            escaped = source.replace("\\", "\\\\").replace("'", "\\'")
            source = f"eval('{escaped}');"
        return source

    def test_fixpoint_in_exactly_cap_rounds_is_clean(self):
        """Converging in exactly MAX_UNPACK_ROUNDS is not a bailout."""
        result = unpack_source(self.nested_eval(MAX_UNPACK_ROUNDS))
        assert result.rounds == MAX_UNPACK_ROUNDS
        assert not result.hit_round_cap
        assert not result.bailed_out

    def test_deeper_nesting_is_a_cap_bailout(self):
        result = unpack_source(self.nested_eval(MAX_UNPACK_ROUNDS + 1))
        assert result.rounds == MAX_UNPACK_ROUNDS
        assert result.hit_round_cap
        assert result.bailed_out
        assert result.failed_payloads == 0
