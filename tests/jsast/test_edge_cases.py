"""Edge-case tests for the JavaScript front end (tokenizer + parser)."""

import pytest

from repro.jsast import nodes as N
from repro.jsast.parser import ParseError, parse
from repro.jsast.tokenizer import TokenizeError, tokenize
from repro.jsast.walker import count_nodes, find_all, find_first


class TestTokenizerEdges:
    def test_unicode_line_separators_count_lines(self):
        tokens = tokenize("a b c")
        assert [t.line for t in tokens[:3]] == [1, 2, 3]
        assert tokens[1].newline_before

    def test_regex_after_comma_and_operators(self):
        for prefix in ("f(x, ", "x = y || ", "return ", "a ? b : ", "[ ", "typeof "):
            tokens = tokenize(prefix + "/re/")
            assert any(t.kind == "regex" for t in tokens), prefix

    def test_division_after_literal_keywords(self):
        tokens = tokenize("true / 2")
        assert all(t.kind != "regex" for t in tokens)

    def test_division_after_this(self):
        tokens = tokenize("this / 2")
        assert all(t.kind != "regex" for t in tokens)

    def test_nested_block_comment_markers(self):
        # Block comments do not nest in JS: the first */ closes.
        tokens = tokenize("/* outer /* still outer */ x")
        assert tokens[0].kind == "identifier"
        assert tokens[0].value == "x"

    def test_identifier_with_unicode(self):
        tokens = tokenize("var café = 1;")
        assert tokens[1].value == "café"

    def test_dollar_identifiers(self):
        tokens = tokenize("$('#x').$each($$)")
        identifiers = [t.value for t in tokens if t.kind == "identifier"]
        assert "$" in identifiers and "$$" in identifiers

    def test_empty_regex_class(self):
        # An empty class [] never matches; tokenizer must not treat the
        # immediate ] as class end prematurely — standard behaviour is
        # that /[]/ swallows the ], so provide content to keep it simple.
        tokens = tokenize("/[a]/")
        assert tokens[0].kind == "regex"


class TestParserEdges:
    def test_deeply_nested_expressions(self):
        depth = 150
        source = "x = " + "(" * depth + "1" + ")" * depth + ";"
        program = parse(source)
        assert count_nodes(program) >= 3

    def test_long_statement_sequence(self):
        program = parse(";".join(f"var v{i} = {i}" for i in range(500)) + ";")
        assert len(program.body) == 500

    def test_chained_ternaries(self):
        node = parse("x = a ? 1 : b ? 2 : 3;").body[0].expression.right
        assert isinstance(node, N.ConditionalExpression)
        assert isinstance(node.alternate, N.ConditionalExpression)

    def test_comma_in_for_update(self):
        loop = parse("for (i = 0, j = 9; i < j; i++, j--) {}").body[0]
        assert isinstance(loop.update, N.SequenceExpression)

    def test_object_in_return_position(self):
        program = parse("function f() { return { a: 1 }; }")
        ret = program.body[0].body.body[0]
        assert isinstance(ret.argument, N.ObjectExpression)

    def test_function_as_argument(self):
        program = parse("setTimeout(function() { tick(); }, 100);")
        call = program.body[0].expression
        assert isinstance(call.arguments[0], N.FunctionExpression)

    def test_nested_member_new(self):
        node = parse("new a.b.C(1);").body[0].expression
        assert isinstance(node, N.NewExpression)
        assert node.callee.property.name == "C"

    def test_keyword_member_after_new_chain(self):
        node = parse("new Image().src;").body[0].expression
        assert isinstance(node, N.MemberExpression)

    def test_getter_setter_pair(self):
        node = parse("var o = { get x() { return 1; }, set x(v) { this._x = v; } };")
        props = node.body[0].declarations[0].init.properties
        assert [p.kind for p in props] == ["get", "set"]

    def test_get_as_plain_key(self):
        node = parse("var o = { get: 1, set: 2 };").body[0].declarations[0].init
        assert [p.key.name for p in node.properties] == ["get", "set"]

    def test_in_operator_needs_parens_in_for_init(self):
        # ES5's NoIn grammar: a bare `in` in a for-initialiser is a parse
        # error; parenthesised it is fine. Our parser matches both sides.
        with pytest.raises(ParseError):
            parse("for (var x = 'k' in o ? 1 : 0; x < 2; x++) {}")
        program = parse("for (var x = ('k' in o) ? 1 : 0; x < 2; x++) {}")
        assert program.body

    def test_error_has_location(self):
        with pytest.raises(ParseError) as excinfo:
            parse("var = 5;")
        assert "line" in str(excinfo.value)

    def test_unterminated_block_error(self):
        with pytest.raises(ParseError):
            parse("function f() { var a = 1;")

    def test_garbage_rejected(self):
        with pytest.raises((ParseError, TokenizeError)):
            parse("### not js ###")


class TestWalkerHelpers:
    def test_find_all_by_type(self):
        program = parse("a(); b(); c();")
        calls = find_all(program, lambda n: isinstance(n, N.CallExpression))
        assert len(calls) == 3

    def test_find_first_preorder(self):
        program = parse("outer(inner());")
        first = find_first(program, lambda n: isinstance(n, N.CallExpression))
        assert first.callee.name == "outer"

    def test_find_first_none(self):
        program = parse("var a;")
        assert find_first(program, lambda n: isinstance(n, N.ForStatement)) is None
