"""Structural round-trip guarantee: parse(to_source(tree)) ≡ tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jsast.codegen import to_source
from repro.jsast.compare import ast_equal, count_differences, first_difference
from repro.jsast.parser import parse
from repro.synthesis.scripts import ANTI_ADBLOCK_FAMILIES, BENIGN_FAMILIES


class TestAstEqual:
    def test_identical_sources(self):
        assert ast_equal(parse("var a = 1;"), parse("var a = 1;"))

    def test_raw_differences_ignored(self):
        assert ast_equal(parse("x = 0x10;"), parse("x = 16;"))
        assert ast_equal(parse("s = 'a';"), parse('s = "a";'))

    def test_structural_difference_detected(self):
        assert not ast_equal(parse("x = a + b;"), parse("x = a - b;"))

    def test_first_difference_path(self):
        difference = first_difference(parse("x = a + b;"), parse("x = a - b;"))
        assert "operator" in difference

    def test_none_vs_node(self):
        program = parse("if (a) b();")
        other = parse("if (a) b(); else c();")
        assert not ast_equal(program, other)

    def test_count_differences_zero_for_equal(self):
        assert count_differences(parse("f();"), parse("f();")) == 0

    def test_count_differences_positive(self):
        assert count_differences(parse("f();"), parse("g();")) >= 1


class TestStructuralRoundtrip:
    SNIPPETS = [
        "var a = 0x1F;",
        "x = 'sin\\'gle';",
        "for (var i = 0, n = xs.length; i < n; i++) sum += xs[i];",
        "try { a(); } catch (e) {} finally { b(); }",
        "var o = { a: [1, 2, { b: c ? d : e }] };",
        "while (i--) queue.push(make(i));",
        "switch (k) { case 'x': case 'y': both(); break; default: other(); }",
        "fn.apply(null, [].slice.call(arguments, 1));",
        "var re = /a[/]b\\//g;",
        "delete obj[key], void expire(obj);",
    ]

    @pytest.mark.parametrize("source", SNIPPETS)
    def test_roundtrip_preserves_structure(self, source):
        tree = parse(source)
        regenerated = parse(to_source(tree))
        difference = first_difference(tree, regenerated)
        assert difference is None, difference

    @pytest.mark.parametrize("family", sorted(ANTI_ADBLOCK_FAMILIES))
    def test_generated_anti_adblock_roundtrip(self, family):
        source = ANTI_ADBLOCK_FAMILIES[family](np.random.default_rng(71))
        tree = parse(source)
        regenerated = parse(to_source(tree))
        difference = first_difference(tree, regenerated)
        assert difference is None, f"{family}: {difference}"

    @pytest.mark.parametrize("family", sorted(BENIGN_FAMILIES))
    def test_generated_benign_roundtrip(self, family):
        source = BENIGN_FAMILIES[family](np.random.default_rng(72))
        tree = parse(source)
        regenerated = parse(to_source(tree))
        difference = first_difference(tree, regenerated)
        assert difference is None, f"{family}: {difference}"

    @given(st.integers(min_value=0, max_value=10_000), st.booleans())
    @settings(max_examples=60)
    def test_random_scripts_roundtrip(self, seed, anti):
        rng = np.random.default_rng(seed)
        families = ANTI_ADBLOCK_FAMILIES if anti else BENIGN_FAMILIES
        names = sorted(families)
        family = names[seed % len(names)]
        source = families[family](rng)
        tree = parse(source)
        regenerated = parse(to_source(tree))
        assert ast_equal(tree, regenerated)
