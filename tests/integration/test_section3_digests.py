"""Digest pins for the §3 (and table2) rendered artifacts.

The incremental history engine promises *byte-identical* outputs: these
SHA-256 pins were captured from the pre-engine full-reparse pipeline at
the standard integration scale, so any drift in parsing, folding, or
sharding shows up as a digest mismatch here. A second pass re-runs the
history-fold experiments under ``REPRO_WORKERS=2`` and asserts the
rendered text (not just the digest) matches the serial run, and that
the parallel run actually exercised the parsed-rule cache.
"""

import hashlib

import pytest

from repro.experiments import fig1, fig2, fig3, sec33, table1, table2
from repro.experiments.context import ExperimentContext
from repro.filterlist.parser import get_history_counters
from repro.synthesis.world import SyntheticWorld, WorldConfig

#: sha256 of each experiment's rendered text at WorldConfig(n_sites=120,
#: live_top=400), captured before the incremental §3 engine landed.
PINNED = {
    "fig1": "a14aff248e9e834bc081515b93cff85e704d914eabe6626ef622bdaab07b7dc0",
    "fig2": "1d57862cc42bf2bbb5c17f6c6f4f7ae2993698590af5ac4927aa7e4d11ed0d2a",
    "fig3": "fd2d44d817137f22ee782441fc612f64262771fa2d633eec1da291eeac5ec7c5",
    "table1": "1578792c9f63771c153ff839c2f49e664776d2e88843923e2682e8f311d793ee",
    "table2": "95ab8e2f66e52b2cb2d0184b99ed56697d85e1e81eb1f2cf3fee35a45fec2628",
    "sec33": "9f9f69c55d71ee808aabff5fc41787bc35d37abbfe1cfb4be3abf197c012dc99",
}

MODULES = {
    "fig1": fig1,
    "fig2": fig2,
    "fig3": fig3,
    "table1": table1,
    "table2": table2,
    "sec33": sec33,
}


def digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(
        world=SyntheticWorld(WorldConfig(n_sites=120, live_top=400))
    )


@pytest.mark.parametrize("name", sorted(PINNED))
def test_rendered_artifact_matches_pre_engine_digest(ctx, name, monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    module = MODULES[name]
    assert digest(module.render(module.run(ctx))) == PINNED[name], (
        f"{name} rendered output drifted from the pre-engine pipeline"
    )


def test_parallel_folds_render_identical_and_hit_the_cache(ctx, monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    serial = {
        name: MODULES[name].render(MODULES[name].run(ctx))
        for name in ("fig1", "table1", "sec33")
    }
    monkeypatch.setenv("REPRO_WORKERS", "2")
    # Drop the memoized folds so the sharded workers actually refold the
    # histories (and hit the warm parsed-rule cache they inherit on fork).
    for history in ctx.lists.values():
        history._memo.clear()
    before = get_history_counters().snapshot()
    for name, expected in serial.items():
        module = MODULES[name]
        assert module.render(module.run(ctx)) == expected, (
            f"{name} rendered differently under REPRO_WORKERS=2"
        )
    delta = get_history_counters().since(before)
    assert delta.cache_hits > 0, "parallel folds never hit the parsed-rule cache"


def test_cached_artifacts_match_pinned_digests(tmp_path, monkeypatch):
    """The run-cache path is byte-transparent: a warm-started context's
    rendered artifacts still match the pre-engine digest pins."""
    monkeypatch.setenv("REPRO_RUN_CACHE", str(tmp_path))
    monkeypatch.delenv("REPRO_WORKERS", raising=False)

    def fresh():
        return ExperimentContext(
            world=SyntheticWorld(WorldConfig(n_sites=120, live_top=400))
        )

    cold = fresh()
    for name in ("fig1", "sec33"):
        module = MODULES[name]
        assert digest(module.render(module.run(cold))) == PINNED[name]
    warm = fresh()
    assert warm.graph.has("lists"), "cold run persisted nothing"
    for name in ("fig1", "sec33"):
        module = MODULES[name]
        assert digest(module.render(module.run(warm))) == PINNED[name], (
            f"{name} drifted when served through the run cache"
        )
    assert any(stage.cached for stage in warm.stage_timings)
