"""Integration tests: the full measurement pipeline on a tiny world.

These run the real code paths end-to-end (world → archive → crawl →
coverage → corpus → detector → live crawl) and assert the paper's
qualitative findings, not absolute numbers.
"""

from datetime import date

import numpy as np
import pytest

from repro.analysis.coverage import CoverageAnalyzer
from repro.analysis.livecrawl import LiveCrawler
from repro.core.corpus import build_corpus
from repro.core.pipeline import AntiAdblockDetector, DetectorConfig
from repro.filterlist.matcher import NetworkMatcher
from repro.synthesis.listgen import generate_all_lists
from repro.synthesis.world import SyntheticWorld, WorldConfig
from repro.wayback.crawler import WaybackCrawler

AAK = "Anti-Adblock Killer"
CE = "Combined EasyList"


@pytest.fixture(scope="module")
def world():
    return SyntheticWorld(WorldConfig(n_sites=150, live_top=600))


@pytest.fixture(scope="module")
def lists(world):
    return generate_all_lists(world)


@pytest.fixture(scope="module")
def histories(lists):
    return {AAK: lists["aak"], CE: lists["combined_easylist"]}


@pytest.fixture(scope="module")
def crawl(world):
    crawler = WaybackCrawler(world.build_archive())
    return crawler.crawl(
        [site.domain for site in world.sites], world.config.start, world.config.end
    )


@pytest.fixture(scope="module")
def coverage(histories, crawl):
    return CoverageAnalyzer(histories).analyze(crawl)


class TestCrawlIntegration:
    def test_every_domain_every_month(self, world, crawl):
        months = len(world.config.months())
        assert len(crawl.records) == 150 * months

    def test_har_urls_carry_archive_prefix(self, crawl):
        usable = crawl.usable()
        assert usable
        assert any(
            url.startswith("http://web.archive.org/")
            for url in usable[0].har.request_urls()
        )

    def test_missing_accounting_covers_all_records(self, crawl):
        counts = crawl.missing_counts_by_month()
        total_missing = sum(
            sum(v for k, v in bucket.items()) for bucket in counts.values()
        )
        assert total_missing == len(crawl.records) - len(crawl.usable())

    def test_outdated_declines_over_time(self, crawl):
        counts = crawl.missing_counts_by_month()
        months = sorted(counts)
        first_year = np.mean([counts[m]["outdated"] for m in months[:12]])
        last_year = np.mean([counts[m]["outdated"] for m in months[-12:]])
        assert last_year < first_year


class TestCoverageIntegration:
    def test_aak_beats_combined_easylist(self, coverage):
        last_month = max(coverage.http_series[AAK])
        assert (
            coverage.http_series[AAK][last_month]
            > coverage.http_series[CE][last_month]
        )

    def test_aak_zero_before_creation(self, coverage):
        for month, count in coverage.http_series[AAK].items():
            if month < date(2014, 2, 1):
                assert count == 0

    def test_coverage_grows(self, coverage):
        series = coverage.http_series[AAK]
        months = sorted(series)
        assert series[months[-1]] >= series[months[len(months) // 2]]

    def test_html_triggers_rare(self, coverage):
        for name in (AAK, CE):
            assert all(count <= 3 for count in coverage.html_series[name].values())

    def test_third_party_dominates_aak_matches(self, coverage):
        assert coverage.third_party_share(AAK) >= 0.8

    def test_delays_both_lists_nonempty(self, histories, crawl, coverage):
        delays = CoverageAnalyzer(histories).detection_delays(crawl, coverage)
        assert delays[AAK]
        assert delays[CE]


class TestCorpusAndDetector:
    def test_corpus_and_detector_end_to_end(self, world, lists):
        rules = []
        for key in ("aak", "combined_easylist"):
            rules.extend(lists[key].latest().filter_list.network_rules)
        matcher = NetworkMatcher(rules)
        pages = [world.snapshot(site, world.config.end) for site in world.sites]
        corpus = build_corpus(pages, matcher, seed=world.seed)
        assert corpus.positives, "lists must label some anti-adblock scripts"
        assert 5.0 <= corpus.imbalance <= 12.0

        detector = AntiAdblockDetector(
            DetectorConfig(feature_set="keyword", top_k=500)
        )
        detector.fit(corpus.sources(), corpus.labels())
        metrics = detector.score(corpus.sources(), corpus.labels())
        assert metrics.tp_rate > 0.9
        assert metrics.fp_rate < 0.15


class TestLiveCrawlIntegration:
    def test_live_crawl_shape(self, world, histories):
        result = LiveCrawler(world, histories).crawl(check_html=False)
        assert result.crawled == world.config.live_top
        assert result.reachable >= 0.98 * result.crawled
        assert result.http_matches[AAK] > result.http_matches[CE]
        if result.http_matches[AAK]:
            assert result.third_party_share(AAK) >= 0.8
        assert result.matched_scripts
