"""Smoke/shape tests for every experiment driver at tiny scale."""

import pytest

from repro.experiments import fig1, fig2, fig3, fig5, fig6, fig7, sec33, sec43, table1, table2
from repro.experiments.context import AAK, CE, ExperimentContext
from repro.synthesis.world import WorldConfig


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(
        world=__import__("repro.synthesis.world", fromlist=["SyntheticWorld"]).SyntheticWorld(
            WorldConfig(n_sites=120, live_top=400)
        )
    )


class TestFig1:
    def test_run_and_render(self, ctx):
        result = fig1.run(ctx)
        text = fig1.render(result)
        assert "Figure 1(a): Anti-Adblock Killer" in text
        assert "Figure 1(b): Adblock Warning Removal List" in text
        assert "Figure 1(c): EasyList" in text

    def test_totals_never_decrease(self, ctx):
        result = fig1.run(ctx)
        for series in result.series.values():
            assert series.totals == sorted(series.totals)

    def test_awrl_html_heavy_easylist_http_heavy(self, ctx):
        result = fig1.run(ctx)
        assert result.stats["awrl"].html_percent > result.stats["easylist"].html_percent


class TestTable1:
    def test_buckets_complete(self, ctx):
        result = table1.run(ctx)
        for distribution in result.distributions.values():
            assert set(distribution.counts) == {"1-5K", "5K-10K", "10K-100K", "100K-1M", ">1M"}

    def test_render_has_total_row(self, ctx):
        assert "total" in table1.render(table1.run(ctx))


class TestFig2:
    def test_percentages_sum(self, ctx):
        result = fig2.run(ctx)
        for name in (AAK, CE):
            assert sum(result.percentages(name).values()) == pytest.approx(100.0)


class TestSec33:
    def test_overlap_counts_consistent(self, ctx):
        result = sec33.run(ctx)
        overlap = result.overlap
        assert overlap.first_in_a + overlap.first_in_b + overlap.same_day == overlap.overlap_count
        assert overlap.overlap_count <= min(result.domain_counts.values())


class TestFig3:
    def test_cdf_end_at_most_one(self, ctx):
        result = fig3.run(ctx)
        assert all(0 <= p <= 1 for _, p in result.cdf_points)


class TestFig5:
    def test_accounting_matches_crawl(self, ctx):
        result = fig5.run(ctx)
        crawl = ctx.crawl
        total_missing = sum(result.total_missing(m) for m in result.by_month)
        non_usable = sum(
            1
            for record in crawl.records
            if not record.usable and record.status.value != "excluded"
        )
        assert total_missing == non_usable


class TestFig6:
    def test_series_aligned(self, ctx):
        result = fig6.run(ctx)
        assert set(result.http_series[AAK]) == set(result.http_series[CE])

    def test_aak_geq_ce_at_end(self, ctx):
        result = fig6.run(ctx)
        assert result.final_http(AAK) >= result.final_http(CE)


class TestFig7:
    def test_fractions_bounded(self, ctx):
        result = fig7.run(ctx)
        for name in (AAK, CE):
            assert 0.0 <= result.fraction_before(name) <= result.fraction_within(name, 10**6)


class TestSec43:
    def test_rates(self, ctx):
        result = sec43.run(ctx)
        assert 0 <= result.http_rate(AAK) <= 1
        assert result.live.reachable <= result.live.crawled


class TestTable2:
    def test_rows_nonempty(self, ctx):
        result = table2.run(ctx)
        rows = result.rows()
        assert rows
        assert any("clientHeight" in feature for feature, _ in rows)
