"""Tests for the ``python -m repro`` entry point."""

import subprocess
import sys
from pathlib import Path

from repro.__main__ import EXPERIMENTS, main

#: The repo's ``src/`` directory; the CLI subprocess needs it importable.
SRC_DIR = Path(__file__).resolve().parents[1] / "src"


class TestMain:
    def test_no_args_lists_experiments(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_unknown_experiment_rejected(self, capsys):
        assert main(["nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_help_flag(self, capsys):
        assert main(["--help"]) == 0

    def test_runs_a_cheap_experiment(self):
        """table2 has no crawl dependency — run it through the real CLI."""
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "table2"],
            capture_output=True,
            text=True,
            env={
                "REPRO_SCALE": "0.01",
                "PATH": "/usr/bin:/bin",
                "PYTHONPATH": str(SRC_DIR),
            },
        )
        assert completed.returncode == 0
        assert "Table 2" in completed.stdout
