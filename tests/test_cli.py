"""Tests for the ``python -m repro`` entry point."""

import json
import subprocess
import sys
from pathlib import Path

from repro.__main__ import EXPERIMENTS, _parse_args, main
from repro.obs.manifest import validate_manifest

#: The repo's ``src/`` directory; the CLI subprocess needs it importable.
SRC_DIR = Path(__file__).resolve().parents[1] / "src"


class TestMain:
    def test_no_args_lists_experiments(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_unknown_experiment_rejected(self, capsys):
        assert main(["nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_help_flag(self, capsys):
        assert main(["--help"]) == 0

    def test_runs_a_cheap_experiment(self):
        """table2 has no crawl dependency — run it through the real CLI."""
        completed = subprocess.run(
            [sys.executable, "-m", "repro", "table2"],
            capture_output=True,
            text=True,
            env={
                "REPRO_SCALE": "0.01",
                "PATH": "/usr/bin:/bin",
                "PYTHONPATH": str(SRC_DIR),
            },
        )
        assert completed.returncode == 0
        assert "Table 2" in completed.stdout


class TestFlagParsing:
    def test_defaults(self):
        opts = _parse_args(["fig6", "sec43"])
        assert opts["names"] == ["fig6", "sec43"]
        assert not opts["trace"]
        assert opts["metrics_out"] is None
        assert opts["verbosity"] == 0

    def test_observability_flags(self):
        opts = _parse_args(["--trace", "--metrics-out=run.json", "-v", "fig6"])
        assert opts["trace"]
        assert opts["metrics_out"] == "run.json"
        assert opts["verbosity"] == 1
        assert opts["names"] == ["fig6"]

    def test_metrics_out_with_separate_path(self):
        assert _parse_args(["--metrics-out", "x.json"])["metrics_out"] == "x.json"

    def test_quiet_and_double_verbose(self):
        assert _parse_args(["-q"])["verbosity"] == -1
        assert _parse_args(["-vv"])["verbosity"] == 2

    def test_unknown_option_rejected(self, capsys):
        assert main(["--frobnicate", "table2"]) == 2
        assert "unknown option" in capsys.readouterr().err

    def test_metrics_out_requires_path(self, capsys):
        assert main(["table2", "--metrics-out"]) == 2
        assert "--metrics-out" in capsys.readouterr().err


class TestManifestRun:
    def test_traced_run_writes_valid_manifest(self, tmp_path):
        """The acceptance-path CLI: traced run + manifest + artifacts."""
        out = tmp_path / "run.json"
        completed = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "--trace",
                f"--metrics-out={out}",
                "table2",
            ],
            capture_output=True,
            text=True,
            env={
                "REPRO_SCALE": "0.01",
                "PATH": "/usr/bin:/bin",
                "PYTHONPATH": str(SRC_DIR),
            },
        )
        assert completed.returncode == 0, completed.stderr
        assert "Table 2" in completed.stdout  # artifact output unchanged
        assert "[trace]" in completed.stderr  # span tree on stderr

        manifest = json.loads(out.read_text())
        assert validate_manifest(manifest) == []
        assert manifest["experiments"] == ["table2"]
        assert "table2" in manifest["artifacts"]
        assert manifest["config"]["scale"] == 0.01
        assert any(
            span["name"] == "experiment:table2" for span in manifest["spans"]
        )

        events = [
            json.loads(line)
            for line in (tmp_path / "run.jsonl").read_text().splitlines()
        ]
        kinds = [event["event"] for event in events]
        assert kinds[0] == "run_start"
        assert kinds[-1] == "run_end"
        assert "artifact" in kinds
        assert "span_start" in kinds and "span_end" in kinds

    def test_stage_observability_in_manifest(self, tmp_path):
        """Stages carry peak-RSS and CPU-utilization readings (satellite b)."""
        out = tmp_path / "run.json"
        completed = subprocess.run(
            [sys.executable, "-m", "repro", f"--metrics-out={out}", "fig1"],
            capture_output=True,
            text=True,
            env={
                "REPRO_SCALE": "0.01",
                "PATH": "/usr/bin:/bin",
                "PYTHONPATH": str(SRC_DIR),
            },
        )
        assert completed.returncode == 0, completed.stderr
        manifest = json.loads(out.read_text())
        assert validate_manifest(manifest) == []
        stages = {stage["name"]: stage for stage in manifest["stages"]}
        assert "lists" in stages
        attrs = stages["lists"]["attributes"]
        assert attrs["cpu_util"] >= 0.0
        assert attrs["max_rss_kb"] > 0  # Linux/macOS both report getrusage
        gauges = manifest["metrics"]["gauges"]
        assert gauges["stage.lists.max_rss_kb"] > 0
        assert "stage.lists.cpu_util" in gauges


class TestRuleReportRun:
    def test_rulereport_writes_rules_section_and_histograms(self, tmp_path):
        """`rulereport` end to end: v2 manifest with rule stats (satellite f)."""
        out = tmp_path / "run.json"
        completed = subprocess.run(
            [sys.executable, "-m", "repro", f"--metrics-out={out}", "rulereport"],
            capture_output=True,
            text=True,
            env={
                "REPRO_SCALE": "0.01",
                "REPRO_RULE_STATS": "1",
                "REPRO_RULE_STATS_DIR": str(tmp_path / "stats"),
                "PATH": "/usr/bin:/bin",
                "PYTHONPATH": str(SRC_DIR),
            },
        )
        assert completed.returncode == 0, completed.stderr
        assert '"Filter the filters"' in completed.stdout
        assert "== canonical JSON ==" in completed.stdout

        manifest = json.loads(out.read_text())
        assert validate_manifest(manifest) == []
        assert manifest["schema"] == "repro.run-manifest/2"
        assert manifest["config"]["rule_stats"] is True
        assert manifest["rules"]["totals"]["hits"] > 0
        assert manifest["rules"]["totals"]["calls"] > 0
        assert any(
            name.startswith("rules.cost.")
            for name in manifest["metrics"]["histograms"]
        )
        # The cross-run accumulator got this run's payload.
        stored = list((tmp_path / "stats").glob("rulestats-*.json"))
        assert len(stored) == 1
        payload = json.loads(stored[0].read_text())["payload"]
        assert payload["lists"]
