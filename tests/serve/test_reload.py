"""Epoch-swap hot reload: O(delta) swaps that never drop a query."""

import threading

from repro.serve.reload import EpochChain, partition_rule_lines

NETWORK_LINES = ["||ads.example.com^", "||tracker.example/pixel.gif"]
ELEMENT_LINES = ["##.adsbox"]


def make_chain(stub_detector):
    network, element, _ = partition_rule_lines(NETWORK_LINES + ELEMENT_LINES)
    return EpochChain(stub_detector, network, element)


class TestPartition:
    def test_splits_and_skips(self):
        network, element, skipped = partition_rule_lines(
            [
                "||ads.example.com^",
                "##.adsbox",
                "example.com##.banner",
                "! a comment",
                "[Adblock Plus 2.0]",
                "   ",
            ]
        )
        assert [r.raw for r in network] == ["||ads.example.com^"]
        assert [r.raw for r in element] == ["##.adsbox", "example.com##.banner"]
        assert skipped == 3


class TestEpochSwap:
    def test_reload_changes_answers(self, stub_detector):
        chain = make_chain(stub_detector)
        blocker = chain.current.online.adblocker
        assert blocker.should_block("https://ads.example.com/banner.js")
        assert not blocker.should_block("https://newads.example.net/unit.js")

        summary = chain.reload(["||newads.example.net^"], ["||ads.example.com^"])
        assert summary == {
            "epoch": 1, "added": 1, "removed": 1, "skipped": 0, "drained": True,
        }
        blocker = chain.current.online.adblocker
        assert not blocker.should_block("https://ads.example.com/banner.js")
        assert blocker.should_block("https://newads.example.net/unit.js")

    def test_reload_skips_junk_lines(self, stub_detector):
        chain = make_chain(stub_detector)
        summary = chain.reload(["! note", "||x.example^"], [])
        assert summary["added"] == 1
        assert summary["skipped"] == 1

    def test_element_rules_reload(self, stub_detector):
        chain = make_chain(stub_detector)
        chain.reload(["##.sponsor-wall"], ["##.adsbox"])
        raws = [r.raw for r in chain.current.online.adblocker._element_rules]
        assert "##.sponsor-wall" in raws
        assert "##.adsbox" not in raws

    def test_detector_and_verdict_cache_survive_swaps(self, stub_detector):
        chain = make_chain(stub_detector)
        chain.verdict_cache["digest"] = True
        chain.reload(["||x.example^"], [])
        assert chain.current.online.detector is stub_detector
        assert chain.current.online._verdict_cache is chain.verdict_cache

    def test_epoch_zero_has_empty_history(self, stub_detector):
        chain = make_chain(stub_detector)
        assert chain.current.index == 0
        assert chain.deltas == []


class TestDraining:
    def test_inflight_query_finishes_on_its_epoch(self, stub_detector):
        chain = make_chain(stub_detector)
        epoch = chain.acquire()  # a query in flight on epoch 0

        done = threading.Event()

        def reloader():
            chain.reload(["||y.example^"], [], wait=True, timeout=5.0)
            done.set()

        thread = threading.Thread(target=reloader, daemon=True)
        thread.start()
        # The swap is immediate: new queries land on epoch 1 while the
        # old query still holds epoch 0.
        for _ in range(100):
            if chain.current.index == 1:
                break
            threading.Event().wait(0.01)
        assert chain.current.index == 1
        assert not done.is_set()  # reloader is waiting on the drain
        assert epoch.online.adblocker.should_block("https://ads.example.com/a.js")

        epoch.release()
        assert done.wait(5.0)
        assert epoch.drained.is_set()
        assert chain.retired == 1

    def test_drain_timeout_reports_undrained(self, stub_detector):
        """A held epoch past the timeout: swap succeeds, drain honestly fails."""
        chain = make_chain(stub_detector)
        epoch = chain.acquire()  # held across the whole reload
        summary = chain.reload(["||w.example^"], [], wait=True, timeout=0.05)
        assert summary["drained"] is False
        assert chain.retired == 0  # not counted as retired until it drains
        assert chain.current.index == 1  # the swap itself still happened
        epoch.release()
        assert epoch.drained.wait(1.0)

    def test_draining_epoch_rejects_new_queries(self, stub_detector):
        chain = make_chain(stub_detector)
        old = chain.current
        chain.reload([], ["||ads.example.com^"])
        assert old.acquire() is False
        assert chain.acquire() is chain.current

    def test_acquire_retries_across_swap(self, stub_detector):
        chain = make_chain(stub_detector)
        for _ in range(3):
            chain.reload(["||z{0}.example^".format(chain.current.index)], [])
        epoch = chain.acquire()
        assert epoch.index == 3
        epoch.release()


class TestFoldTo:
    def test_worker_chain_replays_only_the_suffix(self, stub_detector):
        parent = make_chain(stub_detector)
        parent.reload(["||one.example^"], [])
        parent.reload(["||two.example^"], [])

        worker = make_chain(stub_detector)
        assert worker.fold_to(parent.deltas) == 2
        assert worker.current.index == 2
        assert worker.fold_to(parent.deltas) == 0  # idempotent

        parent.reload(["||three.example^"], [])
        assert worker.fold_to(parent.deltas) == 1
        blocker = worker.current.online.adblocker
        assert blocker.should_block("https://three.example/x.js")
