"""The load generator: deterministic streams and honest summaries."""

from repro.serve.batcher import ServeEngine
from repro.serve.loadgen import DEFAULT_MIX, generate_queries, run_inprocess


class TestDeterminism:
    def test_same_seed_same_queries(self):
        assert generate_queries(5, 200) == generate_queries(5, 200)

    def test_different_seeds_differ(self):
        assert generate_queries(5, 200) != generate_queries(6, 200)

    def test_scripts_are_unique_within_a_stream(self):
        queries = generate_queries(7, 400)
        sources = [q["source"] for q in queries if q["op"] == "script"]
        assert len(sources) == len(set(sources))  # every one a cache miss

    def test_mix_roughly_respected(self):
        queries = generate_queries(8, 1000)
        counts = {"url": 0, "script": 0, "page": 0}
        for query in queries:
            counts[query["op"]] += 1
        for weight, op in zip(DEFAULT_MIX, ("url", "script", "page")):
            assert abs(counts[op] / 1000 - weight) < 0.08


class TestInprocessHarness:
    def test_summary_shape_and_zero_errors(self, serve_state):
        engine = ServeEngine(serve_state.build_chain())
        summary = run_inprocess(engine, generate_queries(9, 40), batch_size=16)
        assert summary["queries"] == 40
        assert summary["errors"] == 0
        assert summary["qps"] > 0
        assert summary["p50_ns"] <= summary["p99_ns"]

    def test_naive_mode_answers_identically(self, serve_state):
        queries = generate_queries(10, 24)
        batched_engine = ServeEngine(serve_state.build_chain())
        naive_engine = ServeEngine(serve_state.build_chain())
        batched = run_inprocess(batched_engine, queries, batched=True)
        naive = run_inprocess(naive_engine, queries, batched=False)
        assert batched["errors"] == naive["errors"] == 0
        assert batched["queries"] == naive["queries"] == 24
