"""The TCP daemon end to end: ops, batch frames, hot reload under load."""

import threading

import pytest

from repro.obs.manifest import validate_manifest
from repro.obs.metrics import get_metrics
from repro.serve import protocol
from repro.serve.daemon import ServeDaemon, build_engine
from repro.serve.loadgen import generate_queries


@pytest.fixture
def daemon(serve_state):
    instance = ServeDaemon(build_engine(serve_state, workers=0), port=0)
    host, port = instance.start()
    yield instance
    instance.stop()


@pytest.fixture
def client(daemon):
    with protocol.ServeClient(daemon.host, daemon.port, timeout=30.0) as c:
        yield c


class TestQueryOps:
    def test_url_query(self, client):
        answer = client.ask(protocol.url_query("https://example.com/app.css"))
        assert answer["ok"] is True
        assert isinstance(answer["blocked"], bool)

    def test_script_query(self, client):
        answer = client.ask(protocol.script_query("var benign = 1;"))
        assert answer["ok"] is True
        assert isinstance(answer["flagged"], bool)

    def test_page_query(self, client):
        page = generate_queries(21, 60)
        page = next(q for q in page if q["op"] == "page")
        answer = client.ask(page)
        assert answer["ok"] is True
        assert set(answer["result"]) == {
            "url",
            "blocked_by_rules",
            "blocked_by_model",
            "flagged_inline",
            "hidden_elements",
        }

    def test_pipelined_queries_answer_in_order(self, client):
        queries = generate_queries(22, 20)
        answers = client.ask_many(queries)
        assert len(answers) == 20
        assert all(a["ok"] for a in answers)
        assert [a["op"] for a in answers] == [q["op"] for q in queries]

    def test_batch_frame(self, client):
        queries = generate_queries(23, 12)
        response = client.ask(protocol.batch_query(queries))
        assert response["ok"] is True
        answers = response["answers"]
        assert [a["op"] for a in answers] == [q["op"] for q in queries]
        # One frame, twelve queries, all counted.
        assert get_metrics().counter("serve.queries") == 12

    def test_batch_frame_rejects_control_ops(self, client):
        response = client.ask(protocol.batch_query([{"op": "shutdown"}]))
        assert response["ok"] is False
        assert "batch" in response["error"]

    def test_bad_line_answers_error_and_keeps_connection(self, client):
        client._file.write(b"this is not json\n")
        client._file.flush()
        error = client._file.readline()
        assert b'"ok":false' in error.replace(b" ", b"")
        answer = client.ask(protocol.url_query("https://example.com/x"))
        assert answer["ok"] is True


class TestControlOps:
    def test_health(self, client):
        answer = client.ask({"op": "health"})
        assert answer["ok"] is True
        assert answer["status"] == "ok"
        assert answer["epoch"] == 0
        assert answer["dropped"] == 0
        assert answer["rules"] > 0

    def test_metrics_after_queries(self, client):
        client.ask(protocol.url_query("https://example.com/y.js"))
        answer = client.ask({"op": "metrics"})
        assert answer["ok"] is True
        counters = answer["metrics"]["counters"]
        assert counters["serve.queries"] >= 1
        assert "latency_ns" in answer["metrics"]

    def test_reload_over_tcp(self, client):
        probe = protocol.url_query(
            "https://flashnews-tracker.example/ad.js", resource_type="script"
        )
        assert client.ask(probe)["blocked"] is False
        answer = client.ask(
            protocol.reload_request(["||flashnews-tracker.example^"], [])
        )
        assert answer["ok"] is True
        assert answer["epoch"] == 1
        assert client.ask(probe)["blocked"] is True
        assert client.ask({"op": "health"})["epoch"] == 1

    def test_shutdown_stops_the_daemon(self, daemon):
        with protocol.ServeClient(daemon.host, daemon.port) as c:
            answer = c.ask({"op": "shutdown"})
        assert answer["ok"] is True
        assert daemon.wait(10.0)

    def test_serve_section_validates_in_a_manifest(self, daemon, client, tmp_path):
        from repro.obs.manifest import RunManifest

        client.ask(protocol.url_query("https://example.com/z.js"))
        manifest = RunManifest(tmp_path / "run.json")
        data = manifest.finalize(
            seed=0, extra={"serve": daemon.serve_section()}
        )
        assert validate_manifest(data) == []
        assert data["serve"]["queries"] >= 1


class TestPooledDaemon:
    def test_pooled_burst_answers_promptly(self, serve_state):
        """End-to-end pooled path (REPRO_SERVE_WORKERS>=2 equivalent).

        A burst whose final batch is pending in a pool worker must be
        answered as soon as the worker finishes — pre-fix the collector
        only delivered it on the next batch, so the lone synchronous
        client stalled into the daemon's 60s dispatch timeout.
        """
        import time

        engine = build_engine(serve_state, workers=2)
        if engine.pool is None:
            pytest.skip("fork start method unavailable")
        daemon = ServeDaemon(engine, port=0)
        daemon.start()
        try:
            queries = generate_queries(41, 24)
            with protocol.ServeClient(daemon.host, daemon.port, timeout=30.0) as c:
                t0 = time.monotonic()
                response = c.ask(protocol.batch_query(queries))
                single = c.ask(protocol.url_query("https://example.com/app.js"))
                elapsed = time.monotonic() - t0
        finally:
            daemon.stop()
        assert response["ok"] is True
        assert len(response["answers"]) == 24
        assert all(a["ok"] for a in response["answers"])
        assert single["ok"] is True
        assert get_metrics().counter("serve.pool_batches") >= 1
        assert elapsed < 20.0


class TestReloadUnderLoad:
    def test_no_query_dropped_across_swaps(self, daemon):
        """Queries hammer the daemon while reloads swap epochs under them."""
        errors = []
        stop = threading.Event()

        def querier(seed):
            queries = generate_queries(seed, 40)
            with protocol.ServeClient(daemon.host, daemon.port, timeout=30.0) as c:
                index = 0
                while not stop.is_set() or index < 40:
                    if index >= 40:
                        break
                    answer = c.ask(queries[index])
                    if not answer.get("ok"):
                        errors.append(answer)
                    index += 1

        threads = [
            threading.Thread(target=querier, args=(seed,), daemon=True)
            for seed in (31, 32, 33)
        ]
        for thread in threads:
            thread.start()
        with protocol.ServeClient(daemon.host, daemon.port, timeout=30.0) as c:
            for round_no in range(3):
                answer = c.ask(
                    protocol.reload_request([f"||wave{round_no}.example^"], [])
                )
                assert answer["ok"] is True
        stop.set()
        for thread in threads:
            thread.join(30.0)

        assert errors == []
        metrics = get_metrics()
        assert metrics.counter("serve.dropped") == 0
        assert metrics.counter("serve.reloads") == 3
        assert daemon.engine.chain.current.index == 3
        assert daemon.engine.chain.retired == 3


class TestSatelliteFixes:
    def test_error_frame_arrives_without_a_follow_up(self, daemon):
        """A bad line's error frame must be flushed immediately — a client
        that stops pipelining after garbage cannot wait for the *next*
        response to push the buffered error out."""
        import socket as socket_module

        sock = socket_module.create_connection(
            (daemon.host, daemon.port), timeout=5.0
        )
        try:
            sock.sendall(b"this is not json\n")
            reader = sock.makefile("rb")
            line = reader.readline()  # raises timeout if unflushed
            assert b'"ok":false' in line.replace(b" ", b"")
        finally:
            sock.close()

    def test_health_reports_stopping_after_stop(self, serve_state):
        instance = ServeDaemon(build_engine(serve_state, workers=0), port=0)
        instance.start()
        assert instance.health()["status"] == "ok"
        instance.stop()
        assert instance.health()["status"] == "stopping"

    def test_health_and_serve_section_share_the_counter_quartet(self, daemon):
        from repro.serve.daemon import SERVE_COUNTERS

        health = daemon.health()
        section = daemon.serve_section()
        for name in SERVE_COUNTERS:
            assert health[name] == section[name]
