"""Serve CLI: flag parsing and error paths (no daemon booted here)."""

import pytest

from repro.serve.cli import _CliError, _loadgen_args, _serve_args, main


class TestServeArgs:
    def test_defaults(self):
        opts = _serve_args([])
        assert opts["host"] == "127.0.0.1"
        assert opts["port"] is None  # falls back to REPRO_SERVE_PORT
        assert opts["workers"] is None

    def test_both_flag_forms(self):
        opts = _serve_args(["--port", "8000", "--workers=4", "--wait-ms=0.5"])
        assert opts["port"] == 8000
        assert opts["workers"] == 4
        assert opts["wait_ms"] == 0.5

    def test_ready_and_metrics_files(self):
        opts = _serve_args(["--ready-file=/tmp/r.json", "--metrics-out", "/tmp/m.json"])
        assert opts["ready_file"] == "/tmp/r.json"
        assert opts["metrics_out"] == "/tmp/m.json"

    def test_unknown_flag_raises(self):
        with pytest.raises(_CliError):
            _serve_args(["--turbo"])

    def test_missing_value_raises(self):
        with pytest.raises(_CliError):
            _serve_args(["--port"])


class TestLoadgenArgs:
    def test_defaults(self):
        opts = _loadgen_args([])
        assert opts["queries"] == 500
        assert opts["seed"] == 0
        assert opts["batch"] == 1

    def test_batch_and_count(self):
        opts = _loadgen_args(["-n", "100", "--batch=64", "--concurrency", "2"])
        assert opts["queries"] == 100
        assert opts["batch"] == 64
        assert opts["concurrency"] == 2

    def test_shutdown_flag(self):
        assert _loadgen_args(["--shutdown"])["shutdown"] is True


class TestMainDispatch:
    def test_bad_option_exits_2(self, capsys):
        assert main(["--turbo"]) == 2
        assert "turbo" in capsys.readouterr().err

    def test_help_exits_0(self, capsys):
        assert main(["--help"]) == 0
        assert "loadgen" in capsys.readouterr().out

    def test_loadgen_help_exits_0(self, capsys):
        assert main(["loadgen", "--help"]) == 0
        capsys.readouterr()

    def test_loadgen_bad_count_exits_2(self, capsys):
        assert main(["loadgen", "-n", "ten"]) == 2
        capsys.readouterr()
