"""ServeClient against dying endpoints: refused, killed mid-session, retried."""

import os
import signal
import socket
import time

import pytest

from repro.serve import protocol
from repro.serve.loadgen import generate_queries, run_network
from repro.serve.shard import ShardSupervisor
from repro.serve.snapshot import write_snapshot


@pytest.fixture(scope="module")
def snapshot_path(serve_state, tmp_path_factory):
    path = tmp_path_factory.mktemp("failures") / "serve-snapshot.rdpk"
    write_snapshot(path, serve_state)
    return path


def _free_port() -> int:
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]
    finally:
        probe.close()


class TestConnectionRefused:
    def test_connect_to_closed_port_raises(self):
        with pytest.raises(OSError):
            protocol.ServeClient("127.0.0.1", _free_port(), timeout=5.0)


class TestPeerVanishes:
    def test_mid_session_shard_kill_raises_connection_error(self, snapshot_path):
        """A client whose shard is SIGKILLed gets a clean ConnectionError,
        not a hang — the contract the loadgen's retry loop builds on."""
        supervisor = ShardSupervisor(
            snapshot_path, shards=1, port=0, restart=False
        )
        try:
            host, port = supervisor.start()
            client = protocol.ServeClient(host, port, timeout=10.0)
            try:
                assert client.ask(
                    protocol.url_query("https://example.com/a.js")
                )["ok"] is True
                os.kill(supervisor.shard_pids()[0], signal.SIGKILL)
                with pytest.raises((ConnectionError, OSError)):
                    # The kernel may take a round trip to surface the
                    # death; either the write or the read must raise.
                    for _ in range(10):
                        client.ask(protocol.url_query("https://example.com/b.js"))
                        time.sleep(0.1)
            finally:
                client.close()
        finally:
            supervisor.stop()

    def test_fresh_connection_reaches_respawned_shard(self, snapshot_path):
        """Reconnect-and-retry against the supervisor port: after a kill,
        a new connection lands on the respawned shard and succeeds."""
        supervisor = ShardSupervisor(snapshot_path, shards=1, port=0)
        try:
            host, port = supervisor.start()
            victim = supervisor.shard_pids()[0]
            os.kill(victim, signal.SIGKILL)
            query = protocol.url_query("https://example.com/c.js")
            deadline = time.monotonic() + 60.0
            answer = None
            while time.monotonic() < deadline:
                try:
                    with protocol.ServeClient(host, port, timeout=10.0) as client:
                        answer = client.ask(query)
                    break
                except OSError:
                    time.sleep(0.2)
            assert answer is not None and answer["ok"] is True
            assert supervisor.shard_pids()[0] != victim
        finally:
            supervisor.stop()


class TestLoadgenRetry:
    def test_burst_with_mid_burst_kill_has_zero_protocol_errors(
        self, snapshot_path
    ):
        """The CI smoke invariant: kill a shard under load and the loadgen
        still answers every query (reconnects, never errors)."""
        import threading

        supervisor = ShardSupervisor(snapshot_path, shards=2, port=0)
        try:
            host, port = supervisor.start()
            victim = supervisor.shard_pids()[0]

            def killer():
                time.sleep(0.3)
                os.kill(victim, signal.SIGKILL)

            thread = threading.Thread(target=killer, daemon=True)
            thread.start()
            summary = run_network(
                host,
                port,
                generate_queries(29, 120),
                concurrency=4,
                batch_size=4,
                timeout=120.0,
                shards=2,
            )
            thread.join(10.0)
            assert summary["errors"] == 0
            assert summary["unanswered"] == 0
            assert summary["timed_out"] is False
        finally:
            supervisor.stop()
