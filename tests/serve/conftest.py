"""Shared serve fixtures: one small trained state for the whole session."""

import pytest

from repro.experiments.context import ExperimentContext
from repro.obs.metrics import reset_metrics
from repro.serve.daemon import resolve_serve_state

SCALE = 0.02


@pytest.fixture(autouse=True)
def _fresh_metrics():
    reset_metrics()
    yield
    reset_metrics()


@pytest.fixture(scope="session")
def serve_state():
    """The resolved serving state at test scale (detector + rule lines)."""
    ctx = ExperimentContext.create(scale=SCALE)
    return resolve_serve_state(ctx)


class StubDetector:
    """A predict-only stand-in for reload/batcher tests that never need
    the real model: flags any source containing ``BAIT``."""

    def predict(self, sources):
        return ["BAIT" in source for source in sources]


@pytest.fixture
def stub_detector():
    return StubDetector()
