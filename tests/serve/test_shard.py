"""The shard supervisor end to end: one port, N processes, merged control."""

import os
import signal
import time

import pytest

from repro.serve import protocol
from repro.serve.batcher import answer_query
from repro.serve.loadgen import generate_queries, run_network
from repro.serve.shard import ShardSupervisor, reuse_port_available
from repro.serve.snapshot import write_snapshot


@pytest.fixture(scope="module")
def snapshot_path(serve_state, tmp_path_factory):
    path = tmp_path_factory.mktemp("shard") / "serve-snapshot.rdpk"
    write_snapshot(path, serve_state)
    return path


def _control(supervisor):
    return protocol.ServeClient("127.0.0.1", supervisor.control_port, timeout=30.0)


def _wait_for(predicate, timeout=30.0, interval=0.1):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestShardedServing:
    def test_lifecycle(self, snapshot_path, serve_state):
        """Boot 2 shards, query, merge, reload, kill, respawn, shut down.

        One flow instead of many small tests because every boot forks
        full daemon processes — the sequence also pins the ordering
        guarantees (a respawned shard replays the delta history).
        """
        supervisor = ShardSupervisor(snapshot_path, shards=2, port=0)
        try:
            host, port = supervisor.start()
            queries = generate_queries(11, 24)

            # -- queries on the shared port are byte-identical to offline --
            offline = serve_state.build_chain().current.online
            with protocol.ServeClient(host, port, timeout=30.0) as client:
                for query in queries[:12]:
                    expected = protocol.encode(answer_query(offline, query))
                    answer = client.ask(query)
                    answer.pop("shard", None)
                    assert protocol.encode(answer) == expected
                shard = client.ask({"op": "health"})["shard"]
                assert shard in (0, 1)

            # -- merged health on the control port ------------------------
            with _control(supervisor) as control:
                health = control.ask({"op": "health"})
            assert health["ok"] is True
            assert health["status"] == "ok"
            assert health["shards"] == 2
            assert health["shard_epochs"] == [0, 0]
            assert health["restarts"] == 0
            assert health["queries"] >= 12
            assert health["rules"] > 0

            # -- merged metrics with per-shard breakdown ------------------
            with _control(supervisor) as control:
                metrics = control.ask({"op": "metrics"})["metrics"]
            assert metrics["counters"]["serve.queries"] >= 12
            breakdown = [
                name
                for name in metrics["counters"]
                if name.startswith("serve.shard.")
            ]
            assert breakdown
            per_shard = sum(
                value
                for name, value in metrics["counters"].items()
                if name.startswith("serve.shard.") and name.endswith(".queries")
            )
            assert per_shard == metrics["counters"]["serve.queries"]
            assert "serve.latency_ns" in metrics["histograms"]

            # -- broadcast reload lands the same epoch everywhere ---------
            probe = protocol.url_query(
                "https://flashnews-tracker.example/ad.js", resource_type="script"
            )
            with _control(supervisor) as control:
                reloaded = control.ask(
                    protocol.reload_request(["||flashnews-tracker.example^"], [])
                )
            assert reloaded["ok"] is True
            assert reloaded["epoch"] == 1
            assert reloaded["drained"] is True
            assert [entry["epoch"] for entry in reloaded["shards"]] == [1, 1]
            assert all(entry["drained"] for entry in reloaded["shards"])
            # Every shard now blocks the probe (one connection per ask, so
            # the kernel spreads them across shards).
            for _ in range(6):
                with protocol.ServeClient(host, port, timeout=30.0) as client:
                    assert client.ask(probe)["blocked"] is True

            # -- queries sent to the control port are redirected ----------
            with _control(supervisor) as control:
                rejected = control.ask(protocol.url_query("https://x.example/a.js"))
            assert rejected["ok"] is False
            assert str(port) in rejected["error"]

            # -- a killed shard is respawned at the reloaded epoch --------
            victim = supervisor.shard_pids()[0]
            os.kill(victim, signal.SIGKILL)

            def respawned():
                with _control(supervisor) as control:
                    health = control.ask({"op": "health"})
                return (
                    health["restarts"] >= 1
                    and health["status"] == "ok"
                    and health["shard_epochs"] == [1, 1]
                )

            assert _wait_for(respawned, timeout=60.0)
            assert supervisor.shard_pids()[0] != victim
            # The respawn replayed the recorded delta: any shard the
            # kernel picks still blocks the reloaded rule.
            for _ in range(4):
                with protocol.ServeClient(host, port, timeout=30.0) as client:
                    assert client.ask(probe)["blocked"] is True

            # -- loadgen spreads connections across the shards ------------
            summary = run_network(
                host, port, queries, concurrency=2, batch_size=8, shards=2
            )
            assert summary["errors"] == 0
            assert summary["unanswered"] == 0
            assert summary["concurrency"] % 2 == 0
            assert summary["shards_hit"] >= 1

            # -- manifest section ----------------------------------------
            section = supervisor.serve_section()
            assert section["shards"] == 2
            assert section["shard_restarts"] >= 1
            assert section["queries"] >= 12

            # -- shutdown over the control port ---------------------------
            with _control(supervisor) as control:
                stopping = control.ask({"op": "shutdown"})
            assert stopping["ok"] is True
            assert supervisor.wait(30.0)
        finally:
            supervisor.stop()

    def test_single_shard_supervisor(self, snapshot_path):
        supervisor = ShardSupervisor(snapshot_path, shards=1, port=0)
        try:
            host, port = supervisor.start()
            with protocol.ServeClient(host, port, timeout=30.0) as client:
                answer = client.ask(protocol.url_query("https://example.com/a.js"))
                health = client.ask({"op": "health"})
            assert answer["ok"] is True
            assert health["shard"] == 0
        finally:
            supervisor.stop()

    def test_prefork_fallback_listener(self, snapshot_path):
        """Without SO_REUSEPORT the shards accept on one inherited socket."""
        supervisor = ShardSupervisor(
            snapshot_path, shards=2, port=0, reuse_port=False
        )
        try:
            host, port = supervisor.start()
            assert supervisor.reuse_port is False
            shards_seen = set()
            for _ in range(6):
                with protocol.ServeClient(host, port, timeout=30.0) as client:
                    answer = client.ask(protocol.url_query("https://example.com/b.js"))
                    assert answer["ok"] is True
                    shards_seen.add(client.ask({"op": "health"})["shard"])
            assert shards_seen  # at least one shard answered every time
        finally:
            supervisor.stop()

    def test_reuse_port_detection_matches_platform(self):
        import socket

        assert reuse_port_available() == hasattr(socket, "SO_REUSEPORT")

    def test_rejects_zero_shards(self, snapshot_path):
        with pytest.raises(ValueError):
            ShardSupervisor(snapshot_path, shards=0)
