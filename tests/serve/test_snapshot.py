"""The packed serving snapshot: round trip, integrity, parity, inspection."""

import json
import struct

import pytest

from repro.dataplane.format import (
    KIND_SNAPSHOT,
    DataPlaneError,
    inspect_header,
    pack_string_table,
    write_artifact,
)
from repro.serve import protocol
from repro.serve.batcher import answer_query
from repro.serve.daemon import ServeState
from repro.serve.loadgen import generate_queries
from repro.serve.snapshot import (
    SNAPSHOT_FILE_SCHEMA,
    SnapshotReader,
    read_state,
    write_snapshot,
)

from .conftest import StubDetector


@pytest.fixture
def stub_state():
    return ServeState(
        detector=StubDetector(),
        network_lines=["||ads.example^", "/banner/*$script", "! comment"],
        element_lines=["example.com##.adsbox", "##.sponsored-unicode-é"],
        seed=7,
    )


class TestRoundTrip:
    def test_lines_seed_and_detector_survive(self, stub_state, tmp_path):
        path = tmp_path / "snap.rdpk"
        written = write_snapshot(path, stub_state)
        assert written == path.stat().st_size
        state = read_state(path)
        assert state.network_lines == stub_state.network_lines
        assert state.element_lines == stub_state.element_lines
        assert state.seed == 7
        assert state.detector.predict(["BAIT here", "benign"]) == [True, False]

    def test_header_kind_is_snapshot(self, stub_state, tmp_path):
        path = tmp_path / "snap.rdpk"
        write_snapshot(path, stub_state)
        info = inspect_header(path)
        assert info["kind"] == "snapshot"

    def test_reader_is_lazy_and_closable(self, stub_state, tmp_path):
        path = tmp_path / "snap.rdpk"
        write_snapshot(path, stub_state)
        with SnapshotReader(path) as reader:
            assert reader.seed == 7
            assert reader.meta["network_lines"] == 3
            assert reader.network_lines()[0] == "||ads.example^"
        # The mapping is released: a second close is a no-op, not a leak.
        reader.close()

    def test_dataplane_inspect_summarises(self, stub_state, tmp_path, capsys):
        from repro.dataplane.__main__ import main

        path = tmp_path / "snap.rdpk"
        write_snapshot(path, stub_state)
        assert main(["inspect", str(path), "--json"]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["kind"] == "snapshot"
        assert info["network_lines"] == 3
        assert info["element_lines"] == 2
        assert info["detector_bytes"] > 0


class TestIntegrity:
    def test_corrupt_payload_fails_at_open(self, stub_state, tmp_path):
        path = tmp_path / "snap.rdpk"
        write_snapshot(path, stub_state)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(DataPlaneError):
            SnapshotReader(path)

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "other.rdpk"
        write_artifact(path, KIND_SNAPSHOT - 1, b"\x00\x00\x00\x00")
        with pytest.raises(DataPlaneError):
            SnapshotReader(path)

    def test_unknown_schema_rejected(self, tmp_path):
        meta = json.dumps({"schema": SNAPSHOT_FILE_SCHEMA + 1}).encode()
        payload = b"".join(
            (
                struct.pack("<I", len(meta)),
                meta,
                pack_string_table([]),
                pack_string_table([]),
            )
        )
        path = tmp_path / "future.rdpk"
        write_artifact(path, KIND_SNAPSHOT, payload)
        with pytest.raises(DataPlaneError):
            SnapshotReader(path)

    def test_truncated_meta_rejected(self, tmp_path):
        path = tmp_path / "short.rdpk"
        write_artifact(path, KIND_SNAPSHOT, b"\x01")
        with pytest.raises(DataPlaneError):
            SnapshotReader(path)


class TestOfflineParity:
    def test_snapshot_answers_byte_identical(self, serve_state, tmp_path):
        """A chain booted from the snapshot answers exactly like one booted
        from the graph-resolved state — the shard-parity invariant."""
        path = tmp_path / "snap.rdpk"
        write_snapshot(path, serve_state)
        original = serve_state.build_chain().current.online
        restored = read_state(path).build_chain().current.online
        for query in generate_queries(19, 40):
            expected = protocol.encode(answer_query(original, query))
            actual = protocol.encode(answer_query(restored, query))
            assert actual == expected
