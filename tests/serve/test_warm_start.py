"""Serve warm starts: a warm ``REPRO_RUN_CACHE`` boots the daemon's state
off disk with ZERO recomputed context stages — the PR's acceptance gate."""

import pytest

from repro.experiments.context import ExperimentContext
from repro.obs.metrics import get_metrics, reset_metrics
from repro.serve.daemon import resolve_serve_state

SCALE = 0.02


@pytest.fixture
def cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RUN_CACHE", str(tmp_path))
    reset_metrics()
    return tmp_path


def fresh_ctx() -> ExperimentContext:
    return ExperimentContext.create(scale=SCALE)


class TestServeWarmStart:
    def test_warm_boot_recomputes_no_stage(self, cache):
        cold_ctx = fresh_ctx()
        cold = resolve_serve_state(cold_ctx)
        assert len(cold_ctx.stage_timings) > 0  # the cold boot did real work
        assert get_metrics().counter("graph.stores") >= 2

        reset_metrics()
        warm_ctx = fresh_ctx()
        warm = resolve_serve_state(warm_ctx)
        # Both serve nodes hit; no context stage materialised at all.
        assert warm_ctx.stage_timings == []
        assert get_metrics().counter("graph.hits") >= 2
        assert get_metrics().counter("graph.misses") == 0

        assert warm.network_lines == cold.network_lines
        assert warm.element_lines == cold.element_lines
        assert warm.seed == cold.seed

    def test_warm_detector_predicts_identically(self, cache):
        cold = resolve_serve_state(fresh_ctx())
        warm = resolve_serve_state(fresh_ctx())
        probes = [
            "var bait = document.createElement('div'); bait.className = 'adsbox';",
            "function render() { return 42; }",
            "if (document.getElementById('ad') === null) { showWall(); }",
        ]
        assert list(warm.detector.predict(probes)) == list(
            cold.detector.predict(probes)
        )

    def test_warm_chain_serves_queries(self, cache):
        resolve_serve_state(fresh_ctx())
        warm = resolve_serve_state(fresh_ctx())
        chain = warm.build_chain()
        assert chain.current.online.adblocker.rule_count == len(
            warm.network_lines
        ) + len(warm.element_lines)
