"""Wire protocol: framing, validation, and lossless page serialisation."""

import pytest

from repro.serve import protocol
from repro.web.page import PageSnapshot, Script, Subresource


class TestFraming:
    def test_encode_decode_round_trip(self):
        for message in (
            protocol.url_query("https://ads.example/x.js"),
            protocol.script_query("var a = 1;"),
            protocol.reload_request(["||a.example^"], []),
            {"op": "health"},
            {"op": "metrics"},
            {"op": "shutdown"},
        ):
            assert protocol.decode_line(protocol.encode(message)) == message

    def test_frames_are_single_lines(self):
        frame = protocol.encode(protocol.script_query("line1\nline2"))
        assert frame.endswith(b"\n")
        assert frame.count(b"\n") == 1  # newlines inside strings are escaped

    def test_empty_line_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_line("   \n")

    def test_garbage_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_line(b"{not json")

    def test_non_object_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_line(b'["op", "url"]')

    def test_unknown_op_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_line(b'{"op": "teleport"}')


class TestBatchFrames:
    def test_batch_round_trip(self):
        message = protocol.batch_query(
            [protocol.url_query("https://a.example/x"), protocol.script_query("1;")]
        )
        decoded = protocol.decode_line(protocol.encode(message))
        assert decoded["op"] == protocol.BATCH_OP
        assert len(decoded["queries"]) == 2

    def test_batch_requires_query_array(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_line(b'{"op": "batch"}')
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_line(b'{"op": "batch", "queries": "all"}')


class TestPageSerialisation:
    def _snapshot(self):
        return PageSnapshot(
            url="https://news.example/story",
            html="<html><body><div class='adsbox'>x</div></body></html>",
            subresources=[
                Subresource(url="https://cdn.example/ad.js", resource_type="script", size=512)
            ],
            scripts=[Script(source="var x = 1;", url="https://cdn.example/app.js")],
        )

    def test_round_trip_preserves_fields(self):
        wire = protocol.snapshot_to_wire(self._snapshot())
        back = protocol.snapshot_from_wire(wire)
        assert back.url == "https://news.example/story"
        assert back.subresources[0].resource_type == "script"
        assert back.subresources[0].size == 512
        assert back.scripts[0].source == "var x = 1;"
        assert protocol.snapshot_to_wire(back) == wire

    def test_wire_form_survives_framing(self):
        query = protocol.page_query(self._snapshot())
        decoded = protocol.decode_line(protocol.encode(query))
        assert decoded == query

    def test_missing_url_rejected(self):
        with pytest.raises(protocol.ProtocolError):
            protocol.snapshot_from_wire({"html": "<html></html>"})


class TestResponses:
    def test_ok_response_carries_fields(self):
        response = protocol.ok_response("url", blocked=True)
        assert response == {"ok": True, "op": "url", "blocked": True}

    def test_error_response_keeps_connection_semantics(self):
        response = protocol.error_response("boom", "script")
        assert response["ok"] is False
        assert response["error"] == "boom"
        assert response["op"] == "script"
