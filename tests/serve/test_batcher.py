"""The RequestBatcher's collector loop against a fake pool engine.

The pooled path pipelines: batch N scores in a worker while batch N+1
fills. The regression pinned here is the end of a burst — the final
batch's future is pending, every synchronous client is blocked on its
answers, so no new query will ever arrive to wake the collector. The
collector must deliver a pending future as soon as it completes, not
when the next batch (never) shows up.
"""

import threading
import time

from repro.serve.batcher import RequestBatcher


def _answers(queries):
    return [{"ok": True, "op": q.get("op")} for q in queries]


class _FakeFuture:
    """Resolves to the batch's answers after a worker-like delay."""

    def __init__(self, queries, delay):
        self._queries = queries
        self._event = threading.Event()
        timer = threading.Timer(delay, self._event.set)
        timer.daemon = True
        timer.start()

    def done(self):
        return self._event.is_set()

    def result(self, timeout=None):
        self._event.wait(timeout)
        return _answers(self._queries)


class FakePoolEngine:
    """Engine double whose submit path completes off-thread, like a pool."""

    def __init__(self, delay=0.05):
        self.delay = delay
        self.pool_batches = 0
        self.inline_batches = 0

    def submit_batch(self, queries):
        return _FakeFuture(list(queries), self.delay)

    def collect(self, future):
        self.pool_batches += 1
        return future.result()

    def answer_batch(self, queries, batched=True):
        self.inline_batches += 1
        return _answers(queries)


def _queries(count):
    return [{"op": "url", "url": f"https://x.example/{i}"} for i in range(count)]


class TestPipelinedDelivery:
    def test_final_pending_batch_delivers_without_new_traffic(self):
        """One full batch, no successor: the stall the 60s timeout used to eat."""
        engine = FakePoolEngine(delay=0.05)
        batcher = RequestBatcher(engine, batch_size=4, wait_ms=1.0)
        batcher.start()
        try:
            t0 = time.monotonic()
            answers = batcher.ask_many(_queries(4), timeout=5.0)
            elapsed = time.monotonic() - t0
        finally:
            batcher.close()
        assert [a["ok"] for a in answers] == [True] * 4
        assert engine.pool_batches == 1
        # Pre-fix this stalled until the ask_many timeout and answered
        # "query timed out in queue"; post-fix it is delay-bound.
        assert elapsed < 2.0

    def test_burst_spanning_batches_answers_in_order(self):
        engine = FakePoolEngine(delay=0.02)
        batcher = RequestBatcher(engine, batch_size=4, wait_ms=1.0)
        batcher.start()
        try:
            queries = _queries(10)
            answers = batcher.ask_many(queries, timeout=5.0)
        finally:
            batcher.close()
        assert len(answers) == 10
        assert all(a["ok"] for a in answers)
        assert engine.pool_batches == 3  # 4 + 4 + 2, all via the pool

    def test_close_flushes_a_pending_future(self):
        engine = FakePoolEngine(delay=0.05)
        batcher = RequestBatcher(engine, batch_size=4, wait_ms=1.0)
        batcher.start()
        result = {}

        def client():
            result["answers"] = batcher.ask_many(_queries(4), timeout=5.0)

        thread = threading.Thread(target=client, daemon=True)
        thread.start()
        time.sleep(0.02)  # let the batch get collected and submitted
        batcher.close()
        thread.join(5.0)
        assert [a["ok"] for a in result["answers"]] == [True] * 4
