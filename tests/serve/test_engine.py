"""Engine parity: every serving path answers byte-identically to the
offline :class:`~repro.core.online.OnlineAdblocker`."""

import json

import pytest

from repro.core.online import OnlineAdblocker, source_digest
from repro.filterlist.parser import parse_filter_list
from repro.obs.metrics import get_metrics
from repro.serve.batcher import ServeEngine, answer_query, prewarm_verdicts
from repro.serve.daemon import build_engine
from repro.serve.loadgen import generate_queries

QUERY_COUNT = 48


def offline_reference(serve_state) -> OnlineAdblocker:
    """The offline construction: a plain adblocker over the same lines."""
    document = parse_filter_list(
        "\n".join(serve_state.network_lines + serve_state.element_lines),
        name="serve-subscription",
    )
    return OnlineAdblocker(serve_state.detector, [document])


def expected_answers(serve_state, queries):
    offline = offline_reference(serve_state)
    return [answer_query(offline, query) for query in queries]


def canonical(answers):
    return [json.dumps(a, sort_keys=True) for a in answers]


class TestParity:
    def test_naive_path_matches_offline(self, serve_state):
        queries = generate_queries(11, QUERY_COUNT)
        engine = ServeEngine(serve_state.build_chain())
        answers = []
        for query in queries:
            answers.extend(engine.answer_batch([query], batched=False))
        assert canonical(answers) == canonical(expected_answers(serve_state, queries))

    def test_batched_path_matches_offline(self, serve_state):
        queries = generate_queries(12, QUERY_COUNT)
        engine = ServeEngine(serve_state.build_chain())
        answers = engine.answer_batch(queries, batched=True)
        assert canonical(answers) == canonical(expected_answers(serve_state, queries))

    def test_pool_path_matches_offline(self, serve_state):
        queries = generate_queries(13, 32)
        engine = build_engine(serve_state, workers=2)
        if engine.pool is None:
            pytest.skip("fork start method unavailable")
        try:
            future = engine.submit_batch(queries)
            assert future is not None
            answers = engine.collect(future)
        finally:
            engine.pool.close()
        assert canonical(answers) == canonical(expected_answers(serve_state, queries))

    def test_answers_after_reload_match_fresh_offline(self, serve_state):
        engine = ServeEngine(serve_state.build_chain())
        added = ["||hotfix-tracker.example/ad.js"]
        engine.chain.reload(added, [])
        probe = {"op": "url", "url": "https://hotfix-tracker.example/ad.js",
                 "page_url": "", "resource_type": "script"}
        (answer,) = engine.answer_batch([probe])
        assert answer == {"ok": True, "op": "url", "blocked": True}


class TestPrewarm:
    def test_prewarm_fills_the_verdict_cache_once(self, serve_state):
        chain = serve_state.build_chain()
        queries = generate_queries(14, QUERY_COUNT)
        sources = {
            q["source"] for q in queries if q["op"] == "script"
        }
        warmed = prewarm_verdicts(chain.current.online, queries)
        assert warmed >= len(sources)  # page scripts add a few more
        for source in sources:
            assert source_digest(source) in chain.verdict_cache
        assert prewarm_verdicts(chain.current.online, queries) == 0

    def test_bad_queries_answer_error_frames(self, serve_state):
        engine = ServeEngine(serve_state.build_chain())
        answers = engine.answer_batch(
            [
                {"op": "url"},  # missing the url field
                {"op": "script"},  # missing the source field
                {"op": "page", "page": {"html": "<html></html>"}},  # no url
                {"op": "reload"},  # not a query op
            ]
        )
        assert [a["ok"] for a in answers] == [False, False, False, False]


class TestAccounting:
    def test_engine_counts_queries_and_batches(self, serve_state):
        engine = ServeEngine(serve_state.build_chain())
        engine.answer_batch(generate_queries(15, 16))
        metrics = get_metrics()
        assert metrics.counter("serve.queries") == 16
        assert metrics.counter("serve.batches") == 1
        assert metrics.counter("serve.prewarmed") > 0
