"""Tests for the CDX server simulator."""

from datetime import date

from repro.wayback.archive import ExclusionReason, WaybackArchive
from repro.wayback.cdx import CdxServer, _url_key
from repro.web.page import PageSnapshot


def build_archive():
    archive = WaybackArchive()
    for month in (1, 3, 5, 7):
        archive.store(
            "news.example.com" if False else "news.com",
            date(2015, month, 1),
            PageSnapshot(url="http://news.com/", html="<body>x</body>"),
        )
    archive.exclude("hidden.com", ExclusionReason.ROBOTS_TXT)
    return archive


class TestCdxQuery:
    def test_all_captures_oldest_first(self):
        server = CdxServer(build_archive())
        rows = server.query("http://news.com/")
        assert [row.capture_date.month for row in rows] == [1, 3, 5, 7]

    def test_reverse(self):
        server = CdxServer(build_archive())
        rows = server.query("http://news.com/", reverse=True)
        assert rows[0].capture_date.month == 7

    def test_date_window(self):
        server = CdxServer(build_archive())
        rows = server.query(
            "http://news.com/", from_date=date(2015, 2, 1), to_date=date(2015, 6, 1)
        )
        assert [row.capture_date.month for row in rows] == [3, 5]

    def test_limit(self):
        server = CdxServer(build_archive())
        assert len(server.query("http://news.com/", limit=2)) == 2

    def test_excluded_domain_empty(self):
        server = CdxServer(build_archive())
        assert server.query("http://hidden.com/") == []

    def test_unknown_domain_empty(self):
        server = CdxServer(build_archive())
        assert server.query("http://nobody.net/") == []

    def test_capture_count(self):
        server = CdxServer(build_archive())
        assert server.capture_count("http://news.com/") == 4

    def test_row_fields(self):
        server = CdxServer(build_archive())
        row = server.query("http://news.com/")[0]
        assert row.urlkey == "com,news)/"
        assert row.original == "http://news.com/"
        assert row.timestamp.startswith("20150101")
        assert "web.archive.org" in row.archive_url
        assert row.statuscode == 200
        assert row.length > 0

    def test_text_format(self):
        server = CdxServer(build_archive())
        text = server.text("http://news.com/", limit=1)
        parts = text.split()
        assert len(parts) == 6
        assert parts[0] == "com,news)/"

    def test_url_key_subdomain_collapses(self):
        assert _url_key("http://cdn.news.com/x") == "com,news)/"


class TestCdxAgainstWorld:
    def test_consistent_with_availability(self):
        from repro.synthesis.world import SyntheticWorld, WorldConfig
        from repro.wayback.availability import AvailabilityAPI

        world = SyntheticWorld(WorldConfig(n_sites=60, live_top=120))
        archive = world.build_archive()
        server = CdxServer(archive)
        api = AvailabilityAPI(archive)
        domain = archive.domains()[0]
        rows = server.query(f"http://{domain}/")
        assert rows, "an archived domain must have CDX rows"
        closest = api.lookup(f"http://{domain}/", rows[0].capture_date)
        non_redirect = [r for r in rows if r.statuscode < 300]
        if non_redirect:
            assert closest.available
