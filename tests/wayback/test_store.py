"""Tests for the on-disk crawl data repository."""

from datetime import date

import pytest

from repro.wayback.crawler import CrawlRecord, CrawlResult, CrawlStatus
from repro.wayback.store import DataRepository
from repro.web.har import HarFile
from repro.web.http import Exchange, Request, Response


def make_result():
    har = HarFile(page_url="http://a.com/")
    har.add(Exchange(request=Request(url="http://a.com/x.js"), response=Response(body="xx")))
    return CrawlResult(
        records=[
            CrawlRecord(
                domain="a.com",
                month=date(2015, 3, 1),
                status=CrawlStatus.OK,
                har=har,
                html="<body><div id='m'>hi</div></body>",
                capture_date=date(2015, 3, 4),
            ),
            CrawlRecord(
                domain="a.com", month=date(2015, 4, 1), status=CrawlStatus.OUTDATED
            ),
            CrawlRecord(
                domain="b.com", month=date(2015, 3, 1), status=CrawlStatus.NOT_ARCHIVED
            ),
        ]
    )


class TestDataRepository:
    def test_save_and_load_roundtrip(self, tmp_path):
        repo = DataRepository(tmp_path / "crawl")
        written = repo.save(make_result())
        assert written == 1
        loaded = repo.load()
        assert len(loaded.records) == 3
        ok = [r for r in loaded.records if r.status is CrawlStatus.OK]
        assert len(ok) == 1
        assert ok[0].har.request_urls() == ["http://a.com/x.js"]
        assert "id='m'" in ok[0].html
        assert ok[0].capture_date == date(2015, 3, 4)

    def test_statuses_preserved(self, tmp_path):
        repo = DataRepository(tmp_path)
        repo.save(make_result())
        loaded = repo.load()
        statuses = sorted(r.status.value for r in loaded.records)
        assert statuses == ["not archived", "ok", "outdated"]

    def test_file_layout(self, tmp_path):
        repo = DataRepository(tmp_path)
        repo.save(make_result())
        assert (tmp_path / "a.com" / "2015-03.har").exists()
        assert (tmp_path / "a.com" / "2015-03.html").exists()
        assert not (tmp_path / "a.com" / "2015-04.har").exists()

    def test_iter_hars(self, tmp_path):
        repo = DataRepository(tmp_path)
        repo.save(make_result())
        hars = list(repo.iter_hars())
        assert len(hars) == 1
        assert hars[0].page_url == "http://a.com/"

    def test_stats(self, tmp_path):
        repo = DataRepository(tmp_path)
        repo.save(make_result())
        stats = repo.stats()
        assert stats == {"domains": 1, "har_files": 1, "html_files": 1}

    def test_load_missing_index_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            DataRepository(tmp_path / "empty").load()

    def test_analysis_over_loaded_crawl(self, tmp_path):
        """A saved crawl must feed the coverage analyzer unchanged."""
        from repro.analysis.coverage import CoverageAnalyzer
        from repro.filterlist.history import FilterListHistory

        repo = DataRepository(tmp_path)
        repo.save(make_result())
        loaded = repo.load()
        history = FilterListHistory("L")
        history.add_revision(date(2014, 1, 1), "||a.com/x.js\n")
        coverage = CoverageAnalyzer({"L": history}).analyze(loaded)
        assert coverage.http_series["L"][date(2015, 3, 1)] == 1
