"""Tests for the on-disk crawl data repository."""

import json
import pickle
from datetime import date

import pytest

from repro.wayback.crawler import CrawlRecord, CrawlResult, CrawlStatus
from repro.wayback.store import INDEX_NAME, DataRepository
from repro.web.har import HarFile
from repro.web.http import Exchange, Request, Response


def make_result():
    har = HarFile(page_url="http://a.com/")
    har.add(Exchange(request=Request(url="http://a.com/x.js"), response=Response(body="xx")))
    return CrawlResult(
        records=[
            CrawlRecord(
                domain="a.com",
                month=date(2015, 3, 1),
                status=CrawlStatus.OK,
                har=har,
                html="<body><div id='m'>hi</div></body>",
                capture_date=date(2015, 3, 4),
            ),
            CrawlRecord(
                domain="a.com", month=date(2015, 4, 1), status=CrawlStatus.OUTDATED
            ),
            CrawlRecord(
                domain="b.com", month=date(2015, 3, 1), status=CrawlStatus.NOT_ARCHIVED
            ),
        ]
    )


class TestDataRepository:
    def test_save_and_load_roundtrip(self, tmp_path):
        repo = DataRepository(tmp_path / "crawl")
        written = repo.save(make_result())
        assert written == 1
        loaded = repo.load()
        assert len(loaded.records) == 3
        ok = [r for r in loaded.records if r.status is CrawlStatus.OK]
        assert len(ok) == 1
        assert ok[0].har.request_urls() == ["http://a.com/x.js"]
        assert "id='m'" in ok[0].html
        assert ok[0].capture_date == date(2015, 3, 4)

    def test_statuses_preserved(self, tmp_path):
        repo = DataRepository(tmp_path)
        repo.save(make_result())
        loaded = repo.load()
        statuses = sorted(r.status.value for r in loaded.records)
        assert statuses == ["not archived", "ok", "outdated"]

    def test_file_layout(self, tmp_path):
        repo = DataRepository(tmp_path)
        repo.save(make_result())
        assert (tmp_path / "a.com" / "2015-03.har").exists()
        assert (tmp_path / "a.com" / "2015-03.html").exists()
        assert not (tmp_path / "a.com" / "2015-04.har").exists()

    def test_iter_hars(self, tmp_path):
        repo = DataRepository(tmp_path)
        repo.save(make_result())
        hars = list(repo.iter_hars())
        assert len(hars) == 1
        assert hars[0].page_url == "http://a.com/"

    def test_stats(self, tmp_path):
        repo = DataRepository(tmp_path)
        repo.save(make_result())
        stats = repo.stats()
        assert stats == {"domains": 1, "har_files": 1, "html_files": 1}

    def test_load_missing_index_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            DataRepository(tmp_path / "empty").load()

    def test_save_leaves_no_tmp_files(self, tmp_path):
        repo = DataRepository(tmp_path)
        repo.save(make_result())
        assert not list(tmp_path.rglob("*.tmp*"))

    def test_resave_overwrites_index_atomically(self, tmp_path):
        repo = DataRepository(tmp_path)
        repo.save(make_result())
        first = repo.index_path.read_text()
        repo.save(make_result())
        assert repo.index_path.read_text() == first

    def test_corrupt_index_json_raises_value_error(self, tmp_path):
        repo = DataRepository(tmp_path)
        repo.save(make_result())
        repo.index_path.write_text("{ not json !!!", encoding="utf-8")
        with pytest.raises(ValueError, match="corrupt crawl index"):
            repo.load()

    def test_truncated_index_raises_value_error(self, tmp_path):
        repo = DataRepository(tmp_path)
        repo.save(make_result())
        raw = repo.index_path.read_text(encoding="utf-8")
        repo.index_path.write_text(raw[: len(raw) // 2], encoding="utf-8")
        with pytest.raises(ValueError, match="corrupt crawl index"):
            repo.load()

    def test_index_without_records_list_raises(self, tmp_path):
        repo = DataRepository(tmp_path)
        repo.root.mkdir(parents=True, exist_ok=True)
        repo.index_path.write_text(json.dumps({"records": "nope"}), encoding="utf-8")
        with pytest.raises(ValueError, match="no 'records' list"):
            repo.load()
        repo.index_path.write_text(json.dumps([1, 2]), encoding="utf-8")
        with pytest.raises(ValueError, match="no 'records' list"):
            repo.load()

    def test_missing_har_file_degrades_to_no_har(self, tmp_path):
        repo = DataRepository(tmp_path)
        repo.save(make_result())
        repo.har_path("a.com", date(2015, 3, 1)).unlink()
        loaded = repo.load()
        ok = [r for r in loaded.records if r.status is CrawlStatus.OK]
        assert ok[0].har is None
        assert "id='m'" in ok[0].html  # the HTML is still served

    def test_missing_html_file_degrades_to_empty_html(self, tmp_path):
        repo = DataRepository(tmp_path)
        repo.save(make_result())
        repo.html_path("a.com", date(2015, 3, 1)).unlink()
        loaded = repo.load()
        ok = [r for r in loaded.records if r.status is CrawlStatus.OK]
        assert ok[0].html == ""
        assert ok[0].har is not None

    def test_analysis_over_loaded_crawl(self, tmp_path):
        """A saved crawl must feed the coverage analyzer unchanged."""
        from repro.analysis.coverage import CoverageAnalyzer
        from repro.filterlist.history import FilterListHistory

        repo = DataRepository(tmp_path)
        repo.save(make_result())
        loaded = repo.load()
        history = FilterListHistory("L")
        history.add_revision(date(2014, 1, 1), "||a.com/x.js\n")
        coverage = CoverageAnalyzer({"L": history}).analyze(loaded)
        assert coverage.http_series["L"][date(2015, 3, 1)] == 1


class TestRequestTablePlane:
    """The packed request table must replay exactly like the HAR files."""

    def test_table_written_only_when_asked(self, tmp_path):
        repo = DataRepository(tmp_path / "off")
        repo.save(make_result(), request_table=False)
        assert not repo.table_path.exists()
        repo = DataRepository(tmp_path / "on")
        repo.save(make_result(), request_table=True)
        assert repo.table_path.exists()

    def test_data_plane_knob_is_the_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_DATA_PLANE", "1")
        repo = DataRepository(tmp_path)
        repo.save(make_result())
        assert repo.table_path.exists()

    def test_load_replay_matches_load(self, tmp_path):
        repo = DataRepository(tmp_path)
        repo.save(make_result(), request_table=True)
        loaded, replay = repo.load(), repo.load_replay()
        assert len(replay.records) == len(loaded.records)
        for full, packed in zip(loaded.records, replay.records):
            assert (packed.domain, packed.month, packed.status) == (
                full.domain,
                full.month,
                full.status,
            )
            assert packed.truncated_urls() == full.truncated_urls()
            assert packed.html == full.html
            assert packed.har is None  # no HAR JSON parsed on this path

    def test_load_replay_without_table_falls_back(self, tmp_path):
        repo = DataRepository(tmp_path)
        repo.save(make_result(), request_table=False)
        replay = repo.load_replay()
        ok = [r for r in replay.records if r.status is CrawlStatus.OK]
        assert ok[0].har is not None  # full load path


class TestRoundTripAtContextScale:
    """Whole-crawl round-trips: both planes, coverage digest-identical.

    Runs at the default ``REPRO_SCALE`` context; the 0.2-scale version of
    the same assertion lives in ``benchmarks/test_bench_dataplane.py``,
    where the large crawl doubles as the bench workload.
    """

    @pytest.fixture(scope="class")
    def ctx(self):
        from repro.experiments.context import ExperimentContext

        return ExperimentContext.create()

    def test_roundtrip_and_replay_are_digest_identical(self, ctx, tmp_path):
        from repro.analysis.coverage import CoverageAnalyzer

        repo = DataRepository(tmp_path)
        repo.save(ctx.crawl, request_table=True)
        loaded, replay = repo.load(), repo.load_replay()
        statuses = [r.status for r in ctx.crawl.records]
        assert [r.status for r in loaded.records] == statuses
        assert [r.status for r in replay.records] == statuses
        baseline = CoverageAnalyzer(ctx.histories).analyze(ctx.crawl)
        from_json = CoverageAnalyzer(ctx.histories).analyze(loaded)
        from_table = CoverageAnalyzer(ctx.histories).analyze(replay)
        # The two disk planes must be *byte*-identical to each other …
        assert pickle.dumps(from_json) == pickle.dumps(from_table)
        # … and value-equal to the in-memory crawl (pickle bytes of the
        # in-memory baseline can differ via object sharing in the crawl).
        assert from_json == baseline
        assert from_table == baseline
