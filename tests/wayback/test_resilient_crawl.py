"""Integration tests: resumable, fault-tolerant Wayback/live/corpus ingest.

The resilience contract under test (DESIGN/ISSUE): an interrupted crawl
resumed from its journal is **pickle-byte-identical** to an uninterrupted
run; transient faults retry to success; a persistently-failing domain
opens its circuit breaker and degrades to ``failed`` instead of aborting;
and all of it is metered.
"""

import pickle
from datetime import date

import pytest

from repro.analysis.coverage import CoverageAnalyzer
from repro.analysis.livecrawl import LiveCrawler
from repro.core.corpus import build_corpus
from repro.filterlist.matcher import NetworkMatcher
from repro.obs.metrics import get_metrics, reset_metrics
from repro.resilience import (
    FaultSchedule,
    JournalMismatch,
    ResiliencePolicy,
    RetryPolicy,
    slot_key,
)
from repro.synthesis.listgen import generate_all_lists
from repro.synthesis.world import SyntheticWorld, WorldConfig
from repro.wayback.crawler import CrawlStatus, WaybackCrawler

START, END = date(2013, 1, 1), date(2013, 12, 1)


@pytest.fixture(scope="module")
def world():
    config = WorldConfig(n_sites=15, live_top=60, start=START, end=END)
    return SyntheticWorld(config, seed=11)


@pytest.fixture(scope="module")
def archive(world):
    return world.build_archive()


@pytest.fixture(scope="module")
def domains(world):
    return [site.domain for site in world.sites]


def crawl(archive, domains, resilience=None):
    crawler = WaybackCrawler(archive, resilience=resilience)
    return crawler.crawl(domains, START, END)


class _Interrupted(Exception):
    """Simulates a crash: deliberately NOT a CrawlFault, so it must
    propagate straight through the retry machinery."""


class _InterruptingArchive:
    """Raises after ``after`` capture fetches, like a killed process."""

    def __init__(self, archive, after):
        self._archive = archive
        self._calls = 0
        self._after = after

    def closest(self, domain, requested):
        self._calls += 1
        if self._calls > self._after:
            raise _Interrupted()
        return self._archive.closest(domain, requested)

    def __getattr__(self, name):
        return getattr(self._archive, name)


class TestResumeDeterminism:
    def test_plain_crawl_is_pickle_deterministic(self, archive, domains):
        assert pickle.dumps(crawl(archive, domains)) == pickle.dumps(
            crawl(archive, domains)
        )

    def test_interrupted_then_resumed_is_pickle_identical(
        self, archive, domains, tmp_path
    ):
        baseline = crawl(archive, domains)
        with pytest.raises(_Interrupted):
            crawl(
                _InterruptingArchive(archive, after=60),
                domains,
                ResiliencePolicy(journal_dir=tmp_path),
            )
        reset_metrics()
        resumed = crawl(archive, domains, ResiliencePolicy(journal_dir=tmp_path))
        assert pickle.dumps(resumed) == pickle.dumps(baseline)
        assert get_metrics().counter("crawl.resumed_slots") > 0

    def test_downstream_coverage_unchanged_by_resume(
        self, world, archive, domains, tmp_path
    ):
        baseline = crawl(archive, domains)
        with pytest.raises(_Interrupted):
            crawl(
                _InterruptingArchive(archive, after=40),
                domains,
                ResiliencePolicy(journal_dir=tmp_path),
            )
        resumed = crawl(archive, domains, ResiliencePolicy(journal_dir=tmp_path))

        lists = generate_all_lists(world)
        histories = {"aak": lists["aak"], "ce": lists["combined_easylist"]}
        assert CoverageAnalyzer(histories).analyze(resumed) == CoverageAnalyzer(
            histories
        ).analyze(baseline)

    def test_completed_journal_reserves_the_whole_crawl(
        self, archive, domains, tmp_path
    ):
        baseline = crawl(archive, domains, ResiliencePolicy(journal_dir=tmp_path))

        class Untouchable:
            def is_excluded(self, domain):
                return archive.is_excluded(domain)

            def closest(self, domain, requested):  # pragma: no cover
                raise AssertionError("resume must not touch the archive")

        served = crawl(Untouchable(), domains, ResiliencePolicy(journal_dir=tmp_path))
        assert pickle.dumps(served) == pickle.dumps(baseline)

    def test_changed_campaign_refuses_stale_journal(
        self, archive, domains, tmp_path
    ):
        crawl(archive, domains, ResiliencePolicy(journal_dir=tmp_path))
        with pytest.raises(JournalMismatch):
            crawl(archive, domains[:-1], ResiliencePolicy(journal_dir=tmp_path))


class TestFaultInjection:
    def test_transient_faults_retry_to_the_clean_result(self, archive, domains):
        baseline = crawl(archive, domains)
        schedule = FaultSchedule(
            seed=3,
            transient_rate=0.10,
            timeout_rate=0.02,
            truncated_rate=0.02,
            permanent_rate=0.0,
        )
        reset_metrics()
        faulted = crawl(
            archive, domains, ResiliencePolicy(fault_schedule=schedule)
        )
        assert pickle.dumps(faulted) == pickle.dumps(baseline)
        assert get_metrics().counter("crawl.retries") > 0
        assert get_metrics().counter("crawl.backoff_ms") > 0

    def test_retry_count_is_deterministic(self, archive, domains):
        schedule = FaultSchedule(seed=9, permanent_rate=0.0)

        def retries():
            reset_metrics()
            crawl(archive, domains, ResiliencePolicy(fault_schedule=schedule))
            return get_metrics().counter("crawl.retries")

        assert retries() == retries() > 0

    def test_permanent_domain_opens_circuit_and_degrades(self, archive, domains):
        victim = domains[0]

        class OneDomainBroken(FaultSchedule):
            def plan(self, key):
                if key.startswith(victim + "|") or key == victim:
                    from repro.resilience.faults import FaultKind, FaultPlan

                    return FaultPlan(kind=FaultKind.PERMANENT)
                return None

        schedule = OneDomainBroken(seed=0)
        reset_metrics()
        result = crawl(
            archive,
            domains,
            ResiliencePolicy(
                retry=RetryPolicy(max_retries=1), fault_schedule=schedule
            ),
        )
        victim_records = [r for r in result.records if r.domain == victim]
        assert victim_records
        assert all(r.status is CrawlStatus.FAILED for r in victim_records)
        # Every other domain is untouched.
        other = [r for r in result.records if r.domain != victim]
        assert not any(r.status is CrawlStatus.FAILED for r in other)

        metrics = get_metrics()
        assert metrics.counter("crawl.circuit_open") == 1
        assert metrics.counter("crawl.gave_up") >= 3  # breaker threshold

        months = result.missing_counts_by_month()
        assert sum(bucket["failed"] for bucket in months.values()) == len(
            victim_records
        )

    def test_ten_percent_schedule_completes_without_raising(
        self, archive, domains
    ):
        schedule = FaultSchedule(seed=42)  # defaults: ~14.5% of slots faulted
        result = crawl(archive, domains, ResiliencePolicy(fault_schedule=schedule))
        assert len(result.records) == len(domains) * 12

    def test_faulted_interrupt_and_resume_is_pickle_identical(
        self, archive, domains, tmp_path
    ):
        schedule = FaultSchedule(seed=7)
        clean = crawl(archive, domains, ResiliencePolicy(fault_schedule=schedule))
        with pytest.raises(_Interrupted):
            crawl(
                _InterruptingArchive(archive, after=70),
                domains,
                ResiliencePolicy(journal_dir=tmp_path, fault_schedule=schedule),
            )
        resumed = crawl(
            archive,
            domains,
            ResiliencePolicy(journal_dir=tmp_path, fault_schedule=schedule),
        )
        assert pickle.dumps(resumed) == pickle.dumps(clean)


class TestLiveAndCorpusResume:
    def test_live_crawl_resumes_identically(self, world, tmp_path):
        lists = generate_all_lists(world)
        histories = {"aak": lists["aak"], "ce": lists["combined_easylist"]}
        baseline = LiveCrawler(world, histories).crawl()

        # Interrupt partway: journal half the ranks, then crash.
        crasher = LiveCrawler(world, histories)
        visited = {"n": 0}
        original = crasher._visit_site

        def bomb(ranked, check_html):
            visited["n"] += 1
            if visited["n"] > 20:
                raise _Interrupted()
            return original(ranked, check_html)

        crasher._visit_site = bomb
        with pytest.raises(_Interrupted):
            crasher.crawl(resilience=ResiliencePolicy(journal_dir=tmp_path))

        resumed = LiveCrawler(world, histories).crawl(
            resilience=ResiliencePolicy(journal_dir=tmp_path)
        )
        assert pickle.dumps(resumed) == pickle.dumps(baseline)

    def test_corpus_resumes_identically(self, world, tmp_path):
        lists = generate_all_lists(world)
        rules = lists["aak"].latest().filter_list.network_rules
        matcher = NetworkMatcher(rules)
        pages = [world.snapshot(site, END) for site in world.sites]

        baseline = build_corpus(pages, matcher, seed=world.seed)

        # First pass journals only a prefix of the pages ("crash" after).
        build_corpus(
            pages[:7],
            matcher,
            seed=world.seed,
            resilience=ResiliencePolicy(journal_dir=tmp_path),
        )
        # Drop the premature complete marker: only the slots matter.
        journal = tmp_path / "corpus.jsonl"
        journal.write_text(
            "\n".join(
                line
                for line in journal.read_text().splitlines()
                if '"complete"' not in line
            )
            + "\n"
        )
        resumed = build_corpus(
            pages,
            matcher,
            seed=world.seed,
            resilience=ResiliencePolicy(journal_dir=tmp_path),
        )
        assert pickle.dumps(resumed) == pickle.dumps(baseline)
