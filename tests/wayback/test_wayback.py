"""Tests for the Wayback Machine simulator."""

from datetime import date

from repro.wayback.archive import ExclusionReason, WaybackArchive
from repro.wayback.availability import AvailabilityAPI
from repro.wayback.crawler import CrawlStatus, WaybackCrawler, month_range
from repro.wayback.rewrite import (
    format_timestamp,
    is_wayback_url,
    parse_timestamp,
    truncate_wayback,
    wayback_timestamp_of,
    wayback_url,
)
from repro.web.page import PageSnapshot, Subresource


def snapshot_for(domain, n_resources=3, status=200, size=2048):
    return PageSnapshot(
        url=f"http://{domain}/",
        html=f"<body><div id='main'>{domain}</div></body>",
        status=status,
        subresources=[
            Subresource(url=f"http://{domain}/asset{i}.js", size=size)
            for i in range(n_resources)
        ],
    )


class TestRewrite:
    def test_wayback_url_shape(self):
        url = wayback_url("http://example.com/", date(2016, 7, 1))
        assert url == "http://web.archive.org/web/20160701000000/http://example.com/"

    def test_truncate_roundtrip(self):
        original = "http://example.com/ads.js?v=1"
        assert truncate_wayback(wayback_url(original, date(2015, 3, 2))) == original

    def test_truncate_nested(self):
        inner = wayback_url("http://example.com/x", date(2014, 1, 1))
        outer = wayback_url(inner, date(2015, 1, 1))
        assert truncate_wayback(outer) == "http://example.com/x"

    def test_truncate_leaves_escape_urls(self):
        escape = "http://example.com/live-request.js"
        assert truncate_wayback(escape) == escape

    def test_truncate_handles_modifier_suffix(self):
        url = "http://web.archive.org/web/20160701000000js_/http://example.com/a.js"
        assert truncate_wayback(url) == "http://example.com/a.js"

    def test_is_wayback_url(self):
        assert is_wayback_url(wayback_url("http://a.com/", date(2016, 1, 1)))
        assert not is_wayback_url("http://a.com/")

    def test_timestamp_roundtrip(self):
        when = date(2013, 11, 5)
        assert parse_timestamp(format_timestamp(when)) == when

    def test_short_timestamp(self):
        assert parse_timestamp("2016") == date(2016, 1, 1)

    def test_wayback_timestamp_of(self):
        url = wayback_url("http://a.com/", date(2012, 8, 1))
        assert wayback_timestamp_of(url) == date(2012, 8, 1)
        assert wayback_timestamp_of("http://a.com/") is None


class TestArchive:
    def test_store_and_closest(self):
        archive = WaybackArchive()
        archive.store("example.com", date(2015, 6, 1), snapshot_for("example.com"))
        archive.store("example.com", date(2015, 8, 1), snapshot_for("example.com"))
        capture = archive.closest("example.com", date(2015, 6, 20))
        assert capture.captured_on == date(2015, 6, 1)

    def test_closest_prefers_nearest(self):
        archive = WaybackArchive()
        archive.store("a.com", date(2015, 1, 1), snapshot_for("a.com"))
        archive.store("a.com", date(2015, 12, 1), snapshot_for("a.com"))
        assert archive.closest("a.com", date(2015, 11, 1)).captured_on == date(2015, 12, 1)

    def test_unknown_domain(self):
        assert WaybackArchive().closest("nope.com", date(2015, 1, 1)) is None

    def test_excluded_domain_never_served(self):
        archive = WaybackArchive()
        archive.store("x.com", date(2015, 1, 1), snapshot_for("x.com"))
        archive.exclude("x.com", ExclusionReason.ROBOTS_TXT)
        assert archive.closest("x.com", date(2015, 1, 1)) is None
        assert archive.is_excluded("x.com") is ExclusionReason.ROBOTS_TXT

    def test_redirect_capture_not_served(self):
        archive = WaybackArchive()
        archive.store("r.com", date(2015, 1, 1), snapshot_for("r.com", status=301))
        assert archive.closest("r.com", date(2015, 1, 1)) is None

    def test_total_captures(self):
        archive = WaybackArchive()
        archive.store("a.com", date(2015, 1, 1), snapshot_for("a.com"))
        archive.store("b.com", date(2015, 1, 1), snapshot_for("b.com"))
        assert archive.total_captures() == 2


class TestAvailabilityAPI:
    def test_found_shape(self):
        archive = WaybackArchive()
        archive.store("example.com", date(2016, 7, 1), snapshot_for("example.com"))
        api = AvailabilityAPI(archive)
        response = api.lookup_json("http://example.com/", "20160715000000")
        closest = response["archived_snapshots"]["closest"]
        assert closest["available"] is True
        assert closest["timestamp"] == "20160701000000"
        assert "web.archive.org" in closest["url"]

    def test_empty_shape(self):
        api = AvailabilityAPI(WaybackArchive())
        response = api.lookup_json("http://gone.com/", "20160715000000")
        assert response["archived_snapshots"] == {}

    def test_typed_lookup(self):
        archive = WaybackArchive()
        archive.store("example.com", date(2016, 7, 1), snapshot_for("example.com"))
        result = AvailabilityAPI(archive).lookup("http://example.com/", date(2016, 7, 2))
        assert result.available
        assert result.capture_date == date(2016, 7, 1)


class TestMonthRange:
    def test_within_year(self):
        months = month_range(date(2016, 1, 15), date(2016, 4, 1))
        assert months == [date(2016, m, 1) for m in (1, 2, 3, 4)]

    def test_across_years(self):
        months = month_range(date(2015, 11, 1), date(2016, 2, 1))
        assert len(months) == 4
        assert months[0] == date(2015, 11, 1)
        assert months[-1] == date(2016, 2, 1)

    def test_single_month(self):
        assert month_range(date(2016, 5, 1), date(2016, 5, 20)) == [date(2016, 5, 1)]


class TestCrawler:
    def build_archive(self):
        archive = WaybackArchive()
        for month in (1, 2, 3):
            archive.store("good.com", date(2016, month, 1), snapshot_for("good.com"))
        # sparse.com archived only in January: Feb/Mar within 6 months, fine;
        # gap domain archived only once a year earlier.
        archive.store("sparse.com", date(2015, 1, 1), snapshot_for("sparse.com"))
        archive.exclude("blocked.com", ExclusionReason.ADMIN_REQUEST)
        # partial.com: one normal capture, one tiny anti-bot capture.
        archive.store("partial.com", date(2016, 1, 1), snapshot_for("partial.com", n_resources=5))
        archive.store(
            "partial.com",
            date(2016, 2, 1),
            snapshot_for("partial.com", n_resources=1, size=10),
        )
        archive.store("partial.com", date(2016, 3, 1), snapshot_for("partial.com", n_resources=5))
        return archive

    def test_ok_crawl(self):
        crawler = WaybackCrawler(self.build_archive())
        result = crawler.crawl(["good.com"], date(2016, 1, 1), date(2016, 3, 1))
        assert [r.status for r in result.records] == [CrawlStatus.OK] * 3
        har_urls = result.records[0].har.request_urls()
        assert any("web.archive.org" in url for url in har_urls)

    def test_excluded_domain(self):
        crawler = WaybackCrawler(self.build_archive())
        result = crawler.crawl(["blocked.com"], date(2016, 1, 1), date(2016, 2, 1))
        assert all(r.status is CrawlStatus.EXCLUDED for r in result.records)

    def test_outdated_snapshot(self):
        crawler = WaybackCrawler(self.build_archive())
        result = crawler.crawl(["sparse.com"], date(2016, 1, 1), date(2016, 1, 1))
        assert result.records[0].status is CrawlStatus.OUTDATED

    def test_not_archived(self):
        crawler = WaybackCrawler(self.build_archive())
        result = crawler.crawl(["never.com"], date(2016, 1, 1), date(2016, 1, 1))
        assert result.records[0].status is CrawlStatus.NOT_ARCHIVED

    def test_partial_flagged(self):
        crawler = WaybackCrawler(self.build_archive())
        result = crawler.crawl(["partial.com"], date(2016, 1, 1), date(2016, 3, 1))
        statuses = [r.status for r in result.records]
        assert statuses == [CrawlStatus.OK, CrawlStatus.PARTIAL, CrawlStatus.OK]

    def test_missing_counts_by_month(self):
        crawler = WaybackCrawler(self.build_archive())
        result = crawler.crawl(
            ["good.com", "blocked.com", "never.com", "partial.com"],
            date(2016, 1, 1),
            date(2016, 2, 1),
        )
        counts = result.missing_counts_by_month()
        feb = counts[date(2016, 2, 1)]
        assert feb["partial"] == 1
        assert feb["not_archived"] == 1
        assert feb["excluded"] == 1

    def test_usable_records(self):
        crawler = WaybackCrawler(self.build_archive())
        result = crawler.crawl(
            ["good.com", "never.com"], date(2016, 1, 1), date(2016, 1, 1)
        )
        assert len(result.usable()) == 1
