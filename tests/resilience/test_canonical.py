"""Unit tests for the pickle-identity interning pass."""

import pickle
from datetime import date

from repro.resilience.canonical import Interner, canonicalize_records
from repro.wayback.crawler import CrawlRecord, CrawlStatus
from repro.web.har import HarFile
from repro.web.http import Exchange, Request, Response


class TestInterner:
    def test_first_object_becomes_canonical(self):
        interner = Interner()
        a, b = "x" * 10, "".join(["x"] * 10)
        assert a is not b
        assert interner.string(a) is a
        assert interner.string(b) is a

    def test_none_passthrough(self):
        interner = Interner()
        assert interner.string(None) is None
        assert interner.date(None) is None

    def test_dates(self):
        interner = Interner()
        a, b = date(2013, 1, 1), date(2013, 1, 1)
        assert interner.date(a) is interner.date(b)


def _record(month, html):
    har = HarFile(page_url=f"http://a.com/", page_html=html)
    har.add(
        Exchange(
            request=Request(url="http://a.com/x.js", resource_type="script",
                            page_url="http://a.com/"),
            response=Response(status=200, mime_type="application/javascript",
                              body="code();"),
        )
    )
    return CrawlRecord(
        domain="a.com", month=month, status=CrawlStatus.OK, har=har,
        html=html, capture_date=month,
    )


def test_canonicalize_makes_equal_results_pickle_identical():
    # Build the "same" result twice with deliberately distinct-but-equal
    # leaf objects (the shape a journal reload produces).
    def build():
        month = date(2013, 1, 1)
        return [_record(date(2013, 1, 1), "<html>" + "x" * 50 + "</html>"),
                _record(month, "<html>" + "x" * 50 + "</html>")]

    one, two = build(), build()
    assert pickle.dumps(one) == pickle.dumps(two)  # same construction path
    # Break sharing in one copy, the way unpickling slot-by-slot does.
    two = [pickle.loads(pickle.dumps(r)) for r in two]
    assert pickle.dumps(one) != pickle.dumps(two)

    canonicalize_records(one)
    canonicalize_records(two)
    assert pickle.dumps(one) == pickle.dumps(two)
