"""Unit tests for the deterministic fault-injection harness."""

from datetime import date

import pytest

from repro.resilience import (
    CrawlFault,
    FaultInjector,
    FaultSchedule,
    FaultyArchive,
    PermanentFault,
    slot_key,
)
from repro.resilience.faults import FaultKind
from repro.wayback.archive import WaybackArchive


def keys(n=1000):
    return [f"domain{i}.com|2013-01-01" for i in range(n)]


class TestFaultSchedule:
    def test_deterministic(self):
        schedule = FaultSchedule(seed=3)
        assert schedule.planned_slots(keys()) == FaultSchedule(seed=3).planned_slots(
            keys()
        )

    def test_seed_changes_the_plan(self):
        assert FaultSchedule(seed=3).planned_slots(keys()) != FaultSchedule(
            seed=4
        ).planned_slots(keys())

    def test_rates_are_approximately_honoured(self):
        schedule = FaultSchedule(
            seed=0, transient_rate=0.10, timeout_rate=0.02,
            truncated_rate=0.02, permanent_rate=0.005,
        )
        plans = schedule.planned_slots(keys(5000))
        rate = len(plans) / 5000
        assert 0.10 < rate < 0.19  # ~14.5% scheduled overall

    def test_zero_rates_schedule_nothing(self):
        schedule = FaultSchedule(
            seed=0, transient_rate=0.0, timeout_rate=0.0,
            truncated_rate=0.0, permanent_rate=0.0,
        )
        assert schedule.planned_slots(keys()) == {}

    def test_burst_bounded_by_max_failures(self):
        schedule = FaultSchedule(seed=1, max_failures=2)
        for plan in schedule.planned_slots(keys(2000)).values():
            if plan.kind is not FaultKind.PERMANENT:
                assert 1 <= plan.failures <= 2


class TestFaultInjector:
    def _schedule_with(self, kind, n=2000):
        """Find a key the schedule assigns the wanted fault kind."""
        schedule = FaultSchedule(seed=5, permanent_rate=0.05)
        for key, plan in schedule.planned_slots(keys(n)).items():
            if plan.kind is kind:
                return schedule, key, plan
        raise AssertionError(f"no {kind} slot in the first {n} keys")

    def test_transient_burst_then_success(self):
        schedule, key, plan = self._schedule_with(FaultKind.TRANSIENT)
        injector = FaultInjector(schedule)
        for _ in range(plan.failures):
            with pytest.raises(CrawlFault):
                injector.check(key)
        injector.check(key)  # burst spent: now healthy
        assert injector.injected == plan.failures

    def test_permanent_never_stops_failing(self):
        schedule, key, _ = self._schedule_with(FaultKind.PERMANENT)
        injector = FaultInjector(schedule)
        for _ in range(5):
            with pytest.raises(PermanentFault):
                injector.check(key)

    def test_healthy_slots_pass(self):
        schedule = FaultSchedule(seed=5)
        injector = FaultInjector(schedule)
        healthy = [k for k in keys() if schedule.plan(k) is None][0]
        injector.check(healthy)
        assert injector.injected == 0

    def test_browser_interceptor_shares_the_slot_burst(self):
        # The archive boundary and the page-load boundary must draw from
        # one burst so total transient failures stay <= max_failures.
        schedule, key, plan = self._schedule_with(FaultKind.TRANSIENT)
        injector = FaultInjector(schedule)
        intercept = injector.browser_interceptor(key)
        for _ in range(plan.failures):
            with pytest.raises(CrawlFault):
                injector.check(key)
        assert intercept("snapshot") == "snapshot"  # burst already spent


class TestFaultyArchive:
    def test_delegates_and_injects(self):
        archive = WaybackArchive()
        schedule = FaultSchedule(
            seed=0, transient_rate=1.0, timeout_rate=0.0,
            truncated_rate=0.0, permanent_rate=0.0, max_failures=1,
        )
        faulty = FaultyArchive(archive, FaultInjector(schedule))
        month = date(2013, 1, 1)
        with pytest.raises(CrawlFault):
            faulty.closest("a.com", month)
        assert faulty.closest("a.com", month) is None  # burst spent, delegates
        assert faulty.is_excluded("a.com") is None  # attribute delegation


def test_slot_key_format():
    assert slot_key("a.com", date(2013, 1, 1)) == "a.com|2013-01-01"
