"""Unit tests for the crash-safe crawl journal."""

import json

import pytest

from repro.resilience import CrawlJournal, JournalMismatch


def test_roundtrip(tmp_path):
    journal = CrawlJournal(tmp_path, "wayback", {"n": 3})
    journal.append(("a.com", "2013-01-01"), {"status": "ok"})
    journal.append(("a.com", "2013-02-01"), [1, 2, 3])
    journal.close()

    state = CrawlJournal(tmp_path, "wayback", {"n": 3}).load()
    assert len(state) == 2
    assert ("a.com", "2013-01-01") in state
    assert state.take(("a.com", "2013-02-01")) == [1, 2, 3]
    assert not state.complete


def test_missing_file_is_empty_state(tmp_path):
    state = CrawlJournal(tmp_path, "wayback").load()
    assert len(state) == 0 and not state.complete


def test_complete_marker(tmp_path):
    journal = CrawlJournal(tmp_path, "live")
    journal.append(("1",), "payload")
    journal.mark_complete()
    journal.close()
    assert CrawlJournal(tmp_path, "live").load().complete


def test_fingerprint_mismatch_refuses_to_resume(tmp_path):
    journal = CrawlJournal(tmp_path, "wayback", {"domains_sha": "aaa"})
    journal.append(("a.com", "2013-01-01"), None)
    journal.close()
    with pytest.raises(JournalMismatch):
        CrawlJournal(tmp_path, "wayback", {"domains_sha": "bbb"}).load()


def test_scope_mismatch_refuses_to_resume(tmp_path):
    journal = CrawlJournal(tmp_path, "wayback")
    journal.append(("a.com",), None)
    journal.close()
    other = CrawlJournal(tmp_path, "live")
    other.path = journal.path  # force a cross-scope read
    with pytest.raises(JournalMismatch):
        other.load()


def test_torn_tail_line_is_skipped(tmp_path):
    journal = CrawlJournal(tmp_path, "wayback")
    journal.append(("a.com", "2013-01-01"), "kept")
    journal.append(("a.com", "2013-02-01"), "will be torn")
    journal.close()
    # Simulate a crash mid-write: truncate the last line.
    text = journal.path.read_text()
    journal.path.write_text(text[: len(text) - 25])

    state = CrawlJournal(tmp_path, "wayback").load()
    assert len(state) == 1
    assert state.take(("a.com", "2013-01-01")) == "kept"


def test_corrupt_digest_is_skipped(tmp_path):
    journal = CrawlJournal(tmp_path, "wayback")
    journal.append(("a.com", "2013-01-01"), "payload")
    journal.close()
    lines = journal.path.read_text().splitlines()
    slot = json.loads(lines[1])
    slot["sha"] = "0" * 16
    journal.path.write_text(lines[0] + "\n" + json.dumps(slot) + "\n")
    assert len(CrawlJournal(tmp_path, "wayback").load()) == 0


def test_empty_file_gets_a_fresh_header(tmp_path):
    # A crash before the header flushed leaves a zero-byte file; the
    # next run must still write a header before any slots.
    path = tmp_path / "wayback.jsonl"
    path.write_text("")
    journal = CrawlJournal(tmp_path, "wayback")
    journal.append(("a.com",), 1)
    journal.close()
    first = json.loads(path.read_text().splitlines()[0])
    assert first["kind"] == "header"


def test_appends_resume_without_duplicate_header(tmp_path):
    journal = CrawlJournal(tmp_path, "wayback")
    journal.append(("a",), 1)
    journal.close()
    journal = CrawlJournal(tmp_path, "wayback")
    journal.append(("b",), 2)
    journal.close()
    kinds = [
        json.loads(line)["kind"] for line in journal.path.read_text().splitlines()
    ]
    assert kinds == ["header", "slot", "slot"]
