"""Unit tests for the deterministic retry machinery."""

import pytest

from repro.resilience import (
    PermanentFault,
    RetryExhausted,
    RetryPolicy,
    TimeoutFault,
    TransientFault,
    VirtualClock,
    retry_call,
    seeded_unit,
)


class TestSeededUnit:
    def test_range_and_determinism(self):
        values = [seeded_unit(0, "key", i) for i in range(100)]
        assert all(0.0 <= v < 1.0 for v in values)
        assert values == [seeded_unit(0, "key", i) for i in range(100)]

    def test_distinct_keys_give_distinct_draws(self):
        assert seeded_unit(0, "a") != seeded_unit(0, "b")
        assert seeded_unit(0, "a") != seeded_unit(1, "a")


class TestBackoff:
    def test_exponential_shape_with_bounded_jitter(self):
        policy = RetryPolicy(base_ms=100.0, multiplier=2.0, jitter=0.5)
        for attempt in (1, 2, 3):
            raw = 100.0 * 2.0 ** (attempt - 1)
            delay = policy.backoff_ms("slot", attempt)
            assert raw <= delay < raw * 1.5

    def test_backoff_is_a_pure_function(self):
        policy = RetryPolicy(seed=7)
        assert policy.backoff_ms("k", 2) == RetryPolicy(seed=7).backoff_ms("k", 2)
        assert policy.backoff_ms("k", 2) != RetryPolicy(seed=8).backoff_ms("k", 2)

    def test_cap(self):
        policy = RetryPolicy(base_ms=100.0, max_backoff_ms=150.0)
        assert policy.backoff_ms("k", 10) == 150.0


class TestRetryCall:
    def test_transient_fault_retried_to_success(self):
        clock = VirtualClock()
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] <= 2:
                raise TransientFault("boom")
            return "ok"

        result = retry_call(
            flaky, key="k", policy=RetryPolicy(max_retries=3), sleeper=clock
        )
        assert result == "ok"
        assert calls["n"] == 3
        assert clock.slept_ms > 0

    def test_retries_exhausted(self):
        def always():
            raise TransientFault("boom")

        with pytest.raises(RetryExhausted) as info:
            retry_call(
                always,
                key="k",
                policy=RetryPolicy(max_retries=2),
                sleeper=VirtualClock(),
            )
        assert info.value.retries == 2
        assert info.value.fault.kind == "transient"

    def test_permanent_fault_gives_up_immediately(self):
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise PermanentFault("gone")

        with pytest.raises(RetryExhausted) as info:
            retry_call(
                broken,
                key="k",
                policy=RetryPolicy(max_retries=5),
                sleeper=VirtualClock(),
            )
        assert calls["n"] == 1
        assert info.value.retries == 0

    def test_timeouts_charge_the_slot_budget(self):
        # Budget admits one timeout charge, not two: the slot gives up
        # on the second timeout even though retries remain.
        policy = RetryPolicy(
            max_retries=10,
            base_ms=1.0,
            slot_budget_ms=15_000.0,
            timeout_charge_ms=10_000.0,
        )
        calls = {"n": 0}

        def slow():
            calls["n"] += 1
            raise TimeoutFault("slow")

        with pytest.raises(RetryExhausted):
            retry_call(slow, key="k", policy=policy, sleeper=VirtualClock())
        assert calls["n"] == 2

    def test_non_crawl_faults_propagate_untouched(self):
        def bug():
            raise ValueError("a real defect")

        with pytest.raises(ValueError):
            retry_call(
                bug, key="k", policy=RetryPolicy(), sleeper=VirtualClock()
            )

    def test_on_retry_hook_sees_each_backoff(self):
        seen = []

        def flaky():
            if len(seen) < 2:
                raise TransientFault("boom")
            return 1

        retry_call(
            flaky,
            key="k",
            policy=RetryPolicy(max_retries=3, seed=4),
            sleeper=VirtualClock(),
            on_retry=lambda fault, attempt, delay: seen.append(
                (fault.kind, attempt, delay)
            ),
        )
        assert [(kind, attempt) for kind, attempt, _ in seen] == [
            ("transient", 1),
            ("transient", 2),
        ]
        policy = RetryPolicy(max_retries=3, seed=4)
        assert [delay for _, _, delay in seen] == [
            policy.backoff_ms("k", 1),
            policy.backoff_ms("k", 2),
        ]
