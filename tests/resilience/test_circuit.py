"""Unit tests for the per-domain circuit breaker."""

import pytest

from repro.resilience import CircuitBreaker


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3)
        assert breaker.record_failure("d") is False
        assert breaker.record_failure("d") is False
        assert breaker.record_failure("d") is True  # the opening transition
        assert breaker.is_open("d")

    def test_opening_reported_exactly_once(self):
        breaker = CircuitBreaker(threshold=1)
        assert breaker.record_failure("d") is True
        assert breaker.record_failure("d") is False  # already open
        assert breaker.is_open("d")

    def test_success_resets_the_count(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure("d")
        breaker.record_success("d")
        assert breaker.record_failure("d") is False  # count restarted
        assert not breaker.is_open("d")

    def test_keys_are_independent(self):
        breaker = CircuitBreaker(threshold=1)
        breaker.record_failure("a")
        assert breaker.is_open("a")
        assert not breaker.is_open("b")
        assert breaker.open_keys() == ["a"]

    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)
