"""Tests for the script generators and vendor ecosystem."""

from datetime import date

import numpy as np
import pytest

from repro.jsast import parse, unpack_source
from repro.jsast.walker import find_first
from repro.jsast import nodes as N
from repro.synthesis.scripts import (
    ANTI_ADBLOCK_FAMILIES,
    BENIGN_FAMILIES,
    generate_anti_adblock,
    generate_benign,
    packed,
)
from repro.synthesis.vendors import (
    VENDORS,
    choose_first_party_family,
    choose_vendor,
    vendor_by_name,
    vendors_available,
)


@pytest.mark.parametrize("family", sorted(ANTI_ADBLOCK_FAMILIES))
def test_anti_adblock_families_parse(family):
    rng = np.random.default_rng(11)
    for _ in range(3):
        source = ANTI_ADBLOCK_FAMILIES[family](rng)
        parse(source)  # must not raise


@pytest.mark.parametrize("family", sorted(BENIGN_FAMILIES))
def test_benign_families_parse(family):
    rng = np.random.default_rng(12)
    for _ in range(3):
        source = BENIGN_FAMILIES[family](rng)
        parse(source)  # must not raise


class TestPolymorphism:
    def test_variants_differ(self):
        rng = np.random.default_rng(13)
        a = ANTI_ADBLOCK_FAMILIES["html_bait"](rng)
        b = ANTI_ADBLOCK_FAMILIES["html_bait"](rng)
        assert a != b

    def test_seeded_reproducibility(self):
        a = ANTI_ADBLOCK_FAMILIES["http_bait"](np.random.default_rng(42))
        b = ANTI_ADBLOCK_FAMILIES["http_bait"](np.random.default_rng(42))
        assert a == b


class TestPacked:
    def test_packed_unpacks_to_same_logic(self):
        rng = np.random.default_rng(14)
        source = packed(rng, ANTI_ADBLOCK_FAMILIES["can_run_ads"])
        assert source.startswith("eval(")
        result = unpack_source(source)
        assert result.was_packed

    def test_generate_with_pack_probability(self):
        rng = np.random.default_rng(15)
        source = generate_anti_adblock(rng, pack_probability=1.0)
        assert unpack_source(source).was_packed


class TestGeneratorDispatch:
    def test_generate_anti_adblock_named_family(self):
        rng = np.random.default_rng(16)
        source = generate_anti_adblock(rng, family="html_bait", pack_probability=0.0)
        assert "_creatBait" in source

    def test_generate_benign_named_family(self):
        rng = np.random.default_rng(17)
        source = generate_benign(rng, family="ga_analytics")
        assert "GoogleAnalyticsObject" in source

    def test_unknown_family_raises(self):
        rng = np.random.default_rng(18)
        with pytest.raises(KeyError):
            generate_anti_adblock(rng, family="nope", pack_probability=0.0)


class TestDetectionSemantics:
    def test_html_bait_reads_layout_properties(self):
        source = ANTI_ADBLOCK_FAMILIES["html_bait"](np.random.default_rng(19))
        program = parse(source)
        member = find_first(
            program,
            lambda n: isinstance(n, N.MemberExpression)
            and isinstance(n.property, N.Identifier)
            and n.property.name == "offsetHeight",
        )
        assert member is not None

    def test_http_bait_registers_error_handler(self):
        source = ANTI_ADBLOCK_FAMILIES["http_bait"](np.random.default_rng(20))
        assert "onerror" in source
        assert "onload" in source


class TestVendors:
    def test_shares_sum_to_one(self):
        assert abs(sum(v.share for v in VENDORS) - 1.0) < 1e-9

    def test_vendor_by_name(self):
        assert vendor_by_name("PageFair").domain == "pagefair.com"
        with pytest.raises(KeyError):
            vendor_by_name("Nobody")

    def test_vendors_available_respects_launch(self):
        early = vendors_available(date(2012, 6, 15))
        assert {v.name for v in early} == {"Optimizely", "Histats"}
        assert len(vendors_available(date(2016, 1, 1))) == len(VENDORS)

    def test_choose_vendor_none_before_any_launch(self):
        rng = np.random.default_rng(21)
        assert choose_vendor(rng, date(2011, 1, 1)) is None

    def test_choose_vendor_weighted(self):
        rng = np.random.default_rng(22)
        picks = [choose_vendor(rng, date(2016, 1, 1)).name for _ in range(300)]
        # Every vendor should appear; the largest-share vendor most often.
        assert set(picks) == {v.name for v in VENDORS}

    def test_choose_first_party_family(self):
        rng = np.random.default_rng(23)
        families = {choose_first_party_family(rng) for _ in range(100)}
        assert families == {"community_iab", "http_bait", "can_run_ads"}

    def test_script_url(self):
        assert vendor_by_name("Histats").script_url == "http://histats.com/js15_as.js"
