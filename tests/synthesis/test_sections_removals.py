"""Tests for EasyList section extraction and rule-removal churn."""

import pytest

from repro.synthesis.listgen import FilterListGenerator, extract_sections
from repro.synthesis.world import SyntheticWorld, WorldConfig


@pytest.fixture(scope="module")
def generator():
    return FilterListGenerator(SyntheticWorld(WorldConfig(n_sites=200, live_top=400)))


class TestFullEasyList:
    def test_has_general_and_anti_adblock_sections(self, generator):
        full = generator.generate_full_easylist()
        sections = full.latest().filter_list.sections()
        assert "General ad servers" in sections
        assert "Anti-Adblock" in sections

    def test_general_rules_present(self, generator):
        full = generator.generate_full_easylist()
        raws = {r.raw for r in full.latest().rules}
        assert "||doubleclick.net^$third-party" in raws
        assert "/ads.js?" in raws

    def test_extraction_strips_general_sections(self, generator):
        anti = generator.generate_easylist_antiadblock()
        raws = {r.raw for r in anti.latest().rules}
        assert "||doubleclick.net^$third-party" not in raws
        assert "/ads.js?" not in raws

    def test_extraction_keeps_anti_adblock_rules(self, generator):
        full = generator.generate_full_easylist()
        anti = generator.generate_easylist_antiadblock()
        full_anti_rules = {
            parsed.rule.raw
            for parsed in full.latest().filter_list
            if "adblock" in parsed.section.lower()
        }
        anti_rules = {r.raw for r in anti.latest().rules}
        assert anti_rules == full_anti_rules

    def test_extraction_preserves_revision_dates(self, generator):
        full = generator.generate_full_easylist()
        anti = generator.generate_easylist_antiadblock()
        full_dates = {revision.date for revision in full}
        assert all(revision.date in full_dates for revision in anti)


class TestExtractSections:
    def test_empty_history(self):
        from repro.filterlist.history import FilterListHistory

        extracted = extract_sections(FilterListHistory("x"), "adblock")
        assert len(extracted) == 0

    def test_name_override(self, generator):
        extracted = extract_sections(
            generator.generate_full_easylist(), "adblock", name="renamed"
        )
        assert extracted.name == "renamed"


class TestRemovals:
    def test_some_rules_removed_over_history(self, generator):
        aak = generator.generate_aak()
        removed = sum(len(aak.delta(i).removed) for i in range(1, len(aak)))
        easylist = generator.generate_full_easylist()
        removed += sum(len(easylist.delta(i).removed) for i in range(1, len(easylist)))
        assert removed >= 1

    def test_growth_still_dominates(self, generator):
        aak = generator.generate_aak()
        assert len(aak.latest().rules) > len(aak[0].rules)
