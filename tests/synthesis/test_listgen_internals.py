"""Unit tests for the filter-list generator's internal machinery."""

from datetime import date

import numpy as np
import pytest

from repro.synthesis.listgen import (
    AAK_MONTHLY_FROM,
    AAK_START,
    DatedRule,
    FilterListGenerator,
    _scale,
)
from repro.synthesis.world import SyntheticWorld, WorldConfig


@pytest.fixture(scope="module")
def generator():
    return FilterListGenerator(SyntheticWorld(WorldConfig(n_sites=150, live_top=300)))


class TestScale:
    def test_rounds(self):
        assert _scale(100, 0.5) == 50
        assert _scale(3, 0.5) == 2

    def test_floor_of_one(self):
        assert _scale(1, 0.001) == 1


class TestDatesForGrowth:
    def test_sorted_and_bounded(self, generator):
        rng = np.random.default_rng(0)
        waypoints = (
            (date(2014, 1, 1), 0.2),
            (date(2015, 1, 1), 0.7),
            (date(2016, 1, 1), 1.0),
        )
        dates = generator._dates_for_growth(rng, 200, waypoints)
        assert dates == sorted(dates)
        assert dates[0] >= date(2014, 1, 1)
        assert dates[-1] <= date(2016, 1, 1)

    def test_respects_waypoint_mass(self, generator):
        rng = np.random.default_rng(1)
        waypoints = (
            (date(2014, 1, 1), 0.5),
            (date(2016, 1, 1), 1.0),
        )
        dates = generator._dates_for_growth(rng, 1000, waypoints)
        early = sum(1 for d in dates if d <= date(2014, 1, 1))
        assert 0.4 < early / len(dates) < 0.6


class TestRevisionCadence:
    def test_aak_weekly_then_monthly(self, generator):
        dates = generator._aak_revision_dates()
        gaps = [(b - a).days for a, b in zip(dates, dates[1:])]
        cut = next(i for i, d in enumerate(dates) if d >= AAK_MONTHLY_FROM)
        weekly = gaps[: cut - 1]
        monthly = gaps[cut:]
        assert all(gap == 7 for gap in weekly)
        assert all(27 <= gap <= 32 for gap in monthly)
        assert dates[0] == AAK_START


class TestEmitHistory:
    def test_dedup_and_cumulative(self, generator):
        rules = [
            DatedRule("||a.com^", date(2014, 3, 1)),
            DatedRule("||a.com^", date(2014, 6, 1)),  # duplicate text
            DatedRule("||b.com^", date(2014, 6, 1)),
        ]
        history = generator._emit_history(
            "t", rules, [date(2014, 3, 1), date(2014, 6, 1), date(2014, 9, 1)]
        )
        assert len(history[0].rules) == 1
        assert len(history.latest().rules) == 2

    def test_empty_revisions_skipped(self, generator):
        rules = [DatedRule("||a.com^", date(2014, 6, 1))]
        history = generator._emit_history(
            "t", rules, [date(2014, 1, 1), date(2014, 6, 1)]
        )
        # The pre-first-rule revision is dropped entirely.
        assert history.first_date == date(2014, 6, 1)


class TestDomainInventories:
    def test_overlap_is_subset_of_both(self, generator):
        overlap = set(generator.overlap_domains)
        assert overlap <= set(generator._aak_domains)
        assert overlap <= set(generator._ce_domains)

    def test_inventories_unique(self, generator):
        assert len(generator._aak_domains) == len(set(generator._aak_domains))
        assert len(generator._ce_domains) == len(set(generator._ce_domains))

    def test_bucket_scaling(self, generator):
        # 150/5000 = 0.03 scale; AAK 1-5K bucket = round(112 * 0.03) ≈ 3.
        assert generator._aak_buckets["1-5K"] == pytest.approx(112 * 0.03, abs=1)
