"""Tests for the synthetic world and filter-list history generator."""

from datetime import date, timedelta

import pytest

from repro.jsast import parse
from repro.synthesis.listgen import FilterListGenerator, generate_all_lists
from repro.synthesis.world import SyntheticWorld, WorldConfig

SMALL = WorldConfig(n_sites=200, live_top=400)


@pytest.fixture(scope="module")
def world():
    return SyntheticWorld(SMALL)


@pytest.fixture(scope="module")
def lists(world):
    return generate_all_lists(world)


class TestWorldConstruction:
    def test_site_count(self, world):
        assert len(world.sites) == 200

    def test_deterministic(self, world):
        other = SyntheticWorld(SMALL)
        assert [s.domain for s in other.sites] == [s.domain for s in world.sites]
        assert [s.uses_anti_adblock for s in other.sites] == [
            s.uses_anti_adblock for s in world.sites
        ]

    def test_adoption_rate_in_band(self, world):
        adopters = [s for s in world.sites if s.uses_anti_adblock]
        rate = len(adopters) / len(world.sites)
        assert 0.05 <= rate <= 0.18

    def test_vendor_share(self, world):
        adopters = [s for s in world.sites if s.uses_anti_adblock]
        vendor = [s for s in adopters if s.deployment.is_third_party]
        assert len(vendor) / len(adopters) > 0.6

    def test_vendor_not_deployed_before_launch(self, world):
        for site in world.sites:
            deployment = site.deployment
            if deployment is not None and deployment.vendor is not None:
                assert deployment.deployed_on >= deployment.vendor.launched

    def test_every_site_has_benign_scripts(self, world):
        assert all(site.benign_scripts for site in world.sites)

    def test_all_script_sources_parse(self, world):
        for site in world.sites[:40]:
            for script in site.benign_scripts:
                if script.source:
                    parse(script.source)
            if site.deployment is not None:
                parse(site.deployment.script_source)


class TestSnapshots:
    def test_snapshot_before_deployment_has_no_anti_adblock(self, world):
        adopter = next(s for s in world.sites if s.uses_anti_adblock)
        before = adopter.deployment.deployed_on - timedelta(days=40)
        if before < world.config.start:
            pytest.skip("deployment too early to have a pre-deployment month")
        snapshot = world.snapshot(adopter, before)
        assert not snapshot.uses_anti_adblock

    def test_snapshot_after_deployment_has_anti_adblock(self, world):
        adopter = next(s for s in world.sites if s.uses_anti_adblock)
        snapshot = world.snapshot(adopter, world.config.end)
        assert snapshot.uses_anti_adblock
        assert any(
            r.url == adopter.deployment.script_url for r in snapshot.subresources
        )

    def test_static_notice_rendered(self, world):
        noticed = [
            s
            for s in world.sites
            if s.deployment is not None and s.deployment.notice_id is not None
        ]
        if not noticed:
            pytest.skip("no static-notice adopters at this scale/seed")
        site = noticed[0]
        snapshot = world.snapshot(site, world.config.end)
        assert site.deployment.notice_id in snapshot.html

    def test_redirect_snapshot(self, world):
        redirector = next(
            (s for s in world.sites if s.redirect_from is not None), None
        )
        if redirector is None:
            pytest.skip("no redirect sites at this scale/seed")
        snapshot = world.snapshot(redirector, world.config.end)
        assert snapshot.status == 301
        assert snapshot.redirect_to

    def test_snapshot_html_parses(self, world):
        from repro.web.dom import parse_html

        snapshot = world.snapshot(world.sites[0], world.config.end)
        document = parse_html(snapshot.html)
        assert document.body is not None


class TestArchive:
    def test_archive_has_exclusions_and_captures(self, world):
        archive = world.build_archive()
        assert archive.total_captures() > 0
        # Excluded fractions are small but usually nonzero at 200 sites.
        assert len(archive.excluded_domains()) <= 15

    def test_excluded_sites_never_captured(self, world):
        archive = world.build_archive()
        for domain in archive.excluded_domains():
            assert archive.captures_for(domain) == []


class TestLiveWeb:
    def test_live_snapshot_mostly_reachable(self, world):
        reachable = sum(
            1 for rank in range(1, 300) if world.live_snapshot(rank) is not None
        )
        assert reachable >= 290

    def test_tail_profiles_lightweight(self, world):
        profile = world.profile_for_rank(world.config.n_sites + 5)
        assert all(not s.source for s in profile.benign_scripts)

    def test_tail_adopters_have_script_source(self, world):
        for rank in range(world.config.n_sites + 1, world.config.live_top + 1):
            profile = world.profile_for_rank(rank)
            if profile.deployment is not None:
                assert profile.deployment.script_source
                return
        pytest.skip("no tail adopters at this scale")


class TestListGeneration:
    def test_all_lists_present(self, lists):
        assert set(lists) == {"aak", "easylist", "awrl", "combined_easylist"}

    def test_aak_window(self, lists):
        aak = lists["aak"]
        assert aak.first_date >= date(2014, 1, 1)
        assert aak.last_date <= date(2016, 12, 1)

    def test_easylist_starts_2011(self, lists):
        assert lists["easylist"].first_date == date(2011, 5, 1)

    def test_lists_grow(self, lists):
        for history in lists.values():
            first = len(history[0].rules)
            last = len(history.latest().rules)
            assert last >= first

    def test_rules_all_parse(self, lists):
        # Every emitted revision was built through parse_filter_list with
        # default (lenient) settings; assert none of the rules were dropped.
        for history in lists.values():
            for revision in history:
                assert not revision.filter_list.errors

    def test_vendor_rule_present(self, lists):
        latest = lists["aak"].latest()
        raws = {r.raw for r in latest.rules}
        assert "||pagefair.com^$third-party" in raws

    def test_overlap_nonempty(self, world):
        generator = FilterListGenerator(world)
        assert len(generator.overlap_domains) > 0

    def test_combined_easylist_is_superset(self, lists):
        combined = lists["combined_easylist"].latest()
        easylist = lists["easylist"].latest()
        awrl = lists["awrl"].latest()
        assert len(combined.rules) == len(easylist.rules) + len(awrl.rules)
