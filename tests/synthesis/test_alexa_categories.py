"""Tests for the domain population and categorization service."""

from repro.synthesis.alexa import DomainPopulation, RANK_BUCKETS, bucket_for_rank
from repro.synthesis.categories import (
    CATEGORIES,
    CategorizationService,
    top_categories_with_others,
)


class TestDomainPopulation:
    def test_deterministic(self):
        a = DomainPopulation(seed=1)
        b = DomainPopulation(seed=1)
        assert [a.domain_at(r) for r in range(1, 50)] == [
            b.domain_at(r) for r in range(1, 50)
        ]

    def test_different_seeds_differ(self):
        a = DomainPopulation(seed=1)
        b = DomainPopulation(seed=2)
        assert [a.domain_at(r) for r in range(1, 50)] != [
            b.domain_at(r) for r in range(1, 50)
        ]

    def test_names_unique(self):
        population = DomainPopulation(seed=3)
        names = [population.domain_at(r) for r in range(1, 500)]
        assert len(set(names)) == len(names)

    def test_names_look_like_domains(self):
        population = DomainPopulation(seed=3)
        for rank in range(1, 100):
            name = population.domain_at(rank)
            assert "." in name
            assert name == name.lower()
            assert " " not in name

    def test_rank_of_minted_domain(self):
        population = DomainPopulation(seed=4)
        name = population.domain_at(42)
        assert population.rank_of(name) == 42
        assert population.rank_of("never-minted.example") is None

    def test_top(self):
        population = DomainPopulation(seed=5)
        top = population.top(10)
        assert [d.rank for d in top] == list(range(1, 11))

    def test_bucket_for_rank(self):
        assert bucket_for_rank(1) == "1-5K"
        assert bucket_for_rank(5000) == "1-5K"
        assert bucket_for_rank(5001) == "5K-10K"
        assert bucket_for_rank(50_000) == "10K-100K"
        assert bucket_for_rank(500_000) == "100K-1M"
        assert bucket_for_rank(2_000_000) == ">1M"

    def test_sample_in_bucket_respects_range(self):
        population = DomainPopulation(seed=6)
        sampled = population.sample_in_bucket("5K-10K", 20)
        assert len(sampled) == 20
        assert all(5001 <= d.rank <= 10_000 for d in sampled)
        assert len({d.domain for d in sampled}) == 20

    def test_sample_in_bucket_label_decorrelates(self):
        population = DomainPopulation(seed=6)
        a = population.sample_in_bucket("1-5K", 10, label="x")
        b = population.sample_in_bucket("1-5K", 10, label="y")
        assert {d.rank for d in a} != {d.rank for d in b}

    def test_rank_zero_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            DomainPopulation(seed=1).domain_at(0)


class TestCategorization:
    def test_stable(self):
        service = CategorizationService(seed=7)
        assert service.categorize("example.com") == service.categorize("example.com")

    def test_known_vocabulary(self):
        service = CategorizationService(seed=7)
        population = DomainPopulation(seed=7)
        for rank in range(1, 200):
            assert service.categorize(population.domain_at(rank)) in CATEGORIES

    def test_keyword_hint(self):
        service = CategorizationService(seed=7)
        assert service.categorize("megastreamhub.com") == "Streaming/Sharing"
        assert service.categorize("dailysportscore.net") in ("Sports", "General News")

    def test_distribution_covers_all_categories_keys(self):
        service = CategorizationService(seed=8)
        population = DomainPopulation(seed=8)
        domains = [population.domain_at(r) for r in range(1, 300)]
        distribution = service.distribution(domains)
        assert set(distribution) == set(CATEGORIES)
        assert sum(distribution.values()) == 299

    def test_top_categories_with_others(self):
        counts = {category: index for index, category in enumerate(CATEGORIES)}
        collapsed = top_categories_with_others(counts, top_n=5)
        assert len(collapsed) == 6
        assert collapsed[-1][0] == "Others"
        assert sum(value for _, value in collapsed) == sum(counts.values())
