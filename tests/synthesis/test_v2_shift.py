"""Tests for the second-generation (v2) script shift."""

from datetime import date

import numpy as np
import pytest

from repro.jsast import parse
from repro.core.features import features_from_source
from repro.synthesis.scripts import (
    ANTI_ADBLOCK_FAMILIES,
    V2_FAMILIES,
    html_bait_script,
    html_bait_v2_script,
)
from repro.synthesis.world import SyntheticWorld, WorldConfig


class TestV2Generators:
    def test_registered(self):
        for v2 in V2_FAMILIES.values():
            assert v2 in ANTI_ADBLOCK_FAMILIES

    @pytest.mark.parametrize("family", sorted(set(V2_FAMILIES.values())))
    def test_parse(self, family):
        rng = np.random.default_rng(41)
        for _ in range(3):
            parse(ANTI_ADBLOCK_FAMILIES[family](rng))

    def test_v2_vocabulary_shift(self):
        """v1 and v2 HTML baits share little keyword vocabulary."""
        rng = np.random.default_rng(42)
        v1 = features_from_source(html_bait_script(rng), feature_set="keyword")
        v2 = features_from_source(html_bait_v2_script(rng), feature_set="keyword")
        jaccard = len(v1 & v2) / len(v1 | v2)
        assert jaccard < 0.5

    def test_v2_avoids_classic_offsets(self):
        rng = np.random.default_rng(43)
        source = html_bait_v2_script(rng)
        assert "offsetHeight" not in source
        assert "MutationObserver" in source


class TestWorldV2Assignment:
    @pytest.fixture(scope="class")
    def world(self):
        return SyntheticWorld(WorldConfig(n_sites=600, live_top=1200))

    def adopters(self, world, start_rank, end_rank):
        out = []
        for rank in range(start_rank, end_rank + 1):
            profile = world.profile_for_rank(rank)
            if profile.deployment is not None:
                out.append(profile)
        return out

    def test_no_v2_before_cutover(self, world):
        for profile in self.adopters(world, 1, world.config.live_top):
            deployment = profile.deployment
            if deployment.deployed_on < date(2016, 8, 1):
                assert not deployment.family.endswith("_v2")

    def test_some_v2_after_cutover(self, world):
        late = [
            p
            for p in self.adopters(world, 1, world.config.live_top)
            if p.deployment.deployed_on >= date(2016, 8, 1)
        ]
        if len(late) < 5:
            pytest.skip("too few late adopters at this scale")
        v2 = [p for p in late if p.deployment.family.endswith("_v2")]
        assert v2, "late deployments must include v2 scripts"

    def test_adoption_continues_past_crawl_window(self, world):
        late = [
            p
            for p in self.adopters(world, 1, world.config.live_top)
            if p.deployment.deployed_on > world.config.end
        ]
        assert late, "some sites deploy between the crawl end and the live date"
