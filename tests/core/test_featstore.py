"""The §5 feature engine: one parse per script, byte-identical everywhere.

Mirrors the §4 parallel-replay acceptance bar
(``tests/analysis/test_parallel_coverage.py``): sharded and warm-cache
extraction must reproduce the serial result *byte for byte* (pickle
equality), not approximately — and per-script failures must surface as
obs counters rather than silent empty feature sets.
"""

import json
import pickle

import pytest

from repro.core.featstore import (
    EXTRACTOR_VERSION,
    FeatureStore,
    extract_events,
    get_feature_store,
    set_feature_store,
    source_digest,
)
from repro.core.features import features_for_corpus, features_from_source
from repro.experiments import table3
from repro.experiments.context import ExperimentContext
from repro.obs.manifest import RunManifest
from repro.obs.metrics import get_metrics, reset_metrics
from repro.obs.trace import disable_tracing, enable_tracing, get_tracer
from repro.synthesis.world import SyntheticWorld, WorldConfig

WELL_FORMED = "if (window.adblock) { document.getElementById('ad').style.display = 'none'; }"
MALFORMED = "}{ this is not javascript ]["
#: Unpacking folds the payload to a constant string, which then fails to
#: parse — the unpack engine bails out and keeps the packed form.
BAILOUT = "var p = eval('}{' + '');"


@pytest.fixture(scope="module")
def corpus_sources():
    world = SyntheticWorld(WorldConfig(n_sites=120, live_top=400))
    ctx = ExperimentContext(world=world)
    return ctx.corpus.sources()


@pytest.fixture()
def isolated_store():
    """Run a test against a fresh shared store, restoring the old one."""
    store = FeatureStore()
    previous = set_feature_store(store)
    try:
        yield store
    finally:
        set_feature_store(previous)


class TestExtractEvents:
    def test_events_match_direct_extraction(self):
        entry = extract_events(WELL_FORMED)
        for feature_set in ("all", "literal", "keyword"):
            assert entry.features(feature_set) == features_from_source(
                WELL_FORMED, feature_set=feature_set
            )

    def test_parse_error_yields_empty_events(self):
        entry = extract_events(MALFORMED)
        assert entry.parse_error
        assert entry.events == ()
        assert entry.features("all") == set()

    def test_unparseable_eval_payload_is_a_bailout(self):
        entry = extract_events(BAILOUT, unpack=True)
        assert entry.unpack_bailout
        assert not entry.parse_error

    def test_no_unpack_no_bailout(self):
        assert not extract_events(BAILOUT, unpack=False).unpack_bailout


class TestStoreAccounting:
    def test_duplicates_parse_once(self):
        store = FeatureStore()
        store.features_for_corpus([WELL_FORMED, BAILOUT, WELL_FORMED])
        assert store.stats.extracted == 2
        assert store.stats.memo_hits == 1

    def test_repeat_and_cross_set_calls_hit_the_memo(self):
        store = FeatureStore()
        first = store.features_for_corpus([WELL_FORMED], feature_set="all")
        second = store.features_for_corpus([WELL_FORMED], feature_set="keyword")
        assert store.stats.extracted == 1
        assert store.stats.memo_hits == 1
        assert second[0] <= first[0]

    def test_failures_surface_as_metrics_counters(self):
        reset_metrics()
        store = FeatureStore()
        features = store.features_for_corpus([WELL_FORMED, MALFORMED, BAILOUT])
        counters = get_metrics().as_dict()["counters"]
        assert counters["features.parse_errors"] == 1
        assert counters["features.unpack_bailouts"] == 1
        assert counters["features.extracted"] == 3
        assert store.stats.parse_errors == 1
        assert store.stats.unpack_bailouts == 1
        # The malformed script degrades to an empty set, not an exception.
        assert features[1] == set()
        reset_metrics()


class TestInternTableBounds:
    def test_intern_tables_are_rebuilt_after_memo_eviction(self):
        """The tables must not grow unboundedly as the LRU memo churns."""
        store = FeatureStore(memo_capacity=2, intern_limit=8)
        for index in range(40):
            store.features_for_corpus([f"var unique_name_{index} = {index};"])
        # A leak would retain strings from all 40 scripts; the rebuilt
        # tables hold only what the 2 live memo entries reference.
        live_strings = {
            part
            for entry in store._memo.values()
            for kind, text, contexts in entry.events
            for part in (kind, text, *contexts)
        }
        assert set(store._strings) <= live_strings

    def test_rebuild_preserves_sharing_and_results(self):
        bounded = FeatureStore(memo_capacity=2, intern_limit=1)
        unbounded = FeatureStore()
        sources = [f"var v{index} = {index};" for index in range(10)] + [WELL_FORMED]
        assert pickle.dumps(
            bounded.features_for_corpus(sources)
        ) == pickle.dumps(unbounded.features_for_corpus(sources))


class TestSerialParallelIdentity:
    def test_events_are_byte_identical(self, corpus_sources):
        serial = FeatureStore().events_for_corpus(corpus_sources, workers=1)
        parallel = FeatureStore().events_for_corpus(corpus_sources, workers=4)
        assert pickle.dumps(serial) == pickle.dumps(parallel)

    def test_features_are_byte_identical(self, corpus_sources):
        serial = FeatureStore().features_for_corpus(corpus_sources, workers=1)
        parallel = FeatureStore().features_for_corpus(corpus_sources, workers=4)
        assert serial == parallel

    def test_worker_count_larger_than_corpus_is_safe(self):
        sources = [WELL_FORMED, BAILOUT]
        wide = FeatureStore().events_for_corpus(sources, workers=64)
        narrow = FeatureStore().events_for_corpus(sources, workers=1)
        assert pickle.dumps(wide) == pickle.dumps(narrow)

    def test_sharded_run_reports_per_worker_payloads(self, corpus_sources):
        enable_tracing()
        try:
            FeatureStore().events_for_corpus(corpus_sources, workers=3)
            roots = get_tracer().roots
        finally:
            disable_tracing()
            get_tracer().reset()
        extract_spans = [r for r in roots if r.name == "features:extract"]
        assert len(extract_spans) == 1
        shards = [
            child
            for child in extract_spans[0].children
            if child.name.startswith("shard:")
        ]
        assert len(shards) == extract_spans[0].attributes["shards"] > 1
        assert sum(child.attributes["scripts"] for child in shards) > 0


class TestDiskCache:
    def test_cold_then_warm_is_byte_identical(self, corpus_sources, tmp_path):
        cold = FeatureStore(cache_dir=tmp_path)
        cold_events = cold.events_for_corpus(corpus_sources)
        assert cold.stats.disk_writes == cold.stats.extracted > 0

        warm = FeatureStore(cache_dir=tmp_path)
        warm_events = warm.events_for_corpus(corpus_sources)
        assert warm.stats.extracted == 0
        assert warm.stats.disk_hits == cold.stats.extracted
        assert pickle.dumps(warm_events) == pickle.dumps(cold_events)

    def test_warm_cache_matches_uncached_store(self, corpus_sources, tmp_path):
        plain = FeatureStore().events_for_corpus(corpus_sources)
        FeatureStore(cache_dir=tmp_path).events_for_corpus(corpus_sources)
        warm = FeatureStore(cache_dir=tmp_path).events_for_corpus(corpus_sources)
        assert pickle.dumps(plain) == pickle.dumps(warm)

    def test_entries_are_keyed_by_version_and_unpack(self, tmp_path):
        store = FeatureStore(cache_dir=tmp_path)
        store.events_for_corpus([WELL_FORMED], unpack=True)
        store.events_for_corpus([WELL_FORMED], unpack=False)
        digest = source_digest(WELL_FORMED)
        root = tmp_path / f"v{EXTRACTOR_VERSION}" / digest[:2]
        assert (root / f"{digest}.u1.json").exists()
        assert (root / f"{digest}.u0.json").exists()

    def test_corrupt_entry_falls_back_to_extraction(self, tmp_path):
        first = FeatureStore(cache_dir=tmp_path)
        first.events_for_corpus([WELL_FORMED])
        digest = source_digest(WELL_FORMED)
        path = tmp_path / f"v{EXTRACTOR_VERSION}" / digest[:2] / f"{digest}.u1.json"
        path.write_text("{not json")

        recovered = FeatureStore(cache_dir=tmp_path)
        events = recovered.events_for_corpus([WELL_FORMED])
        assert recovered.stats.disk_hits == 0
        assert recovered.stats.extracted == 1
        assert events[0].features("all") == features_from_source(WELL_FORMED)

    def test_wrong_version_payload_is_ignored(self, tmp_path):
        store = FeatureStore(cache_dir=tmp_path)
        store.events_for_corpus([WELL_FORMED])
        digest = source_digest(WELL_FORMED)
        path = tmp_path / f"v{EXTRACTOR_VERSION}" / digest[:2] / f"{digest}.u1.json"
        payload = json.loads(path.read_text())
        payload["v"] = EXTRACTOR_VERSION + 1
        path.write_text(json.dumps(payload))

        reread = FeatureStore(cache_dir=tmp_path)
        reread.events_for_corpus([WELL_FORMED])
        assert reread.stats.disk_hits == 0
        assert reread.stats.extracted == 1


class TestSharedStore:
    def test_features_for_corpus_uses_the_shared_store(self, isolated_store):
        features_for_corpus([WELL_FORMED])
        features_for_corpus([WELL_FORMED], feature_set="keyword")
        assert isolated_store.stats.extracted == 1
        assert isolated_store.stats.memo_hits == 1

    def test_set_feature_store_swaps_and_restores(self):
        replacement = FeatureStore()
        previous = set_feature_store(replacement)
        try:
            assert get_feature_store() is replacement
        finally:
            set_feature_store(previous)


class TestColdWarmArtifactDigests:
    """Whole-experiment acceptance: table3 renders and manifest artifact
    digests are identical between a cold-cache and a warm-cache run."""

    @staticmethod
    def _run_table3(cache_dir):
        world = SyntheticWorld(WorldConfig(n_sites=120, live_top=400))
        ctx = ExperimentContext(world=world)
        store = FeatureStore(cache_dir=cache_dir)
        previous = set_feature_store(store)
        try:
            rendered = table3.render(table3.run(ctx, n_folds=5))
        finally:
            set_feature_store(previous)
        return rendered, store.stats

    def test_digests_identical_and_warm_run_hits_disk(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cold_rendered, cold_stats = self._run_table3(cache_dir)
        warm_rendered, warm_stats = self._run_table3(cache_dir)
        assert cold_rendered == warm_rendered
        assert cold_stats.disk_writes > 0
        assert warm_stats.disk_hits > 0
        assert warm_stats.extracted == 0

        digests = []
        for label, rendered in (("cold", cold_rendered), ("warm", warm_rendered)):
            manifest = RunManifest(tmp_path / label / "run.json")
            manifest.record_artifact("table3", rendered)
            data = manifest.finalize(experiments=["table3"])
            digests.append(data["artifacts"]["table3"]["sha256"])
        assert digests[0] == digests[1]
