"""Tests for AST feature extraction (§5)."""

import pytest

from repro.core.features import (
    FEATURE_SETS,
    FeatureExtractionError,
    extract_features,
    features_for_corpus,
    features_from_source,
)
from repro.jsast.parser import parse

BLOCKADBLOCK_SNIPPET = """
BlockAdBlock.prototype._checkBait = function(loop) {
    var detected = false;
    if (window.document.body.getAttribute('abp') !== null
        || this._var.bait.offsetHeight == 0
        || this._var.bait.clientWidth == 0) {
        detected = true;
    }
};
"""


class TestFeatureShapes:
    def test_features_are_context_text_pairs(self):
        features = features_from_source("var x = 1;")
        assert all(":" in feature for feature in features)

    def test_keyword_set_excludes_identifiers(self):
        features = features_from_source(BLOCKADBLOCK_SNIPPET, feature_set="keyword")
        texts = {feature.split(":", 1)[1] for feature in features}
        assert "clientWidth" in texts
        assert "offsetHeight" in texts
        assert "_checkBait" not in texts
        assert "abp" not in texts  # literal

    def test_literal_set_is_literals_only(self):
        features = features_from_source(BLOCKADBLOCK_SNIPPET, feature_set="literal")
        texts = {feature.split(":", 1)[1] for feature in features}
        assert "abp" in texts
        assert "0" in texts
        assert "offsetHeight" not in texts

    def test_all_set_is_superset(self):
        all_features = features_from_source(BLOCKADBLOCK_SNIPPET, feature_set="all")
        for feature_set in ("literal", "keyword"):
            subset = features_from_source(BLOCKADBLOCK_SNIPPET, feature_set=feature_set)
            assert subset <= all_features

    def test_table2_canonical_features_present(self):
        features = features_from_source(BLOCKADBLOCK_SNIPPET, feature_set="all")
        assert "MemberExpression:_checkBait" in features
        assert "Identifier:clientWidth" in features
        assert "Literal:abp" in features

    def test_structure_context(self):
        features = features_from_source("if (x.offsetHeight == 0) { y(); }")
        assert "if:offsetHeight" in features

    def test_loop_context(self):
        features = features_from_source("for (var i = 0; i < n; i++) { probe(); }")
        assert any(f.startswith("loop:") for f in features)

    def test_try_catch_context(self):
        features = features_from_source("try { risky(); } catch (e) { log(e); }")
        assert any(f.startswith("catch:") for f in features)

    def test_toplevel_context(self):
        features = features_from_source("var top = 1;")
        assert "toplevel:top" in features

    def test_long_literal_truncated(self):
        blob = "x" * 500
        features = features_from_source(f"var a = '{blob}';", feature_set="literal")
        assert all(len(f.split(":", 1)[1]) <= 64 for f in features)

    def test_unknown_feature_set_raises(self):
        with pytest.raises(ValueError):
            extract_features(parse("1;"), feature_set="bogus")

    def test_feature_sets_constant(self):
        assert set(FEATURE_SETS) == {"all", "literal", "keyword"}


class TestUnpackIntegration:
    def test_packed_script_features_from_payload(self):
        payload = "var bait = document.createElement('div'); bait.offsetHeight;"
        packed = f"eval({payload!r});"
        features = features_from_source(packed, feature_set="keyword", unpack=True)
        texts = {f.split(":", 1)[1] for f in features}
        assert "offsetHeight" in texts

    def test_unpack_disabled_keeps_shell_only(self):
        payload = "var bait = document.createElement('div'); bait.offsetHeight;"
        packed = f"eval({payload!r});"
        features = features_from_source(packed, feature_set="keyword", unpack=False)
        texts = {f.split(":", 1)[1] for f in features}
        assert "offsetHeight" not in texts
        assert "eval" in texts


class TestCorpusHelpers:
    def test_unparseable_source_raises(self):
        with pytest.raises(FeatureExtractionError):
            features_from_source("this is } not javascript {{")

    def test_features_for_corpus_tolerates_bad_scripts(self):
        sets = features_for_corpus(["var a = 1;", "}{ bad", "f();"])
        assert len(sets) == 3
        assert sets[1] == set()
        assert sets[0] and sets[2]
