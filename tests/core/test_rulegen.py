"""Tests for ML-driven filter-rule generation (the §5 offline scenario)."""

import numpy as np
import pytest

from repro.core.pipeline import AntiAdblockDetector, DetectorConfig
from repro.core.rulegen import DetectedScript, RuleGenerator, detect_and_generate
from repro.filterlist.matcher import NetworkMatcher
from repro.synthesis.scripts import generate_anti_adblock, generate_benign
from repro.web.page import PageSnapshot, Script


class TestRuleGenerator:
    def test_vendor_aggregation(self):
        detections = [
            DetectedScript(url="http://vendor.com/detect.js", page_domain=f"site{i}.com")
            for i in range(5)
        ]
        rules = RuleGenerator(vendor_threshold=3).generate(detections)
        assert len(rules) == 1
        assert rules.rules[0].raw == "||vendor.com^$third-party"
        assert len(rules.evidence["||vendor.com^$third-party"]) == 5

    def test_rare_host_gets_precision_rule(self):
        detections = [
            DetectedScript(url="http://site.com/js/detector.js", page_domain="site.com")
        ]
        rules = RuleGenerator(vendor_threshold=3).generate(detections)
        assert len(rules) == 1
        assert rules.rules[0].raw == "||site.com/js/detector.js"

    def test_first_party_never_counts_toward_vendor(self):
        detections = [
            DetectedScript(url="http://cdn.site.com/d.js", page_domain="site.com")
            for _ in range(10)
        ]
        rules = RuleGenerator(vendor_threshold=3).generate(detections)
        # cdn.site.com is first-party to site.com: precision rule, not vendor.
        assert all("third-party" not in rule.raw for rule in rules.rules)

    def test_generated_rules_actually_match(self):
        detections = [
            DetectedScript(url="http://vendor.com/detect.js", page_domain=f"s{i}.com")
            for i in range(4)
        ] + [DetectedScript(url="http://solo.com/js/ab.js", page_domain="solo.com")]
        generated = RuleGenerator(vendor_threshold=3).generate(detections)
        matcher = NetworkMatcher(generated.rules)
        assert matcher.match(
            "http://vendor.com/detect.js", page_domain="new-site.com", third_party=True
        ).blocked
        assert matcher.match("http://solo.com/js/ab.js").blocked
        assert not matcher.match("http://unrelated.com/app.js").blocked

    def test_empty_and_inline_detections(self):
        rules = RuleGenerator().generate([DetectedScript(url="", page_domain="x.com")])
        assert len(rules) == 0

    def test_duplicate_rules_deduplicated(self):
        detections = [
            DetectedScript(url="http://solo.com/a.js", page_domain="solo.com"),
            DetectedScript(url="http://solo.com/a.js", page_domain="solo.com"),
        ]
        assert len(RuleGenerator().generate(detections)) == 1

    def test_to_filter_list_parses(self):
        detections = [
            DetectedScript(url="http://v.com/d.js", page_domain=f"s{i}.net")
            for i in range(3)
        ]
        filter_list = RuleGenerator().generate(detections).to_filter_list()
        assert len(filter_list.network_rules) == 1
        assert not filter_list.errors


class TestDetectAndGenerate:
    @pytest.fixture(scope="class")
    def detector(self):
        rng = np.random.default_rng(31)
        positives = [generate_anti_adblock(rng, pack_probability=0.0) for _ in range(25)]
        negatives = [generate_benign(rng) for _ in range(100)]
        detector = AntiAdblockDetector(DetectorConfig(feature_set="keyword", top_k=300))
        detector.fit(positives + negatives, [1] * 25 + [0] * 100)
        return detector

    def test_offline_scenario(self, detector):
        rng = np.random.default_rng(32)
        pages = []
        for i in range(4):
            pages.append(
                PageSnapshot(
                    url=f"http://pub{i}.com/",
                    scripts=[
                        Script(
                            source=generate_anti_adblock(rng, family="html_bait", pack_probability=0.0),
                            url="http://newvendor.com/bab.js",
                        ),
                        Script(
                            source=generate_benign(rng, family="utility"),
                            url=f"http://static.pub{i}.com/js/u.js",
                        ),
                    ],
                )
            )
        generated, detections = detect_and_generate(detector, pages, vendor_threshold=3)
        assert detections, "the detector must flag the vendor scripts"
        raws = [rule.raw for rule in generated.rules]
        assert "||newvendor.com^$third-party" in raws

    def test_no_pages(self, detector):
        generated, detections = detect_and_generate(detector, [])
        assert len(generated) == 0 and detections == []
