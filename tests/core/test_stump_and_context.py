"""Tests for the decision stump and the experiment context plumbing."""

import numpy as np
import pytest

from repro.core.adaboost import AdaBoostClassifier, DecisionStump
from repro.experiments.context import AAK, CE, ExperimentContext, default_scale
from repro.synthesis.world import SyntheticWorld, WorldConfig


class TestDecisionStump:
    def test_picks_perfect_feature(self):
        y = np.array([1, 1, 1, 0, 0, 0])
        X = np.column_stack([y, np.array([0, 1, 0, 1, 0, 1])])
        stump = DecisionStump().fit(X, y)
        assert stump.feature_ == 0
        assert (stump.predict(X) == y).all()

    def test_inverted_feature(self):
        y = np.array([1, 1, 0, 0])
        X = (1 - y).reshape(-1, 1)
        stump = DecisionStump().fit(X, y)
        assert stump.polarity_ == -1
        assert (stump.predict(X) == y).all()

    def test_respects_sample_weights(self):
        # Feature 0 is right on the heavy samples, feature 1 on the light.
        y = np.array([1, 0, 1, 0])
        X = np.column_stack([[1, 0, 0, 1], [0, 1, 1, 0]])
        heavy_on_0 = np.array([10.0, 10.0, 0.1, 0.1])
        stump = DecisionStump().fit(X, y, sample_weight=heavy_on_0)
        assert stump.feature_ == 0

    def test_boosting_with_stumps(self):
        rng = np.random.default_rng(3)
        n = 120
        X = rng.integers(0, 2, size=(n, 8)).astype(float)
        # Label = XOR of two features: one stump cannot solve it; boosting
        # an ensemble gets further.
        y = (X[:, 0].astype(int) ^ X[:, 1].astype(int)).astype(np.int8)
        single = DecisionStump().fit(X, y)
        single_accuracy = (single.predict(X) == y).mean()
        boosted = AdaBoostClassifier(base_factory=DecisionStump, n_estimators=30).fit(X, y)
        boosted_accuracy = (boosted.predict(X) == y).mean()
        assert boosted_accuracy >= single_accuracy


class TestExperimentContext:
    @pytest.fixture(scope="class")
    def ctx(self):
        return ExperimentContext(world=SyntheticWorld(WorldConfig(n_sites=80, live_top=200)))

    def test_default_scale_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert default_scale() == 0.5

    def test_create_scales_sizes(self):
        ctx = ExperimentContext.create(scale=0.01)
        assert ctx.world.config.n_sites == 50
        assert ctx.world.config.live_top == 1000

    def test_histories_keys(self, ctx):
        assert set(ctx.histories) == {AAK, CE}

    def test_lazy_artifacts_cached(self, ctx):
        assert ctx.lists is ctx.lists
        assert ctx.archive is ctx.archive

    def test_corpus_labels_align(self, ctx):
        corpus = ctx.corpus
        assert len(corpus.sources()) == len(corpus.labels())

    def test_failed_feature_extraction_still_stages_on_retry(self, monkeypatch):
        """A raised first extraction must not swallow the 'features' stage."""
        from repro.core import featstore

        ctx = ExperimentContext(
            world=SyntheticWorld(WorldConfig(n_sites=60, live_top=200))
        )
        original = featstore.FeatureStore.features_for_corpus
        calls = {"n": 0}

        def fail_once(self, *args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("injected extraction failure")
            return original(self, *args, **kwargs)

        monkeypatch.setattr(featstore.FeatureStore, "features_for_corpus", fail_once)
        with pytest.raises(RuntimeError):
            ctx.corpus_features("all")
        features = ctx.corpus_features("all")
        assert len(features) == len(ctx.corpus.sources())
        names = [stage.name for stage in ctx.stage_timings]
        # Each (feature_set, unpack) pair is its own stage; the failed
        # first attempt is recorded too, with the exception attached.
        assert names.count("features:all:u1") == 2
        failed = next(s for s in ctx.stage_timings if s.name == "features:all:u1")
        assert failed.error == "RuntimeError: injected extraction failure"
        assert "error" in failed.as_dict()
        succeeded = [s for s in ctx.stage_timings if s.name == "features:all:u1"][-1]
        assert succeeded.error is None and "error" not in succeeded.as_dict()
