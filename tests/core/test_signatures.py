"""Tests for the signature-based baseline detector."""

import numpy as np
import pytest

from repro.core.crossval import compute_metrics
from repro.core.signatures import DEFAULT_SIGNATURES, SignatureDetector
from repro.synthesis.scripts import (
    ANTI_ADBLOCK_FAMILIES,
    generate_anti_adblock,
    generate_benign,
    html_bait_v2_script,
)


class TestSignatures:
    def test_blockadblock_flagged(self):
        detector = SignatureDetector()
        source = ANTI_ADBLOCK_FAMILIES["html_bait"](np.random.default_rng(61))
        assert detector.predict([source])[0] == 1

    def test_http_bait_flagged(self):
        detector = SignatureDetector()
        source = ANTI_ADBLOCK_FAMILIES["http_bait"](np.random.default_rng(62))
        assert detector.predict([source])[0] == 1

    def test_can_run_ads_flagged(self):
        detector = SignatureDetector()
        source = ANTI_ADBLOCK_FAMILIES["can_run_ads"](np.random.default_rng(63))
        assert detector.predict([source])[0] == 1

    def test_plain_utility_clean(self):
        detector = SignatureDetector()
        source = generate_benign(np.random.default_rng(64), family="utility")
        assert detector.predict([source])[0] == 0

    def test_matched_signatures_named(self):
        detector = SignatureDetector()
        names = detector.matched_signatures("if (x.offsetHeight === 0) {}")
        assert "offset-zero-check" in names

    def test_score_sums_weights(self):
        detector = SignatureDetector()
        source = "var canRunAds = true; document.cookie = '__adblocker=1';"
        assert detector.score(source) >= 6

    def test_fit_is_noop(self):
        detector = SignatureDetector()
        assert detector.fit(["x"], [1]) is detector

    def test_signature_set_nonempty_and_compiled(self):
        assert len(DEFAULT_SIGNATURES) >= 8
        for signature in DEFAULT_SIGNATURES:
            assert signature.pattern.search is not None


class TestBaselineComparison:
    """The story the baseline exists to tell: brittle under drift."""

    def corpus(self, n_pos=30, n_neg=120, seed=65):
        rng = np.random.default_rng(seed)
        positives = [generate_anti_adblock(rng, pack_probability=0.0) for _ in range(n_pos)]
        negatives = [generate_benign(rng) for _ in range(n_neg)]
        return positives, negatives

    def test_reasonable_on_v1_corpus(self):
        positives, negatives = self.corpus()
        detector = SignatureDetector()
        metrics = compute_metrics(
            [1] * len(positives) + [0] * len(negatives),
            detector.predict(positives + negatives),
        )
        assert metrics.tp_rate > 0.7
        assert metrics.fp_rate < 0.25

    def test_misses_packed_scripts(self):
        """Signatures read raw text: eval()-packed scripts slip through
        unless the packer keeps the idioms verbatim — which ours does not
        escape, so check the *unpacker-less* weakness on v2 instead."""
        rng = np.random.default_rng(66)
        v2 = [html_bait_v2_script(rng) for _ in range(20)]
        detector = SignatureDetector()
        flagged = int(detector.predict(v2).sum())
        # v2 scripts avoid every classic idiom the signatures encode.
        assert flagged <= len(v2) * 0.4
