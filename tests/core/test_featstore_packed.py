"""The packed (``REPRO_DATA_PLANE``) feature cache: identical, just faster.

The JSON-per-script disk cache remains the baseline; the packed event
segments must serve *pickle-byte-identical* entries through the same
``(sha256(source), EXTRACTOR_VERSION, unpack)`` keys — cold, warm,
serial, and sharded.
"""

import pickle

import pytest

from repro.core.featstore import EXTRACTOR_VERSION, FeatureStore
from repro.dataplane.events import SEGMENT_SUFFIX
from repro.obs.metrics import reset_metrics

SOURCES = [
    "if (window.adblock) { document.getElementById('ad').style.display = 'none'; }",
    "var bait = document.createElement('div'); bait.className = 'ad-banner';",
    "}{ not javascript at all ][",  # parse error entry
    "var p = eval('}{' + '');",  # unpack bailout entry
    "function f() { return 42; }",
    "if (window.adblock) { document.getElementById('ad').style.display = 'none'; }",
]


@pytest.fixture(autouse=True)
def fresh_metrics():
    reset_metrics()
    yield
    reset_metrics()


class TestPackedCacheIdentity:
    def test_packed_events_equal_json_events(self, tmp_path):
        json_store = FeatureStore(cache_dir=str(tmp_path / "json"), packed=False)
        packed_store = FeatureStore(cache_dir=str(tmp_path / "packed"), packed=True)
        baseline = json_store.events_for_corpus(SOURCES, workers=1)
        via_packed = packed_store.events_for_corpus(SOURCES, workers=1)
        assert pickle.dumps(via_packed) == pickle.dumps(baseline)

    def test_warm_packed_load_is_byte_identical(self, tmp_path):
        cache = str(tmp_path / "cache")
        writer = FeatureStore(cache_dir=cache, packed=True)
        baseline = writer.events_for_corpus(SOURCES, workers=1)
        assert writer.stats.disk_writes > 0

        warm = FeatureStore(cache_dir=cache, packed=True)
        reloaded = warm.events_for_corpus(SOURCES, workers=1)
        assert warm.stats.extracted == 0  # everything came from the segments
        assert warm.stats.disk_hits > 0
        assert pickle.dumps(reloaded) == pickle.dumps(baseline)

    def test_warm_load_interns_within_store(self, tmp_path):
        cache = str(tmp_path / "cache")
        FeatureStore(cache_dir=cache, packed=True).events_for_corpus(
            SOURCES, workers=1
        )
        warm = FeatureStore(cache_dir=cache, packed=True)
        entries = warm.events_for_corpus(SOURCES, workers=1)
        texts = {}
        for entry in entries:
            for kind, text, contexts in entry.events:
                assert texts.setdefault(text, text) is text

    def test_parallel_extraction_matches_serial(self, tmp_path):
        serial = FeatureStore(cache_dir=str(tmp_path / "a"), packed=True)
        sharded = FeatureStore(cache_dir=str(tmp_path / "b"), packed=True)
        baseline = serial.events_for_corpus(SOURCES, workers=1)
        parallel = sharded.events_for_corpus(SOURCES, workers=3)
        assert pickle.dumps(parallel) == pickle.dumps(baseline)

    def test_segments_on_disk(self, tmp_path):
        cache = tmp_path / "cache"
        store = FeatureStore(cache_dir=str(cache), packed=True)
        store.events_for_corpus(SOURCES, workers=1)
        segments = list(
            (cache / f"v{EXTRACTOR_VERSION}" / "segments").glob(f"*{SEGMENT_SUFFIX}")
        )
        assert len(segments) == 1  # one batch, one segment
        assert not list(cache.rglob("*.json"))  # no JSON files on this plane

    def test_unpack_flag_separates_entries(self, tmp_path):
        store = FeatureStore(cache_dir=str(tmp_path), packed=True)
        packed_true = store.events_for_corpus(SOURCES, unpack=True, workers=1)
        packed_false = store.events_for_corpus(SOURCES, unpack=False, workers=1)
        warm = FeatureStore(cache_dir=str(tmp_path), packed=True)
        assert pickle.dumps(
            warm.events_for_corpus(SOURCES, unpack=True, workers=1)
        ) == pickle.dumps(packed_true)
        assert pickle.dumps(
            warm.events_for_corpus(SOURCES, unpack=False, workers=1)
        ) == pickle.dumps(packed_false)
        assert warm.stats.extracted == 0

    def test_features_identical_across_planes(self, tmp_path):
        json_store = FeatureStore(cache_dir=str(tmp_path / "json"), packed=False)
        packed_store = FeatureStore(cache_dir=str(tmp_path / "packed"), packed=True)
        for feature_set in ("all", "literal", "keyword"):
            assert packed_store.features_for_corpus(
                SOURCES, feature_set=feature_set
            ) == json_store.features_for_corpus(SOURCES, feature_set=feature_set)

    def test_corrupt_segment_triggers_reextraction(self, tmp_path):
        cache = tmp_path / "cache"
        writer = FeatureStore(cache_dir=str(cache), packed=True)
        baseline = writer.events_for_corpus(SOURCES, workers=1)
        (segment,) = (cache / f"v{EXTRACTOR_VERSION}" / "segments").glob(
            f"*{SEGMENT_SUFFIX}"
        )
        raw = bytearray(segment.read_bytes())
        raw[-1] ^= 0xFF
        segment.write_bytes(bytes(raw))
        warm = FeatureStore(cache_dir=str(cache), packed=True)
        recovered = warm.events_for_corpus(SOURCES, workers=1)
        assert warm.stats.extracted > 0  # cache degraded to a miss
        assert pickle.dumps(recovered) == pickle.dumps(baseline)
