"""Tests for the online (in-adblocker) detection scenario."""

import numpy as np
import pytest

from repro.core.online import OnlineAdblocker
from repro.core.pipeline import AntiAdblockDetector, DetectorConfig
from repro.filterlist.parser import parse_filter_list
from repro.synthesis.scripts import generate_anti_adblock, generate_benign
from repro.web.page import PageSnapshot, Script, Subresource


@pytest.fixture(scope="module")
def detector():
    rng = np.random.default_rng(51)
    positives = [generate_anti_adblock(rng, pack_probability=0.0) for _ in range(40)]
    negatives = [generate_benign(rng) for _ in range(160)]
    detector = AntiAdblockDetector(DetectorConfig(feature_set="keyword", top_k=400))
    detector.fit(positives + negatives, [1] * 40 + [0] * 160)
    return detector


def anti_page(rng, inline=False):
    source = generate_anti_adblock(rng, family="html_bait", pack_probability=0.0)
    script = Script(
        source=source,
        url="" if inline else "http://unknownvendor.net/detect.js",
        is_anti_adblock=True,
    )
    benign = Script(
        source=generate_benign(rng, family="utility"),
        url="http://static.pub.com/js/u.js",
    )
    subresources = [Subresource(url=s.url, resource_type="script") for s in (script, benign) if s.url]
    return PageSnapshot(
        url="http://pub.com/",
        html="<body><div id='c'>x</div></body>",
        scripts=[script, benign],
        subresources=subresources,
    )


class TestOnlineAdblocker:
    def test_model_blocks_unlisted_vendor(self, detector):
        """The point of the online mode: no rule knows unknownvendor.net."""
        online = OnlineAdblocker(detector)
        rng = np.random.default_rng(52)
        result = online.visit(anti_page(rng))
        assert result.blocked_by_rules == []
        assert "http://unknownvendor.net/detect.js" in result.blocked_by_model

    def test_benign_scripts_survive(self, detector):
        online = OnlineAdblocker(detector)
        rng = np.random.default_rng(53)
        result = online.visit(anti_page(rng))
        assert "http://static.pub.com/js/u.js" not in result.blocked_urls

    def test_inline_scripts_flagged(self, detector):
        online = OnlineAdblocker(detector)
        rng = np.random.default_rng(54)
        result = online.visit(anti_page(rng, inline=True))
        assert result.flagged_inline == 1

    def test_rules_run_before_model(self, detector):
        lists = [parse_filter_list("||unknownvendor.net^\n")]
        online = OnlineAdblocker(detector, filter_lists=lists)
        rng = np.random.default_rng(55)
        result = online.visit(anti_page(rng))
        assert "http://unknownvendor.net/detect.js" in result.blocked_by_rules
        assert result.blocked_by_model == []

    def test_verdict_cache_grows_once_per_script(self, detector):
        online = OnlineAdblocker(detector)
        rng = np.random.default_rng(56)
        page = anti_page(rng)
        online.visit(page)
        size_after_first = online.cache_size
        online.visit(page)
        assert online.cache_size == size_after_first

    def test_blocks_anti_adblocker_end_to_end(self, detector):
        online = OnlineAdblocker(detector)
        rng = np.random.default_rng(57)
        page = anti_page(rng)
        assert online.blocks_anti_adblocker(page)

    def test_clean_page_untouched(self, detector):
        online = OnlineAdblocker(detector)
        rng = np.random.default_rng(58)
        page = PageSnapshot(
            url="http://clean.com/",
            html="<body></body>",
            scripts=[Script(source=generate_benign(rng), url="http://static.clean.com/a.js")],
            subresources=[Subresource(url="http://static.clean.com/a.js")],
        )
        result = online.visit(page)
        assert result.blocked_urls == []
        assert result.flagged_inline == 0

    def test_element_hiding_still_applies(self, detector):
        lists = [parse_filter_list("pub.com###c\n")]
        online = OnlineAdblocker(detector, filter_lists=lists)
        rng = np.random.default_rng(59)
        result = online.visit(anti_page(rng))
        assert result.document.get_element_by_id("c").hidden
