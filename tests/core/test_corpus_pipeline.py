"""Tests for corpus building and the end-to-end detector pipeline."""

import numpy as np
import pytest

from repro.core.corpus import Corpus, LabeledScript, build_corpus, ground_truth_corpus
from repro.core.pipeline import AntiAdblockDetector, DetectorConfig, evaluate_detector, make_classifier
from repro.filterlist.matcher import NetworkMatcher
from repro.filterlist.rules import NetworkRule
from repro.web.page import PageSnapshot, Script


def page(domain, scripts):
    return PageSnapshot(url=f"http://{domain}/", scripts=scripts)


ANTI = Script(
    source="var d = document.createElement('div'); if (d.offsetHeight == 0) { blocked = true; }",
    url="http://pagefair.com/measure.js",
    is_anti_adblock=True,
)
BENIGN_A = Script(source="function add(a, b) { return a + b; }", url="http://static.a.com/u.js")
BENIGN_B = Script(source="var total = 0; total = total + 1;", url="http://static.b.com/v.js")


class TestBuildCorpus:
    def matcher(self):
        return NetworkMatcher([NetworkRule.parse("||pagefair.com^$third-party")])

    def test_vendor_script_positive(self):
        corpus = build_corpus([page("a.com", [ANTI, BENIGN_A])], self.matcher())
        assert len(corpus.positives) == 1
        assert corpus.positives[0].url == ANTI.url

    def test_first_party_vendor_page_not_positive(self):
        corpus = build_corpus([page("pagefair.com", [ANTI])], self.matcher())
        # On pagefair.com itself the script is first-party: $third-party fails.
        assert len(corpus.positives) == 0

    def test_deduplication(self):
        pages = [page("a.com", [ANTI, BENIGN_A]), page("b.com", [ANTI, BENIGN_A])]
        corpus = build_corpus(pages, self.matcher())
        assert len(corpus.positives) == 1

    def test_positive_wins_over_negative(self):
        # Same source seen unmatched on one page and matched on another.
        inline = Script(source=ANTI.source, url="")
        pages = [page("a.com", [inline]), page("b.com", [ANTI])]
        corpus = build_corpus(pages, self.matcher())
        digests = {s.digest for s in corpus.positives}
        assert all(s.digest not in digests for s in corpus.negatives)

    def test_imbalance_cap(self):
        negatives = [
            Script(source=f"var x{i} = {i};", url=f"http://static.a.com/{i}.js")
            for i in range(100)
        ]
        corpus = build_corpus(
            [page("a.com", [ANTI] + negatives)], self.matcher(), imbalance=10.0
        )
        assert len(corpus.negatives) == 10

    def test_exclude_domains(self):
        corpus = build_corpus(
            [page("a.com", [ANTI]), page("b.com", [BENIGN_B])],
            self.matcher(),
            exclude_domains=["a.com"],
        )
        assert len(corpus.positives) == 0

    def test_labels_array(self):
        corpus = Corpus(
            scripts=[
                LabeledScript(source="a", label=1),
                LabeledScript(source="b", label=0),
            ]
        )
        assert list(corpus.labels()) == [1, 0]
        assert corpus.imbalance == 1.0


class TestGroundTruthCorpus:
    def test_uses_flags(self):
        corpus = ground_truth_corpus([page("a.com", [ANTI, BENIGN_A, BENIGN_B])])
        assert len(corpus.positives) == 1
        assert len(corpus.negatives) == 2


class TestDetectorPipeline:
    def toy_corpus(self, n=30):
        rng = np.random.default_rng(0)
        from repro.synthesis.scripts import generate_anti_adblock, generate_benign

        sources = [generate_anti_adblock(rng, pack_probability=0.0) for _ in range(n)]
        sources += [generate_benign(rng) for _ in range(3 * n)]
        labels = [1] * n + [0] * (3 * n)
        return sources, labels

    def test_fit_predict_roundtrip(self):
        sources, labels = self.toy_corpus(20)
        detector = AntiAdblockDetector(feature_set="keyword", top_k=200)
        detector.fit(sources, labels)
        predictions = detector.predict(sources)
        metrics = detector.score(sources, labels)
        assert len(predictions) == len(sources)
        assert metrics.tp_rate > 0.9

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            AntiAdblockDetector().predict(["var x = 1;"])

    def test_config_or_kwargs_not_both(self):
        with pytest.raises(TypeError):
            AntiAdblockDetector(DetectorConfig(), feature_set="all")

    def test_evaluate_detector_runs_folds(self):
        # Enough positives that every one of the nine anti-adblock
        # families is represented in each training fold.
        sources, labels = self.toy_corpus(45)
        metrics = evaluate_detector(
            sources, labels, feature_set="keyword", top_k=100, n_folds=3
        )
        assert 0.0 <= metrics.fp_rate <= 1.0
        assert metrics.tp_rate > 0.8

    def test_make_classifier_kinds(self):
        assert make_classifier("svm").__class__.__name__ == "SVC"
        assert make_classifier("adaboost_svm").__class__.__name__ == "AdaBoostClassifier"
        with pytest.raises(ValueError):
            make_classifier("random_forest")

    def test_vectorizer_report_exposed(self):
        sources, labels = self.toy_corpus(10)
        detector = AntiAdblockDetector(feature_set="keyword", top_k=50)
        detector.fit(sources, labels)
        assert detector.report.selected <= 50
