"""Tests for chi-square, vectorizer, SVM, AdaBoost, and cross-validation."""

import numpy as np
import pytest

from repro.core.adaboost import AdaBoostClassifier
from repro.core.chi2 import chi_square_from_counts, chi_square_scores, top_k_features
from repro.core.crossval import compute_metrics, cross_validate, stratified_folds
from repro.core.pipeline import DetectorConfig, EvaluationCache, evaluate_detector
from repro.core.svm import SVC, linear_kernel, rbf_kernel
from repro.core.vectorize import FeatureSpace, Vectorizer


class TestChiSquare:
    def test_perfect_predictor_scores_n(self):
        X = np.array([[1], [1], [0], [0]])
        y = np.array([1, 1, 0, 0])
        scores = chi_square_scores(X, y)
        assert scores[0] == pytest.approx(4.0)  # chi2 == N for perfect split

    def test_independent_feature_scores_zero(self):
        X = np.array([[1], [0], [1], [0]])
        y = np.array([1, 1, 0, 0])
        assert chi_square_scores(X, y)[0] == pytest.approx(0.0)

    def test_constant_feature_scores_zero(self):
        X = np.ones((6, 1))
        y = np.array([1, 0, 1, 0, 1, 0])
        assert chi_square_scores(X, y)[0] == 0.0

    def test_matches_paper_formula(self):
        # A=3, B=1, C=1, D=5, N=10
        X = np.array([[1]] * 4 + [[0]] * 6)
        y = np.array([1, 1, 1, 0, 1, 0, 0, 0, 0, 0])
        a, b, c, d, n = 3, 1, 1, 5, 10
        expected = n * (a * d - c * b) ** 2 / ((a + c) * (b + d) * (a + b) * (c + d))
        assert chi_square_scores(X, y)[0] == pytest.approx(expected)

    def test_top_k_ordering(self):
        rng = np.random.default_rng(0)
        y = np.array([1] * 20 + [0] * 20)
        perfect = y.reshape(-1, 1)
        noise = rng.integers(0, 2, size=(40, 3))
        X = np.hstack([noise[:, :1], perfect, noise[:, 1:]])
        order = top_k_features(X, y, k=2)
        assert order[0] == 1

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            chi_square_scores(np.zeros(3), np.zeros(3))
        with pytest.raises(ValueError):
            chi_square_scores(np.zeros((3, 2)), np.zeros(4))


class TestVectorizer:
    def corpus(self):
        positives = [{"a", "b", "pos"}, {"a", "pos", "c"}, {"pos", "b"}] * 5
        negatives = [{"a", "b"}, {"a", "c"}, {"b", "c"}, {"d"}] * 10
        feature_sets = positives + negatives
        labels = [1] * len(positives) + [0] * len(negatives)
        return feature_sets, labels

    def test_fit_transform_binary(self):
        feature_sets, labels = self.corpus()
        X = Vectorizer(top_k=None).fit_transform(feature_sets, labels)
        assert set(np.unique(X)) <= {0, 1}
        assert X.shape[0] == len(feature_sets)

    def test_discriminative_feature_survives(self):
        feature_sets, labels = self.corpus()
        vectorizer = Vectorizer(top_k=2)
        space = vectorizer.fit(feature_sets, labels)
        assert "pos" in space.vocabulary

    def test_variance_filter_drops_rare(self):
        feature_sets, labels = self.corpus()
        # A feature present once in 126 samples has variance ≈ 0.0079 < 0.01.
        feature_sets = feature_sets + [{"once"}] + [set()] * 50
        labels = list(labels) + [0] * 51
        vectorizer = Vectorizer(top_k=None)
        space = vectorizer.fit(feature_sets, labels)
        assert "once" not in space.vocabulary

    def test_report_counts_monotonic(self):
        feature_sets, labels = self.corpus()
        vectorizer = Vectorizer(top_k=1)
        vectorizer.fit(feature_sets, labels)
        report = vectorizer.report
        assert report.extracted >= report.after_variance >= report.after_duplicates
        assert report.selected <= report.after_duplicates

    def test_duplicate_columns_removed(self):
        # 'x' and 'y' always co-occur -> identical columns -> one kept.
        feature_sets = [{"x", "y"}, {"x", "y"}, set(), set(), {"x", "y"}, set()]
        labels = [1, 1, 0, 0, 1, 0]
        space = Vectorizer(top_k=None).fit(feature_sets, labels)
        assert len({"x", "y"} & set(space.vocabulary)) == 1

    def test_transform_unseen_features_ignored(self):
        feature_sets, labels = self.corpus()
        vectorizer = Vectorizer(top_k=None)
        vectorizer.fit(feature_sets, labels)
        X = vectorizer.transform([{"never-seen-feature"}])
        assert X.sum() == 0

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            Vectorizer().transform([{"a"}])


def _dense_reference_fit(feature_sets, labels, variance_threshold=0.01, top_k=None):
    """The pre-bit-packing dense algorithm, pinned to sorted column order.

    Materialises the full samples×vocabulary uint8 matrix and applies the
    same three filters with numpy column arithmetic — the ground truth the
    packed :class:`Vectorizer` must reproduce exactly.
    """
    labels = np.asarray(labels, dtype=np.int8)
    vocabulary = {name: i for i, name in enumerate(sorted(set().union(*feature_sets)))}
    matrix = FeatureSpace(vocabulary=vocabulary).transform(feature_sets)
    names = np.array(sorted(vocabulary), dtype=object)

    presence = matrix.mean(axis=0)
    variance = presence * (1.0 - presence)
    keep = variance >= variance_threshold
    matrix, names = matrix[:, keep], names[keep]

    seen, keep_indices = set(), []
    for column in range(matrix.shape[1]):
        key = matrix[:, column].tobytes()
        if key not in seen:
            seen.add(key)
            keep_indices.append(column)
    matrix, names = matrix[:, keep_indices], names[keep_indices]

    if top_k is not None and matrix.shape[1] > top_k:
        scores = chi_square_scores(matrix, labels)
        order = np.sort(np.argsort(scores)[::-1][:top_k])
        names = names[order]
    return list(names)


class TestPackedVectorizerMatchesDense:
    def wide_corpus(self, n_samples=80, n_features=300, seed=3):
        rng = np.random.default_rng(seed)
        feature_sets = []
        for row in range(n_samples):
            drawn = rng.integers(0, n_features, size=rng.integers(5, 40))
            features = {f"f{int(index):03d}" for index in drawn}
            if row % 3 == 0:
                features |= {"marker", "marker-twin"}  # duplicate column pair
            feature_sets.append(features)
        labels = [int(row % 3 == 0) for row in range(n_samples)]
        return feature_sets, labels

    @pytest.mark.parametrize("top_k", [None, 10, 50, 10_000])
    def test_selected_vocabulary_identical(self, top_k):
        feature_sets, labels = self.wide_corpus()
        space = Vectorizer(top_k=top_k).fit(feature_sets, labels)
        assert space.feature_names == _dense_reference_fit(
            feature_sets, labels, top_k=top_k
        )

    def test_report_counts_identical_to_dense(self):
        feature_sets, labels = self.wide_corpus()
        vectorizer = Vectorizer(top_k=25)
        vectorizer.fit(feature_sets, labels)
        uncapped = _dense_reference_fit(feature_sets, labels, top_k=None)
        assert vectorizer.report.after_duplicates == len(uncapped)
        assert vectorizer.report.selected == 25

    def test_chi_square_from_counts_matches_matrix_path(self):
        feature_sets, labels = self.wide_corpus(n_samples=40, n_features=30)
        vocabulary = {
            name: i for i, name in enumerate(sorted(set().union(*feature_sets)))
        }
        matrix = FeatureSpace(vocabulary=vocabulary).transform(feature_sets)
        labels_arr = np.asarray(labels, dtype=np.float64)
        a = labels_arr @ matrix
        b = matrix.sum(axis=0) - a
        from_counts = chi_square_from_counts(
            a, b, labels_arr.sum(), len(labels) - labels_arr.sum(), len(labels)
        )
        assert np.array_equal(from_counts, chi_square_scores(matrix, labels_arr))


class TestEvaluationCache:
    def corpus(self, n=60, seed=11):
        rng = np.random.default_rng(seed)
        feature_sets, labels = [], []
        for row in range(n):
            label = int(row % 4 == 0)
            base = {"hot", "anti"} if label else {"cold"}
            drawn = rng.integers(0, 40, size=rng.integers(3, 12))
            feature_sets.append(base | {f"f{int(i)}" for i in drawn})
            labels.append(label)
        sources = [f"script {row}" for row in range(n)]
        return sources, labels, feature_sets

    def test_features_token_is_injective(self):
        """Feature text can contain any byte, including old separator bytes."""
        collide_a = [{"a\x1fb"}]
        collide_b = [{"a", "b"}]
        assert EvaluationCache.features_token(collide_a) != EvaluationCache.features_token(
            collide_b
        )
        shift_a = [{"x"}, set()]
        shift_b = [set(), {"x"}]
        assert EvaluationCache.features_token(shift_a) != EvaluationCache.features_token(
            shift_b
        )

    def test_cached_metrics_equal_uncached(self):
        sources, labels, features = self.corpus()
        config = DetectorConfig(feature_set="all", top_k=20, classifier="svm")
        plain = evaluate_detector(
            sources, labels, config=config, n_folds=5, features=features
        )
        cached = evaluate_detector(
            sources,
            labels,
            config=config,
            n_folds=5,
            features=features,
            cache=EvaluationCache(),
        )
        assert plain == cached

    def test_uncapped_top_ks_collapse_to_one_training(self):
        sources, labels, features = self.corpus()
        cache = EvaluationCache()
        results = {}
        # Both caps exceed the post-duplicate vocabulary, so the fitted
        # spaces coincide and the second configuration replays the first.
        for top_k in (10_000, 1_000):
            config = DetectorConfig(feature_set="all", top_k=top_k, classifier="svm")
            results[top_k] = evaluate_detector(
                sources, labels, config=config, n_folds=5, features=features, cache=cache
            )
        assert cache.space_hits > 0
        assert cache.prediction_hits > 0
        assert results[10_000] == results[1_000]

    def test_distinct_spaces_are_not_conflated(self):
        sources, labels, features = self.corpus()
        cache = EvaluationCache()
        small = evaluate_detector(
            sources,
            labels,
            config=DetectorConfig(feature_set="all", top_k=3, classifier="svm"),
            n_folds=5,
            features=features,
            cache=cache,
        )
        assert cache.prediction_hits == 0
        uncapped = evaluate_detector(
            sources,
            labels,
            config=DetectorConfig(feature_set="all", top_k=None, classifier="svm"),
            n_folds=5,
            features=features,
            cache=cache,
        )
        assert small == evaluate_detector(
            sources,
            labels,
            config=DetectorConfig(feature_set="all", top_k=3, classifier="svm"),
            n_folds=5,
            features=features,
        )
        assert isinstance(uncapped, type(small))


class TestKernels:
    def test_rbf_diagonal_ones(self):
        X = np.random.default_rng(1).normal(size=(5, 3))
        K = rbf_kernel(X, X, gamma=0.5)
        assert np.allclose(np.diag(K), 1.0)

    def test_rbf_symmetry(self):
        X = np.random.default_rng(2).normal(size=(6, 4))
        K = rbf_kernel(X, X, gamma=0.1)
        assert np.allclose(K, K.T)

    def test_rbf_range(self):
        X = np.random.default_rng(3).normal(size=(5, 3))
        K = rbf_kernel(X, X, gamma=1.0)
        assert (K >= 0).all() and (K <= 1.0 + 1e-12).all()

    def test_linear_kernel(self):
        X = np.array([[1.0, 0.0], [0.0, 2.0]])
        assert np.allclose(linear_kernel(X, X), X @ X.T)


class TestSVC:
    def blobs(self, n=60, gap=4.0, seed=0):
        rng = np.random.default_rng(seed)
        X = np.vstack(
            [rng.normal(0, 1, (n, 4)), rng.normal(gap, 1, (n, 4))]
        )
        y = np.array([0] * n + [1] * n)
        return X, y

    def test_separable_blobs_perfect(self):
        X, y = self.blobs()
        model = SVC(max_iter=100).fit(X, y)
        assert (model.predict(X) == y).mean() == 1.0

    def test_signed_labels_accepted(self):
        X, y = self.blobs(n=30)
        model = SVC(max_iter=60).fit(X, np.where(y > 0, 1, -1))
        assert (model.predict(X) == y).mean() > 0.95

    def test_bad_labels_rejected(self):
        X, _ = self.blobs(n=5)
        with pytest.raises(ValueError):
            SVC().fit(X, np.array([0, 1, 2] * 3 + [0]))

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            SVC().predict(np.zeros((2, 2)))

    def test_partner_draw_order_matches_reference(self):
        """The fit must reproduce the reference scalar-draw SMO bit-exactly.

        Partner indices are prefetched in batches but must be consumed
        one per violator that passes the live KKT re-check (skipped
        violators consume none), exactly as if drawn on demand. The
        digest below was produced by the original per-violator-draw
        implementation on this dataset; any change to the draw
        alignment silently changes fitted alphas and Table 3 metrics.
        """
        import hashlib

        rng = np.random.default_rng(7)
        X = rng.normal(size=(60, 4))
        y = (X[:, 0] + 0.5 * rng.normal(size=60) > 0).astype(int)
        model = SVC(kernel="rbf", C=2.0, max_iter=200, max_passes=5, seed=3).fit(X, y)
        digest = hashlib.sha256(model.decision_function(X).tobytes()).hexdigest()
        assert (
            digest
            == "292d4a7eccfdd013bd283fcf99fbe3385821727d0035b8455cd0b0a12ee652d1"
        )

    def test_sample_weight_shifts_boundary(self):
        """Up-weighting one class must not hurt its recall."""
        rng = np.random.default_rng(5)
        X = np.vstack([rng.normal(0, 1, (50, 2)), rng.normal(1.2, 1, (10, 2))])
        y = np.array([0] * 50 + [1] * 10)
        weights = np.where(y == 1, 10.0, 1.0)
        weighted = SVC(max_iter=80, class_weight=None).fit(X, y, sample_weight=weights)
        plain = SVC(max_iter=80, class_weight=None).fit(X, y)
        recall_weighted = (weighted.predict(X)[y == 1] == 1).mean()
        recall_plain = (plain.predict(X)[y == 1] == 1).mean()
        assert recall_weighted >= recall_plain

    def test_single_class_degenerate(self):
        X = np.random.default_rng(6).normal(size=(10, 2))
        y = np.ones(10)
        model = SVC(max_iter=20).fit(X, y)
        assert (model.predict(X) == 1).all()

    def test_linear_kernel_fit(self):
        X, y = self.blobs(n=40)
        model = SVC(kernel="linear", max_iter=80).fit(X, y)
        assert (model.predict(X) == y).mean() > 0.95

    def test_unknown_kernel(self):
        X, y = self.blobs(n=5)
        with pytest.raises(ValueError):
            SVC(kernel="poly").fit(X, y)

    def test_explicit_gamma(self):
        X, y = self.blobs(n=30)
        model = SVC(gamma=0.25, max_iter=60).fit(X, y)
        assert model._gamma == 0.25


class TestAdaBoost:
    def test_boost_improves_or_matches_noisy_data(self):
        rng = np.random.default_rng(7)
        X = np.vstack([rng.normal(0, 1, (80, 3)), rng.normal(1.5, 1, (30, 3))])
        y = np.array([0] * 80 + [1] * 30)
        boosted = AdaBoostClassifier(n_estimators=6).fit(X, y)
        accuracy = (boosted.predict(X) == y).mean()
        assert accuracy > 0.9

    def test_perfect_component_short_circuits(self):
        X = np.vstack([np.zeros((20, 2)), np.ones((20, 2)) * 5])
        y = np.array([0] * 20 + [1] * 20)
        boosted = AdaBoostClassifier(n_estimators=10).fit(X, y)
        assert boosted.n_rounds == 1

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            AdaBoostClassifier().predict(np.zeros((2, 2)))

    def test_alphas_positive(self):
        rng = np.random.default_rng(8)
        X = np.vstack([rng.normal(0, 1, (40, 2)), rng.normal(2, 1, (40, 2))])
        y = np.array([0] * 40 + [1] * 40)
        boosted = AdaBoostClassifier(n_estimators=4).fit(X, y)
        assert all(alpha > 0 for alpha in boosted.alphas_)


class TestCrossValidation:
    def test_metrics_definitions(self):
        y_true = np.array([1, 1, 1, 0, 0, 0, 0, 0])
        y_pred = np.array([1, 1, 0, 1, 0, 0, 0, 0])
        metrics = compute_metrics(y_true, y_pred)
        assert metrics.tp_rate == pytest.approx(2 / 3)
        assert metrics.fp_rate == pytest.approx(1 / 5)
        assert metrics.accuracy == pytest.approx(6 / 8)

    def test_stratified_folds_cover_everything(self):
        labels = np.array([1] * 10 + [0] * 50)
        seen = np.zeros(60, dtype=int)
        for train, test in stratified_folds(labels, n_folds=5, seed=1):
            seen[test] += 1
            assert set(train) & set(test) == set()
        assert (seen == 1).all()

    def test_stratified_folds_balance(self):
        labels = np.array([1] * 10 + [0] * 50)
        for train, test in stratified_folds(labels, n_folds=5, seed=2):
            assert labels[test].sum() == 2  # 10 positives over 5 folds

    def test_cross_validate_on_separable_data(self):
        rng = np.random.default_rng(9)
        X = np.vstack([rng.normal(0, 1, (40, 3)), rng.normal(5, 1, (40, 3))])
        y = np.array([0] * 40 + [1] * 40)
        metrics = cross_validate(lambda: SVC(max_iter=60), X, y, n_folds=5)
        assert metrics.tp_rate > 0.95
        assert metrics.fp_rate < 0.05
