"""Doc lint: the documentation must stay executable and in sync.

Three contracts, enforced so the docs cannot silently rot:

- every fenced ``python`` snippet in the user-facing docs runs as-is
  (snippets within a file are cumulative, as the docs state), and every
  fenced ``bash`` snippet at least parses;
- the ``REPRO_*`` knob surface documented in the docs and the one
  validated in ``repro.obs.config`` are the same set, in both
  directions;
- every internal markdown link (and its ``#anchor``, when present)
  resolves to a real file/heading.
"""

import re
import shutil
import subprocess

import pytest

from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: The linted documentation set. CHANGES.md (a log) is deliberately out.
DOCS = [
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "docs/ARCHITECTURE.md",
    "docs/OPERATIONS.md",
    "docs/SERVING.md",
    "docs/TUTORIAL.md",
]

#: Docs whose python snippets are executed end to end. The others have
#: no python fences (asserted below, so a new snippet can't dodge lint).
EXECUTABLE_DOCS = ["README.md", "docs/TUTORIAL.md"]

_FENCE = re.compile(r"```(\w*)[ \t]*\n(.*?)\n```", re.S)
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_KNOB = re.compile(r"REPRO_[A-Z_]+")


def _fences(doc: str):
    return _FENCE.findall((ROOT / doc).read_text(encoding="utf-8"))


def _snippets(doc: str, lang: str):
    return [body for fence_lang, body in _fences(doc) if fence_lang == lang]


def _prose(doc: str) -> str:
    """Document text with fenced code blocks removed."""
    return _FENCE.sub("", (ROOT / doc).read_text(encoding="utf-8"))


class TestSnippetsExecute:
    @pytest.mark.parametrize("doc", EXECUTABLE_DOCS)
    def test_python_snippets_run_cumulatively(self, doc):
        snippets = _snippets(doc, "python")
        assert snippets, f"{doc} lost its python snippets"
        code = "\n".join(snippets)
        namespace = {"__name__": f"docs_{Path(doc).stem.lower()}"}
        exec(compile(code, str(ROOT / doc), "exec"), namespace)

    def test_only_the_executable_docs_have_python_fences(self):
        for doc in DOCS:
            if doc not in EXECUTABLE_DOCS:
                assert not _snippets(doc, "python"), (
                    f"{doc} grew a python fence: add it to EXECUTABLE_DOCS "
                    "(and make it runnable) or mark it as text"
                )

    @pytest.mark.parametrize("doc", DOCS)
    def test_bash_snippets_parse(self, doc):
        bash = shutil.which("bash")
        if bash is None:  # pragma: no cover
            pytest.skip("no bash on PATH")
        for snippet in _snippets(doc, "bash"):
            proc = subprocess.run(
                [bash, "-n"], input=snippet, capture_output=True, text=True
            )
            assert proc.returncode == 0, (
                f"bash snippet in {doc} does not parse:\n"
                f"{snippet}\n{proc.stderr}"
            )


class TestKnobSync:
    def _config_knobs(self):
        source = (ROOT / "src/repro/obs/config.py").read_text(encoding="utf-8")
        return set(_KNOB.findall(source))

    def _doc_knobs(self, doc: str):
        return set(_KNOB.findall((ROOT / doc).read_text(encoding="utf-8")))

    def test_docs_and_config_agree_on_the_knob_surface(self):
        config = self._config_knobs()
        documented = set()
        for doc in DOCS:
            unknown = self._doc_knobs(doc) - config
            assert not unknown, f"{doc} documents unknown knobs: {unknown}"
            documented |= self._doc_knobs(doc)
        assert documented == config, (
            f"knobs in config but documented nowhere: {config - documented}"
        )

    def test_architecture_table_lists_every_knob(self):
        # The consolidated table is the canonical reference; it must be
        # complete, not just the union of all docs.
        assert self._doc_knobs("docs/ARCHITECTURE.md") == self._config_knobs()


class TestLinks:
    @staticmethod
    def _heading_slugs(path: Path):
        slugs = set()
        for line in _FENCE.sub("", path.read_text(encoding="utf-8")).splitlines():
            match = re.match(r"#+\s+(.*)", line)
            if match:
                heading = re.sub(r"[^\w\s-]", "", match.group(1).strip().lower())
                slugs.add(re.sub(r"\s+", "-", heading))
        return slugs

    @pytest.mark.parametrize("doc", DOCS)
    def test_internal_links_resolve(self, doc):
        base = (ROOT / doc).parent
        for target in _LINK.findall(_prose(doc)):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, anchor = target.partition("#")
            resolved = (base / path_part).resolve() if path_part else ROOT / doc
            assert resolved.exists(), f"{doc} links to missing {target}"
            if anchor:
                assert resolved.suffix == ".md", f"{doc}: anchor on non-md {target}"
                assert anchor in self._heading_slugs(resolved), (
                    f"{doc} links to missing anchor {target}"
                )
