"""End-to-end warm starts: the context resolves stages through the graph.

These are the PR's acceptance tests: a second process pointed at the
same ``REPRO_RUN_CACHE`` serves every stage and experiment from disk,
with values (and rendered-artifact digests) identical to the cold run.
"""

import hashlib

import pytest

import repro.experiments.fig1 as fig1
import repro.experiments.fig6 as fig6
from repro.experiments.context import ExperimentContext
from repro.graph.store import scan_entries
from repro.obs.metrics import get_metrics, reset_metrics

SCALE = 0.02


@pytest.fixture()
def cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RUN_CACHE", str(tmp_path))
    reset_metrics()
    return tmp_path


def fresh_ctx() -> ExperimentContext:
    """A brand-new context: the in-memory layer starts empty, as after a
    process restart (node keys never depend on process state)."""
    return ExperimentContext.create(scale=SCALE)


class TestStageWarmStart:
    def test_cold_then_warm_coverage(self, cache):
        cold = fresh_ctx()
        cold_result = cold.coverage
        assert [s.name for s in cold.stage_timings if s.cached] == []
        assert scan_entries(cache)  # nodes persisted

        warm = fresh_ctx()
        warm_result = warm.coverage
        cached = [s.name for s in warm.stage_timings if s.cached]
        assert cached == ["coverage"]  # upstream stages never materialise
        assert warm_result.http_series == cold_result.http_series
        assert warm_result.html_series == cold_result.html_series
        assert get_metrics().counter("graph.hits") >= 1

    def test_warm_values_equal_cold_values(self, cache):
        cold = fresh_ctx()
        cold.lists
        cold.corpus
        cold_features = cold.corpus_features("all")

        warm = fresh_ctx()
        assert sorted(warm.lists) == sorted(cold.lists)
        for key in cold.lists:
            cold_latest = cold.lists[key].latest().filter_list
            warm_latest = warm.lists[key].latest().filter_list
            assert [r.raw for r in warm_latest.network_rules] == [
                r.raw for r in cold_latest.network_rules
            ]
        assert warm.corpus_features("all") == cold_features

    def test_rendered_artifacts_byte_identical(self, cache):
        cold = fresh_ctx()
        cold_rendered = fig6.render(fig6.run(cold))
        warm = fresh_ctx()
        warm_rendered = fig6.render(fig6.run(warm))
        assert (
            hashlib.sha256(warm_rendered.encode()).hexdigest()
            == hashlib.sha256(cold_rendered.encode()).hexdigest()
        )

    def test_experiment_nodes_resolve_from_cache(self, cache):
        cold = fresh_ctx()
        graph = cold.graph
        graph.register_experiment("fig1", fig1)
        cold_rendered = graph.resolve("exp:fig1", lambda: fig1.render(fig1.run(cold)))

        warm = fresh_ctx()
        warm_graph = warm.graph
        warm_graph.register_experiment("fig1", fig1)
        ran = []
        rendered = warm_graph.resolve(
            "exp:fig1", lambda: ran.append(1) or fig1.render(fig1.run(warm))
        )
        assert ran == []  # the compute thunk never fired
        assert rendered == cold_rendered
        # The warm context materialised no stage at all.
        assert warm.stage_timings == []

    def test_disabled_graph_still_computes(self, monkeypatch):
        monkeypatch.delenv("REPRO_RUN_CACHE", raising=False)
        ctx = fresh_ctx()
        assert not ctx.graph.enabled
        assert ctx.lists is not None
        assert [s.cached for s in ctx.stage_timings] == [False]


class TestInvalidation:
    def test_one_line_patch_recomputes_only_downstream(self, cache, tmp_path,
                                                       monkeypatch):
        cold = fresh_ctx()
        cold.coverage  # populates archive, crawl, lists, coverage

        patch = tmp_path / "patch.txt"
        patch.write_text("! campaign hotfix\n||hotfix-tracker.example/ad.js\n")
        monkeypatch.setenv("REPRO_LIST_PATCH", str(patch))

        warm = fresh_ctx()
        warm.coverage
        by_name = {s.name: s for s in warm.stage_timings}
        # The crawl half of the fork is served from cache; the list half
        # (and everything downstream of it) recomputes.
        assert by_name["crawl"].cached is True
        assert "archive" not in by_name  # untouched on disk
        assert by_name["lists"].cached is False
        assert by_name["coverage"].cached is False
        # The patched rule actually entered the lists.
        latest = warm.lists["aak"].latest().filter_list
        assert any("hotfix-tracker" in r.raw for r in latest.network_rules)

    def test_corrupt_entry_falls_through_to_compute(self, cache):
        cold = fresh_ctx()
        cold.lists
        (entry,) = scan_entries(cache)
        raw = bytearray(open(entry["path"], "rb").read())
        raw[-1] ^= 0xFF
        open(entry["path"], "wb").write(bytes(raw))

        reset_metrics()
        warm = fresh_ctx()
        assert warm.lists is not None
        metrics = get_metrics()
        assert metrics.counter("graph.errors") == 1
        assert metrics.counter("graph.misses") == 1
        # The recompute overwrote the bad entry; a third context hits.
        reset_metrics()
        third = fresh_ctx()
        third.lists
        assert get_metrics().counter("graph.hits") == 1

    def test_invalidate_node_forces_recompute(self, cache):
        cold = fresh_ctx()
        cold.lists
        removed = cold.graph.invalidate("lists")
        assert removed == 1
        warm = fresh_ctx()
        warm.lists
        assert [s.cached for s in warm.stage_timings] == [False]


class TestManifestSection:
    def test_outcomes_cover_hits_and_stores(self, cache):
        cold = fresh_ctx()
        cold.lists
        section = cold.graph.manifest_section()
        assert section["cache_dir"] == str(cache)
        assert section["nodes"]["lists"]["outcome"] == "stored"

        warm = fresh_ctx()
        warm.lists
        warm_section = warm.graph.manifest_section()
        assert warm_section["nodes"]["lists"]["outcome"] == "hit"
        assert warm_section["nodes"]["lists"]["key"] == section["nodes"]["lists"]["key"]

    def test_section_validates_inside_a_manifest(self, cache, tmp_path):
        from repro.obs.manifest import RunManifest, validate_manifest

        ctx = fresh_ctx()
        ctx.lists
        manifest = RunManifest(tmp_path / "run.json")
        result = manifest.finalize(
            seed=ctx.world.seed, extra={"graph": ctx.graph.manifest_section()}
        )
        assert validate_manifest(result) == []
