"""Code-version digests: scope hashing and its invalidation semantics."""

import pytest

from repro.graph import version


@pytest.fixture()
def fake_tree(tmp_path, monkeypatch):
    """A throwaway package root the scope digests read from."""
    (tmp_path / "filterlist").mkdir()
    (tmp_path / "filterlist" / "rules.py").write_text("RULES = 1\n")
    (tmp_path / "experiments").mkdir()
    (tmp_path / "experiments" / "fig1.py").write_text("def run(): pass\n")
    monkeypatch.setattr(version, "package_root", lambda: tmp_path)
    version.reset_scope_cache()
    yield tmp_path
    version.reset_scope_cache()


class TestScopeDigest:
    def test_memoized_per_process(self, fake_tree):
        first = version.scope_digest("filterlist")
        # An edit without a cache reset is invisible (source trees do
        # not change under a running campaign)...
        (fake_tree / "filterlist" / "rules.py").write_text("RULES = 2\n")
        assert version.scope_digest("filterlist") == first
        # ...and visible after one.
        version.reset_scope_cache()
        assert version.scope_digest("filterlist") != first

    def test_single_module_scope(self, fake_tree):
        before = version.scope_digest("experiments/fig1.py")
        (fake_tree / "experiments" / "fig1.py").write_text("def run(): return 1\n")
        version.reset_scope_cache()
        assert version.scope_digest("experiments/fig1.py") != before

    def test_editing_one_scope_leaves_others_alone(self, fake_tree):
        lists = version.scope_digest("filterlist")
        fig1 = version.scope_digest("experiments/fig1.py")
        (fake_tree / "experiments" / "fig1.py").write_text("# changed\n")
        version.reset_scope_cache()
        assert version.scope_digest("filterlist") == lists
        assert version.scope_digest("experiments/fig1.py") != fig1

    def test_rename_invalidates(self, fake_tree):
        before = version.scope_digest("filterlist")
        (fake_tree / "filterlist" / "rules.py").rename(
            fake_tree / "filterlist" / "rules2.py"
        )
        version.reset_scope_cache()
        assert version.scope_digest("filterlist") != before

    def test_missing_scope_is_a_stable_marker(self, fake_tree):
        gone = version.scope_digest("no_such_package")
        version.reset_scope_cache()
        assert version.scope_digest("no_such_package") == gone
        assert gone != version.scope_digest("filterlist")


class TestCodeVersion:
    def test_order_and_duplicates_are_irrelevant(self, fake_tree):
        a = version.code_version(["filterlist", "experiments/fig1.py"])
        b = version.code_version(["experiments/fig1.py", "filterlist", "filterlist"])
        assert a == b

    def test_scope_sets_differ(self, fake_tree):
        assert version.code_version(["filterlist"]) != version.code_version(
            ["filterlist", "experiments/fig1.py"]
        )

    def test_real_tree_digests_are_hex(self):
        digest = version.scope_digest("filterlist")
        assert len(digest) == 64
        int(digest, 16)
