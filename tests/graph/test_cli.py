"""The ``python -m repro graph`` inspect/invalidate CLI."""

import json

import pytest

from repro.__main__ import main
from repro.experiments.context import ExperimentContext

SCALE = "0.02"


@pytest.fixture()
def cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RUN_CACHE", str(tmp_path))
    monkeypatch.setenv("REPRO_SCALE", SCALE)
    return tmp_path


def warm_lists(cache):
    ctx = ExperimentContext.create()
    ctx.lists
    return ctx


class TestSummary:
    def test_summary_without_cache_dir(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_RUN_CACHE", raising=False)
        assert main(["graph"]) == 0
        assert "REPRO_RUN_CACHE unset" in capsys.readouterr().out

    def test_summary_counts_entries(self, capsys, cache):
        warm_lists(cache)
        assert main(["graph", "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["cache_dir"] == str(cache)
        assert summary["entries"] == 1
        assert summary["warm_nodes"] == 1
        # 6 stages + 3 standard feature nodes + 14 experiments.
        assert summary["nodes"] == 23


class TestKeysAndLs:
    def test_keys_lists_every_node(self, capsys, cache):
        warm_lists(cache)
        assert main(["graph", "keys", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        by_node = {row["node"]: row for row in rows}
        assert by_node["lists"]["cached"] is True
        assert by_node["coverage"]["cached"] is False
        assert len(by_node["lists"]["key"]) == 64
        assert "exp:fig1" in by_node and "features:all:u1" in by_node

    def test_ls_shows_disk_entries(self, capsys, cache):
        warm_lists(cache)
        assert main(["graph", "ls", "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 1
        assert rows[0]["node_dir"] == "lists"


class TestInvalidate:
    def test_invalidate_one_node(self, capsys, cache):
        warm_lists(cache)
        assert main(["graph", "invalidate", "lists", "--json"]) == 0
        assert json.loads(capsys.readouterr().out) == {"removed": 1}

    def test_invalidate_all(self, capsys, cache):
        warm_lists(cache)
        assert main(["graph", "invalidate", "--all"]) == 0
        assert "removed 1" in capsys.readouterr().out

    def test_invalidate_unknown_node(self, capsys, cache):
        assert main(["graph", "invalidate", "bogus"]) == 2
        assert "unknown node" in capsys.readouterr().err

    def test_invalidate_needs_cache_dir(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_RUN_CACHE", raising=False)
        assert main(["graph", "invalidate", "--all"]) == 2
        assert "REPRO_RUN_CACHE" in capsys.readouterr().err

    def test_unknown_subcommand(self, capsys):
        assert main(["graph", "frobnicate"]) == 2
        assert "unknown graph command" in capsys.readouterr().err
