"""Node-key semantics: determinism, restart invariance, sensitivity.

Satellite property (hypothesis): a node digest is a pure function of
(inputs, seed, scale, code-version) — invariant across process restarts
and worker counts, and changed by exactly the inputs that matter.
"""

import json
import os
import subprocess
import sys
from pathlib import Path
from types import SimpleNamespace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import version
from repro.graph.core import ArtifactGraph, campaign_params
from repro.synthesis.world import WorldConfig

SRC = str(Path(__file__).resolve().parents[2] / "src")

#: Every statically-registered node plus the on-demand feature nodes.
ALL_NODES = (
    "lists",
    "archive",
    "crawl",
    "coverage",
    "live",
    "corpus",
    "features:all:u1",
    "features:keyword:u0",
)


def fake_world(seed=1702, **config):
    """campaign_params only reads .seed/.config — no real world needed."""
    return SimpleNamespace(seed=seed, config=WorldConfig(**config))


def graph_for(seed=1702, **config) -> ArtifactGraph:
    return ArtifactGraph(campaign_params(fake_world(seed, **config)))


def all_keys(graph: ArtifactGraph):
    return {name: graph.key(name) for name in ALL_NODES}


worlds = st.builds(
    fake_world,
    seed=st.integers(min_value=0, max_value=2**31),
    n_sites=st.integers(min_value=50, max_value=5000),
    live_top=st.integers(min_value=500, max_value=100_000),
)


class TestDeterminism:
    def test_two_graphs_same_params_same_keys(self):
        assert all_keys(graph_for()) == all_keys(graph_for())

    def test_key_is_memoized(self):
        graph = graph_for()
        assert graph.key("coverage") is graph.key("coverage")

    @settings(max_examples=25, deadline=None)
    @given(world=worlds)
    def test_keys_are_pure_functions_of_the_campaign(self, world):
        left = ArtifactGraph(campaign_params(world))
        right = ArtifactGraph(campaign_params(world))
        assert all_keys(left) == all_keys(right)

    @settings(max_examples=15, deadline=None)
    @given(world=worlds, delta=st.integers(min_value=1, max_value=1000))
    def test_seed_change_invalidates_everything(self, world, delta):
        base = all_keys(ArtifactGraph(campaign_params(world)))
        shifted = fake_world(world.seed + delta, n_sites=world.config.n_sites,
                             live_top=world.config.live_top)
        changed = all_keys(ArtifactGraph(campaign_params(shifted)))
        for name in ALL_NODES:
            assert base[name] != changed[name], name

    @settings(max_examples=15, deadline=None)
    @given(world=worlds, delta=st.integers(min_value=1, max_value=1000))
    def test_scale_change_invalidates_everything(self, world, delta):
        # Scale arrives at the graph as world sizing (n_sites/live_top).
        base = all_keys(ArtifactGraph(campaign_params(world)))
        resized = fake_world(world.seed, n_sites=world.config.n_sites + delta,
                             live_top=world.config.live_top)
        changed = all_keys(ArtifactGraph(campaign_params(resized)))
        for name in ALL_NODES:
            assert base[name] != changed[name], name


class TestWorkerAndKnobInvariance:
    def test_workers_pool_dataplane_stay_out_of_keys(self, monkeypatch):
        base = all_keys(graph_for())
        monkeypatch.setenv("REPRO_WORKERS", "8")
        monkeypatch.setenv("REPRO_POOL_PERSIST", "1")
        monkeypatch.setenv("REPRO_DATA_PLANE", "1")
        monkeypatch.setenv("REPRO_RULE_STATS", "1")
        assert all_keys(graph_for()) == base

    def test_fault_seed_enters_ingest_keys(self, monkeypatch):
        base = all_keys(graph_for())
        monkeypatch.setenv("REPRO_FAULT_SEED", "7")
        faulted = all_keys(graph_for())
        assert faulted["crawl"] != base["crawl"]
        assert faulted["live"] != base["live"]
        assert faulted["lists"] == base["lists"]
        assert faulted["archive"] == base["archive"]

    def test_list_patch_enters_only_list_derived_keys(self, monkeypatch, tmp_path):
        base = all_keys(graph_for())
        patch = tmp_path / "patch.txt"
        patch.write_text("||extra-tracker.example/ad.js\n")
        monkeypatch.setenv("REPRO_LIST_PATCH", str(patch))
        patched = all_keys(graph_for())
        for invalidated in ("lists", "coverage", "live", "corpus", "features:all:u1"):
            assert patched[invalidated] != base[invalidated], invalidated
        for untouched in ("archive", "crawl"):
            assert patched[untouched] == base[untouched], untouched
        # Editing the patch file re-keys again.
        patch.write_text("||extra-tracker.example/other.js\n")
        assert all_keys(graph_for())["lists"] != patched["lists"]


class TestCodeVersionSensitivity:
    def test_editing_a_scope_rekeys_only_its_nodes(self, tmp_path, monkeypatch):
        (tmp_path / "filterlist").mkdir()
        (tmp_path / "filterlist" / "rules.py").write_text("A = 1\n")
        (tmp_path / "wayback").mkdir()
        (tmp_path / "wayback" / "crawler.py").write_text("B = 1\n")
        monkeypatch.setattr(version, "package_root", lambda: tmp_path)
        version.reset_scope_cache()
        try:
            before = all_keys(graph_for())
            (tmp_path / "filterlist" / "rules.py").write_text("A = 2\n")
            version.reset_scope_cache()
            after = all_keys(graph_for())
        finally:
            version.reset_scope_cache()
        # filterlist is a declared scope of lists/coverage/live/corpus...
        for name in ("lists", "coverage", "live", "corpus"):
            assert after[name] != before[name], name
        # ...but not of the archive; features depend on corpus's key, so
        # they re-key transitively.
        assert after["archive"] == before["archive"]
        assert after["features:all:u1"] != before["features:all:u1"]


class TestRestartInvariance:
    def test_keys_survive_process_restart_and_hash_seed(self):
        """The acceptance property: keys are byte-stable across processes."""
        script = (
            "import json, sys\n"
            "sys.path.insert(0, {src!r})\n"
            "from tests.graph.test_keys import all_keys, graph_for\n"
            "print(json.dumps(all_keys(graph_for())))\n"
        ).format(src=SRC)
        here = all_keys(graph_for())
        for hash_seed in ("0", "12345"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = hash_seed
            env["PYTHONPATH"] = SRC + os.pathsep + str(Path(SRC).parent)
            completed = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                cwd=str(Path(SRC).parent),
            )
            assert completed.returncode == 0, completed.stderr
            assert json.loads(completed.stdout) == here


class TestExperimentRegistration:
    def test_register_experiment_reads_driver_attrs(self):
        import repro.experiments.fig5 as fig5

        graph = graph_for()
        spec = graph.register_experiment("fig5", fig5)
        assert spec.name == "exp:fig5"
        assert spec.deps == ("crawl",)
        assert "experiments/fig5.py" in spec.code
        key = graph.key("exp:fig5")
        assert len(key) == 64

    def test_unknown_dependency_fails_at_register_time(self):
        graph = graph_for()
        bad = SimpleNamespace(GRAPH_DEPS=("no_such_stage",), GRAPH_CODE=())
        try:
            graph.register_experiment("bad", bad)
        except KeyError as exc:
            assert "no_such_stage" in str(exc)
        else:  # pragma: no cover
            raise AssertionError("expected KeyError")

    def test_volatile_callable_is_resolved(self, monkeypatch, tmp_path):
        import repro.experiments.rulereport as rulereport

        graph = graph_for()
        assert graph.register_experiment("rulereport", rulereport).volatile is False
        monkeypatch.setenv("REPRO_RULE_STATS_DIR", str(tmp_path))
        graph2 = graph_for()
        assert graph2.register_experiment("rulereport", rulereport).volatile is True
