"""Run-cache containers: round-trips, corruption handling, maintenance."""

import pickle

import pytest

from repro.dataplane.format import KIND_GRAPH, MappedArtifact
from repro.graph.store import (
    GraphStoreError,
    delete_entries,
    entry_path,
    load_entry,
    node_dirname,
    read_meta,
    scan_entries,
    store_entry,
)

KEY = "ab" * 32
KEY2 = "cd" * 32


class TestRoundTrip:
    def test_pickle_codec(self, tmp_path):
        path = entry_path(tmp_path, "coverage", KEY)
        value = {"months": [1, 2, 3], "sites": {"a.com", "b.com"}}
        written = store_entry(path, {"node": "coverage", "key": KEY}, value)
        assert written == path.stat().st_size
        meta, loaded = load_entry(path)
        assert loaded == value
        assert meta["codec"] == "pickle"
        assert meta["node"] == "coverage"

    def test_text_codec_for_rendered_artifacts(self, tmp_path):
        path = entry_path(tmp_path, "exp:fig1", KEY)
        rendered = "Figure 1 — §3.2 rule counts\n" + "=" * 40 + "\n"
        store_entry(path, {"node": "exp:fig1", "key": KEY}, rendered)
        meta, loaded = load_entry(path)
        assert meta["codec"] == "text"
        assert loaded == rendered
        # Raw UTF-8 on disk: the artifact text is literally greppable.
        assert "Figure 1".encode("utf-8") in path.read_bytes()

    def test_container_is_a_verified_rdpk_artifact(self, tmp_path):
        path = entry_path(tmp_path, "lists", KEY)
        store_entry(path, {"node": "lists", "key": KEY}, [1, 2])
        with MappedArtifact(path, expect_kind=KIND_GRAPH) as artifact:
            assert artifact.kind == KIND_GRAPH

    def test_node_dirname_sanitizes(self):
        assert node_dirname("exp:fig1") == "exp_fig1"
        assert node_dirname("features:all:u1") == "features_all_u1"
        assert "/" not in node_dirname("a/b\\c")


class TestCorruption:
    def _stored(self, tmp_path, value=(1, 2, 3)):
        path = entry_path(tmp_path, "lists", KEY)
        store_entry(path, {"node": "lists", "key": KEY}, value)
        return path

    def test_flipped_payload_byte_raises(self, tmp_path):
        path = self._stored(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(GraphStoreError):
            load_entry(path)

    def test_truncated_file_raises(self, tmp_path):
        path = self._stored(tmp_path)
        path.write_bytes(path.read_bytes()[:20])
        with pytest.raises(GraphStoreError):
            load_entry(path)

    def test_undecodable_pickle_raises_store_error(self, tmp_path):
        # A well-formed container whose blob is not a pickle: rebuild the
        # entry with a lying codec.
        import json
        import struct

        from repro.dataplane.format import write_artifact

        meta = json.dumps(
            {"node": "lists", "key": KEY, "schema": 1, "codec": "pickle"}
        ).encode()
        payload = struct.pack("<I", len(meta)) + meta + b"not a pickle"
        path = entry_path(tmp_path, "lists", KEY)
        write_artifact(path, KIND_GRAPH, payload)
        with pytest.raises(GraphStoreError):
            load_entry(path)

    def test_unknown_schema_raises(self, tmp_path):
        import json
        import struct

        from repro.dataplane.format import write_artifact

        meta = json.dumps({"schema": 999, "codec": "pickle"}).encode()
        payload = struct.pack("<I", len(meta)) + meta + pickle.dumps(1)
        path = entry_path(tmp_path, "lists", KEY)
        write_artifact(path, KIND_GRAPH, payload)
        with pytest.raises(GraphStoreError):
            load_entry(path)


class TestMaintenance:
    def test_scan_and_delete(self, tmp_path):
        store_entry(entry_path(tmp_path, "lists", KEY), {}, 1)
        store_entry(entry_path(tmp_path, "lists", KEY2), {}, 2)
        store_entry(entry_path(tmp_path, "exp:fig1", KEY), {}, "x")
        rows = scan_entries(tmp_path)
        assert len(rows) == 3
        assert [row["node_dir"] for row in rows] == ["exp_fig1", "lists", "lists"]
        assert delete_entries(tmp_path, "lists") == 2
        assert len(scan_entries(tmp_path)) == 1
        assert delete_entries(tmp_path) == 1
        assert scan_entries(tmp_path) == []

    def test_scan_missing_dir_is_empty(self, tmp_path):
        assert scan_entries(tmp_path / "nope") == []
        assert delete_entries(tmp_path / "nope") == 0

    def test_read_meta(self, tmp_path):
        path = entry_path(tmp_path, "corpus", KEY)
        store_entry(path, {"node": "corpus", "key": KEY}, [1])
        assert read_meta(path)["node"] == "corpus"
