"""Small public-API behaviours not covered elsewhere."""

from datetime import date

from repro.analysis.report import render_series
from repro.core.corpus import LabeledScript
from repro.filterlist.matcher import MatchResult, NetworkMatcher
from repro.filterlist.rules import DomainOption, NetworkRule
from repro.wayback.archive import Capture, WaybackArchive
from repro.web.adblocker import Adblocker, AdblockLog, LogEntry
from repro.web.page import PageSnapshot


class TestMatchResultTruthiness:
    def test_bool_follows_blocked(self):
        assert bool(MatchResult(blocked=True))
        assert not bool(MatchResult(blocked=False))

    def test_matcher_usable_in_conditionals(self):
        matcher = NetworkMatcher([NetworkRule.parse("||x.com^")])
        assert matcher.match("http://x.com/a")
        assert not matcher.match("http://y.com/a")


class TestDomainOptionEmpty:
    def test_is_empty(self):
        assert DomainOption().is_empty
        assert not DomainOption.parse("a.com").is_empty
        assert not DomainOption.parse("~a.com").is_empty


class TestCaptureArchiveUrl:
    def test_embeds_timestamp_and_original(self):
        capture = Capture(
            captured_on=date(2015, 4, 2),
            snapshot=PageSnapshot(url="http://a.com/"),
        )
        assert capture.archive_url == (
            "http://web.archive.org/web/20150402000000/http://a.com/"
        )


class TestAdblockLog:
    def test_clear_and_partitions(self):
        log = AdblockLog()
        network_rule = NetworkRule.parse("||x.com^")
        log.add(LogEntry("request-blocked", network_rule, "http://x.com/"))
        log.add(LogEntry("request-allowed", network_rule, "http://x.com/"))
        assert len(log.triggered_network_rules()) == 2
        assert log.triggered_element_rules() == []
        log.clear()
        assert log.entries == []

    def test_adblocker_rule_count(self):
        from repro.filterlist.parser import parse_filter_list

        adblocker = Adblocker([parse_filter_list("||a.com^\nb.com###x\n")])
        assert adblocker.rule_count == 2

    def test_subscribe_rebuilds_matcher(self):
        from repro.filterlist.parser import parse_filter_list

        adblocker = Adblocker([parse_filter_list("||a.com^\n")])
        assert adblocker.should_block("http://a.com/x")
        assert not adblocker.should_block("http://b.com/x")
        adblocker.subscribe(parse_filter_list("||b.com^\n"))
        assert adblocker.should_block("http://b.com/x")


class TestLabeledScriptDigest:
    def test_digest_depends_on_source_only(self):
        a = LabeledScript(source="var x;", label=1, url="http://a.com/1.js")
        b = LabeledScript(source="var x;", label=0, url="http://b.com/2.js")
        c = LabeledScript(source="var y;", label=1)
        assert a.digest == b.digest
        assert a.digest != c.digest


class TestRenderSeries:
    def test_samples_and_includes_last(self):
        series = {date(2014, m, 1): m for m in range(1, 13)}
        text = render_series(series, title="T", every=5)
        assert text.splitlines()[0] == "T"
        assert "2014-12" in text  # last month always present
        assert "2014-01" in text


class TestWaybackArchiveDomains:
    def test_domains_sorted(self):
        archive = WaybackArchive()
        archive.store("b.com", date(2015, 1, 1), PageSnapshot(url="http://b.com/"))
        archive.store("a.com", date(2015, 1, 1), PageSnapshot(url="http://a.com/"))
        assert archive.domains() == ["a.com", "b.com"]
