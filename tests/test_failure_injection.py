"""Failure-injection and degenerate-input tests across the stack."""

from datetime import date

import numpy as np
import pytest

from repro.analysis.coverage import CoverageAnalyzer
from repro.core.pipeline import AntiAdblockDetector, DetectorConfig
from repro.core.vectorize import Vectorizer
from repro.filterlist.history import FilterListHistory
from repro.filterlist.matcher import NetworkMatcher
from repro.filterlist.parser import parse_filter_list
from repro.jsast.unpack import MAX_UNPACK_ROUNDS, unpack_source
from repro.wayback.archive import WaybackArchive
from repro.wayback.crawler import CrawlResult, WaybackCrawler
from repro.web.adblocker import Adblocker
from repro.web.browser import Browser
from repro.web.dom import parse_html
from repro.web.har import HarFile
from repro.web.page import PageSnapshot


class TestMalformedFilterLists:
    BROKEN = "\n".join(
        [
            "||ok.com^",
            "||bad.com$unknownopt",
            "x.com##",  # empty selector
            "@@",  # bare exception marker... parses as pattern "@@"? guard below
            "||another-ok.com^",
        ]
    )

    def test_errors_collected_good_rules_kept(self):
        parsed = parse_filter_list(self.BROKEN)
        assert len(parsed.errors) >= 2
        raws = [r.raw for r in parsed.network_rules]
        assert "||ok.com^" in raws and "||another-ok.com^" in raws

    def test_matcher_over_partially_broken_list(self):
        parsed = parse_filter_list(self.BROKEN)
        matcher = NetworkMatcher(parsed.network_rules)
        assert matcher.match("http://ok.com/a.js").blocked

    def test_adblocker_with_unparseable_selectors(self):
        # A selector our engine cannot parse (pseudo-class) is skipped
        # silently, like real adblockers skipping unsupported syntax.
        parsed = parse_filter_list("x.com##div:has(.y)\nx.com###fine\n")
        adblocker = Adblocker([parsed])
        document = parse_html("<body><div id='fine'></div></body>")
        triggered = adblocker.hide_elements(document, "http://x.com/")
        assert [r.selector for r in triggered] == ["#fine"]


class TestEmptyWorlds:
    def test_crawler_on_empty_archive(self):
        crawler = WaybackCrawler(WaybackArchive())
        result = crawler.crawl(["ghost.com"], date(2015, 1, 1), date(2015, 3, 1))
        assert len(result.records) == 3
        assert all(not r.usable for r in result.records)

    def test_coverage_on_empty_crawl(self):
        history = FilterListHistory("L")
        history.add_revision(date(2014, 1, 1), "||x.com^\n")
        coverage = CoverageAnalyzer({"L": history}).analyze(CrawlResult())
        assert coverage.http_series["L"] == {}

    def test_coverage_with_empty_history(self):
        empty = FilterListHistory("empty")
        coverage = CoverageAnalyzer({"empty": empty}).analyze(CrawlResult())
        assert coverage.first_detected["empty"] == {}

    def test_browser_on_empty_snapshot(self):
        visit = Browser().visit(PageSnapshot(url="http://bare.com/"))
        assert visit.request_urls == ["http://bare.com/"]
        assert visit.document.root is not None


class TestAdversarialUnpacking:
    def test_nesting_bounded(self):
        source = "var x = 1;"
        for _ in range(MAX_UNPACK_ROUNDS + 3):
            escaped = source.replace("\\", "\\\\").replace("'", "\\'")
            source = f"eval('{escaped}');"
        result = unpack_source(source)
        assert result.rounds <= MAX_UNPACK_ROUNDS

    def test_self_referential_eval_untouched(self):
        result = unpack_source("eval(arguments.callee.toString());")
        assert not result.was_packed

    def test_eval_of_number_is_ignored(self):
        result = unpack_source("eval(42);")
        # A numeric payload folds to '42', which parses as a statement —
        # harmless either way; the program must survive.
        assert result.program is not None


class TestDegenerateMl:
    def test_vectorizer_all_empty_feature_sets(self):
        vectorizer = Vectorizer(top_k=10)
        X = vectorizer.fit_transform([set(), set(), set()], [1, 0, 0])
        assert X.shape == (3, 0)

    def test_detector_with_unparseable_scripts(self):
        detector = AntiAdblockDetector(DetectorConfig(feature_set="keyword", top_k=50))
        sources = ["var a = 1;", "}{ broken", "var b = 2;", "also } broken {"]
        labels = [1, 1, 0, 0]
        detector.fit(sources, labels)
        predictions = detector.predict(["}{ still broken"])
        assert predictions.shape == (1,)

    def test_single_class_corpus(self):
        detector = AntiAdblockDetector(DetectorConfig(feature_set="keyword", top_k=50))
        sources = ["var a = 1;", "var b = 2;", "var c = 3;"]
        detector.fit(sources, [0, 0, 0])
        assert set(np.unique(detector.predict(sources))) <= {0, 1}


class TestHarRobustness:
    def test_from_dict_missing_fields(self):
        har = HarFile.from_dict({"log": {"entries": [{"request": {}, "response": {}}]}})
        assert har.page_url == ""
        assert len(har.entries) == 1

    def test_from_dict_empty(self):
        har = HarFile.from_dict({})
        assert har.entries == []
