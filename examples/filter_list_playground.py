#!/usr/bin/env python
"""Filter-list playground: the paper's §2.1 code listings, executable.

Walks through the Adblock Plus rule grammar the paper explains — HTTP
request rules, HTML element rules, exception rules — and shows how the
matching engine applies them, including the numerama.com bait pattern
(paper Codes 7–8) and the pagefair.com vendor rules (Codes 6 and 10).

Run:  python examples/filter_list_playground.py
"""

from repro.filterlist.matcher import NetworkMatcher
from repro.filterlist.parser import parse_filter_list
from repro.web.adblocker import Adblocker
from repro.web.dom import parse_html

PAPER_RULES = """[Adblock Plus 2.0]
! --- HTTP request filter rules (paper Code 1) ---
||example1.com
||example1.com$script
||example1.com$script,domain=example2.com
/example.js$script,domain=example2.com
! --- HTML element filter rules (paper Code 2) ---
example.com###examplebanner
example.com##.examplebanner
###examplebanner
! --- Anti-adblock rules (paper Code 6) ---
||pagefair.com^$third-party
smashboards.com###noticeMain
! --- The numerama bait pattern (paper Codes 7-8) ---
/ads.js?
@@||numerama.com/ads.js
"""


def check(matcher, url, **kwargs):
    result = matcher.match(url, **kwargs)
    state = "BLOCKED " if result.blocked else "allowed "
    via = ""
    if result.blocked:
        via = f"(rule: {result.rule.raw})"
    elif result.exception is not None:
        via = f"(exception: {result.exception.raw})"
    print(f"  {state} {url} {via}")


def main() -> None:
    parsed = parse_filter_list(PAPER_RULES, name="paper-rules")
    print(f"parsed {len(parsed.network_rules)} HTTP rules, "
          f"{len(parsed.element_rules)} HTML rules, "
          f"{len(parsed.errors)} errors")

    matcher = NetworkMatcher(parsed.network_rules)

    print("\nHTTP request matching:")
    check(matcher, "http://example1.com/banner.png")
    check(matcher, "http://cdn.example1.com/lib.js")
    check(
        matcher,
        "http://example2.com/example.js",
        page_domain="example2.com",
        resource_type="script",
    )
    check(
        matcher,
        "http://pagefair.com/measure.js",
        page_domain="news.com",
        third_party=True,
    )
    check(
        matcher,
        "http://pagefair.com/measure.js",
        page_domain="pagefair.com",
        third_party=False,
    )

    print("\nThe numerama bait pattern — /ads.js? is blocked everywhere")
    print("except on numerama.com, where blocking it would *trigger* the")
    print("site's anti-adblock check (canRunAds stays undefined):")
    check(matcher, "http://random-site.com/static/ads.js?v=1")
    check(matcher, "http://numerama.com/ads.js?v=1")

    print("\nHTML element hiding:")
    adblocker = Adblocker([parsed])
    page = parse_html(
        """
        <body>
          <div id="examplebanner">generic banner</div>
          <div id="noticeMain">Please disable your adblocker!</div>
          <div id="content">the article</div>
        </body>
        """
    )
    triggered = adblocker.hide_elements(page, "http://smashboards.com/")
    for rule in triggered:
        print(f"  triggered: {rule.raw}")
    visible = [e.attrs.get("id") for e in page.visible_elements() if e.attrs.get("id")]
    print(f"  elements still visible: {visible}")


if __name__ == "__main__":
    main()
