#!/usr/bin/env python
"""Train and inspect the §5 anti-adblock script detector.

Builds the list-labeled corpus, cross-validates the Table 3
configurations, shows the top chi-square features, and demonstrates the
two deployment modes the paper proposes: offline (score a crawl for filter
-list authors) and online (score scripts on the fly inside an adblocker).

Run:  python examples/train_detector.py
"""

import numpy as np

from repro.core.chi2 import chi_square_scores
from repro.core.corpus import build_corpus
from repro.core.features import features_for_corpus
from repro.core.pipeline import AntiAdblockDetector, DetectorConfig, evaluate_detector
from repro.core.vectorize import Vectorizer
from repro.filterlist.matcher import NetworkMatcher
from repro.synthesis.listgen import generate_all_lists
from repro.synthesis.scripts import generate_anti_adblock, generate_benign
from repro.synthesis.world import SyntheticWorld, WorldConfig


def main() -> None:
    world = SyntheticWorld(WorldConfig(n_sites=400, live_top=800))
    lists = generate_all_lists(world)
    rules = []
    for key in ("aak", "combined_easylist"):
        rules.extend(lists[key].latest().filter_list.network_rules)
    pages = [world.snapshot(site, world.config.end) for site in world.sites]
    corpus = build_corpus(pages, NetworkMatcher(rules), seed=world.seed)
    print(
        f"corpus: {len(corpus.positives)} anti-adblock, "
        f"{len(corpus.negatives)} benign ({corpus.imbalance:.1f}:1)"
    )

    # Cross-validate a few Table 3 configurations.
    print("\n10-fold cross-validation:")
    for feature_set, top_k in (("keyword", 1000), ("literal", 1000), ("all", 1000)):
        metrics = evaluate_detector(
            corpus.sources(),
            corpus.labels(),
            config=DetectorConfig(feature_set=feature_set, top_k=top_k),
        )
        print(
            f"  AdaBoost+SVM {feature_set:>7}/{top_k}: "
            f"TP={metrics.tp_rate:6.1%}  FP={metrics.fp_rate:6.1%}"
        )

    # Inspect the strongest chi-square features.
    features = features_for_corpus(corpus.sources(), feature_set="keyword")
    labels = corpus.labels()
    vectorizer = Vectorizer(top_k=None)
    X = vectorizer.fit_transform(features, labels)
    scores = chi_square_scores(X, labels)
    names = vectorizer.space.feature_names
    print("\ntop discriminative keyword features (chi-square):")
    for index in np.argsort(scores)[::-1][:12]:
        print(f"  {scores[index]:8.1f}  {names[index]}")

    # Offline mode: score every unique script of a fresh crawl.
    detector = AntiAdblockDetector(DetectorConfig(feature_set="keyword", top_k=1000))
    detector.fit(corpus.sources(), corpus.labels())
    rng = np.random.default_rng(2017)
    fresh = [generate_anti_adblock(rng) for _ in range(20)]
    fresh += [generate_benign(rng) for _ in range(80)]
    flagged = detector.predict(fresh)
    print(
        f"\noffline scan of 100 fresh scripts: flagged {int(flagged.sum())} "
        f"({int(flagged[:20].sum())}/20 true anti-adblock caught)"
    )

    # Online mode: a single page load's scripts, scored on the fly.
    adopter = next(s for s in world.sites if s.uses_anti_adblock)
    snapshot = world.snapshot(adopter, world.config.end)
    page_scripts = [s.source for s in snapshot.scripts if s.source]
    verdicts = detector.predict(page_scripts)
    print(f"\nonline scoring of {adopter.domain}'s {len(page_scripts)} scripts:")
    for script, verdict in zip(snapshot.scripts, verdicts):
        label = "ANTI-ADBLOCK" if verdict else "benign      "
        truth = "(truth: anti-adblock)" if script.is_anti_adblock else ""
        print(f"  {label} {script.url or '<inline>'} {truth}")


if __name__ == "__main__":
    main()
