#!/usr/bin/env python
"""The filter-list author's assistant — the paper's proposed §5 workflows.

Offline scenario: periodically crawl popular sites, run the trained model
over every script, and aggregate detections into *candidate* filter rules
for human review (with the supporting evidence that review needs).

Online scenario: ship the model inside an adblocker that scans scripts on
the fly, neutralising anti-adblockers no rule knows yet.

Run:  python examples/list_author_assistant.py
"""

from repro.core.corpus import build_corpus
from repro.core.online import OnlineAdblocker
from repro.core.pipeline import AntiAdblockDetector, DetectorConfig
from repro.core.rulegen import detect_and_generate
from repro.filterlist.matcher import NetworkMatcher
from repro.synthesis.listgen import generate_all_lists
from repro.synthesis.world import SyntheticWorld, WorldConfig


def main() -> None:
    world = SyntheticWorld(WorldConfig(n_sites=350, live_top=700))
    lists = generate_all_lists(world)
    aak = lists["aak"].latest().filter_list

    # Train on the list-labeled corpus (the paper's protocol).
    pages = [world.snapshot(site, world.config.end) for site in world.sites]
    corpus = build_corpus(pages, NetworkMatcher(aak.network_rules), seed=world.seed)
    detector = AntiAdblockDetector(DetectorConfig(feature_set="keyword", top_k=1000))
    detector.fit(corpus.sources(), corpus.labels())
    print(
        f"trained on {len(corpus.positives)} anti-adblock / "
        f"{len(corpus.negatives)} benign scripts"
    )

    # ---- Offline: candidate rules for the next list revision ----------------
    generated, detections = detect_and_generate(detector, pages, vendor_threshold=3)
    print(f"\nscan: {len(detections)} scripts flagged -> {len(generated)} candidate rules")

    # Semantic dedup: drop candidates AAK already covers (textually or via
    # a broader rule that shadows them).
    from repro.filterlist.lint import deduplicate_against

    kept, dropped = deduplicate_against(generated.rules, aak.network_rules)
    print(
        f"after lint against AAK: {len(kept)} genuinely new, "
        f"{len(dropped)} already covered"
    )
    for finding in dropped[:3]:
        print(f"  covered: {finding.describe()}")

    print("\nNEW candidate rules for review (top 10 by supporting evidence):")
    kept_raws = {rule.raw for rule in kept}
    ranked = sorted(
        ((raw, sites) for raw, sites in generated.evidence.items() if raw in kept_raws),
        key=lambda kv: -len(kv[1]),
    )
    for raw, sites in ranked[:10]:
        print(f"  {raw}   (seen on {len(sites)} site(s))")

    # ---- Online: the model inside an adblocker -------------------------------
    online = OnlineAdblocker(detector, filter_lists=[aak])
    neutralised = 0
    model_only = 0
    adopters = [s for s in world.sites if s.deployed_by(world.config.end)]
    for site in adopters:
        snapshot = world.snapshot(site, world.config.end)
        result = online.visit(snapshot)
        if online.blocks_anti_adblocker(snapshot):
            neutralised += 1
            if result.blocked_by_model and not result.blocked_by_rules:
                model_only += 1
    print(
        f"\nonline adblocker: neutralised {neutralised}/{len(adopters)} "
        f"anti-adblocking sites ({model_only} reachable only through the model)"
    )
    print(f"verdict cache after the crawl: {online.cache_size} unique scripts")


if __name__ == "__main__":
    main()
