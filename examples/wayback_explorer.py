#!/usr/bin/env python
"""Explore the Wayback Machine simulator directly.

Shows the pieces §4.1 (Figure 4) is made of: the availability JSON API,
archive URL rewriting/truncation, exclusion policies, and the monthly
crawl of a single domain — including how outdated and partial snapshots
arise.

Run:  python examples/wayback_explorer.py
"""

import json
from datetime import date

from repro.synthesis.world import SyntheticWorld, WorldConfig
from repro.wayback.availability import AvailabilityAPI
from repro.wayback.crawler import WaybackCrawler
from repro.wayback.rewrite import truncate_wayback, wayback_url


def main() -> None:
    world = SyntheticWorld(WorldConfig(n_sites=120, live_top=240))
    archive = world.build_archive()
    print(
        f"archive: {archive.total_captures()} captures of "
        f"{len(archive.domains())} domains"
    )
    for domain, reason in list(archive.excluded_domains().items())[:3]:
        print(f"  excluded: {domain} ({reason.value})")

    # The availability JSON API, exactly like archive.org's.
    api = AvailabilityAPI(archive)
    domain = archive.domains()[0]
    response = api.lookup_json(f"http://{domain}/", "20150401000000")
    print(f"\navailability lookup for {domain} @ 2015-04:")
    print(json.dumps(response, indent=2)[:400])

    # Archive URL rewriting and the truncation step of §4.2.
    original = f"http://{domain}/js/app.js"
    archived = wayback_url(original, date(2015, 4, 1))
    print(f"\nrewritten : {archived}")
    print(f"truncated : {truncate_wayback(archived)}")

    # Crawl one domain across the whole window and show slot statuses.
    crawler = WaybackCrawler(archive)
    result = crawler.crawl([domain], world.config.start, world.config.end)
    print(f"\nmonthly crawl of {domain}:")
    statuses = {}
    for record in result.records:
        statuses[record.status.value] = statuses.get(record.status.value, 0) + 1
    for status, count in sorted(statuses.items()):
        print(f"  {status:>14}: {count} months")

    usable = result.usable()
    if usable:
        har = usable[-1].har
        print(f"\nlast usable snapshot HAR ({len(har.entries)} entries):")
        for url in har.request_urls()[:6]:
            print(f"  {url}")


if __name__ == "__main__":
    main()
