#!/usr/bin/env python
"""The §4 retrospective measurement study, end to end, at small scale.

Builds the synthetic world and its Wayback archive, crawls five years of
monthly snapshots, replays the contemporaneous filter-list versions, and
prints the Figure 5 / Figure 6 / Figure 7 artifacts.

Run:  python examples/retrospective_study.py          (≈1 minute)
      REPRO_SITES=400 python examples/retrospective_study.py
"""

import os

from repro.analysis.coverage import CoverageAnalyzer, missing_snapshot_series
from repro.analysis.comparison import cdf
from repro.analysis.report import render_cdf, render_multi_series, render_table
from repro.synthesis.listgen import generate_all_lists
from repro.synthesis.world import SyntheticWorld, WorldConfig
from repro.wayback.crawler import WaybackCrawler

AAK = "Anti-Adblock Killer"
CE = "Combined EasyList"


def main() -> None:
    n_sites = int(os.environ.get("REPRO_SITES", "250"))
    world = SyntheticWorld(WorldConfig(n_sites=n_sites, live_top=n_sites))
    print(f"building archive for {n_sites} sites x 60 months ...")
    archive = world.build_archive()
    print(f"  {archive.total_captures()} captures, "
          f"{len(archive.excluded_domains())} excluded domains")

    crawler = WaybackCrawler(archive)
    crawl = crawler.crawl(
        [site.domain for site in world.sites], world.config.start, world.config.end
    )
    usable = len(crawl.usable())
    print(f"crawled {len(crawl.records)} (domain, month) slots; {usable} usable")

    # Figure 5: exclusion accounting.
    missing = missing_snapshot_series(crawl)
    months = sorted(missing)
    rows = [
        [
            month.isoformat()[:7],
            missing[month]["partial"],
            missing[month]["not_archived"],
            missing[month]["outdated"],
        ]
        for month in months[::6] + [months[-1]]
    ]
    print()
    print(render_table(
        ["month", "partial", "not archived", "outdated"],
        rows,
        title="Figure 5: websites excluded from analysis",
    ))

    # Figure 6: contemporaneous replay.
    lists = generate_all_lists(world)
    analyzer = CoverageAnalyzer({AAK: lists["aak"], CE: lists["combined_easylist"]})
    coverage = analyzer.analyze(crawl)
    print()
    print(render_multi_series(
        coverage.http_series,
        title="Figure 6(a): websites triggering HTTP rules",
        every=6,
    ))
    print()
    print(render_multi_series(
        coverage.html_series,
        title="Figure 6(b): websites triggering HTML rules",
        every=6,
    ))
    print(f"\nthird-party share of AAK matches: {coverage.third_party_share(AAK):.0%}")

    # Figure 7: rule-addition delays.
    delays = analyzer.detection_delays(crawl, coverage)
    for name in (CE, AAK):
        values = delays.get(name, [])
        if not values:
            continue
        print()
        print(render_cdf(
            cdf(values),
            title=f"Figure 7 ({name}): rule-addition delay CDF (n={len(values)})",
        ))


if __name__ == "__main__":
    main()
