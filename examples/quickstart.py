#!/usr/bin/env python
"""Quickstart: the whole system in one minute.

Builds a small synthetic web, generates the anti-adblock filter-list
histories, blocks an anti-adblock script with the adblocker, and trains
the ML detector on scripts labeled by the lists — the core loop of
"The Ad Wars" (IMC 2017).

Run:  python examples/quickstart.py
"""

from repro.core.corpus import build_corpus
from repro.core.pipeline import AntiAdblockDetector, DetectorConfig
from repro.filterlist.matcher import NetworkMatcher
from repro.synthesis.listgen import generate_all_lists
from repro.synthesis.world import SyntheticWorld, WorldConfig
from repro.web.adblocker import Adblocker
from repro.web.browser import Browser


def main() -> None:
    # 1. A synthetic web: 300 ranked sites, ~10% of which deploy
    #    anti-adblock scripts between 2011 and 2016.
    world = SyntheticWorld(WorldConfig(n_sites=300, live_top=600))
    adopters = [site for site in world.sites if site.uses_anti_adblock]
    print(f"world: {len(world.sites)} sites, {len(adopters)} deploy anti-adblock")

    # 2. Crowdsourced filter-list histories, coupled to those deployments.
    lists = generate_all_lists(world)
    aak = lists["aak"].latest()
    print(
        f"Anti-Adblock Killer: {len(aak.rules)} rules as of {lists['aak'].last_date}"
    )

    # 3. An adblocker subscribed to AAK visits an anti-adblocking site.
    site = next(s for s in adopters if s.deployment.is_third_party)
    snapshot = world.snapshot(site, world.config.end)
    adblocker = Adblocker([aak.filter_list])
    visit = Browser(adblocker=adblocker).visit(snapshot)
    print(f"\nvisiting {site.domain} (vendor: {site.deployment.vendor.name})")
    print(f"  requests made   : {len(visit.request_urls)}")
    print(f"  requests blocked: {len(visit.blocked_urls)}")
    for url in visit.blocked_urls:
        print(f"    blocked: {url}")

    # 4. Train the §5 detector on scripts labeled by the filter lists.
    combined_rules = list(aak.filter_list.network_rules)
    combined_rules.extend(
        lists["combined_easylist"].latest().filter_list.network_rules
    )
    matcher = NetworkMatcher(combined_rules)
    pages = [world.snapshot(s, world.config.end) for s in world.sites]
    corpus = build_corpus(pages, matcher, seed=world.seed)
    print(
        f"\ncorpus: {len(corpus.positives)} anti-adblock / "
        f"{len(corpus.negatives)} benign scripts"
    )
    detector = AntiAdblockDetector(DetectorConfig(feature_set="keyword", top_k=500))
    detector.fit(corpus.sources(), corpus.labels())

    # 5. Classify never-seen scripts: a fresh anti-adblock variant from a
    #    vendor generator, and a benign analytics snippet.
    import numpy as np

    from repro.synthesis.scripts import generate_anti_adblock, generate_benign

    rng = np.random.default_rng(99)
    unseen_bad = generate_anti_adblock(rng, family="html_bait", pack_probability=0.0)
    unseen_good = generate_benign(rng, family="ga_analytics")
    bad, good = detector.predict([unseen_bad, unseen_good])
    print(f"\nunseen BlockAdBlock variant  -> {'ANTI-ADBLOCK' if bad else 'benign'}")
    print(f"unseen analytics snippet     -> {'ANTI-ADBLOCK' if good else 'benign'}")


if __name__ == "__main__":
    main()
