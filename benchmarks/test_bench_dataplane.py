"""Benchmarks for the binary data plane and the persistent worker pool.

Quantifies the three tentpole wins of ``REPRO_DATA_PLANE`` /
``REPRO_POOL_PERSIST`` against their legacy baselines, asserting
byte-identical results in the same breath:

- **warm feature-store load**: packed mmap event segments vs the
  JSON-per-script cache;
- **request scan**: the columnar request table vs parsing HAR JSON;
- **§4.3 parallel live crawl**: one persistent fork pool across waves vs
  a fresh pool per wave.

The crawl benchmarks run at 0.2 scale regardless of ``REPRO_SCALE``,
which also gives the repository round-trip assertion its large-crawl
variant (the default-scale variant lives in
``tests/wayback/test_store.py``). Timings compare best-of-N
``perf_counter`` runs of each plane; the winning plane is also run
through ``benchmark`` so the JSON artifact CI uploads carries it.
"""

import pickle
import time

import numpy as np
import pytest

from repro.analysis.coverage import CoverageAnalyzer
from repro.analysis.livecrawl import LiveCrawler
from repro.analysis.pool import PersistentPool, set_persistent_pool
from repro.core.featstore import FeatureStore
from repro.dataplane.requests import RequestTable
from repro.experiments.context import ExperimentContext
from repro.synthesis.scripts import generate_anti_adblock, generate_benign
from repro.wayback.store import DataRepository
from repro.web.har import HarFile

SCALE = 0.2


def best_of(runs, fn):
    """Best wall-clock of ``runs`` calls, plus the last result."""
    best = None
    result = None
    for _ in range(runs):
        started = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - started
        best = elapsed if best is None else min(best, elapsed)
    return best, result


@pytest.fixture(scope="module")
def big_ctx():
    return ExperimentContext.create(scale=SCALE)


@pytest.fixture(scope="module")
def saved_repo(big_ctx, tmp_path_factory):
    repo = DataRepository(tmp_path_factory.mktemp("crawl-repo"))
    repo.save(big_ctx.crawl, request_table=True)
    return repo


@pytest.fixture(scope="module")
def script_corpus():
    rng = np.random.default_rng(7)
    return [
        generate_anti_adblock(rng, pack_probability=0.3)
        if index % 3 == 0
        else generate_benign(rng)
        for index in range(600)
    ]


def test_bench_warm_feature_store_packed_vs_json(
    benchmark, script_corpus, tmp_path_factory
):
    """Warm feature-store load: packed + mmap ≥ 3× the JSON baseline."""
    root = tmp_path_factory.mktemp("featcache")

    def load(plane: str, packed: bool):
        return FeatureStore(
            cache_dir=str(root / plane), packed=packed
        ).events_for_corpus(script_corpus, workers=1)

    baseline = load("json", packed=False)  # cold: fills the JSON cache
    assert pickle.dumps(load("packed", packed=True)) == pickle.dumps(baseline)

    json_s, warm_json = best_of(3, lambda: load("json", packed=False))
    packed_s, warm_packed = best_of(3, lambda: load("packed", packed=True))
    assert pickle.dumps(warm_json) == pickle.dumps(baseline)
    assert pickle.dumps(warm_packed) == pickle.dumps(baseline)

    benchmark.extra_info["warm_json_s"] = json_s
    benchmark.extra_info["warm_packed_s"] = packed_s
    benchmark.extra_info["speedup"] = json_s / packed_s
    print(
        f"\n[featstore warm] json {json_s * 1000:.1f}ms "
        f"packed {packed_s * 1000:.1f}ms ({json_s / packed_s:.1f}x)"
    )
    benchmark.pedantic(lambda: load("packed", packed=True), rounds=3, iterations=1)
    assert json_s >= 3 * packed_s


def test_bench_request_scan_table_vs_har_json(benchmark, saved_repo):
    """Request-URL scan: the columnar table ≥ 3× parsing the HAR JSON."""
    har_paths = sorted(saved_repo.root.glob("*/*.har"))

    def scan_har_json():
        urls = 0
        for path in har_paths:
            har = HarFile.from_json(path.read_text(encoding="utf-8"))
            urls += len(har.request_urls())
        return urls

    def scan_table():
        urls = 0
        with RequestTable(saved_repo.table_path) as table:
            for domain, month in table.slots():
                urls += len(table.request_urls(domain, month))
        return urls

    json_s, json_urls = best_of(2, scan_har_json)
    table_s, table_urls = best_of(2, scan_table)
    assert table_urls == json_urls  # identical scan, different plane

    benchmark.extra_info["har_json_s"] = json_s
    benchmark.extra_info["table_s"] = table_s
    benchmark.extra_info["speedup"] = json_s / table_s
    print(
        f"\n[request scan] har-json {json_s:.2f}s "
        f"table {table_s:.2f}s ({json_s / table_s:.1f}x)"
    )
    benchmark.pedantic(scan_table, rounds=1, iterations=1)
    assert json_s >= 3 * table_s


def test_bench_repository_roundtrip_large(big_ctx, saved_repo):
    """0.2-scale round-trip: both load planes replay digest-identically."""
    loaded = saved_repo.load()
    replay = saved_repo.load_replay()
    assert [record.status for record in loaded.records] == [
        record.status for record in big_ctx.crawl.records
    ]
    baseline = CoverageAnalyzer(big_ctx.histories).analyze(big_ctx.crawl)
    from_json = CoverageAnalyzer(big_ctx.histories).analyze(loaded)
    from_table = CoverageAnalyzer(big_ctx.histories).analyze(replay)
    assert pickle.dumps(from_json) == pickle.dumps(from_table)
    assert from_json == baseline
    assert from_table == baseline


def test_bench_sec43_persistent_vs_fork_per_wave(benchmark, big_ctx):
    """§4.3 with 2 workers: persistent pool beats fork-per-wave, same bytes."""
    crawler = LiveCrawler(big_ctx.world, big_ctx.histories)
    previous = set_persistent_pool(None)
    try:
        fork_s, fork_result = best_of(1, lambda: crawler.crawl(workers=2))

        pool = PersistentPool(2)
        pool.publish("world", big_ctx.world)
        pool.publish("histories", big_ctx.histories)
        set_persistent_pool(pool)
        persist_s, persist_result = best_of(1, lambda: crawler.crawl(workers=2))
        assert pool.runs > 0  # the persistent route really ran
        assert pickle.dumps(persist_result) == pickle.dumps(fork_result)

        benchmark.extra_info["fork_per_wave_s"] = fork_s
        benchmark.extra_info["persistent_s"] = persist_s
        benchmark.extra_info["speedup"] = fork_s / persist_s
        print(
            f"\n[sec43 2 workers] fork-per-wave {fork_s:.2f}s "
            f"persistent {persist_s:.2f}s ({fork_s / persist_s:.2f}x)"
        )
        benchmark.pedantic(lambda: crawler.crawl(workers=2), rounds=1, iterations=1)
    finally:
        set_persistent_pool(previous)
    assert persist_s < fork_s
