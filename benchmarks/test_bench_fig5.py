"""Benchmark: Figure 5 (websites excluded from analysis per month)."""

import numpy as np
from conftest import run_once

from repro.experiments import fig5


def test_fig5_missing_snapshots(benchmark, ctx, crawl):
    result = run_once(benchmark, lambda: fig5.run(ctx))
    print()
    print(fig5.render(result))

    months = sorted(result.by_month)
    outdated = [result.by_month[m]["outdated"] for m in months]
    not_archived = [result.by_month[m]["not_archived"] for m in months]

    # Outdated URLs dominate the missing mass and decline over the window
    # (paper: 1,239 → 532).
    first_year = float(np.mean(outdated[:12]))
    last_year = float(np.mean(outdated[-12:]))
    assert first_year > last_year
    assert first_year >= max(np.mean(not_archived[:12]), 1)

    # Not-archived URLs trend upward (paper: 262 → 374, 3XX redirects).
    assert np.mean(not_archived[-12:]) >= np.mean(not_archived[:12])

    # Total missing is a minority of the crawl set each month.
    n_sites = ctx.world.config.n_sites
    assert all(result.total_missing(m) < 0.6 * n_sites for m in months)
