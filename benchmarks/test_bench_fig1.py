"""Benchmark: regenerate Figure 1 (filter-list evolution) + §3.2 stats."""

from conftest import run_once

from repro.experiments import fig1
from repro.filterlist.classify import RuleType


def test_fig1_evolution(benchmark, ctx):
    result = run_once(benchmark, lambda: fig1.run(ctx))
    print()
    print(fig1.render(result))

    # Shape assertions, per list.
    aak = result.series["aak"]
    assert aak.dates[0].year == 2014  # list created 2014
    assert aak.final_total() > 2 * aak.initial_total()  # strong growth

    awrl = result.series["awrl"]
    html_share = result.stats["awrl"].html_percent
    assert html_share > 50.0  # AWRL is HTML-heavy (paper: 67.7%)

    easylist = result.stats["easylist"]
    assert easylist.http_percent > 90.0  # EasyList is HTTP-heavy (96.3%)
    # Anchor-only rules dominate EasyList's mix (paper: 64.6%).
    anchor_pct = easylist.type_percentages[RuleType.HTTP_ANCHOR]
    assert anchor_pct > 40.0

    # AAK balances HTTP and HTML (paper: 58.5% / 41.5%).
    aak_stats = result.stats["aak"]
    assert 40.0 < aak_stats.http_percent < 80.0
