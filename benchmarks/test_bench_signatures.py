"""Extension benchmark: signature baseline vs. the ML detector.

The paper contrasts its classifier with Storey et al.'s regex-based
active adblocking. Measured head-to-head, the trade-off is precision:
handcrafted signatures fire on benign ad-adjacent code (double-digit FP —
exactly the site breakage that makes filter-list authors conservative),
while the AST-feature classifier keeps FP near zero at higher TP on the
era it was trained on. Under post-2016 distribution shift both degrade —
signatures hold on to scripts that still *say* "adblock" in literals, the
keyword-AST model holds on to scripts that still *probe* like v1.
"""

import numpy as np
from conftest import run_once

from repro.core.crossval import compute_metrics
from repro.core.pipeline import AntiAdblockDetector, DetectorConfig
from repro.core.signatures import SignatureDetector
from repro.synthesis.scripts import (
    generate_anti_adblock,
    generate_benign,
    html_bait_v2_script,
    http_bait_v2_script,
)


def test_signatures_vs_ml(benchmark, ctx):
    corpus = ctx.corpus
    ml = AntiAdblockDetector(
        DetectorConfig(feature_set="keyword", top_k=1000, seed=ctx.world.seed)
    )
    ml.fit(corpus.sources(), corpus.labels())
    signatures = SignatureDetector()

    rng = np.random.default_rng(ctx.world.seed + 1)
    v1_positives = [generate_anti_adblock(rng, pack_probability=0.0) for _ in range(40)]
    v2_positives = [html_bait_v2_script(rng) for _ in range(20)] + [
        http_bait_v2_script(rng) for _ in range(20)
    ]
    negatives = [generate_benign(rng) for _ in range(160)]

    def evaluate():
        out = {}
        for name, detector in (("signatures", signatures), ("ml", ml)):
            v1 = compute_metrics(
                [1] * len(v1_positives) + [0] * len(negatives),
                detector.predict(v1_positives + negatives),
            )
            v2 = compute_metrics(
                [1] * len(v2_positives) + [0] * len(negatives),
                detector.predict(v2_positives + negatives),
            )
            out[name] = (v1, v2)
        return out

    results = run_once(benchmark, evaluate)
    print()
    for name, (v1, v2) in results.items():
        print(
            f"{name:>10}: v1-era tp={v1.tp_rate:.2f} fp={v1.fp_rate:.2f} | "
            f"v2-era tp={v2.tp_rate:.2f} fp={v2.fp_rate:.2f}"
        )

    sig_v1, sig_v2 = results["signatures"]
    ml_v1, ml_v2 = results["ml"]

    # Both approaches work on the idioms they were built for.
    assert sig_v1.tp_rate >= 0.7
    assert ml_v1.tp_rate >= 0.8
    # The classifier's advantage is precision: far fewer benign scripts
    # misflagged than the handcrafted regexes.
    assert ml_v1.fp_rate < sig_v1.fp_rate
    assert ml_v1.tp_rate >= sig_v1.tp_rate
    # Both degrade under the post-2016 shift.
    assert sig_v2.tp_rate <= sig_v1.tp_rate
    assert ml_v2.tp_rate <= ml_v1.tp_rate
