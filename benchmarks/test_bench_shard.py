"""Sharded-serving benchmark: 4 kernel-balanced shards vs one process.

A snapshot container is packed once from the graph-resolved state, then
driven twice with the batched loadgen (disjoint seeds, so neither run
inherits the other's verdict caches):

- **single** — one daemon process, the PR-9 batched path: the GIL caps
  it at ~one core of matching/predict work no matter the concurrency;
- **sharded** — a 4-shard supervisor: every shard is a full daemon
  mmap'ing the same snapshot and accepting on the same port, so the
  kernel spreads the loadgen's connections over 4 processes.

The report also records the invariants the speedup is worthless
without: shard answers byte-identical to the offline
``core/online.py`` path, a broadcast reload landing the same epoch on
every shard with ``dropped == 0``, plus shard warm-boot and
reload-broadcast wall times. Written to ``BENCH_shard.json`` at the
repo root; CI uploads it.

The ≥ 2.5× aggregate-QPS floor is a statement about a multi-core host
(CI's 4-vCPU runner): shards can only beat one process where there are
cores to spread over, so the assertion is gated on ``os.cpu_count()``
— a 1-core dev box still runs every correctness invariant and records
honest numbers.
"""

import json
import os
import time
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[1]
SCALE = 0.02
QUERY_COUNT = 600
BATCH_SIZE = 64
SHARDS = 4
#: Connections: a multiple of the shard count, enough to keep 4 busy.
CONCURRENCY = 8
#: The acceptance floor, enforced where the hardware can express it.
SHARD_SPEEDUP_FLOOR = 2.5
#: Cores needed before the floor is a physical possibility.
FLOOR_CORES = 4


@pytest.mark.benchmark(group="serve")
def test_sharded_aggregate_qps(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RUN_CACHE", str(tmp_path / "run-cache"))
    from repro.experiments.context import ExperimentContext
    from repro.serve import protocol
    from repro.serve.batcher import answer_query
    from repro.serve.daemon import ServeDaemon, build_engine, resolve_serve_state
    from repro.serve.loadgen import generate_queries, run_network
    from repro.serve.shard import ShardSupervisor
    from repro.serve.snapshot import write_snapshot

    ctx = ExperimentContext.create(scale=SCALE)
    state = resolve_serve_state(ctx)
    snapshot_path = tmp_path / "serve-snapshot.rdpk"
    write_snapshot(snapshot_path, state)

    # -- single-process batched baseline ----------------------------------
    daemon = ServeDaemon(build_engine(state, workers=0), port=0)
    host, port = daemon.start()
    try:
        run_network(host, port, generate_queries(99, 100), concurrency=CONCURRENCY)
        single = run_network(
            host,
            port,
            generate_queries(1, QUERY_COUNT),
            concurrency=CONCURRENCY,
            batch_size=BATCH_SIZE,
        )
    finally:
        daemon.stop()

    # -- 4-shard supervisor over the same snapshot ------------------------
    supervisor = ShardSupervisor(snapshot_path, shards=SHARDS, port=0)
    try:
        host, port = supervisor.start()
        boot_ms = supervisor.describe()["boot_ms"]
        run_network(
            host,
            port,
            generate_queries(98, 100),
            concurrency=CONCURRENCY,
            shards=SHARDS,
        )
        sharded = run_network(
            host,
            port,
            generate_queries(2, QUERY_COUNT),
            concurrency=CONCURRENCY,
            batch_size=BATCH_SIZE,
            shards=SHARDS,
        )

        # Parity: every shard answers byte-identically to the offline
        # online.py path (one fresh connection per probe spreads them).
        offline = state.build_chain().current.online
        parity_checked = 0
        for query in generate_queries(3, 24):
            expected = protocol.encode(answer_query(offline, query))
            with protocol.ServeClient(host, port, timeout=30.0) as client:
                actual = protocol.encode(client.ask(query))
            assert actual == expected, f"shard answer diverged for {query['op']}"
            parity_checked += 1

        # Broadcast reload: every shard lands the same epoch, drained.
        t0 = time.perf_counter()
        with protocol.ServeClient(
            "127.0.0.1", supervisor.control_port, timeout=60.0
        ) as control:
            reloaded = control.ask(
                protocol.reload_request(["||bench-shard.example^"], [])
            )
        reload_broadcast_ms = (time.perf_counter() - t0) * 1000.0
        assert reloaded["ok"] is True and reloaded["drained"] is True
        shard_epochs = [entry["epoch"] for entry in reloaded["shards"]]
        assert shard_epochs == [1] * SHARDS, shard_epochs

        with protocol.ServeClient(
            "127.0.0.1", supervisor.control_port, timeout=30.0
        ) as control:
            health = control.ask({"op": "health"})
        assert health["dropped"] == 0
    finally:
        supervisor.stop()

    assert single["errors"] == 0 and sharded["errors"] == 0
    assert sharded["unanswered"] == 0 and sharded["timed_out"] is False
    speedup = sharded["qps"] / single["qps"] if single["qps"] else 0.0
    cores = os.cpu_count() or 1
    report = {
        "scale": SCALE,
        "queries": QUERY_COUNT,
        "concurrency": CONCURRENCY,
        "batch_size": BATCH_SIZE,
        "shards": SHARDS,
        "cores": cores,
        "single": single,
        "sharded": sharded,
        "shard_speedup": round(speedup, 2),
        "target_shard_speedup": SHARD_SPEEDUP_FLOOR,
        "floor_enforced": cores >= FLOOR_CORES,
        "warm_boot_ms": boot_ms,
        "reload_broadcast_ms": round(reload_broadcast_ms, 3),
        "reload_shard_epochs": shard_epochs,
        "parity_queries": parity_checked,
        "dropped": health["dropped"],
    }
    (ROOT / "BENCH_shard.json").write_text(json.dumps(report, indent=2) + "\n")
    print(f"\n[shard bench] {json.dumps(report)}")
    if cores >= FLOOR_CORES:
        assert speedup >= SHARD_SPEEDUP_FLOOR, (
            f"{SHARDS}-shard aggregate only {speedup:.2f}x single-process "
            f"(target ≥ {SHARD_SPEEDUP_FLOOR}x on {cores} cores)"
        )
