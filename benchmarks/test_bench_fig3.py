"""Benchmark: Figure 3 (addition-time difference CDF, overlapping domains)."""

import numpy as np
from conftest import run_once

from repro.experiments import fig3


def test_fig3_overlap_timing_cdf(benchmark, ctx):
    result = run_once(benchmark, lambda: fig3.run(ctx))
    print()
    print(fig3.render(result))

    values = np.asarray(result.differences_days)
    assert len(values) > 0

    # CDF is monotone and spans both signs (some domains first in each list).
    probabilities = [p for _, p in result.cdf_points]
    assert probabilities == sorted(probabilities)

    # The Combined EasyList (negative differences) leads at least as often
    # as AAK — the paper finds 185 vs 92.
    ce_first = int(np.sum(values < 0))
    aak_first = int(np.sum(values > 0))
    assert ce_first >= 0.6 * aak_first
