"""Benchmark: Table 2 (features extracted from BlockAdBlock JavaScript)."""

from conftest import run_once

from repro.experiments import table2


def test_table2_feature_extraction(benchmark, ctx):
    result = run_once(benchmark, lambda: table2.run(ctx))
    print()
    print(table2.render(result))

    memberships = result.memberships

    # The canonical Table 2 rows exist with the right set memberships.
    assert memberships["MemberExpression:BlockAdBlock"] == {"all"}
    assert memberships["MemberExpression:_creatBait"] == {"all"}
    assert "keyword" in memberships["Identifier:clientHeight"]
    assert "keyword" in memberships["Identifier:offsetWidth"]
    assert "literal" in memberships["Literal:abp"]
    assert "literal" in memberships["Literal:0"]

    # Author identifiers are never keyword features (and identifier
    # occurrences are "all"-only; the same text can separately occur as a
    # string literal, e.g. the '_creatBait' debug-log argument).
    for feature, sets in memberships.items():
        context, text = feature.split(":", 1)
        if text in ("_creatBait", "_checkBait", "BlockAdBlock"):
            assert "keyword" not in sets
            if context in ("Identifier", "MemberExpression", "FunctionDeclaration"):
                assert "all" in sets
