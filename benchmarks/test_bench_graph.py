"""Artifact-graph warm starts: cold vs. warm-restart vs. incremental.

Each scenario is a real ``python -m repro -q all`` subprocess — the
warm-start claim is about *process restarts*, so in-process reuse would
measure the wrong thing. Three runs against one ``REPRO_RUN_CACHE``:

- **cold** — empty cache: every stage and experiment computes and is
  persisted;
- **warm** — a fresh process, same cache: every experiment artifact is
  served from disk (the acceptance target is ≥ 5× over cold);
- **incremental** — a one-line ``REPRO_LIST_PATCH`` re-keys the list
  node: everything list-derived recomputes, the archive crawl and the
  crawl-only/world-only experiments stay warm.

The scenario table is written to ``BENCH_graph.json`` at the repo root
(CI uploads it; the committed copy tracks the trajectory).
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[1]
SRC = ROOT / "src"
SCALE = "0.02"
#: The acceptance floor: a warm restart of the full suite must be at
#: least this much faster than the cold run.
WARM_SPEEDUP_FLOOR = 5.0


def run_all(cache_dir: Path, manifest: Path, **env_extra) -> float:
    """One ``python -m repro -q all`` subprocess; returns wall seconds."""
    env = dict(os.environ)
    env.update(
        PYTHONPATH=str(SRC),
        REPRO_SCALE=SCALE,
        REPRO_RUN_CACHE=str(cache_dir),
        **{key: str(value) for key, value in env_extra.items()},
    )
    started = time.perf_counter()
    completed = subprocess.run(
        [sys.executable, "-m", "repro", "-q", f"--metrics-out={manifest}", "all"],
        capture_output=True,
        text=True,
        env=env,
        cwd=str(ROOT),
    )
    wall = time.perf_counter() - started
    assert completed.returncode == 0, completed.stderr[-2000:]
    return wall


def graph_counters(manifest: Path) -> dict:
    data = json.loads(manifest.read_text())
    counters = data["metrics"]["counters"]
    return {
        "hits": counters.get("graph.hits", 0),
        "misses": counters.get("graph.misses", 0),
        "stores": counters.get("graph.stores", 0),
        "artifacts": {
            name: entry["sha256"] for name, entry in data["artifacts"].items()
        },
        "stages": data["stages"],
    }


@pytest.mark.benchmark(group="graph")
def test_warm_restart_speedup(tmp_path):
    cache = tmp_path / "run-cache"

    cold_s = run_all(cache, tmp_path / "cold.json")
    cold = graph_counters(tmp_path / "cold.json")
    assert cold["hits"] == 0 and cold["stores"] > 0

    warm_s = run_all(cache, tmp_path / "warm.json")
    warm = graph_counters(tmp_path / "warm.json")
    assert warm["hits"] > 0
    assert warm["artifacts"] == cold["artifacts"], "warm artifacts drifted"
    # Zero recomputed stages: a warm restart materialises no stage at all
    # (experiment nodes hit before any stage is needed).
    recomputed = [
        stage["name"]
        for stage in warm["stages"]
        if not stage.get("attributes", {}).get("cached")
    ]
    assert recomputed == [], f"warm restart recomputed stages: {recomputed}"

    patch = tmp_path / "patch.txt"
    patch.write_text("! bench: one-line list change\n||bench-tracker.example/ad.js\n")
    inc_s = run_all(cache, tmp_path / "inc.json", REPRO_LIST_PATCH=str(patch))
    inc = graph_counters(tmp_path / "inc.json")
    # The crawl is served from cache; list-derived stages recompute.
    inc_stage_names = {stage["name"] for stage in inc["stages"]}
    assert "archive" not in inc_stage_names
    assert inc["hits"] > 0
    # Crawl-only / world-only experiments stay byte-identical...
    for unchanged in ("fig5", "table2", "stability"):
        assert inc["artifacts"][unchanged] == cold["artifacts"][unchanged]
    # ...while list-derived artifacts reflect the patch.
    assert inc["artifacts"]["fig1"] != cold["artifacts"]["fig1"]

    warm_speedup = cold_s / warm_s
    report = {
        "scale": float(SCALE),
        "experiments": "all",
        "cold_s": round(cold_s, 3),
        "warm_restart_s": round(warm_s, 3),
        "incremental_s": round(inc_s, 3),
        "warm_speedup": round(warm_speedup, 1),
        "incremental_speedup": round(cold_s / inc_s, 1),
        "warm_hits": warm["hits"],
        "warm_recomputed_stages": len(recomputed),
        "target_warm_speedup": WARM_SPEEDUP_FLOOR,
    }
    (ROOT / "BENCH_graph.json").write_text(json.dumps(report, indent=2) + "\n")
    print(f"\n[graph bench] {json.dumps(report)}")
    assert warm_speedup >= WARM_SPEEDUP_FLOOR, (
        f"warm restart only {warm_speedup:.1f}x faster (target ≥ {WARM_SPEEDUP_FLOOR}x)"
    )
