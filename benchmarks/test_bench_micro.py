"""Micro-benchmarks: throughput of the hot substrate components.

These use pytest-benchmark's normal repeated timing (they are cheap and
deterministic): the JS tokenizer/parser, the eval unpacker, the URL
matcher, element hiding, and feature extraction.
"""

import numpy as np
import pytest

from repro.core.features import features_from_source
from repro.filterlist.matcher import NetworkMatcher
from repro.filterlist.parser import parse_filter_list
from repro.filterlist.rules import NetworkRule
from repro.jsast.parser import parse
from repro.jsast.tokenizer import tokenize
from repro.jsast.unpack import unpack_source
from repro.synthesis.scripts import generate_anti_adblock, generate_benign
from repro.web.adblocker import Adblocker
from repro.web.dom import parse_html


@pytest.fixture(scope="module")
def sample_script():
    return generate_anti_adblock(
        np.random.default_rng(1), family="html_bait", pack_probability=0.0
    )


def test_micro_tokenizer(benchmark, sample_script):
    tokens = benchmark(tokenize, sample_script)
    assert tokens[-1].kind == "eof"


def test_micro_parser(benchmark, sample_script):
    program = benchmark(parse, sample_script)
    assert program.body


def test_micro_unpacker(benchmark):
    source = "eval('var bait = document.createElement(\\'div\\'); bait.offsetHeight;');"
    result = benchmark(unpack_source, source)
    assert result.was_packed


def test_micro_feature_extraction(benchmark, sample_script):
    features = benchmark(features_from_source, sample_script, "keyword")
    assert features


def test_micro_url_matcher(benchmark):
    rules = [NetworkRule.parse(f"||site{i}.example^$script") for i in range(2000)]
    rules.append(NetworkRule.parse("||pagefair.com^$third-party"))
    matcher = NetworkMatcher(rules)
    urls = [f"http://host{i}.example/path/app.js" for i in range(50)] + [
        "http://pagefair.com/static/measure.js"
    ]

    def match_all():
        return sum(
            1
            for url in urls
            if matcher.match(url, page_domain="news.com", resource_type="script", third_party=True).blocked
        )

    hits = benchmark(match_all)
    assert hits == 1


def test_micro_element_hiding(benchmark):
    list_text = "\n".join(f"##.overlay-{i}" for i in range(200)) + "\n##.adblock-overlay\n"
    adblocker = Adblocker([parse_filter_list(list_text)])
    html = "<body>" + "".join(
        f"<div class='box-{i}'>x</div>" for i in range(50)
    ) + "<div class='adblock-overlay'>notice</div></body>"

    def hide():
        document = parse_html(html)
        return adblocker.hide_elements(document, "http://x.com/")

    triggered = benchmark(hide)
    assert len(triggered) == 1


def test_micro_benign_generation(benchmark):
    rng = np.random.default_rng(2)
    source = benchmark(generate_benign, rng)
    assert source.strip()


def test_micro_selector_engine(benchmark):
    from repro.filterlist.selectors import parse_selector_group, select

    document = parse_html(
        "<body>" + "".join(f"<div class='c{i}'><span id='s{i}'>x</span></div>" for i in range(100)) + "</body>"
    )

    def query():
        return len(select(document.root, "#s50")) + len(select(document.root, ".c99 span"))

    assert benchmark(query) == 2


def test_micro_codegen(benchmark, sample_script):
    from repro.jsast.codegen import to_source

    tree = parse(sample_script)
    source = benchmark(to_source, tree)
    assert source.strip()


def test_micro_lint(benchmark):
    from repro.filterlist.lint import lint_rules

    rules = [NetworkRule.parse(f"||site{i}.example^") for i in range(300)]
    rules.append(NetworkRule.parse("||site0.example/deep/path.js"))

    def run_lint():
        return lint_rules(rules)

    report = benchmark(run_lint)
    assert len(report.of_kind("shadowed")) == 1
