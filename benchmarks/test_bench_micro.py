"""Micro-benchmarks: throughput of the hot substrate components.

These use pytest-benchmark's normal repeated timing (they are cheap and
deterministic): the JS tokenizer/parser, the eval unpacker, the URL
matcher, element hiding, and feature extraction.
"""

import numpy as np
import pytest

from repro.core.features import features_from_source
from repro.filterlist.matcher import NetworkMatcher
from repro.filterlist.parser import parse_filter_list
from repro.filterlist.rules import NetworkRule
from repro.jsast.parser import parse
from repro.jsast.tokenizer import tokenize
from repro.jsast.unpack import unpack_source
from repro.synthesis.scripts import generate_anti_adblock, generate_benign
from repro.web.adblocker import Adblocker
from repro.web.dom import parse_html


@pytest.fixture(scope="module")
def sample_script():
    return generate_anti_adblock(
        np.random.default_rng(1), family="html_bait", pack_probability=0.0
    )


def test_micro_tokenizer(benchmark, sample_script):
    tokens = benchmark(tokenize, sample_script)
    assert tokens[-1].kind == "eof"


def test_micro_parser(benchmark, sample_script):
    program = benchmark(parse, sample_script)
    assert program.body


def test_micro_unpacker(benchmark):
    source = "eval('var bait = document.createElement(\\'div\\'); bait.offsetHeight;');"
    result = benchmark(unpack_source, source)
    assert result.was_packed


def test_micro_feature_extraction(benchmark, sample_script):
    features = benchmark(features_from_source, sample_script, "keyword")
    assert features


def test_micro_url_matcher(benchmark):
    rules = [NetworkRule.parse(f"||site{i}.example^$script") for i in range(2000)]
    rules.append(NetworkRule.parse("||pagefair.com^$third-party"))
    matcher = NetworkMatcher(rules)
    urls = [f"http://host{i}.example/path/app.js" for i in range(50)] + [
        "http://pagefair.com/static/measure.js"
    ]

    def match_all():
        return sum(
            1
            for url in urls
            if matcher.match(url, page_domain="news.com", resource_type="script", third_party=True).blocked
        )

    hits = benchmark(match_all)
    assert hits == 1


def test_micro_element_hiding(benchmark):
    list_text = "\n".join(f"##.overlay-{i}" for i in range(200)) + "\n##.adblock-overlay\n"
    adblocker = Adblocker([parse_filter_list(list_text)])
    html = "<body>" + "".join(
        f"<div class='box-{i}'>x</div>" for i in range(50)
    ) + "<div class='adblock-overlay'>notice</div></body>"

    def hide():
        document = parse_html(html)
        return adblocker.hide_elements(document, "http://x.com/")

    triggered = benchmark(hide)
    assert len(triggered) == 1


def test_micro_benign_generation(benchmark):
    rng = np.random.default_rng(2)
    source = benchmark(generate_benign, rng)
    assert source.strip()


def test_micro_selector_engine(benchmark):
    from repro.filterlist.selectors import parse_selector_group, select

    document = parse_html(
        "<body>" + "".join(f"<div class='c{i}'><span id='s{i}'>x</span></div>" for i in range(100)) + "</body>"
    )

    def query():
        return len(select(document.root, "#s50")) + len(select(document.root, ".c99 span"))

    assert benchmark(query) == 2


def test_micro_codegen(benchmark, sample_script):
    from repro.jsast.codegen import to_source

    tree = parse(sample_script)
    source = benchmark(to_source, tree)
    assert source.strip()


def _revision_pair():
    """Two consecutive synthetic revisions: 2000 rules, a 40-rule delta."""
    base = [NetworkRule.parse(f"||site{i}.example^$script") for i in range(2000)]
    removed = base[::100]
    removed_ids = {id(rule) for rule in removed}
    added = [NetworkRule.parse(f"||fresh{i}.example^$third-party") for i in range(20)]
    following = [rule for rule in base if id(rule) not in removed_ids] + added
    return base, following, added, removed


def test_micro_matcher_full_rebuild(benchmark):
    """Seed behavior: re-scan the full rule set for every revision."""
    _, following, _, _ = _revision_pair()
    matcher = benchmark(NetworkMatcher, following)
    assert len(matcher) == len(following)


def test_micro_matcher_incremental_delta(benchmark):
    """Replay behavior: derive the next revision's matcher from the delta."""
    base, following, added, removed = _revision_pair()
    base_matcher = NetworkMatcher(base)

    derived = benchmark(base_matcher.apply_delta, added, removed)
    assert len(derived) == len(following)


def _profile_workload():
    from repro.filterlist.matcher import url_tokens
    from repro.analysis.profile import UrlProfile
    from repro.web.url import is_third_party, resource_type_from_url

    rules = [NetworkRule.parse(f"||site{i}.example^$script") for i in range(500)]
    rules.append(NetworkRule.parse("||pagefair.com^$third-party"))
    matcher = NetworkMatcher(rules)
    urls = [f"http://host{i}.example/path/app{i}.js" for i in range(200)] + [
        "http://pagefair.com/static/measure.js"
    ]
    profiles = [
        UrlProfile(
            url=url,
            tokens=url_tokens(url),
            resource_type=resource_type_from_url(url, default="script"),
            third_party=is_third_party(url, "news.com"),
        )
        for url in urls
    ]
    return matcher, urls, profiles


def test_micro_match_raw_urls(benchmark):
    """Per-call tokenization path (caches cleared to model the seed)."""
    from repro.filterlist.matcher import url_tokens

    matcher, urls, _ = _profile_workload()

    def match_raw():
        url_tokens.cache_clear()
        return sum(
            1
            for url in urls
            if matcher.first_match(url, "news.com", "script", True) is not None
        )

    assert benchmark(match_raw) == 1


def test_micro_match_via_profiles(benchmark):
    """Precomputed-profile fast path used by the replay engine."""
    matcher, _, profiles = _profile_workload()

    def match_profiles():
        return sum(
            1
            for profile in profiles
            if matcher.first_match_profile(profile, "news.com") is not None
        )

    assert benchmark(match_profiles) == 1


def test_micro_lint(benchmark):
    from repro.filterlist.lint import lint_rules

    rules = [NetworkRule.parse(f"||site{i}.example^") for i in range(300)]
    rules.append(NetworkRule.parse("||site0.example/deep/path.js"))

    def run_lint():
        return lint_rules(rules)

    report = benchmark(run_lint)
    assert len(report.of_kind("shadowed")) == 1
