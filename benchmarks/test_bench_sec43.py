"""Benchmark: §4.3 live-web coverage (the top-100K crawl, scaled)."""

from conftest import run_once

from repro.analysis.livecrawl import LiveCrawler
from repro.experiments import sec43
from repro.experiments.context import AAK, CE


def test_sec43_live_crawl(benchmark, ctx):
    live = run_once(
        benchmark, lambda: LiveCrawler(ctx.world, ctx.histories).crawl(), ctx=ctx
    )
    result = sec43.Sec43Result(live=live)
    print()
    print(sec43.render(result))

    # Nearly all sites reachable (paper: 99,396 of 100K).
    assert live.reachable >= 0.98 * live.crawled

    # AAK's coverage is an order of magnitude above the Combined
    # EasyList's (paper: 4,931 vs 182 → 5.0% vs 0.2%).
    assert live.http_matches[AAK] >= 5 * max(live.http_matches[CE], 1)
    assert 0.02 <= result.http_rate(AAK) <= 0.09
    assert result.http_rate(CE) <= 0.01

    # HTML matches negligible (paper: 11 and 15 of ~100K).
    for name in (AAK, CE):
        assert live.html_matches[name] <= max(0.002 * live.reachable, 3)

    # Third-party share of AAK matches ≥ 90% (paper: 97%).
    assert live.third_party_share(AAK) >= 0.9
