"""Ablation benchmarks for the design choices DESIGN.md calls out.

- **A1** chi-square selection vs no selection (vectorizer filters only)
- **A2** AdaBoost+SVM vs plain SVM vs decision-stump AdaBoost
- **A3** eval()-unpacking on vs off, on a fully packed positive corpus
- **A4** contemporaneous filter lists vs final-list replay (why §4 uses
  historic versions)
"""

import numpy as np
from conftest import run_once

from repro.analysis.coverage import CoverageAnalyzer
from repro.core.pipeline import DetectorConfig, evaluate_detector
from repro.experiments.context import AAK
from repro.filterlist.history import FilterListHistory
from repro.synthesis.scripts import generate_anti_adblock, generate_benign


def test_ablation_feature_selection(benchmark, ctx):
    """A1: chi-square top-K vs keeping every post-filter feature."""
    corpus = ctx.corpus
    sources, labels = corpus.sources(), corpus.labels()

    def run_both():
        selected = evaluate_detector(
            sources, labels, config=DetectorConfig(feature_set="keyword", top_k=1000)
        )
        unselected = evaluate_detector(
            sources, labels, config=DetectorConfig(feature_set="keyword", top_k=None)
        )
        return selected, unselected

    selected, unselected = run_once(benchmark, run_both)
    print()
    print(f"A1 chi-square top-1K : tp={selected.tp_rate:.3f} fp={selected.fp_rate:.3f}")
    print(f"A1 no selection      : tp={unselected.tp_rate:.3f} fp={unselected.fp_rate:.3f}")
    # Selection must not hurt TP materially — chi-square keeps the signal.
    assert selected.tp_rate >= unselected.tp_rate - 0.05
    assert selected.fp_rate <= unselected.fp_rate + 0.05


def test_ablation_classifiers(benchmark, ctx):
    """A2: boosted SVM vs plain SVM vs stump AdaBoost."""
    corpus = ctx.corpus
    sources, labels = corpus.sources(), corpus.labels()

    def run_all():
        return {
            kind: evaluate_detector(
                sources,
                labels,
                config=DetectorConfig(feature_set="keyword", top_k=1000, classifier=kind),
            )
            for kind in ("adaboost_svm", "svm", "adaboost_stump")
        }

    metrics = run_once(benchmark, run_all)
    print()
    for kind, m in metrics.items():
        print(f"A2 {kind:>15}: tp={m.tp_rate:.3f} fp={m.fp_rate:.3f}")
    # The paper's choice (boosted SVM) must be at least as good as the
    # textbook stump booster on TP rate.
    assert metrics["adaboost_svm"].tp_rate >= metrics["adaboost_stump"].tp_rate - 0.02


def test_ablation_unpacking(benchmark, ctx):
    """A3: the eval() unpacker's effect on packed anti-adblock scripts."""
    rng = np.random.default_rng(ctx.world.seed)
    packed_positives = [
        generate_anti_adblock(rng, pack_probability=1.0) for _ in range(40)
    ]
    negatives = [generate_benign(rng) for _ in range(160)]
    sources = packed_positives + negatives
    labels = [1] * 40 + [0] * 160

    def run_both():
        with_unpack = evaluate_detector(
            sources,
            labels,
            config=DetectorConfig(feature_set="keyword", top_k=500, unpack=True),
            n_folds=5,
        )
        without = evaluate_detector(
            sources,
            labels,
            config=DetectorConfig(feature_set="keyword", top_k=500, unpack=False),
            n_folds=5,
        )
        return with_unpack, without

    with_unpack, without = run_once(benchmark, run_both)
    print()
    print(f"A3 unpack on : tp={with_unpack.tp_rate:.3f} fp={with_unpack.fp_rate:.3f}")
    print(f"A3 unpack off: tp={without.tp_rate:.3f} fp={without.fp_rate:.3f}")
    # With unpacking the detector sees real bait logic; without it every
    # packed positive presents the same eval() shell, which still separates
    # from benign scripts but only via the packer fingerprint — unpacking
    # must be at least as accurate and is required for Table 2/3 semantics.
    assert with_unpack.tp_rate >= without.tp_rate - 0.02


def test_ablation_contemporaneous_lists(benchmark, ctx, crawl):
    """A4: replaying the *final* list over history inflates early coverage."""

    def run_final_replay():
        final_only = {}
        for name, history in ctx.histories.items():
            latest = history.latest()
            collapsed = FilterListHistory(name)
            # One revision, dated at the very start of the window: every
            # month sees the final rules.
            collapsed.add_revision(ctx.world.config.start, latest.filter_list)
            final_only[name] = collapsed
        return CoverageAnalyzer(final_only).analyze(crawl, html_rules=False)

    final_coverage = run_once(benchmark, run_final_replay)
    true_coverage = ctx.coverage
    months = sorted(true_coverage.http_series[AAK])
    mid = months[len(months) // 2]
    inflated = final_coverage.http_series[AAK][mid]
    contemporaneous = true_coverage.http_series[AAK][mid]
    print()
    print(
        f"A4 {mid}: contemporaneous={contemporaneous} final-list-replay={inflated}"
    )
    # The final list knows rules that did not exist yet: replaying it over
    # history must (weakly) inflate early detection counts.
    assert inflated >= contemporaneous
    total_inflated = sum(final_coverage.http_series[AAK].values())
    total_true = sum(true_coverage.http_series[AAK].values())
    assert total_inflated > total_true
