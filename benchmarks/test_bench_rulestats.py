"""Benchmarks for the rule-stats plane: accounting overhead + pruning win.

Two questions a list maintainer would ask of the "filter the filters"
report before acting on it:

- what does *collecting* the per-rule stats cost (stats-on vs stats-off
  on the same replay loop), and
- what does *acting* on them buy — replaying the same traffic against
  the dead-rule-pruned list must produce identical decisions while
  probing measurably fewer candidates.

The speedup assertions are made on deterministic probe counts, not
wall-clock, so the bench cannot flake on a noisy runner; the wall-clock
ratios are recorded in ``extra_info`` for the BENCH_* trajectories.
"""

import time

from conftest import run_once

from repro.analysis.perf import PerfCounters
from repro.analysis.rulestats import ScopedRuleStats
from repro.core.rulegen import prune_dead_rules
from repro.filterlist.matcher import NetworkMatcher
from repro.web.url import is_third_party, resource_type_from_url


def _requests(world):
    """The observed traffic: every subresource of the final crawl month."""
    requests = []
    for site in world.sites:
        page = world.snapshot(site, world.config.end)
        for resource in page.subresources:
            requests.append(
                (
                    resource.url,
                    page.domain,
                    resource.resource_type
                    or resource_type_from_url(resource.url, default="script"),
                    is_third_party(resource.url, page.domain),
                )
            )
    return requests


def _replay(matcher, requests):
    return [
        matcher.first_match(url, page_domain, resource_type, third_party)
        for url, page_domain, resource_type, third_party in requests
    ]


def test_pruned_list_matcher_speedup(benchmark, ctx):
    """Prune dead rules from observed hits; same decisions, fewer probes."""
    filter_list = ctx.lists["aak"].latest().filter_list
    requests = _requests(ctx.world)

    # Pass 1: account every rule while replaying the traffic once.
    accounting = NetworkMatcher(filter_list.network_rules)
    scope = accounting.rule_stats = ScopedRuleStats()
    baseline = _replay(accounting, requests)
    pruning = prune_dead_rules(filter_list, scope.hits)
    assert pruning.dropped > 0  # synthetic AAK always carries dead weight

    full = NetworkMatcher(filter_list.network_rules, stats=PerfCounters())
    pruned = NetworkMatcher(
        pruning.pruned.network_rules, stats=PerfCounters()
    )

    started = time.perf_counter()
    full_outcomes = _replay(full, requests)
    full_wall = time.perf_counter() - started

    pruned_outcomes = run_once(benchmark, lambda: _replay(pruned, requests))
    started = time.perf_counter()
    _replay(NetworkMatcher(pruning.pruned.network_rules), requests)
    pruned_wall = time.perf_counter() - started

    # Identical decisions on the observed traffic (rules that ever won a
    # match are all kept, and candidate order is preserved).
    assert pruned_outcomes == full_outcomes == baseline

    # The deterministic speedup claim: the pruned index probes no more
    # candidates than the full one, and strictly fewer when dead rules
    # were ever probed.
    assert pruned.stats.candidates_probed <= full.stats.candidates_probed
    dead_raws = set(pruning.dropped_rules)
    dead_probes = sum(
        count for raw, count in scope.checks.items() if raw in dead_raws
    )
    if dead_probes:
        assert pruned.stats.candidates_probed < full.stats.candidates_probed

    benchmark.extra_info["rules_kept"] = pruning.kept
    benchmark.extra_info["rules_dropped"] = pruning.dropped
    benchmark.extra_info["dropped_fraction"] = round(pruning.dropped_fraction, 4)
    benchmark.extra_info["probes_full"] = full.stats.candidates_probed
    benchmark.extra_info["probes_pruned"] = pruned.stats.candidates_probed
    benchmark.extra_info["probe_reduction"] = round(
        1 - pruned.stats.candidates_probed / max(full.stats.candidates_probed, 1), 4
    )
    benchmark.extra_info["wall_speedup"] = round(
        full_wall / max(pruned_wall, 1e-9), 3
    )
    print(
        f"\n[prune] dropped {pruning.dropped}/{pruning.kept + pruning.dropped} "
        f"rules ({100 * pruning.dropped_fraction:.1f}%), probes "
        f"{full.stats.candidates_probed} -> {pruned.stats.candidates_probed}, "
        f"wall speedup {full_wall / max(pruned_wall, 1e-9):.2f}x"
    )


def test_rule_stats_accounting_overhead(benchmark, ctx):
    """Stats-on replay: identical outcomes; overhead ratio in extra_info."""
    filter_list = ctx.lists["aak"].latest().filter_list
    requests = _requests(ctx.world)

    plain = NetworkMatcher(filter_list.network_rules)
    started = time.perf_counter()
    baseline = _replay(plain, requests)
    off_wall = time.perf_counter() - started

    recorded = NetworkMatcher(filter_list.network_rules)
    recorded.rule_stats = ScopedRuleStats()
    outcomes = run_once(benchmark, lambda: _replay(recorded, requests))
    started = time.perf_counter()
    _replay(recorded, requests)
    on_wall = time.perf_counter() - started

    assert outcomes == baseline  # accounting never changes a decision
    assert recorded.rule_stats.calls > 0
    assert recorded.rule_stats.cost.sum == sum(recorded.rule_stats.checks.values())

    benchmark.extra_info["stats_off_wall_s"] = round(off_wall, 4)
    benchmark.extra_info["stats_on_wall_s"] = round(on_wall, 4)
    benchmark.extra_info["overhead_ratio"] = round(on_wall / max(off_wall, 1e-9), 3)
    print(
        f"\n[rule-stats] off={off_wall:.3f}s on={on_wall:.3f}s "
        f"(x{on_wall / max(off_wall, 1e-9):.2f})"
    )
