"""Benchmark: regenerate Figure 2 (domain categories in the lists)."""

from conftest import run_once

from repro.experiments import fig2
from repro.experiments.context import AAK, CE


def test_fig2_categories(benchmark, ctx):
    result = run_once(benchmark, lambda: fig2.run(ctx))
    print()
    print(fig2.render(result))

    for name in (AAK, CE):
        percentages = result.percentages(name)
        assert abs(sum(percentages.values()) - 100.0) < 1e-6
        # No single category dominates (paper: top category ≈ 11%).
        assert max(percentages.values()) < 40.0

    # The categorisation *trend* is similar across both lists (paper §3.3):
    # the top-5 categories of one list overlap the other's top-8.
    def top(name, n):
        ordered = sorted(result.percentages(name).items(), key=lambda kv: -kv[1])
        return {category for category, _ in ordered[:n]}

    assert len(top(AAK, 5) & top(CE, 8)) >= 3
