"""Benchmark: regenerate Table 1 (filter-list domains by Alexa rank)."""

from conftest import run_once

from repro.experiments import table1
from repro.experiments.context import AAK, CE


def test_table1_rank_distribution(benchmark, ctx):
    result = run_once(benchmark, lambda: table1.run(ctx))
    print()
    print(table1.render(result))

    for name in (AAK, CE):
        distribution = result.distributions[name]
        # Every bucket populated; tail (>100K ranks) holds the majority,
        # as in the paper's Table 1.
        assert all(count > 0 for count in distribution.counts.values())
        tail = distribution.counts["100K-1M"] + distribution.counts[">1M"]
        assert tail > distribution.total / 3

    # The two lists have comparable inventory sizes (1,415 vs 1,394).
    totals = {name: d.total for name, d in result.distributions.items()}
    assert 0.7 < totals[AAK] / totals[CE] < 1.5
