"""Extension benchmark: ML-generated rules augmenting the filter list.

The paper's proposed offline workflow (§5, Results & Evaluation): filter-
list authors run the trained model over a crawl and add rules for the
detections. This bench measures the coverage uplift of
``AAK ∪ ML-generated rules`` over AAK alone on the final crawl month, and
the cost — rules generated for scripts that are not user-facing
anti-adblockers (silent measurement code), which a human author would veto
during review.
"""

from conftest import run_once

from repro.core.pipeline import AntiAdblockDetector, DetectorConfig
from repro.core.rulegen import detect_and_generate
from repro.experiments.context import AAK
from repro.filterlist.matcher import NetworkMatcher
from repro.web.url import is_third_party, resource_type_from_url


def _sites_covered(matcher, pages):
    covered = set()
    for page in pages:
        for resource in page.subresources:
            if matcher.match(
                resource.url,
                page_domain=page.domain,
                resource_type=resource.resource_type
                or resource_type_from_url(resource.url, default="script"),
                third_party=is_third_party(resource.url, page.domain),
            ).blocked:
                covered.add(page.domain)
                break
    return covered


def test_ml_generated_rules_uplift(benchmark, ctx):
    corpus = ctx.corpus
    detector = AntiAdblockDetector(
        DetectorConfig(feature_set="keyword", top_k=1000, seed=ctx.world.seed)
    )
    detector.fit(corpus.sources(), corpus.labels())

    world = ctx.world
    pages = [world.snapshot(site, world.config.end) for site in world.sites]
    aak_rules = ctx.lists["aak"].latest().filter_list.network_rules

    def run_pipeline():
        generated, detections = detect_and_generate(detector, pages, vendor_threshold=3)
        return generated, detections

    generated, detections = run_once(benchmark, run_pipeline)

    aak_matcher = NetworkMatcher(aak_rules)
    augmented_matcher = NetworkMatcher(list(aak_rules) + list(generated.rules))
    aak_covered = _sites_covered(aak_matcher, pages)
    augmented_covered = _sites_covered(augmented_matcher, pages)

    truly_anti_adblock = {
        site.domain
        for site in world.sites
        if site.deployed_by(world.config.end)
    }
    newly_covered = augmented_covered - aak_covered
    true_uplift = newly_covered & truly_anti_adblock
    overreach = newly_covered - truly_anti_adblock

    print()
    print(f"ML-generated rules            : {len(generated)} (from {len(detections)} detections)")
    print(f"sites covered by AAK alone    : {len(aak_covered)}")
    print(f"sites covered by AAK + ML     : {len(augmented_covered)}")
    print(f"  true new anti-adblock sites : {len(true_uplift)}")
    print(f"  overreach (silent/bundled)  : {len(overreach)}")

    # Augmentation is monotone and finds anti-adblockers AAK missed
    # (first-party deployments without site-specific rules).
    assert augmented_covered >= aak_covered
    assert len(true_uplift) >= 1
