"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one paper artifact. The expensive shared
inputs (world, archive crawl, filter-list histories) are built once per
session; each benchmark times its own analysis stage and asserts the
paper's qualitative shape before printing the artifact.

Scale is controlled by ``REPRO_SCALE`` (default 0.08 → 400 crawled sites,
8K live sites). Paper scale is ``REPRO_SCALE=1.0``.
"""

import pytest

from repro.experiments.context import ExperimentContext, default_scale


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    return ExperimentContext.create(scale=default_scale())


@pytest.fixture(scope="session")
def crawl(ctx):
    return ctx.crawl


@pytest.fixture(scope="session")
def coverage(ctx):
    result = ctx.coverage
    # Surface the replay engine's counters in the bench log so BENCH_*
    # trajectories can attribute wins (visible with ``pytest -s``).
    print(f"\n[coverage perf] {ctx.perf.render()}")
    return result


def run_once(benchmark, fn):
    """Run a macro-benchmark exactly once (pipelines, not microseconds)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
