"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one paper artifact. The expensive shared
inputs (world, archive crawl, filter-list histories) are built once per
session; each benchmark times its own analysis stage and asserts the
paper's qualitative shape before printing the artifact.

Scale is controlled by ``REPRO_SCALE`` (default 0.08 → 400 crawled sites,
8K live sites). Paper scale is ``REPRO_SCALE=1.0``.

Observability: the shared context records a per-stage timing breakdown
(``stage_timings``); :func:`run_once` copies it — together with the
replay engine's perf counters — into ``benchmark.extra_info``, so the
``--benchmark-json`` artifact CI uploads carries stage-level attribution
alongside the raw numbers.
"""

import pytest

from repro.experiments.context import ExperimentContext, default_scale


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    return ExperimentContext.create(scale=default_scale())


@pytest.fixture(scope="session")
def crawl(ctx):
    return ctx.crawl


@pytest.fixture(scope="session")
def coverage(ctx):
    result = ctx.coverage
    # Surface the replay engine's counters in the bench log so BENCH_*
    # trajectories can attribute wins (visible with ``pytest -s``).
    print(f"\n[coverage perf] {ctx.perf.render()}")
    return result


def attach_stage_info(benchmark, ctx) -> None:
    """Write the context's stage breakdown into the bench JSON artifact."""
    benchmark.extra_info["stages"] = ctx.stage_report()
    benchmark.extra_info["replay_perf"] = ctx.analyzer.perf.as_dict()


def run_once(benchmark, fn, ctx=None):
    """Run a macro-benchmark exactly once (pipelines, not microseconds).

    Pass the shared ``ctx`` to also record its stage-level timing
    breakdown in ``benchmark.extra_info`` (surfaced in the JSON report).
    """
    result = benchmark.pedantic(fn, rounds=1, iterations=1)
    if ctx is not None:
        attach_stage_info(benchmark, ctx)
    return result
