"""Extension benchmark: seed stability of the headline findings.

Regenerates small worlds under three seeds and asserts that the paper's
qualitative conclusions hold in every one — i.e. nothing below depends on
the default world seed.
"""

from conftest import run_once

from repro.experiments import stability


def test_findings_stable_across_seeds(benchmark, ctx):
    result = run_once(benchmark, lambda: stability.run(ctx, n_sites=200))
    print()
    print(stability.render(result))

    # 1. AAK coverage dominates the Combined EasyList's everywhere.
    assert result.holds_everywhere(
        lambda o: o.aak_final_http > o.ce_final_http
    )
    assert result.holds_everywhere(lambda o: o.coverage_factor >= 3.0)

    # 2. The Combined EasyList is the exception-heavy list everywhere.
    assert result.holds_everywhere(
        lambda o: o.ce_exception_ratio > o.aak_exception_ratio
    )

    # 3. The Combined EasyList lists overlapping domains first more often
    #    (aggregated: per-seed overlaps are ~15 domains, coin-flip noisy).
    total_ce_first = sum(o.ce_first for o in result.outcomes)
    total_aak_first = sum(o.aak_first for o in result.outcomes)
    assert total_ce_first >= total_aak_first

    # 4. The detector's operating band holds: high TP, single-digit FP.
    assert result.holds_everywhere(lambda o: o.detector_tp >= 0.80)
    assert result.holds_everywhere(lambda o: o.detector_fp <= 0.12)
    mean_tp = sum(o.detector_tp for o in result.outcomes) / len(result.outcomes)
    assert mean_tp >= 0.85
