"""Benchmark: Figure 7 (rule-addition delay CDF)."""

from conftest import run_once

from repro.experiments import fig7
from repro.experiments.context import AAK, CE


def test_fig7_detection_delays(benchmark, ctx, coverage):
    result = run_once(benchmark, lambda: fig7.run(ctx))
    print()
    print(fig7.render(result))

    assert result.delays[AAK]
    assert result.delays[CE]

    # The Combined EasyList is the more prompt list: its 100-day CDF mass
    # exceeds AAK's (paper: 82% vs 32%).
    assert result.fraction_within(CE, 100) > result.fraction_within(AAK, 100)

    # Both lists have rules that predate some deployments (generic rules;
    # paper: 42% and 23%).
    assert result.fraction_before(CE) > 0.1
    assert result.fraction_before(AAK) > 0.05
