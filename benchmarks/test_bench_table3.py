"""Benchmark: Table 3 (classifier accuracy across feature sets/classifiers).

The heaviest benchmark: 18 configurations × 10-fold cross-validation over
the list-labeled corpus.
"""

from conftest import run_once

from repro.experiments import table3


def test_table3_classifier_accuracy(benchmark, ctx):
    result = run_once(benchmark, lambda: table3.run(ctx))
    print()
    print(table3.render(result))

    # Corpus shape: ~10:1 imbalance (paper: 372 positives, 10:1).
    assert result.n_positives > 0
    assert 5 <= result.n_negatives / result.n_positives <= 12

    tp_rates = [m.tp_rate for m in result.metrics.values()]
    fp_rates = [m.fp_rate for m in result.metrics.values()]

    # TP rate high across all configurations (paper: ≥ 99.2%). At the
    # default small scale each missed positive costs ~2.6% of TP, so the
    # worst-config floor is loose; the median must stay high, and at
    # REPRO_SCALE=0.2 every config clears 96% (see EXPERIMENTS.md).
    tp_sorted = sorted(tp_rates)
    assert tp_sorted[0] >= 0.80
    assert tp_sorted[len(tp_sorted) // 2] >= 0.90
    # FP rate in the single-digit band (paper: 3.2%–9.1%).
    assert max(fp_rates) <= 0.12

    # The best configuration reaches the paper's headline operating point.
    (_, best_metrics) = result.best()
    assert best_metrics.tp_rate >= 0.95
    assert best_metrics.fp_rate <= 0.08
