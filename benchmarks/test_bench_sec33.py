"""Benchmark: §3.3 overlap and exception-ratio accounting."""

from conftest import run_once

from repro.experiments import sec33
from repro.experiments.context import AAK, CE


def test_sec33_comparative_analysis(benchmark, ctx):
    result = run_once(benchmark, lambda: sec33.run(ctx))
    print()
    print(sec33.render(result))

    # The lists share only a modest fraction of their domains (paper: 282
    # common out of ~1,400 each — roughly a fifth).
    overlap = result.overlap.overlap_count
    assert 0 < overlap < 0.6 * min(result.domain_counts.values())

    # The Combined EasyList is the more exception-heavy list (paper: ≈4:1
    # vs ≈1:1) — assert the ordering, not the exact ratios.
    assert result.exceptions[CE].ratio > result.exceptions[AAK].ratio
    assert result.exceptions[CE].ratio > 1.5
    assert result.exceptions[AAK].ratio < 1.5
