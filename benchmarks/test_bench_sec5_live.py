"""Benchmark: §5 live test (classifying live-crawl anti-adblock scripts)."""

from conftest import run_once

from repro.experiments import sec5live


def test_sec5_live_classification(benchmark, ctx):
    # Materialise the corpus and live crawl outside the timed region.
    _ = ctx.corpus
    _ = ctx.live
    result = run_once(benchmark, lambda: sec5live.run(ctx))
    print()
    print(sec5live.render(result))

    assert result.n_scripts > 0
    # Paper: 92.5% TP on 2,701 live scripts. The shape to hold: high but
    # visibly below the cross-validated in-distribution TP rate.
    assert result.tp_rate >= 0.75
