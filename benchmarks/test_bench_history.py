"""Benchmarks for the incremental §3 history engine.

Quantifies the tentpole win of delta-parsed revisions plus the shared
parsed-rule cache:

- **full reparse** (the pre-engine behavior): every revision's complete
  text parsed from scratch (``parse_filter_list(cache=False)``), every
  §3 series derived by full per-revision scans;
- **incremental**: one parsed base revision, ``RevisionDelta`` chains
  for the rest, every distinct rule line parsed/classified once through
  the process-global cache, and the §3 series computed as streaming
  folds in O(churn) per revision.

Both paths must produce identical series — the equality is asserted
here (and property-tested in ``tests/``), so the speedup never comes at
the cost of drift. Results land in the ``--benchmark-json`` artifact CI
uploads, with the ``history.*`` counters in ``extra_info``.
"""

import time
from datetime import date, timedelta

import pytest

from repro.filterlist.history import FilterListHistory, RevisionDelta
from repro.filterlist.parser import (
    ParsedRuleCache,
    get_history_counters,
    parse_filter_list,
    set_rule_cache,
)

#: History shape: a real-ish list (hundreds of rules) updated often with
#: tiny churn, the regime the paper reports (~4 rules/day for AAK).
BASE_RULES = 600
REVISIONS = 100
ADDED_PER_REVISION = 6
REMOVED_PER_REVISION = 2
START = date(2014, 1, 1)


def _rule_line(index: int) -> str:
    """A deterministic rule line of rotating Figure 1 type."""
    kind = index % 5
    if kind == 0:
        return f"||site{index}.example.com^"
    if kind == 1:
        return f"@@||allow{index}.example.net^$script"
    if kind == 2:
        return f"site{index}.example.org###ad-{index}"
    if kind == 3:
        return f"/banner{index}/*$domain=site{index}.example.com"
    return f"##.generic-{index}"


def _build_spec():
    """The synthetic history as both full texts and a base + delta chain."""
    current = [_rule_line(index) for index in range(BASE_RULES)]
    next_index = BASE_RULES
    texts = [(START, "\n".join(current) + "\n")]
    deltas = []
    for revision in range(1, REVISIONS):
        when = START + timedelta(days=3 * revision)
        added = [_rule_line(next_index + offset) for offset in range(ADDED_PER_REVISION)]
        next_index += ADDED_PER_REVISION
        removed = current[:REMOVED_PER_REVISION]
        current = current[REMOVED_PER_REVISION:] + added
        texts.append((when, "\n".join(current) + "\n"))
        deltas.append((when, RevisionDelta(added=added, removed=removed)))
    return texts, deltas


@pytest.fixture(scope="module")
def spec():
    return _build_spec()


def _series_full_reparse(texts):
    """Pre-engine §3 pipeline: parse every revision's text, scan per revision."""
    history = FilterListHistory("bench")
    for when, text in texts:
        history.add_revision(when, parse_filter_list(text, name="bench", cache=False))
    return (
        history.rule_type_series_full_scan(),
        history.total_rules_series_full_scan(),
        history.domain_first_appearance_full_scan(),
    )


def _series_incremental(texts, deltas):
    """Engine §3 pipeline: base + delta chain, streaming folds, fresh cache."""
    previous = set_rule_cache(ParsedRuleCache())
    try:
        history = FilterListHistory("bench")
        history.add_revision(texts[0][0], texts[0][1])
        for when, delta in deltas:
            history.add_revision(when, delta)
        return (
            history.rule_type_series(),
            history.total_rules_series(),
            history.domain_first_appearance(),
        )
    finally:
        set_rule_cache(previous)


def test_incremental_matches_full_reparse(spec):
    """The two pipelines are pinned equal before being compared for speed."""
    texts, deltas = spec
    assert _series_incremental(texts, deltas) == _series_full_reparse(texts)


def test_bench_full_reparse(benchmark, spec):
    """Baseline: full per-revision reparse + full-scan series."""
    texts, _ = spec
    result = benchmark(_series_full_reparse, texts)
    assert result[1][-1][1] > BASE_RULES  # the list grew


def test_bench_incremental(benchmark, spec):
    """Engine: delta-backed build + streaming folds over a fresh cache."""
    texts, deltas = spec
    before = get_history_counters().snapshot()
    result = benchmark(_series_incremental, texts, deltas)
    assert result[1][-1][1] > BASE_RULES
    benchmark.extra_info["history_counters"] = (
        get_history_counters().since(before).as_dict()
    )


def test_incremental_speedup_at_least_3x(spec):
    """The acceptance bar: ≥ 3× on build + evolution-series fold."""
    texts, deltas = spec

    def best_of(fn, *args, repeats=3):
        return min(
            (lambda t0: (fn(*args), time.perf_counter() - t0))(time.perf_counter())[1]
            for _ in range(repeats)
        )

    baseline = best_of(_series_full_reparse, texts)
    incremental = best_of(_series_incremental, texts, deltas)
    speedup = baseline / incremental
    print(f"\nhistory build+fold speedup: {speedup:.1f}x "
          f"(full reparse {baseline:.3f}s vs incremental {incremental:.3f}s)")
    assert speedup >= 3.0, f"expected >=3x, got {speedup:.1f}x"
