"""Benchmark: Figure 6 (websites triggering HTTP/HTML rules over time).

Times the contemporaneous-replay coverage analysis (the §4.2 pipeline)
over the prebuilt crawl.
"""

from conftest import run_once

from repro.analysis.coverage import CoverageAnalyzer
from repro.experiments import fig6
from repro.experiments.context import AAK, CE


def test_fig6_coverage_replay(benchmark, ctx, crawl):
    # Time the full replay with a fresh analyzer (no caches).
    coverage = run_once(
        benchmark, lambda: CoverageAnalyzer(ctx.histories).analyze(crawl), ctx=ctx
    )
    result = fig6.Fig6Result(
        http_series=coverage.http_series,
        html_series=coverage.html_series,
        third_party_share={name: coverage.third_party_share(name) for name in (AAK, CE)},
    )
    print()
    print(fig6.render(result))

    last = max(result.http_series[AAK])
    aak_final = result.http_series[AAK][last]
    ce_final = result.http_series[CE][last]

    # AAK ends far above the Combined EasyList (paper: 331 vs 16).
    assert aak_final > ce_final
    assert aak_final >= 4 * max(ce_final, 1)

    # AAK triggers nothing before the list exists (created 2014).
    early_months = [m for m in result.http_series[AAK] if m.year < 2014]
    assert all(result.http_series[AAK][m] == 0 for m in early_months)

    # HTML-rule triggers are near zero for both lists (paper: 0–5).
    scale = ctx.world.config.n_sites / 5000
    ceiling = max(5 * scale * 3, 3)
    for name in (AAK, CE):
        assert all(v <= ceiling for v in result.html_series[name].values())

    # The vast majority of matched sites use third-party scripts (98%/97%).
    assert result.third_party_share[AAK] > 0.85
