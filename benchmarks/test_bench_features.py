"""Benchmarks for the §5 feature-extraction engine.

Quantifies the two tentpole wins of the content-addressed event store:

- **parse-once vs per-set**: deriving all three feature sets from one
  cached token-event stream versus re-parsing the corpus per set (the
  pre-engine behavior, still reachable via ``features_from_source``);
- **cold vs warm cache**: extraction against an empty on-disk cache
  versus a populated one (``REPRO_FEATURE_CACHE`` between CLI runs).

Results land in the ``--benchmark-json`` artifact CI uploads, alongside
the store's own hit/miss counters in ``extra_info``.
"""

import numpy as np
import pytest

from repro.core.features import FEATURE_SETS, features_from_source
from repro.core.featstore import FeatureStore
from repro.synthesis.scripts import generate_anti_adblock, generate_benign


@pytest.fixture(scope="module")
def script_corpus():
    """A mixed corpus, sized so per-script parse cost dominates."""
    rng = np.random.default_rng(42)
    corpus = []
    for index in range(60):
        if index % 3 == 0:
            corpus.append(generate_anti_adblock(rng, pack_probability=0.3))
        else:
            corpus.append(generate_benign(rng))
    return corpus


def test_bench_per_set_reparse(benchmark, script_corpus):
    """Pre-engine behavior: one full parse per (script, feature set)."""

    def extract_each_set():
        out = {}
        for feature_set in FEATURE_SETS:
            out[feature_set] = [
                features_from_source(source, feature_set=feature_set)
                for source in script_corpus
            ]
        return out

    result = benchmark(extract_each_set)
    assert all(any(result[fs]) for fs in FEATURE_SETS)


def test_bench_parse_once_all_sets(benchmark, script_corpus):
    """Engine behavior: one parse, every feature set by kind-filtering."""

    def extract_shared():
        store = FeatureStore()
        return store.features_by_set(script_corpus, feature_sets=FEATURE_SETS)

    result = benchmark(extract_shared)
    assert all(any(result[fs]) for fs in FEATURE_SETS)


def test_bench_cold_disk_cache(benchmark, script_corpus, tmp_path_factory):
    """Extraction with an empty on-disk cache (parse + write entries)."""
    counter = iter(range(10_000))

    def cold_run():
        directory = tmp_path_factory.mktemp(f"cold{next(counter)}")
        store = FeatureStore(cache_dir=directory)
        features = store.features_for_corpus(script_corpus)
        return store, features

    store, features = benchmark(cold_run)
    assert store.stats.disk_writes > 0
    assert any(features)
    benchmark.extra_info["store_stats"] = store.stats.as_dict()


def test_bench_warm_disk_cache(benchmark, script_corpus, tmp_path):
    """Extraction against a populated cache (reads only, no parsing)."""
    FeatureStore(cache_dir=tmp_path).features_for_corpus(script_corpus)

    def warm_run():
        store = FeatureStore(cache_dir=tmp_path)
        features = store.features_for_corpus(script_corpus)
        return store, features

    store, features = benchmark(warm_run)
    assert store.stats.extracted == 0
    assert store.stats.disk_hits > 0
    assert any(features)
    benchmark.extra_info["store_stats"] = store.stats.as_dict()
