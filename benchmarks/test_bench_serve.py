"""Serve-daemon loadgen benchmark: batched frames vs one-per-round-trip.

A real daemon is booted on an ephemeral loopback port and driven by the
deterministic load generator twice, with disjoint seeds so neither mode
inherits the other's feature-extraction or verdict caches:

- **naive** — every query is its own TCP round trip (``batch_size=1``),
  the cost a client pays without request batching: per call it eats the
  framing overhead, the batcher's linger window, and the single-script
  model-predict overhead;
- **batched** — each worker wraps its share into protocol-level
  ``batch`` frames of 64: one round trip and ONE prewarm predict per
  frame.

The acceptance floor is batched ≥ 3× naive queries/sec against the
daemon's default configuration. The report (QPS + p50/p99 per mode) is
written to ``BENCH_serve.json`` at the repo root; CI uploads it and the
committed copy tracks the trajectory.
"""

import json
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[1]
SCALE = 0.02
QUERY_COUNT = 600
BATCH_SIZE = 64
CONCURRENCY = 4
#: The acceptance floor: batched loadgen QPS over naive loadgen QPS.
BATCH_SPEEDUP_FLOOR = 3.0


@pytest.mark.benchmark(group="serve")
def test_batched_loadgen_speedup(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_RUN_CACHE", str(tmp_path / "run-cache"))
    from repro.experiments.context import ExperimentContext
    from repro.serve.daemon import ServeDaemon, build_engine, resolve_serve_state
    from repro.serve.loadgen import generate_queries, run_network

    ctx = ExperimentContext.create(scale=SCALE)
    state = resolve_serve_state(ctx)
    daemon = ServeDaemon(build_engine(state, workers=0), port=0)
    host, port = daemon.start()
    try:
        # Warm the server's code paths with a seed neither mode reuses.
        run_network(host, port, generate_queries(99, 100), concurrency=CONCURRENCY)
        naive = run_network(
            host,
            port,
            generate_queries(1, QUERY_COUNT),
            concurrency=CONCURRENCY,
            batch_size=1,
        )
        batched = run_network(
            host,
            port,
            generate_queries(2, QUERY_COUNT),
            concurrency=CONCURRENCY,
            batch_size=BATCH_SIZE,
        )
    finally:
        daemon.stop()

    assert naive["errors"] == 0 and batched["errors"] == 0
    speedup = batched["qps"] / naive["qps"]
    report = {
        "scale": SCALE,
        "queries": QUERY_COUNT,
        "concurrency": CONCURRENCY,
        "batch_size": BATCH_SIZE,
        "naive": naive,
        "batched": batched,
        "batch_speedup": round(speedup, 2),
        "target_batch_speedup": BATCH_SPEEDUP_FLOOR,
    }
    (ROOT / "BENCH_serve.json").write_text(json.dumps(report, indent=2) + "\n")
    print(f"\n[serve bench] {json.dumps(report)}")
    assert speedup >= BATCH_SPEEDUP_FLOOR, (
        f"batched loadgen only {speedup:.2f}x naive (target ≥ {BATCH_SPEEDUP_FLOOR}x)"
    )
