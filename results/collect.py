#!/usr/bin/env python
"""Collect experiment artifacts for EXPERIMENTS.md.

Usage:  REPRO_SCALE=0.2 python results/collect.py [experiment ...]

With no arguments, runs every experiment. Writes to stdout; redirect into
``results/artifacts-scale-<scale>.txt``.
"""

import importlib
import resource
import sys
import time

ALL = (
    "fig1",
    "table1",
    "fig2",
    "sec33",
    "fig3",
    "fig5",
    "fig6",
    "fig7",
    "sec43",
    "table2",
    "table3",
    "sec5live",
)


def main() -> None:
    """Run the requested experiments and print their artifacts."""
    from repro.experiments import shared_context

    names = sys.argv[1:] or list(ALL)
    ctx = shared_context()
    started = time.time()
    for name in names:
        module = importlib.import_module(f"repro.experiments.{name}")
        stage_start = time.time()
        print("=" * 72)
        print(f"### {name}")
        print(module.render(module.run(ctx)))
        rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1e6
        print(f"[{name} took {time.time() - stage_start:.1f}s, peak RSS {rss:.1f} GB]")
        print(flush=True)
    print(f"TOTAL {time.time() - started:.1f}s")


if __name__ == "__main__":
    main()
