"""Synthetic world: domains, categories, vendors, scripts, sites, lists.

Substitutes for the live Web, the Alexa rankings, McAfee's categorization
service, the anti-adblock vendor ecosystem, and the crowdsourced filter
lists' revision histories. Deterministic given a seed.
"""

from .alexa import RANK_BUCKETS, DomainPopulation, RankedDomain, bucket_for_rank
from .categories import CATEGORIES, CategorizationService, top_categories_with_others
from .listgen import FilterListGenerator, extract_sections, generate_all_lists
from .scripts import (
    ANTI_ADBLOCK_FAMILIES,
    BENIGN_FAMILIES,
    generate_anti_adblock,
    generate_benign,
)
from .seeds import DEFAULT_SEED, derive_seed, rng_for
from .vendors import VENDORS, Vendor, choose_vendor, vendor_by_name, vendors_available
from .world import Deployment, SiteProfile, SyntheticWorld, WorldConfig

__all__ = [
    "RANK_BUCKETS",
    "DomainPopulation",
    "RankedDomain",
    "bucket_for_rank",
    "CATEGORIES",
    "CategorizationService",
    "top_categories_with_others",
    "FilterListGenerator",
    "extract_sections",
    "generate_all_lists",
    "ANTI_ADBLOCK_FAMILIES",
    "BENIGN_FAMILIES",
    "generate_anti_adblock",
    "generate_benign",
    "DEFAULT_SEED",
    "derive_seed",
    "rng_for",
    "VENDORS",
    "Vendor",
    "choose_vendor",
    "vendor_by_name",
    "vendors_available",
    "Deployment",
    "SiteProfile",
    "SyntheticWorld",
    "WorldConfig",
]
