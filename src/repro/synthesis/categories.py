"""Domain categorization service (McAfee TrustedSource substitute).

Figure 2 buckets filter-list domains into website categories via McAfee's
URL categorization service. This service assigns every synthetic domain a
deterministic category drawn from the paper's top-15 vocabulary, with
weights shaped like Figure 2 (Internet Services and Entertainment lead,
followed by Blogs/Forums, Games and streaming categories).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .seeds import rng_for

#: Figure 2's category axis, in display order.
CATEGORIES: Sequence[str] = (
    "Internet Services",
    "Entertainment",
    "Blogs/Forums",
    "Games",
    "Illegal Software",
    "Business",
    "Streaming/Sharing",
    "General News",
    "Marketing",
    "Sports",
    "Personal Storage",
    "Shareware",
    "Web Ads",
    "Malicious Sites",
    "Pornography",
    "Others",
)

#: Sampling weights shaped like the paper's Figure 2 distribution.
_CATEGORY_WEIGHTS: Sequence[float] = (
    0.115,  # Internet Services
    0.105,  # Entertainment
    0.085,  # Blogs/Forums
    0.075,  # Games
    0.065,  # Illegal Software
    0.060,  # Business
    0.060,  # Streaming/Sharing
    0.055,  # General News
    0.050,  # Marketing
    0.045,  # Sports
    0.040,  # Personal Storage
    0.035,  # Shareware
    0.030,  # Web Ads
    0.025,  # Malicious Sites
    0.025,  # Pornography
    0.130,  # Others
)

#: Name-keyword hints that override the random draw, so domains look
#: coherent ("...stream..." sites are Streaming/Sharing, etc.).
_KEYWORD_HINTS: Sequence[Tuple[str, str]] = (
    ("stream", "Streaming/Sharing"),
    ("cast", "Streaming/Sharing"),
    ("flix", "Entertainment"),
    ("tube", "Entertainment"),
    ("game", "Games"),
    ("play", "Games"),
    ("sport", "Sports"),
    ("score", "Sports"),
    ("bet", "Sports"),
    ("news", "General News"),
    ("press", "General News"),
    ("post", "General News"),
    ("blog", "Blogs/Forums"),
    ("forum", "Blogs/Forums"),
    ("talk", "Blogs/Forums"),
    ("shop", "Business"),
    ("store", "Business"),
    ("mart", "Business"),
    ("soft", "Shareware"),
    ("ware", "Shareware"),
    ("file", "Personal Storage"),
    ("drive", "Personal Storage"),
    ("box", "Personal Storage"),
    ("porn", "Pornography"),
)


class CategorizationService:
    """Deterministic category oracle over domain names."""

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._cache: Dict[str, str] = {}

    def categorize(self, domain: str) -> str:
        """The category of ``domain`` (stable across calls)."""
        if domain in self._cache:
            return self._cache[domain]
        category = self._hint_for(domain)
        if category is None:
            rng = rng_for(self.seed, "category", domain)
            category = str(rng.choice(CATEGORIES, p=_CATEGORY_WEIGHTS))
        self._cache[domain] = category
        return category

    @staticmethod
    def _hint_for(domain: str) -> str | None:
        name = domain.split(".")[0]
        for keyword, category in _KEYWORD_HINTS:
            if keyword in name:
                return category
        return None

    def categorize_all(self, domains: Sequence[str]) -> Dict[str, str]:
        """Category per domain, as a dict."""
        return {domain: self.categorize(domain) for domain in domains}

    def distribution(self, domains: Sequence[str]) -> Dict[str, int]:
        """Counts per category, in Figure 2's display order."""
        counts = {category: 0 for category in CATEGORIES}
        for domain in domains:
            counts[self.categorize(domain)] += 1
        return counts


def top_categories_with_others(
    counts: Dict[str, int], top_n: int = 15
) -> List[Tuple[str, int]]:
    """Collapse to the ``top_n`` categories plus an Others bucket (Fig 2)."""
    named = [(c, n) for c, n in counts.items() if c != "Others"]
    named.sort(key=lambda item: item[1], reverse=True)
    kept = named[:top_n]
    others = counts.get("Others", 0) + sum(n for _, n in named[top_n:])
    return kept + [("Others", others)]
