"""The synthetic web: sites, anti-adblock adoption, and archive building.

This module replaces the live Web and five years of history that the paper
measures. It generates a ranked population of websites, an anti-adblock
adoption process over 2011–2016 (mostly third-party vendor scripts, some
self-hosted), per-month page snapshots, and a populated
:class:`~repro.wayback.archive.WaybackArchive` exhibiting the archive
pathologies of §4.1 (exclusions, outdated gaps, redirects, anti-bot
partial captures).

Everything is deterministic given the world seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date, timedelta
from typing import Dict, List, Optional

import numpy as np

from ..wayback.archive import ExclusionReason, WaybackArchive
from ..web.page import PageSnapshot, Script, Subresource
from .alexa import DomainPopulation, RankedDomain
from .categories import CategorizationService
from .scripts import (
    ANTI_ADBLOCK_FAMILIES,
    BENIGN_FAMILIES,
    V2_FAMILIES,
    _BAIT_URLS,
    _NOTICE_IDS,
    generate_benign,
)
from .seeds import DEFAULT_SEED, rng_for
from .vendors import Vendor, choose_first_party_family, choose_vendor


@dataclass
class WorldConfig:
    """Tunable parameters of the synthetic world.

    Defaults are scaled down from the paper (top-5K crawled, top-100K
    live) so tests and benchmarks run in seconds; pass
    ``n_sites=5000, live_top=100000`` for paper scale. All *fractions*
    mirror the paper's reported counts normalised by 5,000.
    """

    n_sites: int = 1000
    live_top: int = 20000
    start: date = date(2011, 8, 1)
    end: date = date(2016, 7, 1)
    live_date: date = date(2017, 4, 1)

    # Anti-adblock adoption.
    adoption_by_end: float = 0.118
    vendor_fraction: float = 0.80
    static_notice_fraction: float = 0.25
    tail_adoption_factor: float = 0.85  # adoption falloff beyond the top segment

    # Archive pathology (fractions of the crawled segment).
    robots_excluded: float = 153 / 5000
    admin_excluded: float = 26 / 5000
    undefined_excluded: float = 54 / 5000
    never_archived: float = 0.012
    archive_preexisting: float = 0.72
    archive_stop_fraction: float = 0.10
    redirect_adoption: float = 0.05  # sites whose captures turn 3XX over time
    anti_bot_by_end: float = 78 / 5000
    anti_bot_at_start: float = 23 / 5000
    capture_hit_rate: float = 0.95

    # Page content.
    min_benign_scripts: int = 3
    max_benign_scripts: int = 7
    #: Sites that ship *silent* adblock-measurement code: detection logic
    #: that only logs and never interrupts the user. Filter lists do not
    #: target these (they remove warnings, not measurements), so such
    #: scripts sit in the ML corpus's negative pool — the paper's
    #: irreducible false-positive surface (cf. Mughees et al.: far more
    #: sites detect adblockers than visibly react).
    silent_detector_fraction: float = 0.18
    #: Sites whose main ``app.bundle.js`` concatenates several scripts;
    #: a share of bundles inline a detection fragment. Lists cannot block
    #: a site's application bundle without breaking the site, so these
    #: always sit in the negative pool — a second false-positive surface.
    bundle_fraction: float = 0.5
    bundle_contamination: float = 0.35

    def months(self) -> List[date]:
        """First-of-month dates across the crawl window."""
        from ..wayback.crawler import month_range

        return month_range(self.start, self.end)


#: Cumulative anti-adblock adoption shape by year (fraction of eventual
#: adopters deployed by each year's end). The steep 2014–2016 ramp matches
#: the paper's Figure 6(a).
_ADOPTION_CDF = (
    (date(2011, 12, 31), 0.005),
    (date(2012, 12, 31), 0.035),
    (date(2013, 12, 31), 0.11),
    (date(2014, 12, 31), 0.31),
    (date(2015, 12, 31), 0.63),
    (date(2016, 7, 1), 0.89),
    (date(2017, 4, 1), 1.00),
)

#: Deployments on/after this date use second-generation detection scripts
#: (new idioms: MutationObserver baits, XHR status probes) — the live
#: crawl's distribution shift relative to the retrospective training data.
_V2_FROM = date(2016, 8, 1)


@dataclass
class Deployment:
    """One site's anti-adblock deployment."""

    deployed_on: date
    family: str
    vendor: Optional[Vendor] = None
    bait_path: str = "/ads.js"
    notice_id: Optional[str] = None
    script_source: str = ""
    script_url: str = ""

    @property
    def is_third_party(self) -> bool:
        """Whether the deployment uses a third-party vendor."""
        return self.vendor is not None


@dataclass
class SiteProfile:
    """Everything static about one synthetic website."""

    domain: str
    rank: int
    category: str
    deployment: Optional[Deployment] = None
    benign_scripts: List[Script] = field(default_factory=list)
    base_resources: List[Subresource] = field(default_factory=list)

    # Archive behaviour.
    excluded: Optional[ExclusionReason] = None
    archive_start: Optional[date] = None  # None = never archived
    archive_end: Optional[date] = None  # captures stop after this
    redirect_from: Optional[date] = None  # captures are 3XX after this
    anti_bot_from: Optional[date] = None  # partial captures possible after

    @property
    def url(self) -> str:
        """The site's homepage URL."""
        return f"http://{self.domain}/"

    @property
    def uses_anti_adblock(self) -> bool:
        """Whether the site ever deploys anti-adblocking."""
        return self.deployment is not None

    def deployed_by(self, when: date) -> bool:
        """Whether the anti-adblocker is live on the given date."""
        return self.deployment is not None and self.deployment.deployed_on <= when


class SyntheticWorld:
    """The full simulated web, seeded and deterministic."""

    def __init__(self, config: Optional[WorldConfig] = None, seed: int = DEFAULT_SEED) -> None:
        self.config = config or WorldConfig()
        self.seed = seed
        self.population = DomainPopulation(seed, top_size=self.config.n_sites)
        self.categories = CategorizationService(seed)
        self._profiles: Dict[int, SiteProfile] = {}
        #: Snapshot cache: page content varies only with deployment and
        #: redirect state, so monthly captures share snapshot objects.
        self._snapshot_cache: Dict[tuple, PageSnapshot] = {}
        self.sites: List[SiteProfile] = [
            self.profile_for_rank(rank) for rank in range(1, self.config.n_sites + 1)
        ]

    # -- site construction -----------------------------------------------------

    def profile_for_rank(self, rank: int) -> SiteProfile:
        """The (cached) site profile at ``rank``; built lazily for the tail."""
        if rank not in self._profiles:
            self._profiles[rank] = self._build_profile(rank)
        return self._profiles[rank]

    def site_by_domain(self, domain: str) -> Optional[SiteProfile]:
        """The cached profile for a minted domain, if built."""
        rank = self.population.rank_of(domain)
        if rank is None:
            return None
        return self._profiles.get(rank)

    def _build_profile(self, rank: int) -> SiteProfile:
        config = self.config
        domain = self.population.domain_at(rank)
        rng = rng_for(self.seed, "site", rank)
        profile = SiteProfile(
            domain=domain, rank=rank, category=self.categories.categorize(domain)
        )
        self._assign_archive_behaviour(profile, rng)
        self._assign_content(profile, rng)
        self._assign_adoption(profile, rng)
        return profile

    def _assign_archive_behaviour(self, profile: SiteProfile, rng: np.random.Generator) -> None:
        config = self.config
        draw = rng.random()
        if draw < config.robots_excluded:
            profile.excluded = ExclusionReason.ROBOTS_TXT
            return
        if draw < config.robots_excluded + config.admin_excluded:
            profile.excluded = ExclusionReason.ADMIN_REQUEST
            return
        if draw < config.robots_excluded + config.admin_excluded + config.undefined_excluded:
            profile.excluded = ExclusionReason.UNDEFINED
            return
        if rng.random() < config.never_archived:
            profile.archive_start = None
            return
        if rng.random() < config.archive_preexisting:
            profile.archive_start = config.start
        else:
            # Archive coverage begins some time inside the window.
            window_days = (config.end - config.start).days
            offset = int(rng.integers(0, max(window_days, 1)))
            profile.archive_start = config.start + timedelta(days=offset)
        if rng.random() < config.archive_stop_fraction:
            start = profile.archive_start
            stop_window = (config.end - start).days
            if stop_window > 365:
                offset = int(rng.integers(180, stop_window))
                profile.archive_end = start + timedelta(days=offset)
        if rng.random() < config.redirect_adoption:
            window_days = (config.end - config.start).days
            offset = int(rng.integers(window_days // 3, window_days))
            profile.redirect_from = config.start + timedelta(days=offset)
        anti_bot_rate = config.anti_bot_by_end
        if rng.random() < anti_bot_rate:
            window_days = (config.end - config.start).days
            # A share of anti-bot sites had the policy from the start.
            early = rng.random() < config.anti_bot_at_start / anti_bot_rate
            offset = 0 if early else int(rng.integers(0, window_days))
            profile.anti_bot_from = config.start + timedelta(days=offset)

    def _assign_content(self, profile: SiteProfile, rng: np.random.Generator) -> None:
        config = self.config
        domain = profile.domain
        # Tail sites (beyond the crawled top segment) are only ever matched
        # by URL during the live crawl, so their benign script *sources* are
        # never read — skip generating them. Anti-adblock sources are still
        # generated (the §5 live test classifies them).
        lightweight = profile.rank > config.n_sites
        n_benign = int(rng.integers(config.min_benign_scripts, config.max_benign_scripts + 1))
        families = list(BENIGN_FAMILIES)
        for index in range(n_benign):
            family = str(families[int(rng.integers(0, len(families)))])
            url = f"http://static.{domain}/js/{family}-{index}.js"
            source = (
                ""
                if lightweight
                else generate_benign(rng_for(self.seed, "benign", domain, index), family)
            )
            profile.benign_scripts.append(Script(source=source, url=url))
        if lightweight:
            profile.base_resources = [
                Subresource(
                    url=f"http://static.{domain}/css/main.css",
                    resource_type="stylesheet",
                    size=8000,
                ),
                Subresource(
                    url="http://www.google-analytics.com/analytics.js",
                    resource_type="script",
                    size=1500,
                ),
            ]
            return
        if rng.random() < config.bundle_fraction:
            bundle_rng = rng_for(self.seed, "bundle", domain)
            parts = [
                generate_benign(bundle_rng)
                for _ in range(int(bundle_rng.integers(2, 4)))
            ]
            if bundle_rng.random() < config.bundle_contamination:
                family = str(
                    bundle_rng.choice(["html_bait", "can_run_ads", "http_bait"])
                )
                parts.append(ANTI_ADBLOCK_FAMILIES[family](bundle_rng))
            profile.benign_scripts.append(
                Script(
                    source="\n".join(parts),
                    url=f"http://static.{domain}/js/app.bundle.js",
                )
            )
        if rng.random() < config.silent_detector_fraction:
            family = str(rng.choice(["html_bait", "http_bait", "pagefair_like"]))
            source = ANTI_ADBLOCK_FAMILIES[family](
                rng_for(self.seed, "silent", domain)
            )
            profile.benign_scripts.append(
                Script(source=source, url=f"http://static.{domain}/js/metrics-core.js")
            )
        profile.base_resources = [
            Subresource(url=f"http://static.{domain}/css/main.css", resource_type="stylesheet", size=int(rng.integers(4000, 30000))),
            Subresource(url=f"http://static.{domain}/img/logo.png", resource_type="image", size=int(rng.integers(2000, 20000))),
            Subresource(url=f"http://static.{domain}/img/hero.jpg", resource_type="image", size=int(rng.integers(10000, 80000))),
            Subresource(url="http://www.google-analytics.com/analytics.js", resource_type="script", size=1500),
        ]

    def _adoption_date(self, rng: np.random.Generator) -> date:
        u = rng.random()
        previous_date, previous_cdf = self.config.start, 0.0
        for milestone, cumulative in _ADOPTION_CDF:
            if u <= cumulative:
                span = (milestone - previous_date).days
                fraction = (u - previous_cdf) / max(cumulative - previous_cdf, 1e-9)
                return previous_date + timedelta(days=int(span * fraction))
            previous_date, previous_cdf = milestone, cumulative
        return self.config.end

    def _adoption_probability(self, rank: int) -> float:
        if rank <= self.config.n_sites:
            return self.config.adoption_by_end
        return self.config.adoption_by_end * self.config.tail_adoption_factor

    def _assign_adoption(self, profile: SiteProfile, rng: np.random.Generator) -> None:
        config = self.config
        if rng.random() >= self._adoption_probability(profile.rank):
            return
        deployed_on = self._adoption_date(rng)
        script_rng = rng_for(self.seed, "aab-script", profile.domain)
        if rng.random() < config.vendor_fraction:
            vendor = choose_vendor(script_rng, deployed_on)
            if vendor is None:
                # No vendor existed yet; the early adopter self-hosts.
                self._first_party_deployment(profile, deployed_on, script_rng)
                return
            family = self._maybe_v2(vendor.family, deployed_on, script_rng)
            source = ANTI_ADBLOCK_FAMILIES[family](script_rng)
            deployment = Deployment(
                deployed_on=deployed_on,
                family=family,
                vendor=vendor,
                script_source=source,
                script_url=vendor.script_url,
                bait_path=str(script_rng.choice(_BAIT_URLS)),
            )
        else:
            self._first_party_deployment(profile, deployed_on, script_rng)
            deployment = profile.deployment
        if script_rng.random() < config.static_notice_fraction:
            deployment.notice_id = str(script_rng.choice(_NOTICE_IDS))
        profile.deployment = deployment

    @staticmethod
    def _maybe_v2(family: str, deployed_on: date, rng: np.random.Generator) -> str:
        """Late deployments ship the vendor's second-generation script."""
        if deployed_on >= _V2_FROM and family in V2_FAMILIES and rng.random() < 0.8:
            return V2_FAMILIES[family]
        return family

    def _first_party_deployment(
        self, profile: SiteProfile, deployed_on: date, rng: np.random.Generator
    ) -> None:
        family = self._maybe_v2(choose_first_party_family(rng), deployed_on, rng)
        source = ANTI_ADBLOCK_FAMILIES[family](rng)
        bait_path = str(rng.choice(_BAIT_URLS))
        profile.deployment = Deployment(
            deployed_on=deployed_on,
            family=family,
            vendor=None,
            script_source=source,
            script_url=f"http://{profile.domain}/js/detector.js",
            bait_path=bait_path,
        )

    # -- snapshots ---------------------------------------------------------------

    def snapshot(self, profile: SiteProfile, when: date) -> PageSnapshot:
        """The page the site serves on ``when``.

        Snapshots are cached per (site, deployed?, redirecting?) state —
        treat them as immutable.
        """
        key = (
            profile.rank,
            profile.deployed_by(when),
            profile.redirect_from is not None and when >= profile.redirect_from,
        )
        if key not in self._snapshot_cache:
            self._snapshot_cache[key] = self._build_snapshot(profile, when)
        return self._snapshot_cache[key]

    def _build_snapshot(self, profile: SiteProfile, when: date) -> PageSnapshot:
        if profile.redirect_from is not None and when >= profile.redirect_from:
            return PageSnapshot(
                url=profile.url,
                status=301,
                redirect_to=f"https://www.{profile.domain}/",
            )
        subresources = list(profile.base_resources)
        scripts: List[Script] = []
        for script in profile.benign_scripts:
            scripts.append(script)
            subresources.append(
                Subresource(url=script.url, resource_type="script", size=len(script.source))
            )
        notice_html = ""
        deployment = profile.deployment
        if deployment is not None and profile.deployed_by(when):
            scripts.append(
                Script(
                    source=deployment.script_source,
                    url=deployment.script_url,
                    vendor=deployment.vendor.name if deployment.vendor else "",
                    is_anti_adblock=True,
                )
            )
            subresources.extend(self._deployment_requests(profile, deployment))
            if deployment.notice_id is not None:
                notice_html = (
                    f'<div id="{deployment.notice_id}" class="adblock-overlay" '
                    f'style="display:none">Please disable your adblocker to '
                    f"support {profile.domain}.</div>"
                )
        html = self._render_html(profile, scripts, notice_html)
        return PageSnapshot(
            url=profile.url,
            html=html,
            subresources=subresources,
            scripts=scripts,
        )

    def _deployment_requests(
        self, profile: SiteProfile, deployment: Deployment
    ) -> List[Subresource]:
        """Requests the anti-adblock deployment triggers at load time.

        The paper's crawler ran a full browser, so dynamically created bait
        requests appear in its HARs; we enumerate them statically here.
        """
        requests = [
            Subresource(url=deployment.script_url, resource_type="script", size=len(deployment.script_source))
        ]
        vendor = deployment.vendor
        if vendor is not None:
            if deployment.family == "pagefair_like":
                requests.append(
                    Subresource(
                        url=f"http://asset.{vendor.domain}/measure.gif?ab=0",
                        resource_type="image",
                        size=43,
                    )
                )
            if deployment.family in ("pagefair_like", "http_bait"):
                requests.append(
                    Subresource(
                        url=f"http://{profile.domain}{deployment.bait_path}",
                        resource_type="script",
                        size=120,
                    )
                )
            if deployment.family == "ab_test_detect":
                requests.append(
                    Subresource(
                        url=f"http://log.{vendor.domain}/event?ab=0",
                        resource_type="image",
                        size=43,
                    )
                )
        else:
            # Self-hosted deployments probe a first-party bait URL.
            requests.append(
                Subresource(
                    url=f"http://{profile.domain}{deployment.bait_path}",
                    resource_type="script",
                    size=120,
                )
            )
        return requests

    @staticmethod
    def _render_html(profile: SiteProfile, scripts: List[Script], notice_html: str) -> str:
        script_tags = "\n".join(
            f'<script src="{script.url}"></script>' for script in scripts if script.url
        )
        return f"""<!DOCTYPE html>
<html lang="en">
<head>
<title>{profile.domain}</title>
<link rel="stylesheet" href="http://static.{profile.domain}/css/main.css">
{script_tags}
</head>
<body>
<div id="header" class="site-header">{profile.domain}</div>
<div id="content" class="main-content">
<p>Welcome to {profile.domain} — {profile.category}.</p>
<img src="http://static.{profile.domain}/img/hero.jpg">
</div>
{notice_html}
<div id="footer" class="site-footer">&copy; {profile.domain}</div>
</body>
</html>"""

    def _anti_bot_snapshot(self, profile: SiteProfile) -> PageSnapshot:
        """The tiny error page an anti-bot site serves the archive crawler."""
        return PageSnapshot(
            url=profile.url,
            html="<html><head><title>403</title></head><body>Access denied.</body></html>",
            subresources=[],
            scripts=[],
        )

    # -- archive building ------------------------------------------------------

    def build_archive(self) -> WaybackArchive:
        """Populate a Wayback archive with monthly captures of every site."""
        from ..obs.metrics import get_metrics
        from ..obs.trace import span as trace_span

        archive = WaybackArchive()
        months = self.config.months()
        stored = excluded = 0
        with trace_span("archive:build", sites=len(self.sites)) as span:
            for profile in self.sites:
                if profile.excluded is not None:
                    archive.exclude(profile.domain, profile.excluded)
                    excluded += 1
                    continue
                if profile.archive_start is None:
                    continue
                capture_rng = rng_for(self.seed, "capture", profile.domain)
                for month in months:
                    if month < profile.archive_start:
                        continue
                    if profile.archive_end is not None and month > profile.archive_end:
                        continue
                    if capture_rng.random() > self.config.capture_hit_rate:
                        continue
                    capture_day = month + timedelta(days=int(capture_rng.integers(0, 25)))
                    partial = (
                        profile.anti_bot_from is not None
                        and capture_day >= profile.anti_bot_from
                        and capture_rng.random() < 0.75
                    )
                    snapshot = (
                        self._anti_bot_snapshot(profile)
                        if partial
                        else self.snapshot(profile, capture_day)
                    )
                    archive.store(profile.domain, capture_day, snapshot, partial=partial)
                    stored += 1
            span.set(snapshots=stored, excluded_sites=excluded)
        metrics = get_metrics()
        metrics.count("archive.snapshots", stored)
        metrics.count("archive.excluded_sites", excluded)
        return archive

    # -- the live web (§4.3) -----------------------------------------------------

    def live_domains(self) -> List[RankedDomain]:
        """The live crawl's domain list (top ``live_top`` ranks)."""
        return self.population.top(self.config.live_top)

    def live_snapshot(self, rank: int) -> Optional[PageSnapshot]:
        """The page served on the live-crawl date, or ``None`` if the site
        is unreachable (the paper reached 99,396 of 100K)."""
        profile = self.profile_for_rank(rank)
        rng = rng_for(self.seed, "live", rank)
        if rng.random() < 0.006:
            return None
        if profile.redirect_from is not None:
            # On the live web the browser follows the redirect and still
            # loads the page.
            profile = SiteProfile(
                domain=profile.domain,
                rank=profile.rank,
                category=profile.category,
                deployment=profile.deployment,
                benign_scripts=profile.benign_scripts,
                base_resources=profile.base_resources,
            )
        return self.snapshot(profile, self.config.live_date)
