"""Synthetic Alexa-style domain population.

Stands in for the Alexa top lists: a ranked population of plausible
domain names. Sites in the simulated top segment get full page models;
tail domains (ranks beyond the crawled segment) exist as names only, so
filter lists can target them the way real lists target obscure sites
(Table 1's ``>1M`` bucket).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .seeds import rng_for

_SYLLABLES = (
    "news media stream cast play game tube flix zone hub spot net web "
    "tech data cloud info daily post press wire feed buzz viral trend "
    "sport score match bet win shop store deal mart porta gate link "
    "file share drive box vault soft ware apps code dev forge pix photo "
    "video movi show serie tooni blog forum talk chat social friend "
    "mail search find seek index rank top best free easy fast quick "
    "smart super mega ultra prime gold star world globa euro asia"
).split()

_TLDS_WEIGHTED: Sequence[Tuple[str, float]] = (
    ("com", 0.55),
    ("net", 0.10),
    ("org", 0.08),
    ("tv", 0.05),
    ("io", 0.04),
    ("co", 0.03),
    ("info", 0.03),
    ("co.uk", 0.03),
    ("de", 0.03),
    ("fr", 0.02),
    ("ru", 0.02),
    ("com.br", 0.02),
)

#: Table 1's rank buckets.
RANK_BUCKETS: Sequence[Tuple[str, int, int]] = (
    ("1-5K", 1, 5_000),
    ("5K-10K", 5_001, 10_000),
    ("10K-100K", 10_001, 100_000),
    ("100K-1M", 100_001, 1_000_000),
    (">1M", 1_000_001, 50_000_000),
)


@dataclass(frozen=True)
class RankedDomain:
    """One domain with its Alexa-style rank."""

    domain: str
    rank: int

    @property
    def rank_bucket(self) -> str:
        """This domain's Table 1 rank bucket."""
        return bucket_for_rank(self.rank)


def bucket_for_rank(rank: int) -> str:
    """Table 1 bucket name for an Alexa-style rank."""
    for name, low, high in RANK_BUCKETS:
        if low <= rank <= high:
            return name
    return RANK_BUCKETS[-1][0]


class DomainPopulation:
    """Deterministic ranked population of synthetic domains."""

    def __init__(self, seed: int, top_size: int = 5_000) -> None:
        self.seed = seed
        self.top_size = top_size
        self._cache: Dict[int, str] = {}
        self._by_name: Dict[str, int] = {}

    def domain_at(self, rank: int) -> str:
        """The domain name holding ``rank`` (1-based)."""
        if rank < 1:
            raise ValueError(f"rank must be >= 1, got {rank}")
        if rank not in self._cache:
            name = self._mint_name(rank)
            self._cache[rank] = name
            self._by_name[name] = rank
        return self._cache[rank]

    def _mint_name(self, rank: int) -> str:
        rng = rng_for(self.seed, "alexa", rank)
        while True:
            n_parts = 2 if rng.random() < 0.8 else 3
            parts = [
                _SYLLABLES[int(rng.integers(0, len(_SYLLABLES)))]
                for _ in range(n_parts)
            ]
            tlds, weights = zip(*_TLDS_WEIGHTED)
            tld = str(rng.choice(tlds, p=weights))
            name = "".join(parts) + "." + tld
            # Collisions are possible across ranks; re-draw until unique.
            if name not in self._by_name or self._by_name[name] == rank:
                return name
            parts.append(str(int(rng.integers(2, 99))))
            name = "".join(parts) + "." + tld
            if name not in self._by_name or self._by_name[name] == rank:
                return name

    def rank_of(self, domain: str) -> Optional[int]:
        """The rank of a previously minted domain, if known."""
        return self._by_name.get(domain)

    def top(self, n: int) -> List[RankedDomain]:
        """The top ``n`` ranked domains."""
        return [RankedDomain(self.domain_at(rank), rank) for rank in range(1, n + 1)]

    def sample_in_bucket(self, bucket: str, count: int, label: str = "") -> List[RankedDomain]:
        """``count`` distinct domains with ranks in the named Table 1 bucket."""
        for name, low, high in RANK_BUCKETS:
            if name == bucket:
                break
        else:
            raise ValueError(f"unknown rank bucket {bucket!r}")
        rng = rng_for(self.seed, "alexa-bucket", bucket, label)
        span = high - low + 1
        if count > span:
            raise ValueError(f"bucket {bucket} has only {span} ranks")
        ranks = rng.choice(span, size=count, replace=False) + low
        return [RankedDomain(self.domain_at(int(rank)), int(rank)) for rank in sorted(ranks)]
