"""Generative model of anti-adblock filter-list histories.

Replaces the GitHub/Mercurial revision histories of the three lists the
paper studies. The generator is parameterised by each list's published
statistics (§3.2) — start date, initial/final rule counts, update cadence,
rule-type mix, exception ratio, Table 1 rank-bucket distribution — and is
*coupled to the synthetic world*: rules that target actual anti-adblock
deployments reference the real vendor script URLs, bait paths and notice
element IDs those sites serve, with addition delays that reproduce the
paper's promptness findings (Figures 3 and 7).

The three generated histories:

- **Anti-Adblock Killer** (AAK): per-site precision rules plus broad
  third-party vendor rules; exception:non-exception domains ≈ 1:1;
  weekly revisions then monthly after November 2015.
- **EasyList anti-adblock sections**: HTTP-heavy, exception-heavy
  (≈ 4:1), updated ~daily since 2011.
- **Adblock Warning Removal List** (AWRL): HTML-heavy, slow growth with
  the April 2016 French-section spike.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date, timedelta
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..filterlist.history import FilterListHistory, combine_histories
from ..filterlist.parser import FilterList, parse_filter_list
from .alexa import RANK_BUCKETS
from .scripts import _FILLER_RULE_PATHS, _NOTICE_IDS
from .seeds import rng_for
from .vendors import VENDORS, Vendor
from .world import SiteProfile, SyntheticWorld

# ---------------------------------------------------------------------------
# Dates the lists added their broad third-party vendor rules. Deliberately
# trail vendor adoption so the Figure 7 delay distributions come out right
# (AAK: only 23% of rules predate the site's deployment; 32% within 100
# days).
# ---------------------------------------------------------------------------
AAK_BROAD_VENDOR_RULE_DATES: Dict[str, date] = {
    "PageFair": date(2015, 5, 10),
    "BlockAdBlock": date(2015, 8, 20),
}

#: Vendors AAK covers with per-site precision rules (the §3 finding that
#: AAK "tends to contain high precision filter rules that target specific
#: websites") rather than one broad rule.
AAK_PER_SITE_VENDORS = ("Optimizely", "Histats", "Outbrain")

AAK_START = date(2014, 2, 1)
AAK_END = date(2016, 11, 15)  # the list was abandoned in November 2016
AAK_INITIAL_RULES = 353
AAK_FINAL_RULES = 1811
AAK_MONTHLY_FROM = date(2015, 11, 1)

EASYLIST_START = date(2011, 5, 1)
EASYLIST_INITIAL_RULES = 67
EASYLIST_FINAL_RULES = 1317

AWRL_START = date(2013, 12, 1)
AWRL_INITIAL_RULES = 4
AWRL_FINAL_RULES = 167
AWRL_SPIKE_DATE = date(2016, 4, 10)
AWRL_SPIKE_SIZE = 70

CE_END = date(2017, 4, 15)  # Combined EasyList is maintained past the window

#: Table 1: domains per Alexa rank bucket (paper scale, /1415 and /1394).
AAK_BUCKET_COUNTS = {"1-5K": 112, "5K-10K": 49, "10K-100K": 280, "100K-1M": 334, ">1M": 640}
CE_BUCKET_COUNTS = {"1-5K": 124, "5K-10K": 69, "10K-100K": 312, "100K-1M": 359, ">1M": 530}
OVERLAP_DOMAINS = 282  # paper: domains common to both lists


@dataclass
class DatedRule:
    """One rule line plus the dates it entered (and possibly left) the list."""

    text: str
    added_on: date
    section: str = ""
    removed_on: Optional[date] = None


def _scale(count: int, factor: float) -> int:
    return max(1, int(round(count * factor)))


class FilterListGenerator:
    """Builds the three filter-list histories for a synthetic world."""

    def __init__(self, world: SyntheticWorld, seed: Optional[int] = None) -> None:
        self.world = world
        self.seed = world.seed if seed is None else seed
        #: Scale factor: the world's top segment relative to the paper's 5K.
        self.scale = world.config.n_sites / 5000.0
        self._rng = rng_for(self.seed, "listgen")
        self._adopters = [site for site in world.sites if site.uses_anti_adblock]
        self._prepare_shared_domains()

    # -- shared domain machinery ------------------------------------------------

    def _prepare_shared_domains(self) -> None:
        """Sample each list's targeted-domain inventory and their overlap."""
        factor = max(self.scale, 0.02)
        self._aak_buckets = {
            bucket: _scale(count, factor) for bucket, count in AAK_BUCKET_COUNTS.items()
        }
        self._ce_buckets = {
            bucket: _scale(count, factor) for bucket, count in CE_BUCKET_COUNTS.items()
        }
        self._overlap_target = _scale(OVERLAP_DOMAINS, factor)

        population = self.world.population
        self._aak_domains: List[str] = []
        self._ce_domains: List[str] = []
        overlap_left = self._overlap_target
        total_aak = sum(self._aak_buckets.values())
        self._overlap: List[str] = []
        for bucket_name, _, _ in RANK_BUCKETS:
            aak_n = self._aak_buckets.get(bucket_name, 0)
            ce_n = self._ce_buckets.get(bucket_name, 0)
            # Overlap allocated proportionally to AAK bucket mass.
            bucket_overlap = min(
                aak_n, ce_n, int(round(self._overlap_target * aak_n / max(total_aak, 1)))
            )
            shared = population.sample_in_bucket(
                bucket_name, bucket_overlap, label="overlap"
            )
            aak_only = population.sample_in_bucket(
                bucket_name, aak_n - bucket_overlap, label="aak"
            )
            ce_only = population.sample_in_bucket(
                bucket_name, ce_n - bucket_overlap, label="ce"
            )
            shared_names = [d.domain for d in shared]
            self._overlap.extend(shared_names)
            self._aak_domains.extend(shared_names + [d.domain for d in aak_only])
            self._ce_domains.extend(shared_names + [d.domain for d in ce_only])
            overlap_left -= bucket_overlap

    @property
    def overlap_domains(self) -> List[str]:
        """Domains targeted by both generated lists."""
        return list(self._overlap)

    # -- rule text helpers --------------------------------------------------------

    def _http_anchor_rule(self, domain: str, rng: np.random.Generator, exception: bool) -> str:
        path = str(rng.choice(_FILLER_RULE_PATHS))
        prefix = "@@" if exception else ""
        return f"{prefix}||{domain}{path}"

    def _http_anchor_tag_rule(
        self, domain: str, rng: np.random.Generator, exception: bool
    ) -> str:
        vendor = VENDORS[int(rng.integers(0, len(VENDORS)))]
        prefix = "@@" if exception else ""
        return f"{prefix}||{vendor.domain}{vendor.script_path}$domain={domain}"

    def _http_tag_rule(self, domain: str, rng: np.random.Generator, exception: bool) -> str:
        path = str(rng.choice(_FILLER_RULE_PATHS)).lstrip("/")
        prefix = "@@" if exception else ""
        return f"{prefix}/{path}$domain={domain}"

    def _http_generic_rule(self, rng: np.random.Generator, exception: bool) -> str:
        token = str(
            rng.choice(
                ["adblock-detect", "adblock_notice", "abdetect", "fuckadblock", "adb-check", "adblock-wall"]
            )
        )
        prefix = "@@" if exception else ""
        return f"{prefix}/{token}."

    def _html_domain_rule(self, domain: str, rng: np.random.Generator, exception: bool) -> str:
        notice = str(rng.choice(_NOTICE_IDS))
        separator = "#@#" if exception else "##"
        if rng.random() < 0.7:
            return f"{domain}{separator}#{notice}"
        return f"{domain}{separator}.{notice}"

    def _html_generic_rule(self, rng: np.random.Generator) -> str:
        notice = str(rng.choice(_NOTICE_IDS))
        return f"###{notice}-{int(rng.integers(1, 99))}"

    # -- growth-curve date assignment ---------------------------------------------

    @staticmethod
    def _dates_for_growth(
        rng: np.random.Generator,
        count: int,
        waypoints: Sequence[Tuple[date, float]],
    ) -> List[date]:
        """``count`` addition dates following a piecewise-linear CDF."""
        out: List[date] = []
        for _ in range(count):
            u = rng.random()
            previous_date, previous_cdf = waypoints[0][0], 0.0
            chosen = waypoints[-1][0]
            for milestone, cumulative in waypoints:
                if u <= cumulative:
                    span = (milestone - previous_date).days
                    fraction = (u - previous_cdf) / max(cumulative - previous_cdf, 1e-9)
                    chosen = previous_date + timedelta(days=int(span * fraction))
                    break
                previous_date, previous_cdf = milestone, cumulative
            out.append(chosen)
        return sorted(out)

    # -- AAK ------------------------------------------------------------------------

    def generate_aak(self) -> FilterListHistory:
        """The Anti-Adblock Killer List history."""
        rng = rng_for(self.seed, "listgen", "aak")
        rules: List[DatedRule] = []

        # 1. Broad third-party vendor rules for the two vendors AAK blocks
        #    wholesale. Sites adopting these vendors *after* the rule date
        #    are Figure 7's "rule present before addition" mass (~23%).
        for name, added in AAK_BROAD_VENDOR_RULE_DATES.items():
            vendor = next(v for v in VENDORS if v.name == name)
            rules.append(
                DatedRule(f"||{vendor.domain}^$third-party", max(added, AAK_START))
            )

        # 2. Per-site precision rules (AAK's signature style, §3.3): for
        #    adopters of the remaining vendors, an anchor+tag rule pinning
        #    the vendor script to that site, added with the crowdsourcing
        #    lag that produces Figure 7's slow AAK curve.
        for site in self._adopters:
            deployment = site.deployment
            if not deployment.is_third_party:
                continue
            if deployment.vendor.name not in AAK_PER_SITE_VENDORS:
                continue
            if rng.random() > 0.88:
                continue  # a slice of deployments never gets reported
            delay = int(rng.normal(320, 170))
            added = max(
                deployment.deployed_on + timedelta(days=max(delay, 14)), AAK_START
            )
            if added > AAK_END:
                continue
            vendor = deployment.vendor
            rules.append(
                DatedRule(
                    f"||{vendor.domain}{vendor.script_path}$domain={site.domain}",
                    added,
                )
            )

        # 3. Site-specific rules for a share of the world's self-hosted
        #    (first-party) adopters: block their detector script and bait.
        for site in self._adopters:
            deployment = site.deployment
            if deployment.is_third_party:
                continue
            if rng.random() > 0.5:
                continue
            delay = int(rng.normal(170, 120))
            added = deployment.deployed_on + timedelta(days=max(delay, 7))
            added = max(added, AAK_START)
            if added > AAK_END:
                continue
            rules.append(DatedRule(f"||{site.domain}/js/detector.js", added))
            if deployment.notice_id and rng.random() < 0.6:
                rules.append(
                    DatedRule(f"{site.domain}###{deployment.notice_id}", added)
                )

        # 3. Filler rules over the sampled domain inventory, matching the
        #    §3.2 type mix (58.5% HTTP / 41.5% HTML) and the ~1:1
        #    exception:non-exception domain ratio.
        final_total = _scale(AAK_FINAL_RULES, max(self.scale, 0.02))
        remaining = max(final_total - len(rules), 0)
        waypoints = (
            (AAK_START, _scale(AAK_INITIAL_RULES, max(self.scale, 0.02)) / max(final_total, 1)),
            (AAK_MONTHLY_FROM, 0.70),
            (AAK_END, 1.0),
        )
        dates = self._dates_for_growth(rng, remaining, waypoints)
        domains = self._aak_domains
        type_weights = {
            "anchor": 0.310,
            "anchor_tag": 0.220,
            "tag": 0.021,
            "generic_http": 0.034,
            "html_domain": 0.400,
            "html_generic": 0.015,
        }
        rules.extend(
            self._filler_rules(rng, dates, domains, type_weights, exception_fraction=0.55)
        )
        return self._emit_history("Anti-Adblock Killer", rules, self._aak_revision_dates())

    def _aak_revision_dates(self) -> List[date]:
        dates: List[date] = []
        cursor = AAK_START
        while cursor < AAK_MONTHLY_FROM:
            dates.append(cursor)
            cursor += timedelta(days=7)
        cursor = AAK_MONTHLY_FROM
        while cursor <= AAK_END:
            dates.append(cursor)
            month = cursor.month + 1
            year = cursor.year + (1 if month > 12 else 0)
            cursor = date(year, 1 if month > 12 else month, cursor.day if cursor.day <= 28 else 28)
        return dates

    # -- EasyList anti-adblock sections ---------------------------------------------

    def generate_full_easylist(self) -> FilterListHistory:
        """The whole EasyList: general ad-blocking sections *plus* the
        anti-adblock sections. The paper's pipeline (and ours, via
        :meth:`generate_easylist_antiadblock`) extracts only the
        anti-adblock sections; the general sections exist so that the
        extraction step is exercised against a realistic document and so
        the bait-exception rules have the base rules they override."""
        history = self._easylist_rules()
        return history

    def generate_easylist_antiadblock(self) -> FilterListHistory:
        """The anti-adblock sections of EasyList (HTTP-heavy, exception-heavy).

        Produced exactly the way the paper produces its input: generate the
        full document per revision and keep only sections whose name
        mentions "adblock".
        """
        return extract_sections(
            self.generate_full_easylist(),
            "adblock",
            name="EasyList (anti-adblock sections)",
        )

    def _easylist_rules(self) -> FilterListHistory:
        rng = rng_for(self.seed, "listgen", "easylist")
        rules: List[DatedRule] = []
        section = "Anti-Adblock"

        # General ad-blocking rules (EasyList's main business since 2005,
        # modelled as present from day one of our window). These live in a
        # non-anti-adblock section and are stripped by the extraction.
        for raw in (
            "||doubleclick.net^$third-party",
            "||googlesyndication.com^$third-party",
            "||adserver.example^",
            "/ads.js?",
            "/advertising.js|",
            "/show_ads.",
            "/adframe.",
            "##.sponsored-links",
            "###ad-banner-top",
        ):
            rules.append(DatedRule(raw, EASYLIST_START, "General ad servers"))

        # Generic first-party detector blocks — these are the rules that can
        # predate a site's deployment (part of CE's Fig 7 "before" mass).
        for token, added in (
            ("adblock-detect", date(2011, 9, 1)),
            ("adblock-notify", date(2014, 4, 1)),
            ("abdetect", date(2013, 3, 1)),
        ):
            rules.append(DatedRule(f"/{token}.", added, section))

        # Generic bait-path exception rules: EasyList whitelists common bait
        # URLs so its own ad-blocking rules stop triggering the detector
        # (the numerama.com pattern, paper Codes 7–8). Because they predate
        # most deployments, every adopter using one of these bait paths is
        # covered *before* its anti-adblocker appeared (Fig 7's ~42%).
        for path, added in (
            ("/ads.js", date(2012, 3, 1)),
            ("/advertising.js", date(2012, 11, 1)),
        ):
            rules.append(DatedRule(f"@@{path}|$script", added, section))

        # Site-specific bait exceptions for self-hosted adopters whose bait
        # path is not generically covered — added promptly after user
        # reports of breakage (CE's fast Fig 3/Fig 7 response).
        generic_baits = {"/ads.js", "/advertising.js"}
        for site in self._adopters:
            deployment = site.deployment
            if deployment.bait_path in generic_baits:
                continue
            if not deployment.family in ("http_bait", "pagefair_like", "community_iab", "can_run_ads"):
                continue
            coverage = 0.75 if not deployment.is_third_party else 0.25
            if rng.random() > coverage:
                continue
            delay = int(abs(rng.normal(30, 35)))
            added = max(
                deployment.deployed_on + timedelta(days=max(delay, 2)), EASYLIST_START
            )
            if added > CE_END:
                continue
            rules.append(
                DatedRule(f"@@||{site.domain}{deployment.bait_path}", added, section)
            )

        # Blocking rules for the small set of sites EasyList detects —
        # vendor script paths pinned to the specific site (paper Code 10).
        detected = self._ce_detected_sites(rng)
        for site in detected:
            deployment = site.deployment
            if rng.random() < 0.42 and not deployment.is_third_party:
                # Detection via the generic rules above; the site's bait
                # path matches one of the generic tokens.
                continue
            delay = int(abs(rng.normal(35, 45)))
            added = deployment.deployed_on + timedelta(days=max(delay, 3))
            added = max(added, EASYLIST_START)
            if deployment.is_third_party:
                vendor = deployment.vendor
                rules.append(
                    DatedRule(
                        f"||{vendor.domain}{vendor.script_path}$domain={site.domain}",
                        added,
                        section,
                    )
                )
            else:
                rules.append(
                    DatedRule(f"||{site.domain}/js/detector.js", added, section)
                )

        # Exception rules that whitelist bait URLs on specific sites (the
        # numerama.com pattern) — the bulk of the list, 4:1 exceptions.
        final_total = _scale(EASYLIST_FINAL_RULES, max(self.scale, 0.02))
        remaining = max(final_total - len(rules), 0)
        waypoints = (
            (EASYLIST_START, _scale(EASYLIST_INITIAL_RULES, max(self.scale, 0.02)) / max(final_total, 1)),
            (date(2014, 1, 1), 0.45),
            (CE_END, 1.0),
        )
        dates = self._dates_for_growth(rng, remaining, waypoints)
        type_weights = {
            "anchor": 0.646,
            "anchor_tag": 0.246,
            "tag": 0.036,
            "generic_http": 0.035,
            "html_domain": 0.037,
            "html_generic": 0.0,
        }
        rules.extend(
            self._filler_rules(
                rng,
                dates,
                self._ce_domains,
                type_weights,
                exception_fraction=0.87,
                section=section,
            )
        )
        return self._emit_history(
            "EasyList", rules, self._monthly_dates(EASYLIST_START, CE_END)
        )

    def _ce_detected_sites(self, rng: np.random.Generator) -> List[SiteProfile]:
        """The adopters Combined EasyList actually detects (few, per §4)."""
        # The paper finds 16 of 5,000 crawled sites trigger CE's HTTP rules.
        target = max(int(round(16 * self.scale)), 2)
        candidates = [s for s in self._adopters]
        if not candidates:
            return []
        count = min(target, len(candidates))
        indices = rng.choice(len(candidates), size=count, replace=False)
        return [candidates[int(i)] for i in indices]

    # -- AWRL --------------------------------------------------------------------------

    def generate_awrl(self) -> FilterListHistory:
        """The Adblock Warning Removal List (HTML-heavy)."""
        rng = rng_for(self.seed, "listgen", "awrl")
        rules: List[DatedRule] = []

        # HTML rules that hide the *static* notices of a few world adopters
        # — the source of the paper's tiny Fig 6(b) counts.
        static_notice_sites = [
            site
            for site in self._adopters
            if site.deployment.notice_id is not None
        ]
        # Only a thin slice of static notices ever make it into AWRL —
        # most real anti-adblock notices are inserted dynamically after
        # detection, which a static HTML snapshot never shows (the paper's
        # Figure 6(b) counts stay in the low single digits).
        for site in static_notice_sites:
            site_rng = rng_for(self.seed, "listgen", "awrl-notice", site.domain)
            if site_rng.random() > 0.06:
                continue
            delay = int(abs(site_rng.normal(60, 50)))
            added = max(
                site.deployment.deployed_on + timedelta(days=max(delay, 5)), AWRL_START
            )
            if added > CE_END:
                continue
            rules.append(
                DatedRule(f"{site.domain}###{site.deployment.notice_id}", added)
            )

        final_total = _scale(AWRL_FINAL_RULES, max(self.scale, 0.05))
        spike_size = _scale(AWRL_SPIKE_SIZE, max(self.scale, 0.05))
        remaining = max(final_total - spike_size - len(rules), 0)
        waypoints = (
            (AWRL_START, 0.04),
            (AWRL_SPIKE_DATE - timedelta(days=1), 0.96),
            (CE_END, 1.0),
        )
        dates = self._dates_for_growth(rng, remaining, waypoints)
        type_weights = {
            "anchor": 0.245,
            "anchor_tag": 0.012,
            "tag": 0.006,
            "generic_http": 0.060,
            "html_domain": 0.497,
            "html_generic": 0.180,
        }
        rules.extend(
            self._filler_rules(
                rng, dates, self._ce_domains, type_weights, exception_fraction=0.30
            )
        )
        # The April 2016 French-language section lands in one revision.
        french_rng = rng_for(self.seed, "listgen", "awrl-french")
        for _ in range(spike_size):
            domain = self._ce_domains[int(french_rng.integers(0, len(self._ce_domains)))]
            rules.append(
                DatedRule(
                    self._html_domain_rule(domain, french_rng, exception=False),
                    AWRL_SPIKE_DATE,
                    section="French",
                )
            )
        return self._emit_history(
            "Adblock Warning Removal List", rules, self._monthly_dates(AWRL_START, CE_END)
        )

    def generate_combined_easylist(self) -> FilterListHistory:
        """The paper's *Combined EasyList* = EasyList anti-adblock + AWRL."""
        return combine_histories(
            "Combined EasyList",
            self.generate_easylist_antiadblock(),
            self.generate_awrl(),
        )

    # -- shared emit machinery -----------------------------------------------------

    def _filler_rules(
        self,
        rng: np.random.Generator,
        dates: List[date],
        domains: List[str],
        type_weights: Dict[str, float],
        exception_fraction: float,
        section: str = "",
    ) -> List[DatedRule]:
        """Generate dated rules over a domain inventory with a given mix."""
        types = list(type_weights)
        weights = np.array([type_weights[t] for t in types], dtype=float)
        weights = weights / weights.sum()
        out: List[DatedRule] = []
        # Decouple the two lists' domain orderings: each list discovers the
        # shared inventory in its own (crowdsourced) order, which is what
        # makes Figure 3's first-listed comparison meaningful.
        domains = list(domains)
        rng.shuffle(domains)
        domain_cursor = 0
        for added in dates:
            rule_type = types[int(rng.choice(len(types), p=weights))]
            exception = rng.random() < exception_fraction
            if rule_type in ("generic_http", "html_generic"):
                text = (
                    self._http_generic_rule(rng, exception)
                    if rule_type == "generic_http"
                    else self._html_generic_rule(rng)
                )
            else:
                # Cycle the inventory so every sampled domain appears;
                # extra rules reuse domains (multiple rules per domain).
                if domain_cursor < len(domains):
                    domain = domains[domain_cursor]
                    domain_cursor += 1
                else:
                    domain = domains[int(rng.integers(0, len(domains)))]
                maker = {
                    "anchor": self._http_anchor_rule,
                    "anchor_tag": self._http_anchor_tag_rule,
                    "tag": self._http_tag_rule,
                    "html_domain": self._html_domain_rule,
                }[rule_type]
                text = maker(domain, rng, exception)
            removed_on = None
            if rng.random() < 0.04:
                removal_lag = int(rng.integers(120, 700))
                removed_on = added + timedelta(days=removal_lag)
            out.append(DatedRule(text, added, section, removed_on=removed_on))
        return out

    @staticmethod
    def _monthly_dates(start: date, end: date) -> List[date]:
        from ..wayback.crawler import month_range

        return month_range(start, end)

    @staticmethod
    def _emit_history(
        name: str, rules: List[DatedRule], revision_dates: List[date]
    ) -> FilterListHistory:
        """Materialise dated rules into a revision history."""
        rules = sorted(rules, key=lambda r: r.added_on)
        history = FilterListHistory(name)
        seen_texts = set()
        unique_rules: List[DatedRule] = []
        for rule in rules:
            if rule.text not in seen_texts:
                seen_texts.add(rule.text)
                unique_rules.append(rule)
        index = 0
        #: section -> rules, insertion-ordered (plain rules first).
        active: "dict[str, List[DatedRule]]" = {"": []}
        for revision_date in revision_dates:
            while index < len(unique_rules) and unique_rules[index].added_on <= revision_date:
                rule = unique_rules[index]
                active.setdefault(rule.section, []).append(rule)
                index += 1
            # Lists also prune rules (dead sites, false positives).
            for section_rules in active.values():
                section_rules[:] = [
                    rule
                    for rule in section_rules
                    if rule.removed_on is None or rule.removed_on > revision_date
                ]
            if not any(active.values()):
                continue
            lines = ["[Adblock Plus 2.0]", f"! Title: {name}"]
            for section, section_rules in active.items():
                if not section_rules:
                    continue
                if section:
                    lines.append(f"!-------------- {section} --------------!")
                lines.extend(rule.text for rule in section_rules)
            text = "\n".join(lines)
            history.add_revision(revision_date, parse_filter_list(text, name=name))
        return history


def extract_sections(
    history: FilterListHistory, *section_names: str, name: str = ""
) -> FilterListHistory:
    """Per-revision section extraction (paper §3: "our analysis here
    focuses only on the anti-adblock sections of EasyList")."""
    extracted = FilterListHistory(name or history.name)
    for revision in history:
        subset = revision.filter_list.section_rules(*section_names)
        subset.name = name or history.name
        if subset.rules:
            extracted.add_revision(revision.date, subset)
    return extracted


def generate_all_lists(world: SyntheticWorld) -> Dict[str, FilterListHistory]:
    """AAK, EasyList anti-adblock, AWRL, and the Combined EasyList."""
    from ..obs.metrics import get_metrics
    from ..obs.trace import span as trace_span

    generator = FilterListGenerator(world)
    histories: Dict[str, FilterListHistory] = {}
    with trace_span("listgen"):
        with trace_span("list:easylist"):
            easylist = generator.generate_easylist_antiadblock()
        with trace_span("list:awrl"):
            awrl = generator.generate_awrl()
        with trace_span("list:aak"):
            histories["aak"] = generator.generate_aak()
        histories["easylist"] = easylist
        histories["awrl"] = awrl
        histories["combined_easylist"] = combine_histories(
            "Combined EasyList", easylist, awrl
        )
    metrics = get_metrics()
    for key, history in histories.items():
        metrics.count(f"listgen.revisions.{key}", len(history.revisions))
    return histories


def apply_list_patch(
    histories: Dict[str, FilterListHistory],
    patch_path,
    list_key: str = "aak",
) -> int:
    """Append a patch file's rules to one history as a delta revision.

    This is the "one-line list change" entry point for the artifact
    graph: the patch file's non-empty, non-comment lines land as one
    extra delta-backed revision on the Anti-Adblock Killer history,
    dated with the latest revision, so the §4 replay's final months,
    the live crawl, and the §5 corpus all see it. Returns the number of
    rule lines applied; an empty or comment-only patch is a no-op.
    """
    from pathlib import Path

    from ..filterlist.history import RevisionDelta
    from ..obs.metrics import get_metrics

    lines = [
        line.strip()
        for line in Path(patch_path).read_text(encoding="utf-8").splitlines()
        if line.strip() and not line.strip().startswith("!")
    ]
    if not lines:
        return 0
    history = histories[list_key]
    latest = history.latest()
    if latest is None:
        raise ValueError(f"cannot patch empty history {list_key!r}")
    history.add_revision(latest.date, RevisionDelta(added=lines, removed=[]))
    get_metrics().count("listgen.patch_lines", len(lines))
    return len(lines)
