"""JavaScript generators: anti-adblock and benign script corpora.

Produces syntactically real ES5 that our parser (:mod:`repro.jsast`)
consumes, with per-script polymorphism (randomised identifiers, literals,
bait names, thresholds) so the ML corpus is varied the way real deployments
are. Anti-adblock families mirror the paper's observations:

- **HTTP bait** (businessinsider.com, Code 4): request a bait ad URL,
  flip a cookie/flag in ``onerror``/``onload``.
- **HTML bait** (BlockAdBlock, Code 5): insert a decoy ``div`` with an
  ad-like class and test ``offsetHeight``/``offsetParent``/… after load.
- **canRunAds check** (numerama.com, Code 8): a bait script sets a global;
  its absence means the request was blocked.
- Vendor wrappers (PageFair-like reporting, Histats-like analytics with a
  detection module, Optimizely-like A/B harness) and ``eval``-packed
  variants.

Benign families (analytics, sliders, consent banners, social widgets, …)
intentionally share *some* vocabulary with anti-adblockers (``offsetWidth``
for layout, overlay ``div`` creation, script-tag injection) — that overlap
is what keeps the classifier's false-positive rate non-zero, as in the
paper's 3–9% FP band.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

import numpy as np

_VAR_POOL = (
    "a b c d e f g h i j k m n p q r s t u v w x y z el node item obj opt "
    "cfg ctx tmp val ref box cnt idx flag stat chk res req resp fn cb"
).split()

_BAIT_CLASSES = (
    "pub_300x250 pub_728x90 text-ad textAd text_ad text_ads banner_ad "
    "ad-banner adbanner ad_box adsbox ad-placement ad-zone sponsor-box"
).split()

_BAIT_URLS = (
    "/ads.js /advertising.js /advert.js /show_ads.js /adsbygoogle.js "
    "/ad/banner.js /js/ads-loader.js /adframe.js /squelch-ads.js"
).split()

_COOKIE_NAMES = (
    "__adblocker abp_detected _abd adblock_state blocker_status "
    "adblockDetected __adb ab_status"
).split()

_NOTICE_IDS = (
    "adblock-notice adblock_msg ab-overlay adb-warning adblock-modal "
    "noticeMain blockerNotice adbNotice pleaseDisable"
).split()

#: Paths filter-list *filler* rules reference. Deliberately disjoint from
#: the bait paths sites actually serve (``_BAIT_URLS``): a rule for a tail
#: domain describes an anti-adblock asset we never crawl, so filler rules
#: never spuriously trigger on the measured top segment.
_FILLER_RULE_PATHS = (
    "/anti-adblock/nag.js /abd/notice.js /js/adblock-wall.js "
    "/wp-content/plugins/adblock-notify/ab.js /static/abp-message.js "
    "/assets/blocker-overlay.js /adblock/killer.js"
).split()


def _pick(rng: np.random.Generator, pool: Sequence[str]) -> str:
    return str(pool[int(rng.integers(0, len(pool)))])


def _ident(rng: np.random.Generator, prefix: str = "") -> str:
    base = _pick(rng, _VAR_POOL)
    suffix = int(rng.integers(0, 1000))
    name = f"{prefix}{base}{suffix}" if rng.random() < 0.6 else f"{prefix}{base}"
    return name


def _delay(rng: np.random.Generator) -> int:
    return int(rng.choice([50, 100, 150, 200, 250, 300, 500, 1000]))


# ---------------------------------------------------------------------------
# Anti-adblock generators
# ---------------------------------------------------------------------------


def http_bait_script(rng: np.random.Generator, site_domain: str = "example.com") -> str:
    """Businessinsider-style HTTP bait (paper Code 4)."""
    fn = _ident(rng, "set")
    cookie = _pick(rng, _COOKIE_NAMES)
    bait = _pick(rng, _BAIT_URLS)
    script_var = _ident(rng)
    days = int(rng.integers(7, 60))
    return f"""
var {script_var} = document.createElement("script");
{script_var}.setAttribute("async", true);
{script_var}.setAttribute("src", "//{site_domain}{bait}");
{script_var}.setAttribute("onerror", "{fn}(true);");
{script_var}.setAttribute("onload", "{fn}(false);");
document.getElementsByTagName("head")[0].appendChild({script_var});
var {fn} = function(adblocker) {{
    var d = new Date();
    d.setTime(d.getTime() + 60 * 60 * 24 * {days} * 1000);
    document.cookie = "{cookie}=" + (adblocker ? "true" : "false") +
        "; expires=" + d.toUTCString() + "; path=/";
}};
"""


def html_bait_script(rng: np.random.Generator, constructor: str = "BlockAdBlock") -> str:
    """BlockAdBlock-style HTML bait (paper Code 5)."""
    bait_class = _pick(rng, _BAIT_CLASSES)
    bait_var = _ident(rng, "bait")
    loop_delay = _delay(rng)
    max_loops = int(rng.integers(3, 10))
    checks = [
        f"this._var.{bait_var}.offsetParent === null",
        f"this._var.{bait_var}.offsetHeight == 0",
        f"this._var.{bait_var}.offsetLeft == 0",
        f"this._var.{bait_var}.offsetTop == 0",
        f"this._var.{bait_var}.offsetWidth == 0",
        f"this._var.{bait_var}.clientHeight == 0",
        f"this._var.{bait_var}.clientWidth == 0",
    ]
    n_checks = int(rng.integers(4, len(checks) + 1))
    selected = checks[:n_checks]
    condition = "\n        || ".join(
        ["window.document.body.getAttribute('abp') !== null"] + selected
    )
    return f"""
function {constructor}(options) {{
    this._options = {{
        checkOnLoad: true,
        resetOnEnd: false,
        loopCheckTime: {loop_delay},
        loopMaxNumber: {max_loops},
        baitClass: '{bait_class}',
        baitStyle: 'width: 1px !important; height: 1px !important; ' +
            'position: absolute !important; left: -10000px !important; top: -1000px !important;',
        debug: false
    }};
    this._var = {{ version: '3.2.0', {bait_var}: null, checking: false, loop: null, loopNumber: 0, event: {{ detected: [], notDetected: [] }} }};
    for (var option in options) {{
        this._options[option] = options[option];
    }}
}}
{constructor}.prototype._creatBait = function() {{
    var {bait_var} = document.createElement('div');
    {bait_var}.setAttribute('class', this._options.baitClass);
    {bait_var}.setAttribute('style', this._options.baitStyle);
    this._var.{bait_var} = window.document.body.appendChild({bait_var});
    this._var.{bait_var}.offsetParent;
    this._var.{bait_var}.offsetHeight;
    this._var.{bait_var}.offsetLeft;
    this._var.{bait_var}.offsetTop;
    this._var.{bait_var}.offsetWidth;
    this._var.{bait_var}.clientHeight;
    this._var.{bait_var}.clientWidth;
    if (this._options.debug === true) {{
        this._log('_creatBait', 'Bait has been created');
    }}
}};
{constructor}.prototype._checkBait = function(loop) {{
    var detected = false;
    if (this._var.{bait_var} === null) {{
        this._creatBait();
    }}
    if ({condition}) {{
        detected = true;
    }}
    if (detected === true) {{
        this._stopLoop();
        this.emitEvent(true);
    }} else if (this._var.loop === null && loop === true) {{
        this.emitEvent(false);
    }}
}};
{constructor}.prototype.emitEvent = function(detected) {{
    var fns = detected ? this._var.event.detected : this._var.event.notDetected;
    for (var i = 0; i < fns.length; i++) {{
        fns[i]();
    }}
}};
{constructor}.prototype._stopLoop = function() {{
    clearInterval(this._var.loop);
    this._var.loop = null;
    this._var.loopNumber = 0;
}};
"""


def can_run_ads_script(rng: np.random.Generator) -> str:
    """numerama-style canRunAds check (paper Code 8)."""
    flag = str(rng.choice(["canRunAds", "adsAllowed", "adsOk", "canShowAds"]))
    status_var = _ident(rng, "adblock")
    notice_id = _pick(rng, _NOTICE_IDS)
    return f"""
var {status_var} = 'inactive';
if (window.{flag} === undefined) {{
    {status_var} = 'active';
    var warn = document.getElementById('{notice_id}');
    if (warn !== null) {{
        warn.style.display = 'block';
    }}
    document.cookie = "{_pick(rng, _COOKIE_NAMES)}=true; path=/";
}}
"""


def pagefair_like_script(rng: np.random.Generator, vendor_domain: str = "pagefair.com") -> str:
    """Vendor measurement script: HTTP bait plus beacon reporting."""
    ns = _ident(rng, "pf")
    bait = _pick(rng, _BAIT_URLS)
    beacon = f"//asset.{vendor_domain}/measure.gif"
    return f"""
(function(window, document) {{
    var {ns} = {{ detected: false, done: false }};
    function probe(cb) {{
        var s = document.createElement('script');
        s.async = true;
        s.src = '{bait}';
        s.onerror = function() {{ cb(true); }};
        s.onload = function() {{ cb(false); }};
        document.getElementsByTagName('head')[0].appendChild(s);
    }}
    function report(blocked) {{
        var img = new Image();
        img.src = '{beacon}?ab=' + (blocked ? '1' : '0') + '&d=' + encodeURIComponent(document.domain);
    }}
    probe(function(blocked) {{
        {ns}.detected = blocked;
        {ns}.done = true;
        report(blocked);
        if (blocked) {{
            window.dispatchEvent && report(blocked);
        }}
    }});
    window._pfObject = {ns};
}})(window, document);
"""


def analytics_detect_script(rng: np.random.Generator, vendor_domain: str = "histats.com") -> str:
    """Histats-like analytics with an embedded adblock-detection module."""
    counter = int(rng.integers(100000, 9999999))
    bait_class = _pick(rng, _BAIT_CLASSES)
    return f"""
var _Hasync = _Hasync || [];
_Hasync.push(['Histats.start', '1,{counter},4,0,0,0,00010000']);
_Hasync.push(['Histats.fasi', '1']);
_Hasync.push(['Histats.track_hits', '']);
(function() {{
    var hs = document.createElement('script');
    hs.type = 'text/javascript';
    hs.async = true;
    hs.src = '//s10.{vendor_domain}/js15_as.js';
    (document.getElementsByTagName('head')[0] || document.getElementsByTagName('body')[0]).appendChild(hs);
}})();
(function() {{
    var probe = document.createElement('div');
    probe.className = '{bait_class}';
    probe.style.position = 'absolute';
    probe.style.left = '-9999px';
    document.body.appendChild(probe);
    setTimeout(function() {{
        var blocked = probe.offsetHeight === 0 || probe.clientHeight === 0;
        if (blocked) {{
            _Hasync.push(['Histats.adblock', '1']);
        }}
        document.body.removeChild(probe);
    }}, {_delay(rng)});
}})();
"""


def ab_test_detect_script(rng: np.random.Generator, vendor_domain: str = "optimizely.com") -> str:
    """Optimizely-like experiment harness with an adblock audience check."""
    project = int(rng.integers(10**8, 10**9))
    return f"""
window.optimizely = window.optimizely || [];
(function() {{
    var audiences = {{}};
    function detectAdblock(done) {{
        var decoy = document.createElement('div');
        decoy.innerHTML = '&nbsp;';
        decoy.className = '{_pick(rng, _BAIT_CLASSES)}';
        document.body.appendChild(decoy);
        window.setTimeout(function() {{
            var blocked = decoy.offsetHeight === 0
                || decoy.offsetParent === null
                || decoy.clientWidth === 0;
            document.body.removeChild(decoy);
            done(blocked);
        }}, {_delay(rng)});
    }}
    detectAdblock(function(blocked) {{
        audiences.adblock = blocked;
        window.optimizely.push(['setAudience', 'adblock_user', blocked]);
        var px = new Image();
        px.src = '//log.{vendor_domain}/event?pid={project}&ab=' + (blocked ? 1 : 0);
    }});
}})();
"""


def community_iab_script(rng: np.random.Generator) -> str:
    """IAB-style self-hosted detection snippet with a fake-ad file probe."""
    fake = str(rng.choice(["fakeads.js", "ads-check.js", "adsense-probe.js"]))
    callback = _ident(rng, "on")
    notice_id = _pick(rng, _NOTICE_IDS)
    return f"""
function {callback}(usingAdblock) {{
    if (usingAdblock === true) {{
        var overlay = document.createElement('div');
        overlay.id = '{notice_id}';
        overlay.innerHTML = 'We noticed you are using an ad blocker. Please disable it to support us.';
        overlay.style.position = 'fixed';
        overlay.style.top = '0';
        overlay.style.width = '100%';
        overlay.style.zIndex = '100000';
        document.body.appendChild(overlay);
    }}
}}
(function() {{
    var detected = false;
    var probe = document.createElement('script');
    probe.onload = function() {{
        if (typeof window.adsShown === 'undefined') {{
            detected = true;
        }}
        {callback}(detected);
    }};
    probe.onerror = function() {{
        detected = true;
        {callback}(detected);
    }};
    probe.src = '/{fake}';
    document.getElementsByTagName('head')[0].appendChild(probe);
}})();
"""


def html_bait_v2_script(rng: np.random.Generator) -> str:
    """Second-generation HTML bait (late 2016+): computed-style and
    bounding-rect checks plus a MutationObserver on the bait, instead of
    the classic ``offset*`` reads. Detectors trained on v1 deployments
    see little shared vocabulary — the source of the paper's live-test
    TP drop (92.5% vs ≥99% in-distribution)."""
    bait_class = _pick(rng, _BAIT_CLASSES)
    flag = _ident(rng, "blocked")
    return f"""
(function() {{
    var {flag} = false;
    var probe = document.createElement('ins');
    probe.className = '{bait_class}';
    probe.innerHTML = '&nbsp;';
    document.body.appendChild(probe);
    var observer = new MutationObserver(function(mutations) {{
        for (var i = 0; i < mutations.length; i++) {{
            if (mutations[i].removedNodes.length > 0) {{
                {flag} = true;
            }}
        }}
    }});
    observer.observe(document.body, {{ childList: true, subtree: false }});
    setTimeout(function() {{
        var style = window.getComputedStyle(probe);
        var rect = probe.getBoundingClientRect();
        if (style.display === 'none'
            || style.visibility === 'hidden'
            || rect.height === 0
            || rect.width === 0) {{
            {flag} = true;
        }}
        observer.disconnect();
        if ({flag}) {{
            document.documentElement.setAttribute('data-adblock', '1');
            var px = new Image();
            px.src = '/pixel?adblock=1&t=' + Date.now();
        }}
        if (probe.parentNode !== null) {{
            probe.parentNode.removeChild(probe);
        }}
    }}, {_delay(rng)});
}})();
"""


def http_bait_v2_script(rng: np.random.Generator, site_domain: str = "example.com") -> str:
    """Second-generation HTTP bait (late 2016+): XMLHttpRequest status
    probing with retry/backoff instead of script-tag onerror handlers."""
    bait = _pick(rng, _BAIT_URLS)
    handler = _ident(rng, "onProbe")
    retries = int(rng.integers(1, 4))
    return f"""
(function() {{
    var attempts = 0;
    function {handler}(ok) {{
        if (ok) {{
            window.__adsReachable = true;
            return;
        }}
        attempts = attempts + 1;
        if (attempts <= {retries}) {{
            setTimeout(probe, 200 * attempts);
        }} else {{
            window.__adsReachable = false;
            document.cookie = '{_pick(rng, _COOKIE_NAMES)}=true; path=/';
        }}
    }}
    function probe() {{
        var xhr = new XMLHttpRequest();
        xhr.open('HEAD', '{bait}?cb=' + Math.random(), true);
        xhr.onreadystatechange = function() {{
            if (xhr.readyState === 4) {{
                {handler}(xhr.status >= 200 && xhr.status < 400);
            }}
        }};
        xhr.onerror = function() {{
            {handler}(false);
        }};
        xhr.send(null);
    }}
    probe();
}})();
"""


#: Late-generation variants deployed from August 2016 onward. Keys map a
#: first-generation family to its successor.
V2_FAMILIES: Dict[str, str] = {
    "html_bait": "html_bait_v2",
    "http_bait": "http_bait_v2",
    "pagefair_like": "html_bait_v2",
}


def packed(rng: np.random.Generator, inner: Callable[[np.random.Generator], str]) -> str:
    """Wrap a generator's output in an ``eval('...')`` pack."""
    body = inner(rng)
    escaped = body.replace("\\", "\\\\").replace("'", "\\'").replace("\n", "\\n")
    return f"eval('{escaped}');\n"


# ---------------------------------------------------------------------------
# Benign generators
# ---------------------------------------------------------------------------


def ga_analytics_script(rng: np.random.Generator) -> str:
    """Benign family: Google-Analytics-style loader."""
    tracking = f"UA-{int(rng.integers(1000, 99999))}-{int(rng.integers(1, 9))}"
    return f"""
(function(i, s, o, g, r, a, m) {{
    i['GoogleAnalyticsObject'] = r;
    i[r] = i[r] || function() {{
        (i[r].q = i[r].q || []).push(arguments);
    }};
    i[r].l = 1 * new Date();
    a = s.createElement(o);
    m = s.getElementsByTagName(o)[0];
    a.async = 1;
    a.src = g;
    m.parentNode.insertBefore(a, m);
}})(window, document, 'script', '//www.google-analytics.com/analytics.js', 'ga');
ga('create', '{tracking}', 'auto');
ga('send', 'pageview');
"""


def slider_script(rng: np.random.Generator) -> str:
    """Benign family: image carousel (layout reads)."""
    widget = _ident(rng, "slider")
    interval = _delay(rng) * 10
    return f"""
function {widget}(containerId) {{
    var container = document.getElementById(containerId);
    var slides = container.getElementsByTagName('li');
    var index = 0;
    var width = container.offsetWidth;
    function show(n) {{
        for (var i = 0; i < slides.length; i++) {{
            slides[i].style.display = i === n ? 'block' : 'none';
            slides[i].style.width = width + 'px';
        }}
    }}
    function next() {{
        index = (index + 1) % slides.length;
        show(index);
    }}
    window.addEventListener('resize', function() {{
        width = container.offsetWidth;
        show(index);
    }});
    show(0);
    return setInterval(next, {interval});
}}
"""


def consent_banner_script(rng: np.random.Generator) -> str:
    """Benign family: cookie-consent bar."""
    banner_id = str(rng.choice(["cookie-banner", "gdpr-notice", "consent-bar", "cc-window"]))
    return f"""
(function() {{
    if (document.cookie.indexOf('cookie_consent=1') !== -1) {{
        return;
    }}
    var bar = document.createElement('div');
    bar.id = '{banner_id}';
    bar.style.position = 'fixed';
    bar.style.bottom = '0';
    bar.style.width = '100%';
    bar.style.background = '#222';
    bar.innerHTML = 'This site uses cookies. <a href="/privacy">Learn more</a> <button id="cc-ok">OK</button>';
    document.body.appendChild(bar);
    document.getElementById('cc-ok').onclick = function() {{
        var d = new Date();
        d.setTime(d.getTime() + 365 * 24 * 60 * 60 * 1000);
        document.cookie = 'cookie_consent=1; expires=' + d.toUTCString() + '; path=/';
        bar.style.display = 'none';
    }};
}})();
"""


def social_widget_script(rng: np.random.Generator) -> str:
    """Benign family: social SDK loader."""
    network = str(rng.choice(["facebook", "twitter", "plusone", "linkedin"]))
    return f"""
(function(d, s, id) {{
    var js, fjs = d.getElementsByTagName(s)[0];
    if (d.getElementById(id)) {{
        return;
    }}
    js = d.createElement(s);
    js.id = id;
    js.src = '//connect.{network}.net/sdk.js';
    fjs.parentNode.insertBefore(js, fjs);
}}(document, 'script', '{network}-jssdk'));
"""


def form_validation_script(rng: np.random.Generator) -> str:
    """Benign family: form validation."""
    form = _ident(rng, "form")
    min_length = int(rng.integers(4, 12))
    return f"""
function validate{form}(formId) {{
    var form = document.getElementById(formId);
    var fields = form.getElementsByTagName('input');
    var errors = [];
    for (var i = 0; i < fields.length; i++) {{
        var field = fields[i];
        var value = field.value.replace(/^\\s+|\\s+$/g, '');
        if (field.getAttribute('required') !== null && value.length === 0) {{
            errors.push(field.name + ' is required');
        }}
        if (field.type === 'password' && value.length < {min_length}) {{
            errors.push('password too short');
        }}
        if (field.type === 'email' && value.indexOf('@') === -1) {{
            errors.push('invalid email');
        }}
    }}
    return errors;
}}
"""


def video_player_script(rng: np.random.Generator) -> str:
    """Benign family: video player bootstrap."""
    player = _ident(rng, "player")
    return f"""
function {player}(elementId, sources) {{
    var video = document.getElementById(elementId);
    var current = 0;
    function load(n) {{
        video.src = sources[n];
        video.load();
    }}
    video.addEventListener('ended', function() {{
        if (current + 1 < sources.length) {{
            current = current + 1;
            load(current);
            video.play();
        }}
    }});
    video.addEventListener('error', function() {{
        var fallback = document.createElement('p');
        fallback.innerHTML = 'Video failed to load.';
        video.parentNode.appendChild(fallback);
    }});
    load(0);
}}
"""


def ad_serving_script(rng: np.random.Generator) -> str:
    """A plain ad loader — gets *blocked* by adblockers but detects nothing."""
    slot = f"div-gpt-ad-{int(rng.integers(10**9, 10**10))}-0"
    size = str(rng.choice(["[728, 90]", "[300, 250]", "[160, 600]"]))
    return f"""
var googletag = window.googletag || {{ cmd: [] }};
googletag.cmd.push(function() {{
    googletag.defineSlot('/network/travel', {size}, '{slot}').addService(googletag.pubads());
    googletag.pubads().enableSingleRequest();
    googletag.enableServices();
    googletag.display('{slot}');
}});
"""


def lazyload_script(rng: np.random.Generator) -> str:
    """Scroll-driven image lazy-loader — reads the same layout properties
    (``offsetTop``/``offsetHeight``/``clientHeight``) as HTML-bait checks."""
    fn = _ident(rng, "lazy")
    margin = int(rng.integers(50, 400))
    return f"""
function {fn}() {{
    var images = document.getElementsByTagName('img');
    var viewport = window.innerHeight || document.documentElement.clientHeight;
    for (var i = 0; i < images.length; i++) {{
        var img = images[i];
        if (img.getAttribute('data-src') === null) {{
            continue;
        }}
        var top = img.offsetTop;
        var parent = img.offsetParent;
        while (parent !== null) {{
            top = top + parent.offsetTop;
            parent = parent.offsetParent;
        }}
        var scrolled = window.pageYOffset || document.documentElement.scrollTop;
        if (top < scrolled + viewport + {margin} && img.offsetHeight == 0) {{
            img.src = img.getAttribute('data-src');
            img.removeAttribute('data-src');
        }}
    }}
}}
window.addEventListener('scroll', {fn});
window.addEventListener('load', {fn});
"""


def viewport_metrics_script(rng: np.random.Generator) -> str:
    """RUM beacon — measures layout and reports via ``new Image()``,
    structurally close to a vendor detection/report script."""
    endpoint = str(rng.choice(["stats.gif", "collect", "beacon", "t.gif"]))
    sample = int(rng.integers(5, 50))
    return f"""
(function(window, document) {{
    if (Math.floor(Math.random() * 100) >= {sample}) {{
        return;
    }}
    function measure() {{
        var body = document.body;
        var metrics = {{
            w: body.clientWidth,
            h: body.clientHeight,
            sw: screen.width,
            sh: screen.height,
            ow: body.offsetWidth
        }};
        var pairs = [];
        for (var key in metrics) {{
            pairs.push(key + '=' + metrics[key]);
        }}
        var beacon = new Image();
        beacon.src = '/{endpoint}?' + pairs.join('&') + '&r=' + encodeURIComponent(document.referrer);
    }}
    if (document.readyState === 'complete') {{
        measure();
    }} else {{
        window.addEventListener('load', measure);
    }}
}})(window, document);
"""


def ad_refresh_script(rng: np.random.Generator) -> str:
    """Ad-tag loader with CDN fallback — same ``createElement('script')``
    plus ``onerror``/``onload`` skeleton as an HTTP bait."""
    primary = str(rng.choice(["cdn1", "cdn2", "static", "assets"]))
    fallback = str(rng.choice(["backup", "mirror", "alt"]))
    return f"""
(function() {{
    function loadTag(host, done, fail) {{
        var tag = document.createElement('script');
        tag.async = true;
        tag.src = '//' + host + '.adserver.example/tag.js';
        tag.onload = function() {{ done(); }};
        tag.onerror = function() {{ fail(); }};
        document.getElementsByTagName('head')[0].appendChild(tag);
    }}
    loadTag('{primary}', function() {{
        window.__tagLoaded = true;
    }}, function() {{
        loadTag('{fallback}', function() {{
            window.__tagLoaded = true;
        }}, function() {{
            window.__tagLoaded = false;
        }});
    }});
}})();
"""


def modal_popup_script(rng: np.random.Generator) -> str:
    """Newsletter modal — fixed-position overlay plus a frequency-capping
    cookie, the same moves an anti-adblock notice makes."""
    modal_id = str(rng.choice(["newsletter-modal", "signup-popup", "promo-overlay", "subscribe-box"]))
    days = int(rng.integers(3, 30))
    return f"""
(function() {{
    if (document.cookie.indexOf('seen_popup=1') !== -1) {{
        return;
    }}
    setTimeout(function() {{
        var modal = document.createElement('div');
        modal.id = '{modal_id}';
        modal.style.position = 'fixed';
        modal.style.top = '20%';
        modal.style.left = '30%';
        modal.style.zIndex = '99999';
        modal.style.display = 'block';
        modal.innerHTML = '<h2>Subscribe to our newsletter</h2><button id="popup-close">Close</button>';
        document.body.appendChild(modal);
        document.getElementById('popup-close').onclick = function() {{
            modal.style.display = 'none';
            var d = new Date();
            d.setTime(d.getTime() + 60 * 60 * 24 * {days} * 1000);
            document.cookie = 'seen_popup=1; expires=' + d.toUTCString() + '; path=/';
        }};
    }}, {_delay(rng) * 10});
}})();
"""


def ad_fallback_script(rng: np.random.Generator) -> str:
    """House-ad fallback: checks whether the ad slot actually rendered
    (``offsetHeight``/``offsetParent`` reads on an ad-classed container)
    and loads a fallback creative if not. Functionally benign — it never
    nags the user — but keyword-indistinguishable from an HTML bait check.
    """
    slot_class = _pick(rng, _BAIT_CLASSES)
    house = _ident(rng, "house")
    return f"""
(function() {{
    function {house}(slot) {{
        var creative = document.createElement('script');
        creative.async = true;
        creative.src = '/house-ads/fill.js';
        creative.onerror = function() {{
            slot.style.display = 'none';
        }};
        creative.onload = function() {{
            slot.setAttribute('data-filled', 'house');
        }};
        document.getElementsByTagName('head')[0].appendChild(creative);
    }}
    setTimeout(function() {{
        var slots = document.getElementsByClassName('{slot_class}');
        for (var i = 0; i < slots.length; i++) {{
            var slot = slots[i];
            if (slot.offsetHeight == 0
                || slot.offsetParent === null
                || slot.clientHeight == 0
                || slot.clientWidth == 0) {{
                {house}(slot);
            }}
        }}
    }}, {_delay(rng)});
}})();
"""


def viewability_script(rng: np.random.Generator) -> str:
    """IAB ad-viewability measurement: polls the layout of ad containers
    (the same ad-classed divs, the same ``offset*`` reads) and beacons the
    measured exposure. Benign, and a natural false-positive source."""
    slot_class = _pick(rng, _BAIT_CLASSES)
    threshold = int(rng.integers(30, 70))
    return f"""
(function() {{
    var exposures = [];
    function measure() {{
        var ads = document.getElementsByClassName('{slot_class}');
        var viewport = window.innerHeight || document.documentElement.clientHeight;
        for (var i = 0; i < ads.length; i++) {{
            var ad = ads[i];
            var height = ad.offsetHeight;
            var top = ad.offsetTop;
            var visible = 0;
            if (ad.offsetParent !== null && height > 0) {{
                var scrolled = window.pageYOffset || document.documentElement.scrollTop;
                var shown = Math.min(top + height, scrolled + viewport) - Math.max(top, scrolled);
                visible = shown > 0 ? Math.round(100 * shown / height) : 0;
            }}
            exposures.push(visible);
        }}
    }}
    var timer = setInterval(measure, {_delay(rng)});
    setTimeout(function() {{
        clearInterval(timer);
        var viewable = 0;
        for (var i = 0; i < exposures.length; i++) {{
            if (exposures[i] >= {threshold}) {{
                viewable = viewable + 1;
            }}
        }}
        var beacon = new Image();
        beacon.src = '/viewability?v=' + viewable + '&n=' + exposures.length;
    }}, {_delay(rng) * 20});
}})();
"""


def utility_script(rng: np.random.Generator) -> str:
    """Benign family: formatting/debounce helpers."""
    fn = _ident(rng, "fmt")
    sep = str(rng.choice([",", ".", " "]))
    return f"""
function {fn}(value) {{
    var parts = String(value).split('.');
    var whole = parts[0];
    var out = '';
    while (whole.length > 3) {{
        out = '{sep}' + whole.substring(whole.length - 3) + out;
        whole = whole.substring(0, whole.length - 3);
    }}
    out = whole + out;
    if (parts.length > 1) {{
        out = out + '.' + parts[1];
    }}
    return out;
}}
function debounce(fn, wait) {{
    var timer = null;
    return function() {{
        var args = arguments;
        if (timer !== null) {{
            clearTimeout(timer);
        }}
        timer = setTimeout(function() {{
            fn.apply(null, args);
        }}, wait);
    }};
}}
"""


#: Anti-adblock family registry (name -> generator taking rng).
ANTI_ADBLOCK_FAMILIES: Dict[str, Callable[[np.random.Generator], str]] = {
    "http_bait": http_bait_script,
    "html_bait": html_bait_script,
    "can_run_ads": can_run_ads_script,
    "pagefair_like": pagefair_like_script,
    "analytics_detect": analytics_detect_script,
    "ab_test_detect": ab_test_detect_script,
    "community_iab": community_iab_script,
    "html_bait_v2": html_bait_v2_script,
    "http_bait_v2": http_bait_v2_script,
}

#: Benign family registry. The last four families deliberately share
#: vocabulary with anti-adblock scripts (layout reads, beacon reporting,
#: script-tag fallbacks, overlay modals) — they are the classifier's
#: false-positive surface.
BENIGN_FAMILIES: Dict[str, Callable[[np.random.Generator], str]] = {
    "ga_analytics": ga_analytics_script,
    "slider": slider_script,
    "consent_banner": consent_banner_script,
    "social_widget": social_widget_script,
    "form_validation": form_validation_script,
    "video_player": video_player_script,
    "ad_serving": ad_serving_script,
    "utility": utility_script,
    "lazyload": lazyload_script,
    "viewport_metrics": viewport_metrics_script,
    "ad_refresh": ad_refresh_script,
    "modal_popup": modal_popup_script,
    "ad_fallback": ad_fallback_script,
    "viewability": viewability_script,
}


def generate_anti_adblock(rng: np.random.Generator, family: str = "", pack_probability: float = 0.1) -> str:
    """One anti-adblock script; random family unless specified."""
    if not family:
        family = _pick(rng, list(ANTI_ADBLOCK_FAMILIES))
    generator = ANTI_ADBLOCK_FAMILIES[family]
    if rng.random() < pack_probability:
        return packed(rng, generator)
    return generator(rng)


def generate_benign(rng: np.random.Generator, family: str = "") -> str:
    """One benign script; random family unless specified."""
    if not family:
        family = _pick(rng, list(BENIGN_FAMILIES))
    return BENIGN_FAMILIES[family](rng)
