"""Third-party anti-adblock vendors.

The paper finds that more than 97–98% of websites matched by anti-adblock
filter rules use third-party anti-adblock scripts from vendors such as
PageFair, Outbrain, Optimizely, Histats and BlockAdBlock. This module
models that vendor ecosystem: each vendor has a serving domain, a script
URL, a detection family (which script generator it ships), a market share,
and a launch date before which no site can deploy it.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date
from typing import List, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class Vendor:
    """One third-party anti-adblock vendor."""

    name: str
    domain: str
    script_path: str
    family: str  # key into scripts.ANTI_ADBLOCK_FAMILIES
    share: float  # market share among third-party deployments
    launched: date

    @property
    def script_url(self) -> str:
        """Full URL of the vendor's detection script."""
        return f"http://{self.domain}{self.script_path}"


#: The vendor ecosystem. Shares are relative weights among third-party
#: deployments and sum to 1.
VENDORS: Sequence[Vendor] = (
    Vendor("BlockAdBlock", "blockadblock.com", "/blockadblock.js", "html_bait", 0.26, date(2014, 1, 15)),
    Vendor("PageFair", "pagefair.com", "/static/measure.js", "pagefair_like", 0.24, date(2013, 2, 1)),
    Vendor("Optimizely", "optimizely.com", "/js/optimizely.js", "ab_test_detect", 0.18, date(2012, 6, 1)),
    Vendor("Histats", "histats.com", "/js15_as.js", "analytics_detect", 0.17, date(2012, 1, 10)),
    Vendor("Outbrain", "outbrain.com", "/outbrain.js", "http_bait", 0.15, date(2013, 8, 1)),
)

#: First-party (self-hosted) detection families and their weights.
FIRST_PARTY_FAMILIES: Sequence[tuple] = (
    ("community_iab", 0.4),
    ("http_bait", 0.35),
    ("can_run_ads", 0.25),
)


def vendor_by_name(name: str) -> Vendor:
    """Look up a vendor by display name."""
    for vendor in VENDORS:
        if vendor.name == name:
            return vendor
    raise KeyError(name)


def vendors_available(when: date) -> List[Vendor]:
    """Vendors already launched by ``when``."""
    return [vendor for vendor in VENDORS if vendor.launched <= when]


def choose_vendor(rng: np.random.Generator, when: date) -> Optional[Vendor]:
    """Pick a vendor (share-weighted) among those live at ``when``."""
    available = vendors_available(when)
    if not available:
        return None
    weights = np.array([vendor.share for vendor in available])
    weights = weights / weights.sum()
    index = int(rng.choice(len(available), p=weights))
    return available[index]


def choose_first_party_family(rng: np.random.Generator) -> str:
    """Sample a self-hosted detection family by weight."""
    families, weights = zip(*FIRST_PARTY_FAMILIES)
    weights = np.array(weights) / sum(weights)
    return str(families[int(rng.choice(len(families), p=weights))])
