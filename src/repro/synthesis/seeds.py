"""Deterministic randomness for the synthetic world.

Every stochastic decision in the synthesis package draws from a
``numpy.random.Generator`` derived from the world seed plus a label path,
so that (a) the whole world is reproducible from one integer and (b)
changing one component's draws does not reshuffle every other component.
"""

from __future__ import annotations

import hashlib
from typing import Union

import numpy as np

#: The default world seed ("IMC '17").
DEFAULT_SEED = 1702


def derive_seed(seed: int, *labels: Union[str, int]) -> int:
    """A stable 63-bit seed derived from ``seed`` and a label path."""
    digest = hashlib.sha256()
    digest.update(str(seed).encode())
    for label in labels:
        digest.update(b"/")
        digest.update(str(label).encode())
    return int.from_bytes(digest.digest()[:8], "big") >> 1


def rng_for(seed: int, *labels: Union[str, int]) -> np.random.Generator:
    """A fresh generator for the component identified by ``labels``."""
    return np.random.default_rng(derive_seed(seed, *labels))
