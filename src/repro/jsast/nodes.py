"""Abstract syntax tree node types for the ES5-subset JavaScript parser.

The node vocabulary follows the ESTree specification, which is what the
paper's feature-extraction step (built on esprima-style ASTs) assumes.
Each node is a lightweight dataclass; child discovery for tree walking is
generic over dataclass fields, so adding a node type never requires
touching the walker.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Iterator, Optional, Union


@dataclass
class Node:
    """Base class for all AST nodes.

    ``type`` mirrors the ESTree node-type string and is what the feature
    extractor uses as the *context* half of its ``context:text`` features.
    """

    def __post_init__(self) -> None:  # pragma: no cover - trivial
        pass

    @property
    def type(self) -> str:
        """The ESTree node-type string."""
        return self.__class__.__name__

    def children(self) -> Iterator["Node"]:
        """Yield direct child nodes in source order."""
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if isinstance(value, Node):
                yield value
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, Node):
                        yield item

    def replace_child(self, old: "Node", new: "Node") -> bool:
        """Replace a direct child ``old`` with ``new``; return success."""
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if value is old:
                setattr(self, f.name, new)
                return True
            if isinstance(value, list):
                for i, item in enumerate(value):
                    if item is old:
                        value[i] = new
                        return True
        return False


# --------------------------------------------------------------------------
# Top level and statements
# --------------------------------------------------------------------------


@dataclass
class Program(Node):
    """ESTree ``Program`` node."""
    body: list = field(default_factory=list)


@dataclass
class EmptyStatement(Node):
    """ESTree ``EmptyStatement`` node."""
    pass


@dataclass
class ExpressionStatement(Node):
    """ESTree ``ExpressionStatement`` node."""
    expression: Node = None


@dataclass
class BlockStatement(Node):
    """ESTree ``BlockStatement`` node."""
    body: list = field(default_factory=list)


@dataclass
class VariableDeclarator(Node):
    """ESTree ``VariableDeclarator`` node."""
    id: Node = None
    init: Optional[Node] = None


@dataclass
class VariableDeclaration(Node):
    """ESTree ``VariableDeclaration`` node."""
    declarations: list = field(default_factory=list)
    kind: str = "var"


@dataclass
class FunctionDeclaration(Node):
    """ESTree ``FunctionDeclaration`` node."""
    id: Optional[Node] = None
    params: list = field(default_factory=list)
    body: Node = None


@dataclass
class ReturnStatement(Node):
    """ESTree ``ReturnStatement`` node."""
    argument: Optional[Node] = None


@dataclass
class IfStatement(Node):
    """ESTree ``IfStatement`` node."""
    test: Node = None
    consequent: Node = None
    alternate: Optional[Node] = None


@dataclass
class ForStatement(Node):
    """ESTree ``ForStatement`` node."""
    init: Optional[Node] = None
    test: Optional[Node] = None
    update: Optional[Node] = None
    body: Node = None


@dataclass
class ForInStatement(Node):
    """ESTree ``ForInStatement`` node."""
    left: Node = None
    right: Node = None
    body: Node = None


@dataclass
class WhileStatement(Node):
    """ESTree ``WhileStatement`` node."""
    test: Node = None
    body: Node = None


@dataclass
class DoWhileStatement(Node):
    """ESTree ``DoWhileStatement`` node."""
    body: Node = None
    test: Node = None


@dataclass
class BreakStatement(Node):
    """ESTree ``BreakStatement`` node."""
    label: Optional[Node] = None


@dataclass
class ContinueStatement(Node):
    """ESTree ``ContinueStatement`` node."""
    label: Optional[Node] = None


@dataclass
class ThrowStatement(Node):
    """ESTree ``ThrowStatement`` node."""
    argument: Node = None


@dataclass
class CatchClause(Node):
    """ESTree ``CatchClause`` node."""
    param: Optional[Node] = None
    body: Node = None


@dataclass
class TryStatement(Node):
    """ESTree ``TryStatement`` node."""
    block: Node = None
    handler: Optional[Node] = None
    finalizer: Optional[Node] = None


@dataclass
class SwitchCase(Node):
    """ESTree ``SwitchCase`` node."""
    test: Optional[Node] = None  # None for ``default:``
    consequent: list = field(default_factory=list)


@dataclass
class SwitchStatement(Node):
    """ESTree ``SwitchStatement`` node."""
    discriminant: Node = None
    cases: list = field(default_factory=list)


@dataclass
class LabeledStatement(Node):
    """ESTree ``LabeledStatement`` node."""
    label: Node = None
    body: Node = None


@dataclass
class DebuggerStatement(Node):
    """ESTree ``DebuggerStatement`` node."""
    pass


@dataclass
class WithStatement(Node):
    """ESTree ``WithStatement`` node."""
    object: Node = None
    body: Node = None


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------


@dataclass
class Identifier(Node):
    """ESTree ``Identifier`` node."""
    name: str = ""


@dataclass
class Literal(Node):
    """A string, number, boolean, ``null`` or regular-expression literal.

    For regex literals ``value`` is the raw source text and ``regex`` holds
    the ``(pattern, flags)`` pair.
    """

    value: object = None
    raw: str = ""
    regex: Optional[tuple] = None


@dataclass
class ThisExpression(Node):
    """ESTree ``ThisExpression`` node."""
    pass


@dataclass
class ArrayExpression(Node):
    """ESTree ``ArrayExpression`` node."""
    elements: list = field(default_factory=list)  # items may be None (elision)

    def children(self) -> Iterator[Node]:
        """Direct child nodes in source order."""
        for item in self.elements:
            if isinstance(item, Node):
                yield item


@dataclass
class Property(Node):
    """ESTree ``Property`` node."""
    key: Node = None
    value: Node = None
    kind: str = "init"  # init | get | set
    computed: bool = False


@dataclass
class ObjectExpression(Node):
    """ESTree ``ObjectExpression`` node."""
    properties: list = field(default_factory=list)


@dataclass
class FunctionExpression(Node):
    """ESTree ``FunctionExpression`` node."""
    id: Optional[Node] = None
    params: list = field(default_factory=list)
    body: Node = None


@dataclass
class UnaryExpression(Node):
    """ESTree ``UnaryExpression`` node."""
    operator: str = ""
    argument: Node = None
    prefix: bool = True


@dataclass
class UpdateExpression(Node):
    """ESTree ``UpdateExpression`` node."""
    operator: str = ""
    argument: Node = None
    prefix: bool = False


@dataclass
class BinaryExpression(Node):
    """ESTree ``BinaryExpression`` node."""
    operator: str = ""
    left: Node = None
    right: Node = None


@dataclass
class LogicalExpression(Node):
    """ESTree ``LogicalExpression`` node."""
    operator: str = ""
    left: Node = None
    right: Node = None


@dataclass
class AssignmentExpression(Node):
    """ESTree ``AssignmentExpression`` node."""
    operator: str = "="
    left: Node = None
    right: Node = None


@dataclass
class ConditionalExpression(Node):
    """ESTree ``ConditionalExpression`` node."""
    test: Node = None
    consequent: Node = None
    alternate: Node = None


@dataclass
class CallExpression(Node):
    """ESTree ``CallExpression`` node."""
    callee: Node = None
    arguments: list = field(default_factory=list)


@dataclass
class NewExpression(Node):
    """ESTree ``NewExpression`` node."""
    callee: Node = None
    arguments: list = field(default_factory=list)


@dataclass
class MemberExpression(Node):
    """ESTree ``MemberExpression`` node."""
    object: Node = None
    property: Node = None
    computed: bool = False


@dataclass
class SequenceExpression(Node):
    """ESTree ``SequenceExpression`` node."""
    expressions: list = field(default_factory=list)


STATEMENT_TYPES = frozenset(
    {
        "ExpressionStatement",
        "BlockStatement",
        "EmptyStatement",
        "VariableDeclaration",
        "FunctionDeclaration",
        "ReturnStatement",
        "IfStatement",
        "ForStatement",
        "ForInStatement",
        "WhileStatement",
        "DoWhileStatement",
        "BreakStatement",
        "ContinueStatement",
        "ThrowStatement",
        "TryStatement",
        "SwitchStatement",
        "LabeledStatement",
        "DebuggerStatement",
        "WithStatement",
    }
)

AnyNode = Union[Node, None]
