"""Recursive-descent parser for an ES5 subset of JavaScript.

Covers everything the anti-adblock corpus exercises: functions (declaration
and expression), prototypes, object/array literals, regex literals, all
control flow (``if``/``for``/``for-in``/``while``/``do``/``switch``/``try``),
the full operator set with correct precedence and associativity, ``new``
with and without arguments, and automatic semicolon insertion.

The produced tree uses the ESTree-flavoured nodes from
:mod:`repro.jsast.nodes`, which is what the paper's static feature
extraction is defined over.
"""

from __future__ import annotations

from typing import List, Optional

from . import nodes as N
from .tokenizer import Token, tokenize


class ParseError(ValueError):
    """Raised when the token stream cannot be parsed."""

    def __init__(self, message: str, token: Token) -> None:
        where = f"line {token.line}, column {token.column}"
        shown = token.raw or "<eof>"
        super().__init__(f"{message} near {shown!r} ({where})")
        self.token = token


# Binary operator precedence, ESTree operator strings. Higher binds tighter.
_BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "===": 6,
    "!==": 6,
    "<": 7,
    ">": 7,
    "<=": 7,
    ">=": 7,
    "instanceof": 7,
    "in": 7,
    "<<": 8,
    ">>": 8,
    ">>>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}

_ASSIGNMENT_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "<<=", ">>=", ">>>=", "&=", "|=", "^="}

_UNARY_OPS = {"+", "-", "!", "~"}
_UNARY_KEYWORDS = {"typeof", "void", "delete"}


class Parser:
    """Parses a token list into a :class:`~repro.jsast.nodes.Program`."""

    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.index = 0

    # -- token helpers -------------------------------------------------------

    @property
    def current(self) -> Token:
        """The token at the cursor."""
        return self.tokens[self.index]

    def _peek(self, offset: int = 1) -> Token:
        index = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind != "eof":
            self.index += 1
        return token

    def _expect_punct(self, value: str) -> Token:
        if not self.current.is_punct(value):
            raise ParseError(f"expected {value!r}", self.current)
        return self._advance()

    def _expect_keyword(self, value: str) -> Token:
        if not self.current.is_keyword(value):
            raise ParseError(f"expected keyword {value!r}", self.current)
        return self._advance()

    def _eat_punct(self, value: str) -> bool:
        if self.current.is_punct(value):
            self._advance()
            return True
        return False

    def _consume_semicolon(self) -> None:
        """Consume a statement terminator, honouring ASI."""
        if self._eat_punct(";"):
            return
        token = self.current
        if token.kind == "eof" or token.is_punct("}") or token.newline_before:
            return
        raise ParseError("expected ';'", token)

    # -- entry point ---------------------------------------------------------

    def parse_program(self) -> N.Program:
        """Parse the whole token stream into a Program."""
        body: List[N.Node] = []
        while self.current.kind != "eof":
            body.append(self.parse_statement())
        return N.Program(body=body)

    # -- statements ----------------------------------------------------------

    def parse_statement(self) -> N.Node:
        """Parse one statement (dispatching on the leading token)."""
        token = self.current
        if token.kind == "punct":
            if token.raw == "{":
                return self.parse_block()
            if token.raw == ";":
                self._advance()
                return N.EmptyStatement()
        if token.kind == "keyword":
            handler = {
                "var": self._parse_variable_statement,
                "function": self._parse_function_declaration,
                "if": self._parse_if,
                "for": self._parse_for,
                "while": self._parse_while,
                "do": self._parse_do_while,
                "return": self._parse_return,
                "break": lambda: self._parse_break_continue(N.BreakStatement),
                "continue": lambda: self._parse_break_continue(N.ContinueStatement),
                "throw": self._parse_throw,
                "try": self._parse_try,
                "switch": self._parse_switch,
                "debugger": self._parse_debugger,
                "with": self._parse_with,
            }.get(token.raw)
            if handler is not None:
                return handler()
        if token.kind == "identifier" and self._peek().is_punct(":"):
            label = N.Identifier(name=self._advance().value)
            self._advance()  # ':'
            return N.LabeledStatement(label=label, body=self.parse_statement())
        expression = self.parse_expression()
        self._consume_semicolon()
        return N.ExpressionStatement(expression=expression)

    def parse_block(self) -> N.BlockStatement:
        """Parse a { ... } statement list."""
        self._expect_punct("{")
        body: List[N.Node] = []
        while not self.current.is_punct("}"):
            if self.current.kind == "eof":
                raise ParseError("unterminated block", self.current)
            body.append(self.parse_statement())
        self._advance()
        return N.BlockStatement(body=body)

    def _parse_variable_statement(self) -> N.VariableDeclaration:
        declaration = self._parse_variable_declaration()
        self._consume_semicolon()
        return declaration

    def _parse_variable_declaration(self, no_in: bool = False) -> N.VariableDeclaration:
        self._expect_keyword("var")
        declarators = [self._parse_variable_declarator(no_in)]
        while self._eat_punct(","):
            declarators.append(self._parse_variable_declarator(no_in))
        return N.VariableDeclaration(declarations=declarators, kind="var")

    def _parse_variable_declarator(self, no_in: bool) -> N.VariableDeclarator:
        name = self._parse_identifier()
        init = None
        if self._eat_punct("="):
            init = self.parse_assignment(no_in=no_in)
        return N.VariableDeclarator(id=name, init=init)

    def _parse_identifier(self) -> N.Identifier:
        token = self.current
        if token.kind != "identifier":
            raise ParseError("expected identifier", token)
        self._advance()
        return N.Identifier(name=token.value)

    def _parse_function_declaration(self) -> N.FunctionDeclaration:
        self._expect_keyword("function")
        name = self._parse_identifier()
        params, body = self._parse_function_rest()
        return N.FunctionDeclaration(id=name, params=params, body=body)

    def _parse_function_rest(self) -> tuple:
        self._expect_punct("(")
        params: List[N.Identifier] = []
        if not self.current.is_punct(")"):
            params.append(self._parse_identifier())
            while self._eat_punct(","):
                params.append(self._parse_identifier())
        self._expect_punct(")")
        body = self.parse_block()
        return params, body

    def _parse_if(self) -> N.IfStatement:
        self._expect_keyword("if")
        self._expect_punct("(")
        test = self.parse_expression()
        self._expect_punct(")")
        consequent = self.parse_statement()
        alternate = None
        if self.current.is_keyword("else"):
            self._advance()
            alternate = self.parse_statement()
        return N.IfStatement(test=test, consequent=consequent, alternate=alternate)

    def _parse_for(self) -> N.Node:
        self._expect_keyword("for")
        self._expect_punct("(")
        init: Optional[N.Node] = None
        if self.current.is_punct(";"):
            self._advance()
        elif self.current.is_keyword("var"):
            init = self._parse_variable_declaration(no_in=True)
            if self.current.is_keyword("in"):
                self._advance()
                right = self.parse_expression()
                self._expect_punct(")")
                return N.ForInStatement(left=init, right=right, body=self.parse_statement())
            self._expect_punct(";")
        else:
            init_expr = self.parse_expression(no_in=True)
            if self.current.is_keyword("in"):
                self._advance()
                right = self.parse_expression()
                self._expect_punct(")")
                return N.ForInStatement(left=init_expr, right=right, body=self.parse_statement())
            init = N.ExpressionStatement(expression=init_expr)
            self._expect_punct(";")
        test = None if self.current.is_punct(";") else self.parse_expression()
        self._expect_punct(";")
        update = None if self.current.is_punct(")") else self.parse_expression()
        self._expect_punct(")")
        return N.ForStatement(init=init, test=test, update=update, body=self.parse_statement())

    def _parse_while(self) -> N.WhileStatement:
        self._expect_keyword("while")
        self._expect_punct("(")
        test = self.parse_expression()
        self._expect_punct(")")
        return N.WhileStatement(test=test, body=self.parse_statement())

    def _parse_do_while(self) -> N.DoWhileStatement:
        self._expect_keyword("do")
        body = self.parse_statement()
        self._expect_keyword("while")
        self._expect_punct("(")
        test = self.parse_expression()
        self._expect_punct(")")
        self._eat_punct(";")
        return N.DoWhileStatement(body=body, test=test)

    def _parse_return(self) -> N.ReturnStatement:
        self._expect_keyword("return")
        argument = None
        token = self.current
        if not (
            token.is_punct(";")
            or token.is_punct("}")
            or token.kind == "eof"
            or token.newline_before
        ):
            argument = self.parse_expression()
        self._consume_semicolon()
        return N.ReturnStatement(argument=argument)

    def _parse_break_continue(self, cls) -> N.Node:
        self._advance()  # break / continue
        label = None
        token = self.current
        if token.kind == "identifier" and not token.newline_before:
            label = self._parse_identifier()
        self._consume_semicolon()
        return cls(label=label)

    def _parse_throw(self) -> N.ThrowStatement:
        self._expect_keyword("throw")
        argument = self.parse_expression()
        self._consume_semicolon()
        return N.ThrowStatement(argument=argument)

    def _parse_try(self) -> N.TryStatement:
        self._expect_keyword("try")
        block = self.parse_block()
        handler = None
        finalizer = None
        if self.current.is_keyword("catch"):
            self._advance()
            self._expect_punct("(")
            param = self._parse_identifier()
            self._expect_punct(")")
            handler = N.CatchClause(param=param, body=self.parse_block())
        if self.current.is_keyword("finally"):
            self._advance()
            finalizer = self.parse_block()
        if handler is None and finalizer is None:
            raise ParseError("try requires catch or finally", self.current)
        return N.TryStatement(block=block, handler=handler, finalizer=finalizer)

    def _parse_switch(self) -> N.SwitchStatement:
        self._expect_keyword("switch")
        self._expect_punct("(")
        discriminant = self.parse_expression()
        self._expect_punct(")")
        self._expect_punct("{")
        cases: List[N.SwitchCase] = []
        while not self.current.is_punct("}"):
            if self.current.is_keyword("case"):
                self._advance()
                test = self.parse_expression()
            elif self.current.is_keyword("default"):
                self._advance()
                test = None
            else:
                raise ParseError("expected 'case' or 'default'", self.current)
            self._expect_punct(":")
            consequent: List[N.Node] = []
            while not (
                self.current.is_punct("}")
                or self.current.is_keyword("case")
                or self.current.is_keyword("default")
            ):
                if self.current.kind == "eof":
                    raise ParseError("unterminated switch", self.current)
                consequent.append(self.parse_statement())
            cases.append(N.SwitchCase(test=test, consequent=consequent))
        self._advance()
        return N.SwitchStatement(discriminant=discriminant, cases=cases)

    def _parse_debugger(self) -> N.DebuggerStatement:
        self._expect_keyword("debugger")
        self._consume_semicolon()
        return N.DebuggerStatement()

    def _parse_with(self) -> N.WithStatement:
        self._expect_keyword("with")
        self._expect_punct("(")
        obj = self.parse_expression()
        self._expect_punct(")")
        return N.WithStatement(object=obj, body=self.parse_statement())

    # -- expressions ---------------------------------------------------------

    def parse_expression(self, no_in: bool = False) -> N.Node:
        """Parse a (possibly comma-sequenced) expression."""
        expression = self.parse_assignment(no_in=no_in)
        if not self.current.is_punct(","):
            return expression
        expressions = [expression]
        while self._eat_punct(","):
            expressions.append(self.parse_assignment(no_in=no_in))
        return N.SequenceExpression(expressions=expressions)

    def parse_assignment(self, no_in: bool = False) -> N.Node:
        """Parse an assignment-level expression."""
        left = self._parse_conditional(no_in)
        token = self.current
        if token.kind == "punct" and token.raw in _ASSIGNMENT_OPS:
            if not isinstance(left, (N.Identifier, N.MemberExpression)):
                raise ParseError("invalid assignment target", token)
            self._advance()
            right = self.parse_assignment(no_in=no_in)
            return N.AssignmentExpression(operator=token.raw, left=left, right=right)
        return left

    def _parse_conditional(self, no_in: bool) -> N.Node:
        test = self._parse_binary(0, no_in)
        if not self._eat_punct("?"):
            return test
        consequent = self.parse_assignment()
        self._expect_punct(":")
        alternate = self.parse_assignment(no_in=no_in)
        return N.ConditionalExpression(test=test, consequent=consequent, alternate=alternate)

    def _binary_operator(self, no_in: bool) -> Optional[str]:
        token = self.current
        if token.kind == "punct" and token.raw in _BINARY_PRECEDENCE:
            return token.raw
        if token.is_keyword("instanceof"):
            return "instanceof"
        if token.is_keyword("in") and not no_in:
            return "in"
        return None

    def _parse_binary(self, min_precedence: int, no_in: bool) -> N.Node:
        left = self._parse_unary(no_in)
        while True:
            operator = self._binary_operator(no_in)
            if operator is None:
                return left
            precedence = _BINARY_PRECEDENCE[operator]
            if precedence < min_precedence:
                return left
            self._advance()
            right = self._parse_binary(precedence + 1, no_in)
            cls = N.LogicalExpression if operator in ("&&", "||") else N.BinaryExpression
            left = cls(operator=operator, left=left, right=right)

    def _parse_unary(self, no_in: bool) -> N.Node:
        token = self.current
        if token.kind == "punct" and token.raw in _UNARY_OPS:
            self._advance()
            return N.UnaryExpression(operator=token.raw, argument=self._parse_unary(no_in))
        if token.kind == "keyword" and token.raw in _UNARY_KEYWORDS:
            self._advance()
            return N.UnaryExpression(operator=token.raw, argument=self._parse_unary(no_in))
        if token.is_punct("++", "--"):
            self._advance()
            argument = self._parse_unary(no_in)
            return N.UpdateExpression(operator=token.raw, argument=argument, prefix=True)
        return self._parse_postfix(no_in)

    def _parse_postfix(self, no_in: bool) -> N.Node:
        expression = self._parse_call(no_in)
        token = self.current
        if token.is_punct("++", "--") and not token.newline_before:
            self._advance()
            return N.UpdateExpression(operator=token.raw, argument=expression, prefix=False)
        return expression

    def _parse_call(self, no_in: bool) -> N.Node:
        if self.current.is_keyword("new"):
            expression = self._parse_new()
        else:
            expression = self._parse_primary()
        while True:
            if self._eat_punct("."):
                token = self.current
                if token.kind not in ("identifier", "keyword"):
                    raise ParseError("expected property name", token)
                self._advance()
                prop = N.Identifier(name=token.raw)
                expression = N.MemberExpression(object=expression, property=prop, computed=False)
            elif self.current.is_punct("["):
                self._advance()
                prop = self.parse_expression()
                self._expect_punct("]")
                expression = N.MemberExpression(object=expression, property=prop, computed=True)
            elif self.current.is_punct("("):
                arguments = self._parse_arguments()
                expression = N.CallExpression(callee=expression, arguments=arguments)
            else:
                return expression

    def _parse_new(self) -> N.Node:
        self._expect_keyword("new")
        if self.current.is_keyword("new"):
            callee: N.Node = self._parse_new()
        else:
            callee = self._parse_primary()
        # Member accesses bind tighter than the new-expression call.
        while True:
            if self._eat_punct("."):
                token = self.current
                if token.kind not in ("identifier", "keyword"):
                    raise ParseError("expected property name", token)
                self._advance()
                prop = N.Identifier(name=token.raw)
                callee = N.MemberExpression(object=callee, property=prop, computed=False)
            elif self.current.is_punct("["):
                self._advance()
                prop = self.parse_expression()
                self._expect_punct("]")
                callee = N.MemberExpression(object=callee, property=prop, computed=True)
            else:
                break
        arguments = self._parse_arguments() if self.current.is_punct("(") else []
        return N.NewExpression(callee=callee, arguments=arguments)

    def _parse_arguments(self) -> List[N.Node]:
        self._expect_punct("(")
        arguments: List[N.Node] = []
        if not self.current.is_punct(")"):
            arguments.append(self.parse_assignment())
            while self._eat_punct(","):
                arguments.append(self.parse_assignment())
        self._expect_punct(")")
        return arguments

    def _parse_primary(self) -> N.Node:
        token = self.current
        if token.kind == "identifier":
            self._advance()
            return N.Identifier(name=token.value)
        if token.kind == "number":
            self._advance()
            return N.Literal(value=token.value, raw=token.raw)
        if token.kind == "string":
            self._advance()
            return N.Literal(value=token.value, raw=token.raw)
        if token.kind == "regex":
            self._advance()
            return N.Literal(value=token.raw, raw=token.raw, regex=token.value)
        if token.kind == "keyword":
            if token.raw == "this":
                self._advance()
                return N.ThisExpression()
            if token.raw == "true":
                self._advance()
                return N.Literal(value=True, raw="true")
            if token.raw == "false":
                self._advance()
                return N.Literal(value=False, raw="false")
            if token.raw == "null":
                self._advance()
                return N.Literal(value=None, raw="null")
            if token.raw == "undefined":
                self._advance()
                return N.Identifier(name="undefined")
            if token.raw == "function":
                return self._parse_function_expression()
            if token.raw == "new":
                return self._parse_new()
        if token.is_punct("("):
            self._advance()
            expression = self.parse_expression()
            self._expect_punct(")")
            return expression
        if token.is_punct("["):
            return self._parse_array()
        if token.is_punct("{"):
            return self._parse_object()
        raise ParseError("unexpected token", token)

    def _parse_function_expression(self) -> N.FunctionExpression:
        self._expect_keyword("function")
        name = None
        if self.current.kind == "identifier":
            name = self._parse_identifier()
        params, body = self._parse_function_rest()
        return N.FunctionExpression(id=name, params=params, body=body)

    def _parse_array(self) -> N.ArrayExpression:
        self._expect_punct("[")
        elements: List[Optional[N.Node]] = []
        while not self.current.is_punct("]"):
            if self.current.is_punct(","):
                self._advance()
                elements.append(None)  # elision
                continue
            elements.append(self.parse_assignment())
            if not self.current.is_punct("]"):
                self._expect_punct(",")
        self._advance()
        return N.ArrayExpression(elements=elements)

    def _parse_object(self) -> N.ObjectExpression:
        self._expect_punct("{")
        properties: List[N.Property] = []
        while not self.current.is_punct("}"):
            properties.append(self._parse_property())
            if not self.current.is_punct("}"):
                self._expect_punct(",")
        self._advance()
        return N.ObjectExpression(properties=properties)

    def _parse_property(self) -> N.Property:
        token = self.current
        # get/set accessors: ``get name() {...}`` — only when not followed
        # by ``:`` or ``(`` (which would make get/set a plain key).
        if (
            token.kind == "identifier"
            and token.value in ("get", "set")
            and self._peek().kind in ("identifier", "string", "number", "keyword")
        ):
            kind = token.value
            self._advance()
            key = self._parse_property_key()
            params, body = self._parse_function_rest()
            value = N.FunctionExpression(id=None, params=params, body=body)
            return N.Property(key=key, value=value, kind=kind)
        key = self._parse_property_key()
        self._expect_punct(":")
        value = self.parse_assignment()
        return N.Property(key=key, value=value, kind="init")

    def _parse_property_key(self) -> N.Node:
        token = self.current
        if token.kind in ("identifier", "keyword"):
            self._advance()
            return N.Identifier(name=token.raw)
        if token.kind == "string":
            self._advance()
            return N.Literal(value=token.value, raw=token.raw)
        if token.kind == "number":
            self._advance()
            return N.Literal(value=token.value, raw=token.raw)
        raise ParseError("expected property key", token)


def parse(source: str) -> N.Program:
    """Parse JavaScript ``source`` into an ESTree-style :class:`Program`.

    Recursive descent needs roughly eight Python frames per nesting level;
    minified real-world scripts nest deeply, so the recursion limit is
    raised for the duration of the parse.
    """
    import sys

    limit = sys.getrecursionlimit()
    wanted = 50_000
    try:
        if limit < wanted:
            sys.setrecursionlimit(wanted)
        return Parser(tokenize(source)).parse_program()
    finally:
        sys.setrecursionlimit(limit)
