"""Generic traversal utilities over the JavaScript AST."""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Tuple

from .nodes import Node


def walk(root: Node) -> Iterator[Node]:
    """Yield ``root`` and every descendant in depth-first pre-order."""
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        children = list(node.children())
        stack.extend(reversed(children))


def walk_with_ancestors(root: Node) -> Iterator[Tuple[Node, Tuple[Node, ...]]]:
    """Yield ``(node, ancestors)`` pairs in depth-first pre-order.

    ``ancestors`` is ordered from the root down to the immediate parent, so
    ``ancestors[-1]`` (when present) is the node's parent.
    """
    stack: List[Tuple[Node, Tuple[Node, ...]]] = [(root, ())]
    while stack:
        node, ancestors = stack.pop()
        yield node, ancestors
        child_ancestors = ancestors + (node,)
        for child in reversed(list(node.children())):
            stack.append((child, child_ancestors))


def find_all(root: Node, predicate: Callable[[Node], bool]) -> List[Node]:
    """Collect every node under ``root`` (inclusive) matching ``predicate``."""
    return [node for node in walk(root) if predicate(node)]


def find_first(root: Node, predicate: Callable[[Node], bool]) -> Optional[Node]:
    """Return the first node in pre-order matching ``predicate``, if any."""
    for node in walk(root):
        if predicate(node):
            return node
    return None


def count_nodes(root: Node) -> int:
    """Number of nodes in the tree rooted at ``root``."""
    return sum(1 for _ in walk(root))
