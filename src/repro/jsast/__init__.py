"""JavaScript static-analysis substrate: tokenizer, ES5 parser, AST, unpacker.

This package substitutes for the paper's Chrome V8 + esprima toolchain. It
provides everything the anti-adblock detector (:mod:`repro.core`) needs:
an ESTree-style AST (:mod:`~repro.jsast.nodes`), a tokenizer and parser, a
generic walker, and a static ``eval()`` unpacker.
"""

from .codegen import CodeGenerator, to_source
from .compare import ast_equal, count_differences, first_difference
from .nodes import Node, Program
from .parser import ParseError, Parser, parse
from .tokenizer import Token, TokenizeError, Tokenizer, tokenize
from .unpack import UnpackResult, fold_constant_string, unpack_program, unpack_source
from .walker import count_nodes, find_all, find_first, walk, walk_with_ancestors

__all__ = [
    "CodeGenerator",
    "to_source",
    "ast_equal",
    "count_differences",
    "first_difference",
    "Node",
    "Program",
    "ParseError",
    "Parser",
    "parse",
    "Token",
    "TokenizeError",
    "Tokenizer",
    "tokenize",
    "UnpackResult",
    "fold_constant_string",
    "unpack_program",
    "unpack_source",
    "count_nodes",
    "find_all",
    "find_first",
    "walk",
    "walk_with_ancestors",
]
