"""Tokenizer for the ES5-subset JavaScript parser.

Produces a stream of :class:`Token` objects with enough context for the
parser to honour automatic semicolon insertion (each token records whether
a line terminator preceded it) and to disambiguate regular-expression
literals from division operators (the classic JS lexer ambiguity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

KEYWORDS = frozenset(
    """break case catch continue debugger default delete do else finally
    for function if in instanceof new return switch this throw try typeof
    var void while with""".split()
)

# Reserved literal words are tokenized distinctly so the parser can build
# boolean/null Literal nodes directly.
LITERAL_KEYWORDS = frozenset({"true", "false", "null", "undefined"})

PUNCTUATORS = [
    ">>>=",
    "===",
    "!==",
    ">>>",
    "<<=",
    ">>=",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "++",
    "--",
    "<<",
    ">>",
    "+=",
    "-=",
    "*=",
    "/=",
    "%=",
    "&=",
    "|=",
    "^=",
    "{",
    "}",
    "(",
    ")",
    "[",
    "]",
    ";",
    ",",
    "<",
    ">",
    "+",
    "-",
    "*",
    "/",
    "%",
    "&",
    "|",
    "^",
    "!",
    "~",
    "?",
    ":",
    "=",
    ".",
]

LINE_TERMINATORS = "\n\r  "



class TokenizeError(ValueError):
    """Raised when the source cannot be tokenized."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


@dataclass
class Token:
    """One lexical token.

    ``kind`` is one of ``identifier``, ``keyword``, ``number``, ``string``,
    ``regex``, ``punct`` or ``eof``. ``value`` is the cooked value for
    strings/numbers and the raw text otherwise; ``raw`` is always the exact
    source slice.
    """

    kind: str
    value: object
    raw: str
    line: int
    column: int
    newline_before: bool = False

    def is_punct(self, *values: str) -> bool:
        """Whether this token is one of the given punctuators."""
        return self.kind == "punct" and self.raw in values

    def is_keyword(self, *values: str) -> bool:
        """Whether this token is one of the given keywords."""
        return self.kind == "keyword" and self.raw in values


def _is_identifier_start(ch: str) -> bool:
    if ch.isalpha() or ch in "$_":
        return True
    # Permissive non-ASCII identifiers, but never separators/whitespace.
    return ord(ch) > 127 and not ch.isspace() and ch not in LINE_TERMINATORS


def _is_identifier_part(ch: str) -> bool:
    if ch.isalnum() or ch in "$_":
        return True
    return ord(ch) > 127 and not ch.isspace() and ch not in LINE_TERMINATORS



class Tokenizer:
    """Single-pass tokenizer over a JavaScript source string."""

    def __init__(self, source: str) -> None:
        self.source = source
        self.pos = 0
        self.line = 1
        self.line_start = 0
        self._tokens: List[Token] = []
        self._newline_pending = False

    # -- public API --------------------------------------------------------

    def tokenize(self) -> List[Token]:
        """Tokenize the whole source, returning a list ending with EOF."""
        while True:
            token = self._next_token()
            self._tokens.append(token)
            if token.kind == "eof":
                return self._tokens

    # -- internals ---------------------------------------------------------

    @property
    def _column(self) -> int:
        return self.pos - self.line_start + 1

    def _error(self, message: str) -> TokenizeError:
        return TokenizeError(message, self.line, self._column)

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.source[index] if index < len(self.source) else ""

    def _skip_whitespace_and_comments(self) -> None:
        src = self.source
        while self.pos < len(src):
            ch = src[self.pos]
            if ch in LINE_TERMINATORS:
                self._newline_pending = True
                if ch == "\r" and self._peek(1) == "\n":
                    self.pos += 1
                self.pos += 1
                self.line += 1
                self.line_start = self.pos
            elif ch.isspace():
                self.pos += 1
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(src) and src[self.pos] not in LINE_TERMINATORS:
                    self.pos += 1
            elif ch == "/" and self._peek(1) == "*":
                end = src.find("*/", self.pos + 2)
                if end < 0:
                    raise self._error("unterminated block comment")
                block = src[self.pos : end]
                newlines = sum(block.count(t) for t in LINE_TERMINATORS)
                if newlines:
                    self._newline_pending = True
                    self.line += newlines
                self.pos = end + 2
            else:
                return

    def _regex_allowed(self) -> bool:
        """Heuristic: may a ``/`` at the current position start a regex?

        A regex is allowed when the previous significant token cannot end an
        expression — i.e. after punctuation other than ``) ] }`` and
        postfix operators, after most keywords, or at the start of input.
        """
        for prev in reversed(self._tokens):
            if prev.kind in ("identifier", "number", "string", "regex"):
                return False
            if prev.kind == "keyword":
                # ``this`` and literal keywords end an expression.
                return prev.raw not in ("this", "true", "false", "null", "undefined")
            if prev.kind == "punct":
                if prev.raw in (")", "]", "}", "++", "--"):
                    return False
                return True
            return True
        return True

    def _next_token(self) -> Token:
        self._skip_whitespace_and_comments()
        newline = self._newline_pending
        self._newline_pending = False
        line, column = self.line, self._column
        if self.pos >= len(self.source):
            return Token("eof", None, "", line, column, newline)

        ch = self.source[self.pos]
        if _is_identifier_start(ch):
            token = self._read_identifier()
        elif ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            token = self._read_number()
        elif ch in "'\"":
            token = self._read_string()
        elif ch == "/" and self._regex_allowed():
            token = self._read_regex()
        else:
            token = self._read_punctuator()
        token.newline_before = newline
        return token

    def _read_identifier(self) -> Token:
        start = self.pos
        line, column = self.line, self._column
        while self.pos < len(self.source) and _is_identifier_part(self.source[self.pos]):
            self.pos += 1
        raw = self.source[start : self.pos]
        if raw in KEYWORDS or raw in LITERAL_KEYWORDS:
            return Token("keyword", raw, raw, line, column)
        return Token("identifier", raw, raw, line, column)

    def _read_number(self) -> Token:
        start = self.pos
        line, column = self.line, self._column
        src = self.source
        if src[self.pos] == "0" and self._peek(1) in "xX":
            self.pos += 2
            while self.pos < len(src) and src[self.pos] in "0123456789abcdefABCDEF":
                self.pos += 1
            raw = src[start : self.pos]
            if len(raw) == 2:
                raise self._error("invalid hex literal")
            return Token("number", float(int(raw, 16)), raw, line, column)
        while self.pos < len(src) and src[self.pos].isdigit():
            self.pos += 1
        if self._peek() == ".":
            self.pos += 1
            while self.pos < len(src) and src[self.pos].isdigit():
                self.pos += 1
        if self._peek() in "eE":
            mark = self.pos
            self.pos += 1
            if self._peek() in "+-":
                self.pos += 1
            if not self._peek().isdigit():
                self.pos = mark
            else:
                while self.pos < len(src) and src[self.pos].isdigit():
                    self.pos += 1
        raw = src[start : self.pos]
        return Token("number", float(raw), raw, line, column)

    _ESCAPES = {
        "n": "\n",
        "t": "\t",
        "r": "\r",
        "b": "\b",
        "f": "\f",
        "v": "\v",
        "0": "\0",
        "'": "'",
        '"': '"',
        "\\": "\\",
        "/": "/",
    }

    def _read_string(self) -> Token:
        src = self.source
        quote = src[self.pos]
        start = self.pos
        line, column = self.line, self._column
        self.pos += 1
        parts: List[str] = []
        while True:
            if self.pos >= len(src):
                raise self._error("unterminated string literal")
            ch = src[self.pos]
            if ch == quote:
                self.pos += 1
                break
            if ch in LINE_TERMINATORS:
                raise self._error("unterminated string literal")
            if ch == "\\":
                self.pos += 1
                esc = self._peek()
                if esc == "":
                    raise self._error("unterminated string literal")
                if esc in LINE_TERMINATORS:  # line continuation
                    self.pos += 1
                    self.line += 1
                    self.line_start = self.pos
                    continue
                if esc == "x":
                    hexpart = src[self.pos + 1 : self.pos + 3]
                    if len(hexpart) == 2 and all(c in "0123456789abcdefABCDEF" for c in hexpart):
                        parts.append(chr(int(hexpart, 16)))
                        self.pos += 3
                        continue
                    raise self._error("invalid \\x escape")
                if esc == "u":
                    hexpart = src[self.pos + 1 : self.pos + 5]
                    if len(hexpart) == 4 and all(c in "0123456789abcdefABCDEF" for c in hexpart):
                        parts.append(chr(int(hexpart, 16)))
                        self.pos += 5
                        continue
                    raise self._error("invalid \\u escape")
                parts.append(self._ESCAPES.get(esc, esc))
                self.pos += 1
                continue
            parts.append(ch)
            self.pos += 1
        raw = src[start : self.pos]
        return Token("string", "".join(parts), raw, line, column)

    def _read_regex(self) -> Token:
        src = self.source
        start = self.pos
        line, column = self.line, self._column
        self.pos += 1  # opening /
        in_class = False
        while True:
            if self.pos >= len(src) or src[self.pos] in LINE_TERMINATORS:
                raise self._error("unterminated regular expression")
            ch = src[self.pos]
            if ch == "\\":
                self.pos += 2
                continue
            if ch == "[":
                in_class = True
            elif ch == "]":
                in_class = False
            elif ch == "/" and not in_class:
                self.pos += 1
                break
            self.pos += 1
        pattern = src[start + 1 : self.pos - 1]
        flag_start = self.pos
        while self.pos < len(src) and _is_identifier_part(src[self.pos]):
            self.pos += 1
        flags = src[flag_start : self.pos]
        raw = src[start : self.pos]
        return Token("regex", (pattern, flags), raw, line, column)

    def _read_punctuator(self) -> Token:
        line, column = self.line, self._column
        for punct in PUNCTUATORS:
            if self.source.startswith(punct, self.pos):
                self.pos += len(punct)
                return Token("punct", punct, punct, line, column)
        raise self._error(f"unexpected character {self.source[self.pos]!r}")


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source`` into a token list terminated by an EOF token."""
    return Tokenizer(source).tokenize()
