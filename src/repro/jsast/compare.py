"""Structural AST comparison.

``ast_equal`` decides whether two trees denote the same program, ignoring
surface details that serialisation legitimately changes (the ``raw`` text
of literals, e.g. ``0x10`` vs ``16``). It is what lets the code generator
guarantee ``parse(to_source(tree)) ≡ tree`` as a hard property rather than
a string-level idempotence check.
"""

from __future__ import annotations

import dataclasses
from typing import Any, List, Optional

from . import nodes as N


def ast_equal(a: Optional[N.Node], b: Optional[N.Node]) -> bool:
    """Whether two AST nodes are structurally identical."""
    return first_difference(a, b) is None


def first_difference(
    a: Optional[N.Node], b: Optional[N.Node], path: str = "$"
) -> Optional[str]:
    """The path of the first structural difference, or ``None`` if equal.

    Useful in test failures: pinpoints *where* two trees diverge instead
    of a bare boolean.
    """
    if a is None or b is None:
        return None if a is b else f"{path}: {a!r} != {b!r}"
    if not isinstance(a, N.Node) or not isinstance(b, N.Node):
        return None if _value_equal(a, b) else f"{path}: {a!r} != {b!r}"
    if a.type != b.type:
        return f"{path}: {a.type} != {b.type}"
    for field in dataclasses.fields(a):
        if field.name == "raw":
            continue  # surface text; not structural
        left = getattr(a, field.name)
        right = getattr(b, field.name)
        sub_path = f"{path}.{field.name}"
        difference = _compare_values(left, right, sub_path)
        if difference is not None:
            return difference
    return None


def _compare_values(left: Any, right: Any, path: str) -> Optional[str]:
    if isinstance(left, N.Node) or isinstance(right, N.Node):
        if not (isinstance(left, N.Node) and isinstance(right, N.Node)):
            return f"{path}: node vs non-node"
        return first_difference(left, right, path)
    if isinstance(left, list) and isinstance(right, list):
        if len(left) != len(right):
            return f"{path}: list length {len(left)} != {len(right)}"
        for index, (l_item, r_item) in enumerate(zip(left, right)):
            difference = _compare_values(l_item, r_item, f"{path}[{index}]")
            if difference is not None:
                return difference
        return None
    return None if _value_equal(left, right) else f"{path}: {left!r} != {right!r}"


def _value_equal(left: Any, right: Any) -> bool:
    # JS number semantics: 1 and 1.0 are the same literal value.
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        if isinstance(left, bool) != isinstance(right, bool):
            return False
        return float(left) == float(right)
    return left == right


def count_differences(a: N.Node, b: N.Node) -> int:
    """Crude distance: number of mismatching subtrees at the top level."""
    if ast_equal(a, b):
        return 0
    a_children: List[N.Node] = list(a.children())
    b_children: List[N.Node] = list(b.children())
    if a.type != b.type or len(a_children) != len(b_children):
        return 1
    total = sum(
        count_differences(ac, bc) for ac, bc in zip(a_children, b_children)
    )
    return max(total, 1)
