"""Static unpacking of dynamically generated JavaScript.

The paper intercepts Chrome V8's ``script.parsed`` hook so that code passed
to ``eval()`` (or injected via ``<script>``/``<iframe>``) is analysed in its
*unpacked* form. We reproduce that behaviour statically: expressions passed
to ``eval``/``Function``/``setTimeout``/``document.write`` are constant-
folded where possible, parsed, and spliced into the surrounding program.
The common Dean Edwards ``p,a,c,k,e,d`` packer is evaluated directly.

The result is the same property the paper relies on: feature extraction
sees the real anti-adblocking logic, not the packer shell.
"""

from __future__ import annotations

import copy
import re
from dataclasses import dataclass, field
from typing import List, Optional, Set

from . import nodes as N
from .parser import ParseError, parse
from .tokenizer import TokenizeError
from .walker import walk_with_ancestors

#: Upper bound on unpacking passes; packers nest but never this deep.
MAX_UNPACK_ROUNDS = 8


@dataclass
class UnpackResult:
    """Outcome of :func:`unpack_program`."""

    program: N.Program
    rounds: int = 0
    unpacked_sources: List[str] = field(default_factory=list)
    #: dynamic payloads that folded to a constant string but did not parse
    #: as JavaScript (each distinct payload counted once) — the unpacker
    #: left them in place rather than splicing their statements in.
    failed_payloads: int = 0
    #: the round cap cut unpacking off while rounds were still changing
    #: the program (reaching a fixed point in exactly the cap is clean)
    hit_round_cap: bool = False

    @property
    def was_packed(self) -> bool:
        """Whether any dynamic code was unpacked."""
        return self.rounds > 0

    @property
    def bailed_out(self) -> bool:
        """Whether unpacking gave up on any payload or was cut off by the cap."""
        return self.failed_payloads > 0 or self.hit_round_cap


def fold_constant_string(node: N.Node) -> Optional[str]:
    """Statically evaluate ``node`` to a string, or return ``None``.

    Handles string/number literals, ``+`` concatenation chains,
    ``String.fromCharCode(...)`` with literal arguments, ``'...'.split('')``
    joins, array ``join`` over literal elements, and parenthesised/sequence
    wrappers. This covers the packer idioms observed in anti-adblock
    deployments.
    """
    if isinstance(node, N.Literal) and node.regex is None:
        if isinstance(node.value, str):
            return node.value
        if isinstance(node.value, float):
            return _js_number_to_string(node.value)
        return None
    if isinstance(node, N.BinaryExpression) and node.operator == "+":
        left = fold_constant_string(node.left)
        right = fold_constant_string(node.right)
        if left is not None and right is not None:
            return left + right
        return None
    if isinstance(node, N.SequenceExpression) and node.expressions:
        return fold_constant_string(node.expressions[-1])
    if isinstance(node, N.CallExpression):
        return _fold_call(node)
    return None


def _js_number_to_string(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(value)


def _fold_call(node: N.CallExpression) -> Optional[str]:
    callee = node.callee
    if not isinstance(callee, N.MemberExpression) or callee.computed:
        return None
    if not isinstance(callee.property, N.Identifier):
        return None
    method = callee.property.name
    if method == "fromCharCode" and _is_member_path(callee.object, ("String",)):
        codes = []
        for arg in node.arguments:
            if isinstance(arg, N.Literal) and isinstance(arg.value, float):
                codes.append(chr(int(arg.value)))
            else:
                return None
        return "".join(codes)
    if method == "join":
        elements = _fold_array_elements(callee.object)
        if elements is None:
            return None
        separator = ","
        if node.arguments:
            folded = fold_constant_string(node.arguments[0])
            if folded is None:
                return None
            separator = folded
        return separator.join(elements)
    if method == "reverse":
        # ``'...'.split('').reverse().join('')`` idiom is handled by join()
        # above through _fold_array_elements; a bare reverse() call cannot
        # itself be a string.
        return None
    if method == "replace" and len(node.arguments) == 2:
        base = fold_constant_string(callee.object)
        target = fold_constant_string(node.arguments[0])
        replacement = fold_constant_string(node.arguments[1])
        if base is not None and target is not None and replacement is not None:
            return base.replace(target, replacement, 1)
    return None


def _fold_array_elements(node: N.Node) -> Optional[List[str]]:
    """Fold an expression into a list of strings, if statically possible."""
    if isinstance(node, N.ArrayExpression):
        elements: List[str] = []
        for element in node.elements:
            if element is None:
                elements.append("")
                continue
            folded = fold_constant_string(element)
            if folded is None:
                return None
            elements.append(folded)
        return elements
    if isinstance(node, N.CallExpression):
        callee = node.callee
        if (
            isinstance(callee, N.MemberExpression)
            and isinstance(callee.property, N.Identifier)
            and not callee.computed
        ):
            if callee.property.name == "split" and len(node.arguments) == 1:
                base = fold_constant_string(callee.object)
                separator = fold_constant_string(node.arguments[0])
                if base is None or separator is None:
                    return None
                if separator == "":
                    return list(base)
                return base.split(separator)
            if callee.property.name == "reverse" and not node.arguments:
                inner = _fold_array_elements(callee.object)
                if inner is None:
                    return None
                return list(reversed(inner))
    return None


def _is_member_path(node: N.Node, path: tuple) -> bool:
    """True when ``node`` spells the dotted identifier path ``path``."""
    parts: List[str] = []
    current = node
    while isinstance(current, N.MemberExpression) and not current.computed:
        if not isinstance(current.property, N.Identifier):
            return False
        parts.append(current.property.name)
        current = current.object
    if isinstance(current, N.Identifier):
        parts.append(current.name)
    else:
        return False
    return tuple(reversed(parts)) == path


_SCRIPT_TAG_RE = re.compile(
    r"<script[^>]*>(?P<body>.*?)</script\s*>", re.IGNORECASE | re.DOTALL
)


def _extract_inline_scripts(html_fragment: str) -> List[str]:
    """Pull inline ``<script>`` bodies out of a document.write payload."""
    return [m.group("body") for m in _SCRIPT_TAG_RE.finditer(html_fragment)]


def _dynamic_code_sources(call: N.CallExpression) -> List[str]:
    """Return the JS source strings a call would dynamically execute."""
    callee = call.callee
    # eval("...")
    if isinstance(callee, N.Identifier) and callee.name == "eval" and call.arguments:
        folded = fold_constant_string(call.arguments[0])
        return [folded] if folded is not None else []
    # window.eval("..."), this.eval is out of scope
    if (
        isinstance(callee, N.MemberExpression)
        and not callee.computed
        and isinstance(callee.property, N.Identifier)
        and callee.property.name == "eval"
        and isinstance(callee.object, N.Identifier)
        and callee.object.name in ("window", "self", "globalThis")
        and call.arguments
    ):
        folded = fold_constant_string(call.arguments[0])
        return [folded] if folded is not None else []
    # new Function("body")() is handled at the NewExpression level; the
    # direct Function("body")() form lands here.
    if isinstance(callee, N.Identifier) and callee.name == "Function" and call.arguments:
        folded = fold_constant_string(call.arguments[-1])
        return [folded] if folded is not None else []
    # setTimeout("code", delay) string form
    if (
        isinstance(callee, N.Identifier)
        and callee.name in ("setTimeout", "setInterval")
        and call.arguments
    ):
        folded = fold_constant_string(call.arguments[0])
        return [folded] if folded is not None else []
    # document.write("<script>...</script>")
    if (
        isinstance(callee, N.MemberExpression)
        and not callee.computed
        and isinstance(callee.property, N.Identifier)
        and callee.property.name in ("write", "writeln")
        and _is_member_path(callee.object, ("document",))
        and call.arguments
    ):
        folded = fold_constant_string(call.arguments[0])
        if folded is None:
            return []
        return _extract_inline_scripts(folded)
    return []


def _try_parse(source: str) -> Optional[N.Program]:
    try:
        return parse(source)
    except (ParseError, TokenizeError):
        return None


def _unpack_packed_packer(program: N.Program) -> Optional[str]:
    """Evaluate the Dean Edwards ``eval(function(p,a,c,k,e,d){...})`` packer.

    Detects the canonical shape and runs the base-N word substitution in
    Python, returning the unpacked source.
    """
    for node, _ancestors in walk_with_ancestors(program):
        if not isinstance(node, N.CallExpression):
            continue
        if not (isinstance(node.callee, N.Identifier) and node.callee.name == "eval"):
            continue
        if len(node.arguments) != 1:
            continue
        inner = node.arguments[0]
        if not isinstance(inner, N.CallExpression):
            continue
        if not isinstance(inner.callee, N.FunctionExpression):
            continue
        params = [p.name for p in inner.callee.params]
        if params[:4] != ["p", "a", "c", "k"]:
            continue
        if len(inner.arguments) < 4:
            continue
        payload = fold_constant_string(inner.arguments[0])
        radix_node = inner.arguments[1]
        count_node = inner.arguments[2]
        words = _fold_array_elements(inner.arguments[3])
        if payload is None or words is None:
            continue
        if not isinstance(radix_node, N.Literal) or not isinstance(count_node, N.Literal):
            continue
        radix = int(radix_node.value)
        return _packed_substitute(payload, radix, words)
    return None


_BASE62 = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"


def _encode_base(value: int, radix: int) -> str:
    if value == 0:
        return _BASE62[0]
    digits = []
    while value:
        digits.append(_BASE62[value % radix])
        value //= radix
    return "".join(reversed(digits))


def _packed_substitute(payload: str, radix: int, words: List[str]) -> str:
    mapping = {}
    for index, word in enumerate(words):
        token = _encode_base(index, radix)
        mapping[token] = word if word else token

    def replace(match: re.Match) -> str:
        """Regex callback substituting packed word tokens."""
        token = match.group(0)
        return mapping.get(token, token)

    return re.sub(r"\b\w+\b", replace, payload)


def unpack_program(program: N.Program) -> UnpackResult:
    """Iteratively splice dynamically generated code into ``program``.

    Each round scans for ``eval``-like calls whose payload folds to a
    constant string, parses the payload, and replaces the call's statement
    with the parsed statements. Rounds repeat until fixpoint or
    :data:`MAX_UNPACK_ROUNDS`.
    """
    rounds = 0
    sources: List[str] = []
    failed: Set[str] = set()
    while rounds < MAX_UNPACK_ROUNDS:
        changed = _unpack_one_round(program, sources, failed)
        if not changed:
            break
        rounds += 1
    hit_cap = False
    if rounds >= MAX_UNPACK_ROUNDS:
        # Hitting the cap is only a bailout when another round would
        # still change something; a program whose fixed point lands in
        # exactly MAX_UNPACK_ROUNDS rounds unpacked cleanly. Probe on a
        # throwaway copy so the returned program stays capped.
        hit_cap = _unpack_one_round(copy.deepcopy(program), [], set())
    return UnpackResult(
        program=program,
        rounds=rounds,
        unpacked_sources=sources,
        failed_payloads=len(failed),
        hit_round_cap=hit_cap,
    )


def _unpack_one_round(program: N.Program, sources: List[str], failed: Set[str]) -> bool:
    packed = _unpack_packed_packer(program)
    if packed is not None:
        parsed = _try_parse(packed)
        if parsed is not None:
            sources.append(packed)
            _remove_packer_statements(program)
            program.body.extend(parsed.body)
            return True
        failed.add(packed)
    for node, ancestors in walk_with_ancestors(program):
        if not isinstance(node, N.CallExpression):
            continue
        payloads = _dynamic_code_sources(node)
        if not payloads:
            continue
        parsed_bodies: List[N.Node] = []
        for payload in payloads:
            parsed = _try_parse(payload)
            if parsed is None:
                failed.add(payload)
                parsed_bodies = []
                break
            sources.append(payload)
            parsed_bodies.extend(parsed.body)
        if not parsed_bodies:
            continue
        if _splice_statements(node, ancestors, parsed_bodies, program):
            return True
    return False


def _remove_packer_statements(program: N.Program) -> None:
    """Drop top-level statements that are pure eval(packer) shells."""
    kept = []
    for statement in program.body:
        if isinstance(statement, N.ExpressionStatement):
            expression = statement.expression
            if (
                isinstance(expression, N.CallExpression)
                and isinstance(expression.callee, N.Identifier)
                and expression.callee.name == "eval"
                and len(expression.arguments) == 1
                and isinstance(expression.arguments[0], N.CallExpression)
                and isinstance(expression.arguments[0].callee, N.FunctionExpression)
            ):
                continue
        kept.append(statement)
    program.body[:] = kept


def _splice_statements(
    call: N.CallExpression,
    ancestors: tuple,
    replacement: List[N.Node],
    program: N.Program,
) -> bool:
    """Replace the statement containing ``call`` with ``replacement``.

    Only splices when the call is the whole expression of an
    ExpressionStatement that sits directly in a statement list; otherwise
    the replacement statements are appended to the program body so the
    unpacked code is still visible to analysis.
    """
    parent = ancestors[-1] if ancestors else None
    if isinstance(parent, N.ExpressionStatement) and parent.expression is call:
        grandparent = ancestors[-2] if len(ancestors) >= 2 else None
        container = None
        if isinstance(grandparent, (N.Program, N.BlockStatement)):
            container = grandparent.body
        elif isinstance(grandparent, N.SwitchCase):
            container = grandparent.consequent
        if container is not None:
            index = next((i for i, s in enumerate(container) if s is parent), None)
            if index is not None:
                container[index : index + 1] = replacement
                return True
        parent.expression = N.Literal(value=None, raw="null")
        program.body.extend(replacement)
        return True
    # The call result is used in an expression context — neutralise the
    # call site and append the unpacked statements for analysis.
    if parent is not None and parent.replace_child(call, N.Literal(value=None, raw="null")):
        program.body.extend(replacement)
        return True
    return False


def unpack_source(source: str) -> UnpackResult:
    """Parse ``source`` and unpack any dynamically generated code."""
    return unpack_program(parse(source))
