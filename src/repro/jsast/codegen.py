"""JavaScript code generation: AST back to source.

Lets callers materialise analysis results — most usefully the *unpacked*
form of an ``eval()``-packed script — as runnable JavaScript. Output is
normalised (semicolons everywhere, canonical spacing), so generating twice
is idempotent: ``gen(parse(gen(tree))) == gen(tree)``.
"""

from __future__ import annotations

from typing import List

from . import nodes as N

#: Precedence table for parenthesisation decisions (mirrors the parser's).
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6,
    "!=": 6,
    "===": 6,
    "!==": 6,
    "<": 7,
    ">": 7,
    "<=": 7,
    ">=": 7,
    "instanceof": 7,
    "in": 7,
    "<<": 8,
    ">>": 8,
    ">>>": 8,
    "+": 9,
    "-": 9,
    "*": 10,
    "/": 10,
    "%": 10,
}

_INDENT = "    "


class CodeGenerator:
    """Serialises an AST subtree into JavaScript source text."""

    def generate(self, node: N.Node) -> str:
        """Serialise a Program (or a single statement) to source text."""
        return self._statements(node.body, 0) if isinstance(node, N.Program) else self._statement(node, 0)

    # -- statements -----------------------------------------------------------

    def _statements(self, body: List[N.Node], depth: int) -> str:
        return "\n".join(self._statement(statement, depth) for statement in body)

    def _statement(self, node: N.Node, depth: int) -> str:
        pad = _INDENT * depth
        method = getattr(self, f"_stmt_{node.type}", None)
        if method is None:
            raise ValueError(f"cannot generate statement {node.type}")
        return pad + method(node, depth)

    def _stmt_ExpressionStatement(self, node: N.ExpressionStatement, depth: int) -> str:
        text = self._expression(node.expression, 0)
        # Guard statements that would parse as declarations/blocks.
        if text.startswith(("function", "{")):
            text = f"({text})"
        return text + ";"

    def _stmt_VariableDeclaration(self, node: N.VariableDeclaration, depth: int) -> str:
        return self._declaration_text(node) + ";"

    def _declaration_text(self, node: N.VariableDeclaration) -> str:
        parts = []
        for declarator in node.declarations:
            text = declarator.id.name
            if declarator.init is not None:
                text += " = " + self._expression(declarator.init, 2)
            parts.append(text)
        return f"{node.kind} " + ", ".join(parts)

    def _stmt_FunctionDeclaration(self, node: N.FunctionDeclaration, depth: int) -> str:
        return self._function_text(node, depth, keyword_name=True)

    def _function_text(self, node, depth: int, keyword_name: bool) -> str:
        name = f" {node.id.name}" if node.id is not None else ""
        params = ", ".join(param.name for param in node.params)
        body = self._block_text(node.body, depth)
        return f"function{name}({params}) {body}"

    def _block_text(self, block: N.BlockStatement, depth: int) -> str:
        if not block.body:
            return "{}"
        inner = self._statements(block.body, depth + 1)
        return "{\n" + inner + "\n" + _INDENT * depth + "}"

    def _stmt_BlockStatement(self, node: N.BlockStatement, depth: int) -> str:
        return self._block_text(node, depth)

    def _stmt_EmptyStatement(self, node: N.EmptyStatement, depth: int) -> str:
        return ";"

    def _stmt_IfStatement(self, node: N.IfStatement, depth: int) -> str:
        text = f"if ({self._expression(node.test, 0)}) "
        text += self._nested(node.consequent, depth)
        if node.alternate is not None:
            text += " else "
            text += self._nested(node.alternate, depth)
        return text

    def _nested(self, statement: N.Node, depth: int) -> str:
        """A statement in if/loop position, rendered without leading pad."""
        if isinstance(statement, N.BlockStatement):
            return self._block_text(statement, depth)
        return self._statement(statement, depth).lstrip()

    def _stmt_ForStatement(self, node: N.ForStatement, depth: int) -> str:
        if node.init is None:
            init = ""
        elif isinstance(node.init, N.VariableDeclaration):
            init = self._declaration_text(node.init)
        else:
            init = self._expression(node.init.expression, 0)
        test = self._expression(node.test, 0) if node.test is not None else ""
        update = self._expression(node.update, 0) if node.update is not None else ""
        return f"for ({init}; {test}; {update}) " + self._nested(node.body, depth)

    def _stmt_ForInStatement(self, node: N.ForInStatement, depth: int) -> str:
        if isinstance(node.left, N.VariableDeclaration):
            left = self._declaration_text(node.left)
        else:
            left = self._expression(node.left, 0)
        right = self._expression(node.right, 0)
        return f"for ({left} in {right}) " + self._nested(node.body, depth)

    def _stmt_WhileStatement(self, node: N.WhileStatement, depth: int) -> str:
        return f"while ({self._expression(node.test, 0)}) " + self._nested(node.body, depth)

    def _stmt_DoWhileStatement(self, node: N.DoWhileStatement, depth: int) -> str:
        return (
            "do "
            + self._nested(node.body, depth)
            + f" while ({self._expression(node.test, 0)});"
        )

    def _stmt_ReturnStatement(self, node: N.ReturnStatement, depth: int) -> str:
        if node.argument is None:
            return "return;"
        return f"return {self._expression(node.argument, 0)};"

    def _stmt_BreakStatement(self, node: N.BreakStatement, depth: int) -> str:
        return f"break {node.label.name};" if node.label else "break;"

    def _stmt_ContinueStatement(self, node: N.ContinueStatement, depth: int) -> str:
        return f"continue {node.label.name};" if node.label else "continue;"

    def _stmt_ThrowStatement(self, node: N.ThrowStatement, depth: int) -> str:
        return f"throw {self._expression(node.argument, 0)};"

    def _stmt_TryStatement(self, node: N.TryStatement, depth: int) -> str:
        text = "try " + self._block_text(node.block, depth)
        if node.handler is not None:
            text += f" catch ({node.handler.param.name}) "
            text += self._block_text(node.handler.body, depth)
        if node.finalizer is not None:
            text += " finally " + self._block_text(node.finalizer, depth)
        return text

    def _stmt_SwitchStatement(self, node: N.SwitchStatement, depth: int) -> str:
        pad = _INDENT * (depth + 1)
        lines = [f"switch ({self._expression(node.discriminant, 0)}) {{"]
        for case in node.cases:
            if case.test is None:
                lines.append(pad + "default:")
            else:
                lines.append(pad + f"case {self._expression(case.test, 0)}:")
            for statement in case.consequent:
                lines.append(self._statement(statement, depth + 2))
        lines.append(_INDENT * depth + "}")
        return "\n".join(lines)

    def _stmt_LabeledStatement(self, node: N.LabeledStatement, depth: int) -> str:
        return f"{node.label.name}: " + self._nested(node.body, depth)

    def _stmt_DebuggerStatement(self, node: N.DebuggerStatement, depth: int) -> str:
        return "debugger;"

    def _stmt_WithStatement(self, node: N.WithStatement, depth: int) -> str:
        return f"with ({self._expression(node.object, 0)}) " + self._nested(node.body, depth)

    # -- expressions -------------------------------------------------------------

    def _expression(self, node: N.Node, parent_precedence: int) -> str:
        method = getattr(self, f"_expr_{node.type}", None)
        if method is None:
            raise ValueError(f"cannot generate expression {node.type}")
        return method(node, parent_precedence)

    def _expr_Identifier(self, node: N.Identifier, _p: int) -> str:
        return node.name

    def _expr_Literal(self, node: N.Literal, _p: int) -> str:
        if node.regex is not None:
            pattern, flags = node.regex
            return f"/{pattern}/{flags}"
        value = node.value
        if value is None:
            return "null"
        if isinstance(value, bool):
            return "true" if value else "false"
        if isinstance(value, float):
            return str(int(value)) if value == int(value) and abs(value) < 1e15 else repr(value)
        escaped = (
            str(value)
            .replace("\\", "\\\\")
            .replace("'", "\\'")
            .replace("\n", "\\n")
            .replace("\r", "\\r")
            .replace("\t", "\\t")
        )
        return f"'{escaped}'"

    def _expr_ThisExpression(self, node: N.ThisExpression, _p: int) -> str:
        return "this"

    def _expr_ArrayExpression(self, node: N.ArrayExpression, _p: int) -> str:
        elements = [
            "" if element is None else self._expression(element, 2)
            for element in node.elements
        ]
        return "[" + ", ".join(elements) + "]"

    def _expr_ObjectExpression(self, node: N.ObjectExpression, _p: int) -> str:
        if not node.properties:
            return "{}"
        parts = []
        for prop in node.properties:
            key = (
                self._expression(prop.key, 0)
                if isinstance(prop.key, N.Literal)
                else prop.key.name
            )
            if prop.kind in ("get", "set"):
                fn = prop.value
                params = ", ".join(param.name for param in fn.params)
                parts.append(f"{prop.kind} {key}({params}) {self._block_text(fn.body, 0)}")
            else:
                parts.append(f"{key}: {self._expression(prop.value, 2)}")
        return "{ " + ", ".join(parts) + " }"

    def _expr_FunctionExpression(self, node: N.FunctionExpression, _p: int) -> str:
        return self._function_text(node, 0, keyword_name=False)

    def _expr_UnaryExpression(self, node: N.UnaryExpression, _p: int) -> str:
        space = " " if node.operator.isalpha() else ""
        argument = self._expression(node.argument, 11)
        if self._needs_parens(node.argument, 11):
            argument = f"({argument})"
        return f"{node.operator}{space}{argument}"

    def _expr_UpdateExpression(self, node: N.UpdateExpression, _p: int) -> str:
        argument = self._expression(node.argument, 15)
        return (
            f"{node.operator}{argument}" if node.prefix else f"{argument}{node.operator}"
        )

    def _binaryish(self, node, _p: int) -> str:
        precedence = _PRECEDENCE[node.operator]
        left = self._expression(node.left, precedence)
        if self._needs_parens(node.left, precedence):
            left = f"({left})"
        right = self._expression(node.right, precedence + 1)
        if self._needs_parens(node.right, precedence + 1):
            right = f"({right})"
        return f"{left} {node.operator} {right}"

    _expr_BinaryExpression = _binaryish
    _expr_LogicalExpression = _binaryish

    def _needs_parens(self, node: N.Node, minimum: int) -> bool:
        if isinstance(node, (N.BinaryExpression, N.LogicalExpression)):
            return _PRECEDENCE[node.operator] < minimum
        if isinstance(node, (N.AssignmentExpression, N.ConditionalExpression, N.SequenceExpression)):
            return minimum > 0
        if isinstance(node, (N.UnaryExpression,)):
            return minimum > 11
        if isinstance(node, N.FunctionExpression):
            return True
        return False

    def _expr_AssignmentExpression(self, node: N.AssignmentExpression, parent: int) -> str:
        left = self._expression(node.left, 15)
        right = self._expression(node.right, 1)
        text = f"{left} {node.operator} {right}"
        return f"({text})" if parent > 1 else text

    def _expr_ConditionalExpression(self, node: N.ConditionalExpression, parent: int) -> str:
        test = self._expression(node.test, 2)
        if self._needs_parens(node.test, 2):
            test = f"({test})"
        consequent = self._expression(node.consequent, 1)
        alternate = self._expression(node.alternate, 1)
        text = f"{test} ? {consequent} : {alternate}"
        return f"({text})" if parent > 1 else text

    def _expr_SequenceExpression(self, node: N.SequenceExpression, parent: int) -> str:
        text = ", ".join(self._expression(e, 1) for e in node.expressions)
        return f"({text})" if parent > 0 else text

    def _expr_CallExpression(self, node: N.CallExpression, _p: int) -> str:
        callee = self._expression(node.callee, 17)
        if isinstance(node.callee, (N.FunctionExpression,)) or self._needs_parens(node.callee, 17):
            callee = f"({callee})"
        arguments = ", ".join(self._expression(a, 2) for a in node.arguments)
        return f"{callee}({arguments})"

    def _expr_NewExpression(self, node: N.NewExpression, _p: int) -> str:
        callee = self._expression(node.callee, 18)
        if isinstance(node.callee, (N.CallExpression, N.FunctionExpression)):
            callee = f"({callee})"
        arguments = ", ".join(self._expression(a, 2) for a in node.arguments)
        return f"new {callee}({arguments})"

    def _expr_MemberExpression(self, node: N.MemberExpression, _p: int) -> str:
        obj = self._expression(node.object, 17)
        needs = self._needs_parens(node.object, 17) or isinstance(
            node.object, (N.FunctionExpression, N.ObjectExpression)
        )
        if isinstance(node.object, N.Literal) and isinstance(node.object.value, float):
            needs = True
        if needs:
            obj = f"({obj})"
        if node.computed:
            return f"{obj}[{self._expression(node.property, 0)}]"
        return f"{obj}.{node.property.name}"


def to_source(node: N.Node) -> str:
    """Serialise ``node`` (usually a Program) to JavaScript source."""
    return CodeGenerator().generate(node)
