"""CLI of the serve layer: ``python -m repro serve [loadgen] ...``.

Two subcommands:

- (default) boot the daemon: resolve state through the artifact graph,
  bind, print ``serving on HOST:PORT`` (and optionally write a ready
  file), then run until a ``shutdown`` request or SIGINT. With
  ``--shards N`` (or ``REPRO_SERVE_SHARDS``) >= 2 the boot goes through
  the shard supervisor instead: the state is packed once into a
  snapshot container (``--snapshot PATH``, or a temp file) and N full
  daemon processes accept on one kernel-balanced port;
- ``loadgen`` — drive a running daemon with the deterministic query
  stream of :mod:`repro.serve.loadgen` and report QPS + p50/p99,
  optionally writing the summary JSON (``BENCH_serve.json`` shape).
  ``--shards N`` spreads connections so every shard sees traffic.

See docs/SERVING.md for the full runbook.
"""

from __future__ import annotations

import json
import sys
from typing import List, Optional

from ..obs.config import (
    serve_batch_size,
    serve_port,
    serve_shards,
    serve_wait_ms,
    serve_workers,
)


class _CliError(Exception):
    """A bad command line (message to stderr, exit status 2)."""


def _take_value(args: List[str], flag: str, arg: str) -> str:
    if arg.startswith(flag + "="):
        return arg.split("=", 1)[1]
    if not args:
        raise _CliError(f"{flag} requires a value")
    return args.pop(0)


def _serve_args(argv: List[str]) -> dict:
    opts = {
        "host": "127.0.0.1",
        "port": None,
        "workers": None,
        "batch": None,
        "wait_ms": None,
        "ready_file": None,
        "metrics_out": None,
        "shards": None,
        "snapshot": None,
        "help": False,
    }
    args = list(argv)
    while args:
        arg = args.pop(0)
        if arg in ("--help", "-h"):
            opts["help"] = True
        elif arg == "--host" or arg.startswith("--host="):
            opts["host"] = _take_value(args, "--host", arg)
        elif arg == "--port" or arg.startswith("--port="):
            opts["port"] = int(_take_value(args, "--port", arg))
        elif arg == "--workers" or arg.startswith("--workers="):
            opts["workers"] = int(_take_value(args, "--workers", arg))
        elif arg == "--batch" or arg.startswith("--batch="):
            opts["batch"] = int(_take_value(args, "--batch", arg))
        elif arg == "--wait-ms" or arg.startswith("--wait-ms="):
            opts["wait_ms"] = float(_take_value(args, "--wait-ms", arg))
        elif arg == "--shards" or arg.startswith("--shards="):
            opts["shards"] = int(_take_value(args, "--shards", arg))
        elif arg == "--snapshot" or arg.startswith("--snapshot="):
            opts["snapshot"] = _take_value(args, "--snapshot", arg)
        elif arg == "--ready-file" or arg.startswith("--ready-file="):
            opts["ready_file"] = _take_value(args, "--ready-file", arg)
        elif arg == "--metrics-out" or arg.startswith("--metrics-out="):
            opts["metrics_out"] = _take_value(args, "--metrics-out", arg)
        else:
            raise _CliError(f"unknown serve option: {arg}")
    return opts


def serve_main(argv: List[str]) -> int:
    """Boot the daemon and block until shutdown."""
    try:
        opts = _serve_args(argv)
    except (_CliError, ValueError) as error:
        print(str(error), file=sys.stderr)
        return 2
    if opts["help"]:
        print(__doc__)
        return 0

    shards = opts["shards"] if opts["shards"] is not None else serve_shards()
    if shards >= 2:
        return _serve_sharded(opts, shards)

    from .daemon import ServeDaemon, build_engine, resolve_serve_state

    if opts["snapshot"]:
        state = _snapshot_state(opts["snapshot"])
    else:
        state = resolve_serve_state()
    engine = build_engine(state, workers=opts["workers"])
    daemon = ServeDaemon(
        engine,
        host=opts["host"],
        port=opts["port"] if opts["port"] is not None else serve_port(),
        batch_size=opts["batch"],
        wait_ms=opts["wait_ms"],
    )
    host, port = daemon.start()
    print(f"serving on {host}:{port}", flush=True)
    if opts["ready_file"]:
        with open(opts["ready_file"], "w", encoding="utf-8") as handle:
            json.dump({"host": host, "port": port}, handle)
    try:
        daemon.wait()
    except KeyboardInterrupt:
        daemon.stop()
    if opts["metrics_out"]:
        _write_manifest(opts["metrics_out"], daemon, state.seed)
    return 0


def _snapshot_state(path: str):
    """Boot state from a snapshot container, publishing it if missing."""
    import os

    from .snapshot import publish_snapshot, read_state

    if not os.path.exists(path):
        publish_snapshot(path)
    return read_state(path)


def _serve_sharded(opts: dict, shards: int) -> int:
    """Boot the shard supervisor: one snapshot, N daemon processes."""
    import os
    import shutil
    import tempfile

    from .shard import ShardSupervisor
    from .snapshot import SNAPSHOT_BASENAME, SnapshotReader, publish_snapshot

    snapshot_path = opts["snapshot"]
    temp_dir = None
    if not snapshot_path:
        temp_dir = tempfile.mkdtemp(prefix="repro-serve-")
        snapshot_path = os.path.join(temp_dir, SNAPSHOT_BASENAME)
    if not os.path.exists(snapshot_path):
        publish_snapshot(snapshot_path)
    with SnapshotReader(snapshot_path) as reader:
        seed = reader.seed
    supervisor = ShardSupervisor(
        snapshot_path,
        shards,
        host=opts["host"],
        port=opts["port"] if opts["port"] is not None else serve_port(),
        batch_size=opts["batch"],
        wait_ms=opts["wait_ms"],
        workers=opts["workers"] if opts["workers"] is not None else serve_workers(),
    )
    try:
        host, port = supervisor.start()
        print(f"serving on {host}:{port} ({shards} shards)", flush=True)
        if opts["ready_file"]:
            with open(opts["ready_file"], "w", encoding="utf-8") as handle:
                json.dump(supervisor.describe(), handle)
        try:
            supervisor.wait()
        except KeyboardInterrupt:
            supervisor.stop()
        if opts["metrics_out"]:
            _write_manifest(opts["metrics_out"], supervisor, seed)
    finally:
        supervisor.stop()
        if temp_dir is not None:
            shutil.rmtree(temp_dir, ignore_errors=True)
    return 0


def _write_manifest(path: str, daemon, seed: int) -> None:
    from ..obs import RunManifest, config_snapshot, get_metrics

    manifest = RunManifest(path)
    manifest.finalize(
        seed=seed,
        config=config_snapshot().as_dict(),
        metrics=get_metrics().as_dict(),
        extra={"serve": daemon.serve_section()},
    )


def _loadgen_args(argv: List[str]) -> dict:
    opts = {
        "host": "127.0.0.1",
        "port": None,
        "queries": 500,
        "seed": 0,
        "concurrency": 8,
        "batch": 1,
        "shards": None,
        "out": None,
        "shutdown": False,
        "help": False,
    }
    args = list(argv)
    while args:
        arg = args.pop(0)
        if arg in ("--help", "-h"):
            opts["help"] = True
        elif arg == "--host" or arg.startswith("--host="):
            opts["host"] = _take_value(args, "--host", arg)
        elif arg == "--port" or arg.startswith("--port="):
            opts["port"] = int(_take_value(args, "--port", arg))
        elif arg in ("-n", "--queries") or arg.startswith("--queries="):
            opts["queries"] = int(_take_value(args, "--queries", arg))
        elif arg == "--seed" or arg.startswith("--seed="):
            opts["seed"] = int(_take_value(args, "--seed", arg))
        elif arg == "--concurrency" or arg.startswith("--concurrency="):
            opts["concurrency"] = int(_take_value(args, "--concurrency", arg))
        elif arg == "--batch" or arg.startswith("--batch="):
            opts["batch"] = int(_take_value(args, "--batch", arg))
        elif arg == "--shards" or arg.startswith("--shards="):
            opts["shards"] = int(_take_value(args, "--shards", arg))
        elif arg == "--out" or arg.startswith("--out="):
            opts["out"] = _take_value(args, "--out", arg)
        elif arg == "--shutdown":
            opts["shutdown"] = True
        else:
            raise _CliError(f"unknown loadgen option: {arg}")
    return opts


def loadgen_main(argv: List[str]) -> int:
    """Run the network load generator against a live daemon."""
    try:
        opts = _loadgen_args(argv)
    except (_CliError, ValueError) as error:
        print(str(error), file=sys.stderr)
        return 2
    if opts["help"]:
        print(__doc__)
        return 0
    port = opts["port"] if opts["port"] is not None else serve_port()

    from . import protocol
    from .loadgen import generate_queries, run_network

    queries = generate_queries(opts["seed"], opts["queries"])
    summary = run_network(
        opts["host"],
        port,
        queries,
        concurrency=opts["concurrency"],
        batch_size=opts["batch"],
        shards=opts["shards"],
    )
    if opts["out"]:
        with open(opts["out"], "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
    print(
        f"loadgen: {summary['queries']} queries in {summary['wall_s']:.3f}s "
        f"({summary['qps']:.0f} qps), p50 {summary['p50_ns']}ns "
        f"p99 {summary['p99_ns']}ns, {summary['errors']} errors, "
        f"{summary['reconnects']} reconnects"
        + (
            f", {summary['shards_hit']}/{opts['shards']} shards hit"
            if "shards_hit" in summary
            else ""
        )
        + (" (workers timed out)" if summary.get("timed_out") else ""),
        flush=True,
    )
    if opts["shutdown"]:
        with protocol.ServeClient(opts["host"], port) as client:
            client.ask({"op": "shutdown"})
    return 0 if summary["errors"] == 0 and not summary.get("timed_out") else 1


def main(argv: Optional[List[str]] = None) -> int:
    """Dispatch ``serve`` subcommands."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "loadgen":
        return loadgen_main(argv[1:])
    if argv and argv[0] in ("serve", "daemon"):
        argv = argv[1:]
    return serve_main(argv)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
