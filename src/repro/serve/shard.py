"""Socket-sharded serving: N daemon processes, one port, one snapshot.

The single-process daemon is GIL-bound: one core caps throughput no
matter how many the host has. The shard supervisor buys horizontal
scale with the two oldest tricks in the serving book:

- **One port, N acceptors.** Every shard is a full
  :class:`~repro.serve.daemon.ServeDaemon` accepting on the *same*
  ``(host, port)``. With ``SO_REUSEPORT`` (Linux >= 3.9, the default
  path) each shard binds its own listening socket and the kernel
  load-balances incoming connections across them — no userspace
  dispatcher on the hot path. Where ``SO_REUSEPORT`` is unavailable the
  supervisor binds one listening socket *before* forking and every
  shard inherits and accepts on it (the classic pre-fork fallback).
- **One snapshot, N mmaps.** The supervisor resolves the serving state
  once (graph nodes ``serve:snapshot`` / ``serve:detector``), packs it
  into a ``kind=snapshot`` RDPK container
  (:mod:`repro.serve.snapshot`), and every shard boots by mmap'ing
  that file read-only — after the first boot faults the pages in,
  shard boots and post-crash *respawns* are page-cache reads, not N
  graph resolutions.

The supervisor owns the control plane on a private loopback port
(each shard also opens its own private control listener, so control
traffic never races the kernel's query balancing):

- ``health``  — fans out to every shard, sums the counter quartet,
  reports the minimum epoch, the per-shard epoch vector, and the
  respawn count;
- ``metrics`` — fans out, merges counters (sum), gauges (max), and
  histograms (bucket-wise, via :class:`~repro.obs.hist.Histogram`),
  and keeps a per-shard breakdown under ``serve.shard.<i>.*``;
- ``reload``  — broadcasts the delta to every shard in parallel and
  reports a per-shard ``{shard, epoch, drained}`` vector (the delta is
  recorded first, so a shard respawned mid-broadcast replays it and
  still lands on the same epoch);
- ``shutdown`` — stops shards, the monitor, and the control listener.

A dead shard is detected by the monitor thread, logged, counted
(``serve.shard_restarts``), and respawned from the snapshot with the
full delta history replayed — same rules, same epoch, same answers.
"""

from __future__ import annotations

import logging
import os
import socket
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..obs.hist import Histogram, merge_histogram_dicts
from ..obs.metrics import get_metrics, reset_metrics
from . import protocol
from .daemon import SERVE_COUNTERS, ServeDaemon, _Handler, _Server, build_engine
from .snapshot import read_state

logger = logging.getLogger("repro.serve.shard")

#: Seconds a freshly forked shard gets to report its control port.
BOOT_TIMEOUT = 60.0

#: Seconds between monitor sweeps for dead shards.
MONITOR_INTERVAL = 0.2


def reuse_port_available() -> bool:
    """Whether this platform supports ``SO_REUSEPORT`` binds."""
    if not hasattr(socket, "SO_REUSEPORT"):
        return False
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        probe.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        return True
    except OSError:
        return False
    finally:
        probe.close()


@dataclass
class _ShardConfig:
    """Everything a forked shard needs to boot (passed by fork, not pickle)."""

    index: int
    snapshot_path: str
    host: str
    port: int
    reuse_port: bool
    listen_socket: Optional[socket.socket]
    batch_size: Optional[int]
    wait_ms: Optional[float]
    workers: int
    deltas: List[Tuple[Tuple[str, ...], Tuple[str, ...]]] = field(default_factory=list)


def _shard_main(config: _ShardConfig, ready_conn) -> None:
    """The forked shard body: boot from the snapshot, serve until shutdown."""
    # The fork copied the supervisor's registry (its own boot counters,
    # restart counts, ...) — a shard's registry must start empty so the
    # merged view never double-counts.
    reset_metrics()
    state = read_state(config.snapshot_path)
    engine = build_engine(state, workers=config.workers)
    daemon = ServeDaemon(
        engine,
        host=config.host,
        port=config.port,
        batch_size=config.batch_size,
        wait_ms=config.wait_ms,
        reuse_port=config.reuse_port,
        listen_socket=config.listen_socket,
        shard_index=config.index,
    )
    # Replay the supervisor's reload history before accepting traffic, so
    # a respawned shard reaches the same epoch (and the same answers) as
    # its siblings before the kernel balances any connection to it.
    for added, removed in config.deltas:
        daemon.reload(list(added), list(removed))
    daemon.start()
    control_host, control_port = daemon.add_listener("127.0.0.1", 0)
    ready_conn.send(
        {
            "pid": os.getpid(),
            "control_host": control_host,
            "control_port": control_port,
            "epoch": engine.chain.current.index,
        }
    )
    ready_conn.close()
    try:
        daemon.wait()
    except KeyboardInterrupt:
        daemon.stop()


@dataclass
class ShardHandle:
    """The supervisor's view of one live shard process."""

    index: int
    process: Any
    pid: int
    control_host: str
    control_port: int
    boot_ms: float


class ShardSupervisor:
    """Forks, monitors, and fronts N daemon shards over one query port."""

    def __init__(
        self,
        snapshot_path: Union[str, Path],
        shards: int,
        host: str = "127.0.0.1",
        port: int = 0,
        batch_size: Optional[int] = None,
        wait_ms: Optional[float] = None,
        workers: int = 0,
        reuse_port: Optional[bool] = None,
        restart: bool = True,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shard count must be >= 1, got {shards}")
        import multiprocessing

        try:
            self._mp = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-fork platforms
            raise RuntimeError(
                "shard supervisor requires the fork start method"
            ) from exc
        self.snapshot_path = str(snapshot_path)
        self.shard_count = shards
        self.host = host
        self.port = port
        self.batch_size = batch_size
        self.wait_ms = wait_ms
        self.workers = workers
        self.restart = restart
        #: None = autodetect; resolved at :meth:`start`.
        self.reuse_port = reuse_port
        self.control_port: Optional[int] = None
        self.shards: List[ShardHandle] = []
        self._anchor: Optional[socket.socket] = None
        self._listen_socket: Optional[socket.socket] = None
        self._control: Optional[_Server] = None
        self._threads: List[threading.Thread] = []
        self._lock = threading.RLock()
        self._reload_lock = threading.Lock()
        self._deltas: List[Tuple[Tuple[str, ...], Tuple[str, ...]]] = []
        self._stopping = threading.Event()
        self._stopped = threading.Event()
        self._final_counters: Optional[Dict[str, int]] = None
        self._last_epoch = 0
        self.ready = threading.Event()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> Tuple[str, int]:
        """Bind the shared port, fork the shards, open the control plane.

        Returns the query ``(host, port)`` every shard accepts on.
        """
        if self.reuse_port is None:
            self.reuse_port = reuse_port_available()
        if self.reuse_port:
            # Reserve the port without accepting: a bound, never-listening
            # SO_REUSEPORT socket keeps the address stable across shard
            # deaths (the port cannot be lost while the anchor holds it).
            self._anchor = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            self._anchor.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            self._anchor.bind((self.host, self.port))
            self.host, self.port = self._anchor.getsockname()[:2]
        else:
            # Pre-fork fallback: one listener, inherited by every shard.
            self._listen_socket = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            self._listen_socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            self._listen_socket.bind((self.host, self.port))
            self._listen_socket.listen(128)
            # A shared blocking accept can strand a shard's serve loop (a
            # sibling wins the race); a short timeout turns the loss into
            # a retry. Accepted connections come back blocking.
            self._listen_socket.settimeout(0.5)
            self.host, self.port = self._listen_socket.getsockname()[:2]
        logger.info(
            "shard supervisor binding %s:%d (%d shards, %s)",
            self.host,
            self.port,
            self.shard_count,
            "SO_REUSEPORT" if self.reuse_port else "pre-fork shared listener",
        )
        with self._lock:
            self.shards = [self._spawn(index) for index in range(self.shard_count)]
        self._control = _Server(("127.0.0.1", 0), _Handler)
        self._control.daemon = self  # type: ignore[attr-defined]
        control_thread = threading.Thread(
            target=self._control.serve_forever, name="shard-control", daemon=True
        )
        control_thread.start()
        self._threads.append(control_thread)
        self.control_port = self._control.server_address[1]
        monitor = threading.Thread(
            target=self._monitor_loop, name="shard-monitor", daemon=True
        )
        monitor.start()
        self._threads.append(monitor)
        get_metrics().gauge("serve.shards", self.shard_count)
        self.ready.set()
        return self.host, self.port

    def _spawn(self, index: int) -> ShardHandle:
        """Fork one shard and wait for its ready handshake."""
        recv_end, send_end = self._mp.Pipe(duplex=False)
        config = _ShardConfig(
            index=index,
            snapshot_path=self.snapshot_path,
            host=self.host,
            port=self.port,
            reuse_port=bool(self.reuse_port),
            listen_socket=self._listen_socket,
            batch_size=self.batch_size,
            wait_ms=self.wait_ms,
            workers=self.workers,
            deltas=list(self._deltas),
        )
        started = time.perf_counter()
        process = self._mp.Process(
            target=_shard_main,
            args=(config, send_end),
            name=f"repro-serve-shard-{index}",
            # Worker pools fork from the shard, and daemonic processes
            # cannot have children — only pool-less shards get the
            # die-with-the-supervisor safety of a daemonic process.
            daemon=self.workers < 2,
        )
        process.start()
        send_end.close()
        try:
            if not recv_end.poll(BOOT_TIMEOUT):
                process.terminate()
                raise RuntimeError(
                    f"shard {index} did not report ready within {BOOT_TIMEOUT:.0f}s"
                )
            info = recv_end.recv()
        finally:
            recv_end.close()
        boot_ms = (time.perf_counter() - started) * 1000.0
        logger.info(
            "shard %d up (pid %d, control port %d, epoch %d, %.0f ms)",
            index,
            info["pid"],
            info["control_port"],
            info["epoch"],
            boot_ms,
        )
        return ShardHandle(
            index=index,
            process=process,
            pid=info["pid"],
            control_host=info["control_host"],
            control_port=info["control_port"],
            boot_ms=boot_ms,
        )

    def _monitor_loop(self) -> None:
        """Detect dead shards; log, count, and respawn them."""
        while not self._stopping.wait(MONITOR_INTERVAL):
            with self._lock:
                handles = list(self.shards)
            for handle in handles:
                if handle.process.is_alive() or self._stopping.is_set():
                    continue
                with self._lock:
                    if self._stopping.is_set() or self.shards[handle.index] is not handle:
                        continue
                    exitcode = handle.process.exitcode
                    get_metrics().count("serve.shard_restarts")
                    logger.warning(
                        "shard %d (pid %d) died with exit code %s; %s",
                        handle.index,
                        handle.pid,
                        exitcode,
                        "respawning from snapshot" if self.restart else "not restarting",
                    )
                    if not self.restart:
                        continue
                    try:
                        self.shards[handle.index] = self._spawn(handle.index)
                    except Exception:
                        logger.exception("shard %d respawn failed", handle.index)

    def stop(self) -> None:
        """Stop every shard, the monitor, and the control listener."""
        if self._stopping.is_set():
            self._stopped.wait(30.0)
            return
        # Capture the final merged counters while the shards can still
        # answer — the manifest's serve section outlives them.
        try:
            self._final_counters = self._merged_counters()
        except Exception:  # pragma: no cover - shards already gone
            self._final_counters = {name: 0 for name in SERVE_COUNTERS}
        self._stopping.set()
        with self._lock:
            handles = list(self.shards)
        for handle in handles:
            try:
                self._ask_shard(handle, {"op": "shutdown"}, timeout=5.0)
            except OSError:
                pass
        for handle in handles:
            handle.process.join(10.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(5.0)
        if self._control is not None:
            self._control.shutdown()
            self._control.server_close()
            self._control = None
        if self._anchor is not None:
            self._anchor.close()
            self._anchor = None
        if self._listen_socket is not None:
            self._listen_socket.close()
            self._listen_socket = None
        self._stopped.set()
        logger.info("shard supervisor stopped")

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the supervisor is stopped."""
        return self._stopped.wait(timeout)

    def shard_pids(self) -> List[int]:
        """The live shard PIDs, by shard index."""
        with self._lock:
            return [handle.pid for handle in self.shards]

    def describe(self) -> Dict[str, Any]:
        """Boot facts for ready files and benchmarks."""
        with self._lock:
            return {
                "host": self.host,
                "port": self.port,
                "control_port": self.control_port,
                "shards": self.shard_count,
                "reuse_port": bool(self.reuse_port),
                "shard_pids": [handle.pid for handle in self.shards],
                "boot_ms": [round(handle.boot_ms, 3) for handle in self.shards],
            }

    # -- shard RPC -----------------------------------------------------------

    def _ask_shard(
        self, handle: ShardHandle, message: Dict[str, Any], timeout: float = 30.0
    ) -> Dict[str, Any]:
        """One request to one shard's private control port."""
        with protocol.ServeClient(
            handle.control_host, handle.control_port, timeout=timeout
        ) as client:
            return client.ask(message)

    def _fan_out(
        self, message: Dict[str, Any], timeout: float = 30.0
    ) -> List[Dict[str, Any]]:
        """Ask every shard in parallel; dead shards yield error frames."""
        with self._lock:
            handles = list(self.shards)
        results: List[Dict[str, Any]] = [
            protocol.error_response("shard did not answer") for _ in handles
        ]

        def one(slot: int, handle: ShardHandle) -> None:
            try:
                results[slot] = self._ask_shard(handle, message, timeout)
            except (OSError, ValueError) as exc:
                results[slot] = protocol.error_response(
                    f"shard {handle.index}: {exc}"
                )

        threads = [
            threading.Thread(target=one, args=(slot, handle), daemon=True)
            for slot, handle in enumerate(handles)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout + 5.0)
        return results

    def _merged_counters(self) -> Dict[str, int]:
        """The counter quartet summed across every answering shard."""
        merged = {name: 0 for name in SERVE_COUNTERS}
        for response in self._fan_out({"op": "health"}, timeout=10.0):
            if not response.get("ok"):
                continue
            for name in SERVE_COUNTERS:
                merged[name] += int(response.get(name, 0))
        return merged

    # -- control plane -------------------------------------------------------

    def dispatch(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Route one control request (the supervisor's ``_Server`` plane)."""
        op = message.get("op")
        if op == "health":
            return protocol.ok_response(op, **self.health())
        if op == "metrics":
            return protocol.ok_response(op, metrics=self.metrics_summary())
        if op == "reload":
            return self.reload(
                message.get("added", []) or [], message.get("removed", []) or []
            )
        if op == "shutdown":
            threading.Thread(target=self.stop, daemon=True).start()
            return protocol.ok_response(op, stopping=True)
        if op in protocol.QUERY_OPS or op == protocol.BATCH_OP:
            return protocol.error_response(
                f"queries go to the shared query port {self.host}:{self.port}; "
                "this is the shard control port",
                op,
            )
        return protocol.error_response(f"unknown op: {op!r}", op)

    def health(self) -> Dict[str, Any]:
        """Merged readiness: all shards answering "ok" or the truth."""
        responses = self._fan_out({"op": "health"}, timeout=10.0)
        counters = {name: 0 for name in SERVE_COUNTERS}
        epochs: List[Optional[int]] = []
        rules = 0
        workers = 0
        healthy = 0
        for response in responses:
            if not response.get("ok"):
                epochs.append(None)
                continue
            epochs.append(int(response.get("epoch", 0)))
            if response.get("status") == "ok":
                healthy += 1
            rules = max(rules, int(response.get("rules", 0)))
            workers += int(response.get("workers", 0))
            for name in SERVE_COUNTERS:
                counters[name] += int(response.get(name, 0))
        live_epochs = [epoch for epoch in epochs if epoch is not None]
        if live_epochs:
            self._last_epoch = min(live_epochs)
        if self._stopping.is_set():
            status = "stopping"
        elif healthy == len(responses) and responses:
            status = "ok"
        elif not self.ready.is_set():
            status = "starting"
        else:
            status = "degraded"
        return {
            "status": status,
            "epoch": self._last_epoch,
            "shards": self.shard_count,
            "shard_epochs": epochs,
            "restarts": get_metrics().counter("serve.shard_restarts"),
            "rules": rules,
            "workers": workers,
            **counters,
        }

    def metrics_summary(self) -> Dict[str, Any]:
        """Fan out ``metrics`` and merge: sum/max/bucket-wise plus breakdown.

        Counters sum, gauges take the max, histograms merge bucket-wise —
        the same order-insensitive semantics as
        :meth:`~repro.obs.metrics.MetricsRegistry.merge` — and every
        shard's own counters and gauges are kept under
        ``serve.shard.<i>.*`` so a hot or dying shard is visible.
        """
        responses = self._fan_out({"op": "metrics"}, timeout=10.0)
        counters: Dict[str, int] = {}
        gauges: Dict[str, Any] = {}
        histograms: Dict[str, Dict[str, object]] = {}
        for index, response in enumerate(responses):
            if not response.get("ok"):
                continue
            shard_metrics = response.get("metrics", {}) or {}
            for name, value in sorted(shard_metrics.get("counters", {}).items()):
                counters[name] = counters.get(name, 0) + int(value)
                counters[_shard_metric(name, index)] = int(value)
            for name, value in sorted(shard_metrics.get("gauges", {}).items()):
                gauges[name] = max(gauges.get(name, value), value)
                gauges[_shard_metric(name, index)] = value
            merge_histogram_dicts(histograms, shard_metrics.get("histograms", {}))
        # The supervisor's own serve.* slice (restart counter, shard
        # gauge) joins the merged view.
        own = get_metrics().as_dict()
        for name, value in own["counters"].items():
            if name.startswith("serve."):
                counters[name] = counters.get(name, 0) + int(value)
        for name, value in own["gauges"].items():
            if name.startswith("serve."):
                gauges[name] = max(gauges.get(name, value), value)
        summary: Dict[str, Any] = {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }
        latency = histograms.get("serve.latency_ns")
        if latency is not None:
            summary["latency_ns"] = Histogram.from_dict(latency).quantiles()
        return summary

    def reload(self, added: Sequence[str], removed: Sequence[str]) -> Dict[str, Any]:
        """Broadcast one delta to every shard; report the per-shard vector.

        The delta joins the respawn history *before* the broadcast: a
        shard that dies mid-broadcast answers with an error here, but
        its respawn replays the recorded delta and still converges on
        the same epoch as its siblings.
        """
        added = list(added)
        removed = list(removed)
        with self._reload_lock:
            with self._lock:
                self._deltas.append((tuple(added), tuple(removed)))
            responses = self._fan_out(
                protocol.reload_request(added, removed), timeout=60.0
            )
        vector = []
        epochs = []
        drained_all = True
        for index, response in enumerate(responses):
            entry = {
                "shard": index,
                "ok": bool(response.get("ok")),
                "epoch": response.get("epoch"),
                "drained": response.get("drained"),
            }
            if response.get("ok"):
                epochs.append(int(response.get("epoch", 0)))
                drained_all = drained_all and bool(response.get("drained"))
            else:
                entry["error"] = response.get("error")
                drained_all = False
            vector.append(entry)
        if epochs:
            self._last_epoch = min(epochs)
        first_ok = next((r for r in responses if r.get("ok")), {})
        return protocol.ok_response(
            "reload",
            epoch=self._last_epoch,
            shards=vector,
            drained=drained_all,
            added=first_ok.get("added", 0),
            removed=first_ok.get("removed", 0),
            skipped=first_ok.get("skipped", 0),
        )

    def serve_section(self) -> Dict[str, Any]:
        """The run manifest's ``serve`` section, shard-merged."""
        counters = self._final_counters
        if counters is None:
            counters = self._merged_counters()
        return {
            "port": self.port,
            "epoch": self._last_epoch,
            "workers": self.workers if self.workers >= 2 else 0,
            "shards": self.shard_count,
            "shard_restarts": get_metrics().counter("serve.shard_restarts"),
            **counters,
        }


def _shard_metric(name: str, index: int) -> str:
    """``serve.queries`` -> ``serve.shard.3.queries`` (breakdown names)."""
    if name.startswith("serve."):
        return f"serve.shard.{index}.{name[len('serve.'):]}"
    return f"serve.shard.{index}.{name}"
