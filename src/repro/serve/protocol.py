"""Wire protocol of the serve daemon: JSON objects, one per line.

The daemon speaks newline-delimited JSON over TCP — the simplest framing
that curl/netcat/python can all produce — with one request object per
line and exactly one response object per request, in order. Three query
ops mirror the three questions an adblocker answers (and map 1:1 onto
:class:`~repro.core.online.OnlineAdblocker`):

- ``url``    — would this request be blocked? (``should_block``)
- ``script`` — does the model flag this script source? (``scan_scripts``)
- ``page``   — full page load: rule filtering, model scan, element
  hiding (``visit``); the response serialises the
  :class:`~repro.core.online.OnlineVisitResult`.

Four control ops manage the daemon: ``health``, ``metrics``, ``reload``
(raw rule lines added/removed — an O(delta) epoch swap), ``shutdown``.

Every response carries ``"ok"``; failures carry ``"error"`` instead of
result fields and never tear the connection down. See docs/SERVING.md
for copy-pasteable examples.
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, Iterable, List, Optional

from ..web.page import PageSnapshot, Script, Subresource

#: Ops the batcher answers (everything else is a control op).
QUERY_OPS = ("url", "script", "page")

#: The composite op: many queries in one frame, answers in order. One
#: round trip amortises framing and lets the server's batcher see the
#: whole batch at once (prewarm runs over all of it) — this is the
#: "batched path" the loadgen benchmark compares against one-per-call.
BATCH_OP = "batch"

#: Ops handled directly by the daemon, outside the batching plane.
CONTROL_OPS = ("health", "metrics", "reload", "shutdown")


class ProtocolError(ValueError):
    """A request line that is not a valid protocol message."""


# -- framing ---------------------------------------------------------------------


def encode(message: Dict[str, Any]) -> bytes:
    """One wire frame: compact key-sorted JSON plus the line terminator."""
    return (
        json.dumps(message, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def decode_line(line) -> Dict[str, Any]:
    """Parse one frame; raises :class:`ProtocolError` on garbage."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", "replace")
    line = line.strip()
    if not line:
        raise ProtocolError("empty request line")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"request is not JSON: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError("request is not a JSON object")
    op = message.get("op")
    if op not in QUERY_OPS and op not in CONTROL_OPS and op != BATCH_OP:
        raise ProtocolError(f"unknown op: {op!r}")
    if op == BATCH_OP and not isinstance(message.get("queries"), list):
        raise ProtocolError("batch: expected a 'queries' array")
    return message


# -- request constructors --------------------------------------------------------


def url_query(url: str, page_url: str = "", resource_type: str = "other") -> Dict[str, Any]:
    """A request-filtering query (``should_block`` semantics)."""
    return {"op": "url", "url": url, "page_url": page_url, "resource_type": resource_type}


def script_query(source: str) -> Dict[str, Any]:
    """A model-scan query over one script source."""
    return {"op": "script", "source": source}


def page_query(snapshot: PageSnapshot) -> Dict[str, Any]:
    """A full page-load query over a serialised snapshot."""
    return {"op": "page", "page": snapshot_to_wire(snapshot)}


def batch_query(queries: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Many queries in one frame; the response carries ``answers`` in order."""
    return {"op": BATCH_OP, "queries": list(queries)}


def reload_request(added: Iterable[str], removed: Iterable[str]) -> Dict[str, Any]:
    """A hot-reload control request carrying raw rule lines."""
    return {"op": "reload", "added": list(added), "removed": list(removed)}


# -- page serialisation ----------------------------------------------------------


def snapshot_to_wire(snapshot: PageSnapshot) -> Dict[str, Any]:
    """A :class:`PageSnapshot` as a JSON-able dict (lossless for serving)."""
    return {
        "url": snapshot.url,
        "html": snapshot.html,
        "subresources": [
            {"url": s.url, "resource_type": s.resource_type, "size": s.size}
            for s in snapshot.subresources
        ],
        "scripts": [
            {"source": s.source, "url": s.url} for s in snapshot.scripts
        ],
    }


def snapshot_from_wire(payload: Dict[str, Any]) -> PageSnapshot:
    """Rebuild a :class:`PageSnapshot` from its wire form."""
    if not isinstance(payload, dict) or not isinstance(payload.get("url"), str):
        raise ProtocolError("page: expected an object with a 'url' string")
    return PageSnapshot(
        url=payload["url"],
        html=payload.get("html", "") or "",
        subresources=[
            Subresource(
                url=item.get("url", ""),
                resource_type=item.get("resource_type", ""),
                size=int(item.get("size", 2048)),
            )
            for item in payload.get("subresources", [])
        ],
        scripts=[
            Script(source=item.get("source", ""), url=item.get("url", ""))
            for item in payload.get("scripts", [])
        ],
    )


def visit_result_to_wire(result) -> Dict[str, Any]:
    """Serialise an :class:`~repro.core.online.OnlineVisitResult`.

    The document itself stays server-side; the response carries the
    hidden-element count, which is what the parity tests pin against the
    offline path.
    """
    hidden = 0
    if result.document is not None:
        hidden = sum(1 for element in result.document.iter() if element.hidden)
    return {
        "url": result.url,
        "blocked_by_rules": list(result.blocked_by_rules),
        "blocked_by_model": list(result.blocked_by_model),
        "flagged_inline": result.flagged_inline,
        "hidden_elements": hidden,
    }


# -- responses -------------------------------------------------------------------


def ok_response(op: str, **fields: Any) -> Dict[str, Any]:
    """A success frame for ``op``."""
    response = {"ok": True, "op": op}
    response.update(fields)
    return response


def error_response(message: str, op: Optional[str] = None) -> Dict[str, Any]:
    """A failure frame (the connection stays up)."""
    response: Dict[str, Any] = {"ok": False, "error": message}
    if op is not None:
        response["op"] = op
    return response


# -- a tiny blocking client ------------------------------------------------------


class ServeClient:
    """A blocking line-protocol client (tests, CI smoke, the loadgen)."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    def ask(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request and block for its response."""
        self._file.write(encode(message))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("serve daemon closed the connection")
        response = json.loads(line.decode("utf-8", "replace"))
        if not isinstance(response, dict):
            raise ProtocolError("response is not a JSON object")
        return response

    def ask_many(self, messages: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Pipeline several requests on one connection, in order."""
        for message in messages:
            self._file.write(encode(message))
        self._file.flush()
        responses = []
        for _ in messages:
            line = self._file.readline()
            if not line:
                raise ConnectionError("serve daemon closed the connection")
            responses.append(json.loads(line.decode("utf-8", "replace")))
        return responses

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
