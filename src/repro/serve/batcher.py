"""Query engine and request batcher: the serve daemon's data path.

Three execution paths, all answering byte-identically to the offline
:class:`~repro.core.online.OnlineAdblocker`:

- **naive** — one query per call, exactly the offline code path (the
  loadgen benchmark's baseline);
- **batched** — a *prewarm* pass collects the batch's unique uncached
  script sources and scores them with ONE ``detector.predict`` call, so
  the per-call vectorise/kernel overhead is paid once per batch instead
  of once per script; ``visit``/``scan_scripts`` then run against a warm
  verdict cache. This is where the ≥3× loadgen speedup comes from;
- **pooled** — whole batches dispatched to
  :class:`~repro.analysis.pool.PersistentPool` workers via ``submit``
  (pipelined: the batcher collects batch N+1 while the pool scores
  batch N). Workers fork with epoch 0 and fold the parent's raw-line
  delta history forward (:meth:`~repro.serve.reload.EpochChain.fold_to`),
  so a hot reload reaches them with the next batch.

The :class:`RequestBatcher` is the admission queue between protocol
handler threads and the engine: handlers block on a per-query slot, a
single collector thread lingers up to ``REPRO_SERVE_WAIT_MS`` to fill
batches of ``REPRO_SERVE_BATCH``, and every query's queue-to-answer
latency lands in the ``serve.latency_ns`` histogram.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.online import OnlineAdblocker, source_digest
from ..obs.config import serve_batch_size, serve_wait_ms
from ..obs.hist import ns_buckets
from ..obs.metrics import get_metrics
from . import protocol
from .reload import EpochChain


# -- answering (shared by parent and pool workers) -------------------------------


def answer_query(online: OnlineAdblocker, query: Dict[str, Any]) -> Dict[str, Any]:
    """Answer one decoded query against one epoch's adblocker."""
    op = query.get("op")
    try:
        if op == "url":
            url = query.get("url")
            if not isinstance(url, str) or not url:
                return protocol.error_response("url: missing 'url'", op)
            blocked = online.adblocker.should_block(
                url,
                page_url=query.get("page_url", "") or "",
                resource_type=query.get("resource_type", "other") or "other",
            )
            return protocol.ok_response(op, blocked=bool(blocked))
        if op == "script":
            source = query.get("source")
            if not isinstance(source, str):
                return protocol.error_response("script: missing 'source'", op)
            from ..web.page import Script

            flagged = bool(online.scan_scripts([Script(source=source)]))
            return protocol.ok_response(op, flagged=flagged)
        if op == "page":
            snapshot = protocol.snapshot_from_wire(query.get("page"))
            result = online.visit(snapshot)
            return protocol.ok_response(
                op, result=protocol.visit_result_to_wire(result)
            )
        return protocol.error_response(f"not a query op: {op!r}", op)
    except protocol.ProtocolError as exc:
        return protocol.error_response(str(exc), op)


def _query_sources(query: Dict[str, Any]):
    """Script sources a query may need verdicts for (prewarm candidates)."""
    op = query.get("op")
    if op == "script":
        source = query.get("source")
        if isinstance(source, str) and source:
            yield source
    elif op == "page":
        page = query.get("page")
        if isinstance(page, dict):
            for item in page.get("scripts", []):
                source = item.get("source") if isinstance(item, dict) else None
                if isinstance(source, str) and source:
                    yield source


def prewarm_verdicts(online: OnlineAdblocker, queries: Sequence[Dict[str, Any]]) -> int:
    """Score the batch's unique uncached script sources in ONE predict call.

    Deduplicates by the same digest :meth:`OnlineAdblocker._verdict`
    uses, so the subsequent per-query path is all cache hits. Scoring a
    page script that rule-filtering would have blocked anyway only adds
    a cache entry — responses are unchanged, which is what the parity
    tests pin.
    """
    pending: List[Tuple[str, str]] = []
    seen = set()
    cache = online._verdict_cache
    for query in queries:
        for source in _query_sources(query):
            digest = source_digest(source)
            if digest in cache or digest in seen:
                continue
            seen.add(digest)
            pending.append((digest, source))
    if not pending:
        return 0
    predictions = online.detector.predict([source for _, source in pending])
    for (digest, _), flag in zip(pending, predictions):
        cache[digest] = bool(flag)
    return len(pending)


# -- pool worker side ------------------------------------------------------------


def _make_worker_chain(published: Dict[str, Any]) -> EpochChain:
    """Build a worker's epoch-0 chain from the fork-published serve state."""
    return EpochChain(
        published["detector"],
        published["network_rules"],
        published["element_rules"],
    )


def _serve_worker_task(chain: EpochChain, payload: Dict[str, Any]):
    """Worker body: fold to the batch's epoch, prewarm, answer.

    The payload carries the parent's full raw-line delta history; the
    worker's cached chain replays only the unseen suffix, so reload cost
    per worker is O(delta) once, amortised across later batches.
    """
    chain.fold_to(payload["deltas"])
    queries = payload["queries"]
    epoch = chain.acquire()
    try:
        prewarmed = prewarm_verdicts(epoch.online, queries)
        answers = [answer_query(epoch.online, query) for query in queries]
        epoch.online.adblocker.log.clear()
    finally:
        epoch.release()
    return {"answers": answers, "prewarmed": prewarmed, "epoch": epoch.index}


class _BatchFuture:
    """A pool batch in flight: holds its epoch until the answers land."""

    def __init__(self, inner, epoch) -> None:
        self._inner = inner
        self._epoch = epoch
        self._released = False

    def done(self) -> bool:
        return self._inner.done()

    def result(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        try:
            return self._inner.result(timeout)
        finally:
            if not self._released:
                self._released = True
                self._epoch.release()


# -- the engine ------------------------------------------------------------------


class ServeEngine:
    """Answers query batches against the chain's current epoch.

    ``pool`` (a :class:`~repro.analysis.pool.PersistentPool` with the
    serve state published) enables the fan-out path; without it batches
    run inline. ``batched=False`` per call disables the prewarm pass —
    that is the benchmark's one-query-per-call baseline, not a mode the
    daemon serves in.
    """

    def __init__(self, chain: EpochChain, pool=None) -> None:
        self.chain = chain
        self.pool = pool

    def answer_batch(
        self, queries: Sequence[Dict[str, Any]], batched: bool = True
    ) -> List[Dict[str, Any]]:
        """Answer a batch inline (the no-pool and fallback path)."""
        metrics = get_metrics()
        epoch = self.chain.acquire()
        try:
            if batched:
                prewarmed = prewarm_verdicts(epoch.online, queries)
                if prewarmed:
                    metrics.count("serve.prewarmed", prewarmed)
            answers = [answer_query(epoch.online, query) for query in queries]
            # The daemon is long-lived: the per-visit rule log would grow
            # without bound, and no serve response reads it.
            epoch.online.adblocker.log.clear()
        finally:
            epoch.release()
        metrics.count("serve.queries", len(queries))
        metrics.count("serve.batches")
        return answers

    def submit_batch(self, queries: Sequence[Dict[str, Any]]) -> Optional[_BatchFuture]:
        """Dispatch a batch to a pool worker; ``None`` means run inline.

        The returned future's ``result()`` yields the answer list; the
        acquired epoch is held until then, so a concurrent reload drains
        only after the pool has answered — zero dropped queries.
        """
        if self.pool is None:
            return None
        epoch = self.chain.acquire()
        payload = {
            "epoch": epoch.index,
            "deltas": list(self.chain.deltas[: epoch.index]),
            "queries": list(queries),
        }
        inner = self.pool.submit(
            _serve_worker_task, payload, key="serve", make=_make_worker_chain
        )
        if inner is None:  # pragma: no cover - non-fork platforms
            epoch.release()
            return None
        return _BatchFuture(inner, epoch)

    def collect(self, future: _BatchFuture) -> List[Dict[str, Any]]:
        """Resolve a pool batch and absorb its accounting."""
        outcome = future.result()
        metrics = get_metrics()
        metrics.count("serve.queries", len(outcome["answers"]))
        metrics.count("serve.batches")
        metrics.count("serve.pool_batches")
        if outcome["prewarmed"]:
            metrics.count("serve.prewarmed", outcome["prewarmed"])
        return outcome["answers"]


# -- the batcher -----------------------------------------------------------------


class _Slot:
    """One waiting query: the handler thread blocks on ``event``."""

    __slots__ = ("event", "answer", "enqueued_ns")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.answer: Optional[Dict[str, Any]] = None
        self.enqueued_ns = time.perf_counter_ns()


class RequestBatcher:
    """Admission queue + collector loop between handlers and the engine."""

    def __init__(
        self,
        engine: ServeEngine,
        batch_size: Optional[int] = None,
        wait_ms: Optional[float] = None,
    ) -> None:
        self.engine = engine
        self.batch_size = batch_size if batch_size is not None else serve_batch_size()
        self.wait_s = (wait_ms if wait_ms is not None else serve_wait_ms()) / 1000.0
        self._queue: deque = deque()
        self._cv = threading.Condition()
        self._closed = False
        self._thread: Optional[threading.Thread] = None

    # -- handler side --------------------------------------------------------

    def ask(self, query: Dict[str, Any], timeout: Optional[float] = None) -> Dict[str, Any]:
        """Enqueue one query and block until its batch answers."""
        slot = _Slot()
        with self._cv:
            if self._closed:
                return protocol.error_response("daemon is shutting down", query.get("op"))
            self._queue.append((query, slot))
            get_metrics().gauge("serve.queue_depth", len(self._queue))
            self._cv.notify_all()
        if not slot.event.wait(timeout):
            return protocol.error_response("query timed out in queue", query.get("op"))
        return slot.answer

    def ask_many(
        self, queries: Sequence[Dict[str, Any]], timeout: Optional[float] = None
    ) -> List[Dict[str, Any]]:
        """Enqueue a whole ``batch`` frame at once; answers stay in order.

        All queries land in the queue under one lock acquisition, so the
        collector sees the full frame immediately — no linger needed to
        fill the batch. This is the server side of the protocol-level
        batched path.
        """
        slots = [_Slot() for _ in queries]
        with self._cv:
            if self._closed:
                return [
                    protocol.error_response("daemon is shutting down", q.get("op"))
                    for q in queries
                ]
            for query, slot in zip(queries, slots):
                self._queue.append((query, slot))
            get_metrics().gauge("serve.queue_depth", len(self._queue))
            self._cv.notify_all()
        deadline = None if timeout is None else time.monotonic() + timeout
        answers: List[Dict[str, Any]] = []
        for query, slot in zip(queries, slots):
            remaining = (
                None if deadline is None else max(0.0, deadline - time.monotonic())
            )
            if not slot.event.wait(remaining):
                answers.append(
                    protocol.error_response("query timed out in queue", query.get("op"))
                )
            else:
                answers.append(slot.answer)
        return answers

    # -- collector side ------------------------------------------------------

    def start(self) -> None:
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._loop, name="serve-batcher", daemon=True
            )
            self._thread.start()

    def close(self, timeout: float = 10.0) -> None:
        """Stop the collector after flushing everything already queued."""
        with self._cv:
            self._closed = True
            self._cv.notify_all()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    def _collect(
        self, pending: Optional[_BatchFuture] = None
    ) -> List[Tuple[Dict[str, Any], _Slot]]:
        """Block for the first query, then linger to fill the batch.

        While a pool batch is in flight (``pending``), the empty-queue
        wait is bounded to short ticks and returns empty the moment the
        future completes, so the loop can deliver those answers. Without
        the bound, the final batch of a burst would wait here for the
        *next* query — which never arrives, because every synchronous
        client is blocked on exactly that batch's answers.
        """
        with self._cv:
            while not self._queue and not self._closed:
                if pending is not None and pending.done():
                    return []
                self._cv.wait(0.002 if pending is not None else 0.1)
            if not self._queue:
                return []
            deadline = time.monotonic() + self.wait_s
            while len(self._queue) < self.batch_size and not self._closed:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cv.wait(remaining)
            count = min(len(self._queue), self.batch_size)
            batch = [self._queue.popleft() for _ in range(count)]
            get_metrics().gauge("serve.queue_depth", len(self._queue))
            return batch

    @staticmethod
    def _deliver(entries: List[Tuple[Dict[str, Any], _Slot]], answers: List[Dict[str, Any]]) -> None:
        metrics = get_metrics()
        now = time.perf_counter_ns()
        for (_, slot), answer in zip(entries, answers):
            slot.answer = answer
            metrics.hist("serve.latency_ns", now - slot.enqueued_ns, ns_buckets())
            slot.event.set()

    def _loop(self) -> None:
        metrics = get_metrics()
        #: One pool batch in flight while the next one fills (pipelining).
        pending: Optional[Tuple[List, Any]] = None
        while True:
            batch = self._collect(pending[1] if pending is not None else None)
            if not batch:
                if pending is not None:
                    entries, future = pending
                    self._deliver(entries, self.engine.collect(future))
                    pending = None
                    continue
                if self._closed:
                    return
                continue
            metrics.hist("serve.batch_size", len(batch))
            queries = [query for query, _ in batch]
            future = self.engine.submit_batch(queries)
            if future is None:
                if pending is not None:
                    entries, prior = pending
                    self._deliver(entries, self.engine.collect(prior))
                    pending = None
                self._deliver(batch, self.engine.answer_batch(queries))
                continue
            if pending is not None:
                entries, prior = pending
                self._deliver(entries, self.engine.collect(prior))
            pending = (batch, future)
