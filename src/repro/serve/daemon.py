"""The serve daemon: graph-backed state, a TCP front end, and health.

Boot resolves two dedicated artifact-graph nodes through the standard
memory → ``REPRO_RUN_CACHE`` → compute layers:

- ``serve:snapshot`` — the compiled subscription (raw network/element
  rule lines of the latest ``aak`` + ``combined_easylist`` revisions;
  depends on the ``lists`` stage);
- ``serve:detector`` — the fitted §5 detector, trained exactly as the
  ``sec5live`` driver trains it (keyword features, top_k=1000, campaign
  seed; depends on ``corpus`` and ``features:keyword:u1``).

Against a warm run cache both nodes load from disk and **no context
stage recomputes** — the daemon is answering queries in the time it
takes to unpickle two artifacts. Cold, the nodes compute once and
persist, warming every later boot.

The front end is a threading TCP server speaking the line protocol of
:mod:`repro.serve.protocol`: query ops flow through the
:class:`~repro.serve.batcher.RequestBatcher`; ``health``/``metrics``
read state directly; ``reload`` performs the epoch swap of
:mod:`repro.serve.reload`; ``shutdown`` stops the daemon. On stop the
daemon can write a run manifest whose ``serve`` section carries the
port, final epoch, and query/batch/reload/dropped counters
(``repro.obs.manifest`` validates it).
"""

from __future__ import annotations

import logging
import socket
import socketserver
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..core.pipeline import AntiAdblockDetector, DetectorConfig
from ..graph.core import NodeSpec
from ..obs.config import serve_batch_size, serve_wait_ms, serve_workers
from ..obs.metrics import get_metrics
from ..obs.trace import span as trace_span
from .batcher import RequestBatcher, ServeEngine
from . import protocol
from .reload import EpochChain, partition_rule_lines

logger = logging.getLogger("repro.serve")

#: serve:snapshot payload revision (part of the node key via ``extra``).
SNAPSHOT_SCHEMA = 1

#: The subscription the daemon serves: the anti-adblock list plus the
#: combined EasyList, i.e. the corpus-labeling pair from §5.
SUBSCRIBED_LISTS = ("aak", "combined_easylist")

#: The detector configuration, pinned to the ``sec5live`` training setup.
DETECTOR_PARAMS = {"feature_set": "keyword", "top_k": 1000, "classifier": "adaboost_svm", "unpack": True}


def snapshot_spec() -> NodeSpec:
    """Graph spec of the compiled-subscription node."""
    return NodeSpec(
        "serve:snapshot",
        deps=("lists",),
        code=("filterlist",),
        extra=NodeSpec.freeze_extra(
            {"schema": SNAPSHOT_SCHEMA, "lists": list(SUBSCRIBED_LISTS)}
        ),
    )


def detector_spec() -> NodeSpec:
    """Graph spec of the trained-detector node."""
    return NodeSpec(
        "serve:detector",
        deps=("corpus", "features:keyword:u1"),
        code=("core", "jsast"),
        extra=NodeSpec.freeze_extra(dict(DETECTOR_PARAMS, schema=SNAPSHOT_SCHEMA)),
    )


@dataclass
class ServeState:
    """Everything the daemon needs to answer queries."""

    detector: AntiAdblockDetector
    network_lines: List[str] = field(default_factory=list)
    element_lines: List[str] = field(default_factory=list)
    seed: int = 0

    def build_chain(self) -> EpochChain:
        """Parse the snapshot lines and assemble epoch 0."""
        network, element, _ = partition_rule_lines(
            self.network_lines + self.element_lines
        )
        return EpochChain(self.detector, network, element)


def _compute_snapshot(ctx) -> Dict[str, Any]:
    """Collect the latest raw rule lines of the subscribed lists."""
    network: List[str] = []
    element: List[str] = []
    for name in SUBSCRIBED_LISTS:
        revision = ctx.lists[name].latest()
        if revision is None:
            continue
        document = revision.filter_list
        network.extend(rule.raw for rule in document.network_rules)
        element.extend(rule.raw for rule in document.element_rules)
    return {"schema": SNAPSHOT_SCHEMA, "network": network, "element": element}


def _compute_detector(ctx) -> AntiAdblockDetector:
    """Train the §5 detector exactly as the ``sec5live`` driver does."""
    corpus = ctx.corpus
    detector = AntiAdblockDetector(
        DetectorConfig(seed=ctx.world.seed, **DETECTOR_PARAMS)
    )
    detector.fit(
        corpus.sources(),
        corpus.labels(),
        features=ctx.corpus_features("keyword"),
    )
    # The fitted ensemble still holds its base_factory closure, which is
    # not picklable; inference never calls it, so drop it before the
    # value reaches the run cache.
    if hasattr(detector.model, "base_factory"):
        detector.model.base_factory = None
    return detector


def resolve_serve_state(ctx=None) -> ServeState:
    """Resolve the serving state through the artifact graph.

    With a warm ``REPRO_RUN_CACHE`` both nodes come off disk and no
    context stage runs; cold, the compute closures build them through
    the normal stage machinery and persist them.
    """
    if ctx is None:
        from ..experiments.context import shared_context

        ctx = shared_context()
    graph = ctx.graph
    graph.register(snapshot_spec())
    graph.register(detector_spec())
    with trace_span("serve:resolve"):
        snapshot = graph.resolve("serve:snapshot", lambda: _compute_snapshot(ctx))
        detector = graph.resolve("serve:detector", lambda: _compute_detector(ctx))
    return ServeState(
        detector=detector,
        network_lines=list(snapshot.get("network", [])),
        element_lines=list(snapshot.get("element", [])),
        seed=ctx.world.seed,
    )


def build_engine(
    state: ServeState, workers: Optional[int] = None
) -> ServeEngine:
    """An engine over epoch 0, with a worker pool when ``workers >= 2``.

    The pool is private to the daemon (never the process-wide one): the
    serve state is published under ``"serve"`` before the single fork,
    and batch payloads afterwards carry only queries and delta lines.
    """
    chain = state.build_chain()
    if workers is None:
        workers = serve_workers()
    pool = None
    if workers and workers >= 2:
        from ..analysis.pool import PersistentPool

        network, element, _ = partition_rule_lines(
            state.network_lines + state.element_lines
        )
        pool = PersistentPool(workers)
        pool.publish(
            "serve",
            {
                "detector": state.detector,
                "network_rules": network,
                "element_rules": element,
            },
        )
    return ServeEngine(chain, pool=pool)


#: The counter quartet every health/manifest surface reports, in the
#: order the manifest schema validates them.
SERVE_COUNTERS = ("queries", "batches", "reloads", "dropped")


def _counter_snapshot() -> Dict[str, int]:
    """The ``serve.*`` counter quartet, read once from the registry.

    One reader shared by ``health()``, ``serve_section()``, and the
    shard supervisor's merged variants, so the surfaces cannot drift.
    """
    metrics = get_metrics()
    return {name: metrics.counter(f"serve.{name}") for name in SERVE_COUNTERS}


class _Handler(socketserver.StreamRequestHandler):
    """One client connection: decode lines, route ops, write frames."""

    def handle(self) -> None:
        daemon: "ServeDaemon" = self.server.daemon  # type: ignore[attr-defined]
        for line in self.rfile:
            try:
                message = protocol.decode_line(line)
            except protocol.ProtocolError as exc:
                get_metrics().count("serve.errors")
                self.wfile.write(protocol.encode(protocol.error_response(str(exc))))
                # Flush error frames like ok frames: a client that stops
                # pipelining after a bad line must not wait on a buffered
                # error that only the *next* response would push out.
                self.wfile.flush()
                continue
            response = daemon.dispatch(message)
            self.wfile.write(protocol.encode(response))
            self.wfile.flush()
            if message.get("op") == "shutdown":
                return


class _Server(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    #: Set by the shard plane: bind with ``SO_REUSEPORT`` so N daemon
    #: processes share one port and the kernel balances connections.
    reuse_port = False

    def server_bind(self) -> None:
        if self.reuse_port:
            self.socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        super().server_bind()


def _adopt_socket(server: _Server, listen_socket: socket.socket) -> None:
    """Serve on an already-listening socket (pre-fork FD inheritance).

    The server is constructed with ``bind_and_activate=False``; its own
    unbound socket is swapped for the inherited one, so every shard of a
    non-``SO_REUSEPORT`` fallback accepts on the supervisor's listener.
    """
    server.socket.close()
    server.socket = listen_socket
    server.server_address = listen_socket.getsockname()


class ServeDaemon:
    """The running service: server socket, batcher, and control plane."""

    def __init__(
        self,
        engine: ServeEngine,
        host: str = "127.0.0.1",
        port: int = 0,
        batch_size: Optional[int] = None,
        wait_ms: Optional[float] = None,
        reuse_port: bool = False,
        listen_socket: Optional[socket.socket] = None,
        shard_index: Optional[int] = None,
    ) -> None:
        self.engine = engine
        self.batcher = RequestBatcher(
            engine,
            batch_size=batch_size if batch_size is not None else serve_batch_size(),
            wait_ms=wait_ms if wait_ms is not None else serve_wait_ms(),
        )
        self.host = host
        self.port = port
        #: ``SO_REUSEPORT`` bind (shard plane: N processes, one port).
        self.reuse_port = reuse_port
        #: An already-listening socket to adopt instead of binding
        #: (shard fallback: every forked shard accepts on one listener).
        self._listen_socket = listen_socket
        #: Which shard of a sharded deployment this daemon is (None =
        #: unsharded); reported in ``health`` so clients and the loadgen
        #: can see which shard their connection landed on.
        self.shard_index = shard_index
        self._server: Optional[_Server] = None
        self._extra_servers: List[_Server] = []
        self._threads: List[threading.Thread] = []
        self._stopped = threading.Event()
        self.ready = threading.Event()

    # -- lifecycle -----------------------------------------------------------

    def _serve_on(self, server: _Server, name: str) -> None:
        server.daemon = self  # type: ignore[attr-defined]
        thread = threading.Thread(target=server.serve_forever, name=name, daemon=True)
        thread.start()
        self._threads.append(thread)

    def start(self):
        """Bind (port 0 picks an ephemeral port), start serving; returns
        the bound ``(host, port)``."""
        self.batcher.start()
        if self._listen_socket is not None:
            self._server = _Server((self.host, self.port), _Handler, bind_and_activate=False)
            _adopt_socket(self._server, self._listen_socket)
        elif self.reuse_port:
            server_class = type("_ReusePortServer", (_Server,), {"reuse_port": True})
            self._server = server_class((self.host, self.port), _Handler)
        else:
            self._server = _Server((self.host, self.port), _Handler)
        self.host, self.port = self._server.server_address[:2]
        self._serve_on(self._server, "serve-daemon")
        self.ready.set()
        logger.info("serve daemon listening on %s:%d", self.host, self.port)
        return self.host, self.port

    def add_listener(self, host: str = "127.0.0.1", port: int = 0):
        """Open an extra listening address on the same dispatch plane.

        A shard serves queries on the kernel-balanced shared port *and*
        answers its supervisor on a private loopback control port — same
        protocol, same batcher, two sockets. Returns ``(host, port)``.
        """
        server = _Server((host, port), _Handler)
        self._extra_servers.append(server)
        self._serve_on(server, f"serve-listener-{server.server_address[1]}")
        return server.server_address[:2]

    def stop(self) -> None:
        """Shut down: stop admitting, flush the batcher, close the sockets."""
        for server in [self._server, *self._extra_servers]:
            if server is not None:
                server.shutdown()
                server.server_close()
        self._server = None
        self._extra_servers = []
        self.batcher.close()
        if self.engine.pool is not None:
            self.engine.pool.close()
        self._stopped.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the daemon is stopped (by ``shutdown`` or a signal)."""
        return self._stopped.wait(timeout)

    # -- ops -----------------------------------------------------------------

    def dispatch(self, message: Dict[str, Any]) -> Dict[str, Any]:
        """Route one decoded request to the batcher or the control plane."""
        op = message.get("op")
        if op in protocol.QUERY_OPS:
            return self.batcher.ask(message, timeout=60.0)
        if op == protocol.BATCH_OP:
            queries = message.get("queries", [])
            for item in queries:
                if not isinstance(item, dict) or item.get("op") not in protocol.QUERY_OPS:
                    get_metrics().count("serve.errors")
                    return protocol.error_response(
                        "batch: every entry must be a url/script/page query", op
                    )
            answers = self.batcher.ask_many(queries, timeout=60.0)
            return protocol.ok_response(op, answers=answers)
        if op == "health":
            return protocol.ok_response(op, **self.health())
        if op == "metrics":
            return protocol.ok_response(op, metrics=self.metrics_summary())
        if op == "reload":
            return self.reload(
                message.get("added", []) or [], message.get("removed", []) or []
            )
        if op == "shutdown":
            # Reply first (the handler writes the frame), then stop off
            # the handler thread so the socket teardown does not race
            # the in-flight response.
            threading.Thread(target=self.stop, daemon=True).start()
            return protocol.ok_response(op, stopping=True)
        return protocol.error_response(f"unknown op: {op!r}", op)

    def reload(self, added: List[str], removed: List[str]) -> Dict[str, Any]:
        """Hot-swap a list delta; returns the epoch summary once drained."""
        with trace_span("serve:reload"):
            summary = self.engine.chain.reload(added, removed, wait=True, timeout=60.0)
        metrics = get_metrics()
        metrics.count("serve.reloads")
        metrics.gauge("serve.epoch", summary["epoch"])
        if summary["drained"]:
            logger.info(
                "reloaded to epoch %d (+%d/-%d rules, %d lines skipped)",
                summary["epoch"], summary["added"], summary["removed"], summary["skipped"],
            )
        else:
            # The swap happened, but the old epoch is still held (e.g. an
            # uncollected pool future) — visible to callers and CI gates.
            metrics.count("serve.drain_timeouts")
            logger.warning(
                "reloaded to epoch %d but the old epoch did not drain in time",
                summary["epoch"],
            )
        return protocol.ok_response("reload", **summary)

    def health(self) -> Dict[str, Any]:
        """Readiness plus the counters a smoke test gates on."""
        if self._stopped.is_set():
            # Distinct from "starting": supervisors and smoke tests can
            # tell a daemon that never came up from one tearing down.
            status = "stopping"
        elif self.ready.is_set():
            status = "ok"
        else:
            status = "starting"
        health = {
            "status": status,
            "epoch": self.engine.chain.current.index,
            "workers": self.engine.pool.workers if self.engine.pool else 0,
            "rules": self.engine.chain.current.online.adblocker.rule_count,
            **_counter_snapshot(),
        }
        if self.shard_index is not None:
            health["shard"] = self.shard_index
        return health

    def metrics_summary(self) -> Dict[str, Any]:
        """The serve slice of the registry (counters + latency quantiles)."""
        registry = get_metrics().as_dict()
        summary: Dict[str, Any] = {
            "counters": {
                name: value
                for name, value in registry["counters"].items()
                if name.startswith("serve.")
            },
            "gauges": {
                name: value
                for name, value in registry["gauges"].items()
                if name.startswith("serve.")
            },
        }
        latency = get_metrics().histogram("serve.latency_ns")
        if latency is not None:
            summary["latency_ns"] = latency.quantiles()
        # Full serve histograms ride along (not just quantiles): quantile
        # vectors cannot be merged, bucket counts can — the shard
        # supervisor's merged metrics view depends on these.
        histograms = {
            name: value
            for name, value in registry.get("histograms", {}).items()
            if name.startswith("serve.")
        }
        if histograms:
            summary["histograms"] = histograms
        return summary

    def serve_section(self) -> Dict[str, Any]:
        """The run manifest's ``serve`` section (validated by obs)."""
        return {
            "port": self.port,
            "epoch": self.engine.chain.current.index,
            "workers": self.engine.pool.workers if self.engine.pool else 0,
            **_counter_snapshot(),
        }
