"""The always-on matching/detection service (``python -m repro serve``).

The paper's §5 online scenario ships the trained detector inside an
adblocker answering per-request and per-script questions at browsing
speed. This package is that deployment shape as a daemon:

- :mod:`~repro.serve.daemon` — graph-backed boot (warm starts from
  ``REPRO_RUN_CACHE`` recompute nothing) and the TCP control plane;
- :mod:`~repro.serve.protocol` — newline-delimited JSON queries
  (``url`` / ``script`` / ``page``) and control ops;
- :mod:`~repro.serve.batcher` — request batching with a one-predict
  prewarm pass, plus pipelined fan-out over persistent pool workers;
- :mod:`~repro.serve.reload` — O(delta) epoch-swap hot reload that
  never drops an in-flight query;
- :mod:`~repro.serve.snapshot` — the packed ``kind=snapshot`` RDPK
  container a sharded deployment boots from (one publish, N mmaps);
- :mod:`~repro.serve.shard` — the shard supervisor: N daemon processes
  on one ``SO_REUSEPORT`` port, merged health/metrics/reload control
  plane, dead-shard respawn from the snapshot;
- :mod:`~repro.serve.loadgen` — the deterministic load generator behind
  ``BENCH_serve.json`` and ``BENCH_shard.json``.

Runbook: docs/SERVING.md. Architecture: DESIGN.md §3.9–3.10.
"""

from .batcher import RequestBatcher, ServeEngine, answer_query, prewarm_verdicts
from .daemon import (
    ServeDaemon,
    ServeState,
    build_engine,
    detector_spec,
    resolve_serve_state,
    snapshot_spec,
)
from .loadgen import generate_queries, run_inprocess, run_network
from .protocol import ServeClient
from .reload import EpochChain, ServeEpoch, partition_rule_lines
from .shard import ShardSupervisor
from .snapshot import SnapshotReader, publish_snapshot, read_state, write_snapshot

__all__ = [
    "EpochChain",
    "RequestBatcher",
    "ServeClient",
    "ServeDaemon",
    "ServeEngine",
    "ServeEpoch",
    "ServeState",
    "ShardSupervisor",
    "SnapshotReader",
    "answer_query",
    "build_engine",
    "detector_spec",
    "generate_queries",
    "partition_rule_lines",
    "prewarm_verdicts",
    "publish_snapshot",
    "read_state",
    "resolve_serve_state",
    "run_inprocess",
    "run_network",
    "snapshot_spec",
    "write_snapshot",
]
