"""The always-on matching/detection service (``python -m repro serve``).

The paper's §5 online scenario ships the trained detector inside an
adblocker answering per-request and per-script questions at browsing
speed. This package is that deployment shape as a daemon:

- :mod:`~repro.serve.daemon` — graph-backed boot (warm starts from
  ``REPRO_RUN_CACHE`` recompute nothing) and the TCP control plane;
- :mod:`~repro.serve.protocol` — newline-delimited JSON queries
  (``url`` / ``script`` / ``page``) and control ops;
- :mod:`~repro.serve.batcher` — request batching with a one-predict
  prewarm pass, plus pipelined fan-out over persistent pool workers;
- :mod:`~repro.serve.reload` — O(delta) epoch-swap hot reload that
  never drops an in-flight query;
- :mod:`~repro.serve.loadgen` — the deterministic load generator behind
  ``BENCH_serve.json``.

Runbook: docs/SERVING.md. Architecture: DESIGN.md §3.9.
"""

from .batcher import RequestBatcher, ServeEngine, answer_query, prewarm_verdicts
from .daemon import (
    ServeDaemon,
    ServeState,
    build_engine,
    detector_spec,
    resolve_serve_state,
    snapshot_spec,
)
from .loadgen import generate_queries, run_inprocess, run_network
from .protocol import ServeClient
from .reload import EpochChain, ServeEpoch, partition_rule_lines

__all__ = [
    "EpochChain",
    "RequestBatcher",
    "ServeClient",
    "ServeDaemon",
    "ServeEngine",
    "ServeEpoch",
    "ServeState",
    "answer_query",
    "build_engine",
    "detector_spec",
    "generate_queries",
    "partition_rule_lines",
    "prewarm_verdicts",
    "resolve_serve_state",
    "run_inprocess",
    "run_network",
    "snapshot_spec",
]
