"""The packed serving snapshot: one mmap-able container, N shard boots.

The single-process daemon resolves its state through the artifact graph
(two unpickles per boot). A shard supervisor boots *N* full daemon
processes, and paying N graph resolutions — or shipping N pickled
copies of the detector over pipes — would make shard count a boot-time
multiplier. Instead the supervisor publishes the resolved state ONCE as
a ``kind=snapshot`` RDPK container (:mod:`repro.dataplane.format`):

::

    u32 meta_length | meta JSON (schema, seed, counts, detector bytes)
    string table    | raw network rule lines
    string table    | raw element rule lines
    blob            | protocol-4 pickle of the trained detector

Every shard then mmaps the file read-only and decodes it lazily: the
rule-line string tables slice straight out of the mapping and the
detector unpickles from the mapped buffer, so after the first shard has
faulted the pages in, the remaining boots (and every millisecond-class
*respawn* after a shard death) are page-cache hits — no graph machinery,
no context, no recompute. The container header's SHA-256 is verified at
every open, so a torn or corrupt snapshot fails loudly instead of
serving wrong answers.
"""

from __future__ import annotations

import json
import pickle
import struct
from pathlib import Path
from typing import Union

from ..dataplane.format import (
    KIND_SNAPSHOT,
    DataPlaneError,
    MappedArtifact,
    StringTable,
    pack_string_table,
    write_artifact,
)
from .daemon import ServeState

#: Snapshot payload layout revision (readers reject other revisions).
SNAPSHOT_FILE_SCHEMA = 1

#: Default snapshot filename (under a run-cache or temp directory).
SNAPSHOT_BASENAME = "serve-snapshot.rdpk"

_U32 = struct.Struct("<I")


def write_snapshot(path: Union[str, Path], state: ServeState) -> int:
    """Pack a resolved :class:`ServeState` into one atomic container.

    Returns bytes written. Publication uses the data plane's tmp +
    ``os.replace`` pattern, so a shard never maps a half-written file.
    """
    detector_blob = pickle.dumps(state.detector, protocol=4)
    meta = {
        "schema": SNAPSHOT_FILE_SCHEMA,
        "seed": state.seed,
        "network_lines": len(state.network_lines),
        "element_lines": len(state.element_lines),
        "detector_bytes": len(detector_blob),
    }
    meta_blob = json.dumps(meta, sort_keys=True).encode("utf-8")
    payload = b"".join(
        (
            _U32.pack(len(meta_blob)),
            meta_blob,
            pack_string_table(state.network_lines),
            pack_string_table(state.element_lines),
            detector_blob,
        )
    )
    return write_artifact(path, KIND_SNAPSHOT, payload)


class SnapshotReader:
    """A read-only mmap over one serving snapshot, decoded lazily.

    Opening verifies the container header (magic, kind, payload SHA-256)
    and parses only the meta block; rule lines decode on first access
    through the shared :class:`~repro.dataplane.format.StringTable`
    machinery and the detector unpickles straight from the mapped
    buffer. ``close()`` releases the mapping (also via context manager).
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._artifact = MappedArtifact(self.path, expect_kind=KIND_SNAPSHOT)
        payload = self._artifact.payload
        try:
            if len(payload) < _U32.size:
                raise DataPlaneError(f"{self.path}: truncated snapshot meta")
            (meta_length,) = _U32.unpack_from(payload, 0)
            if _U32.size + meta_length > len(payload):
                raise DataPlaneError(f"{self.path}: truncated snapshot meta block")
            try:
                meta = json.loads(bytes(payload[_U32.size : _U32.size + meta_length]))
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                raise DataPlaneError(
                    f"{self.path}: undecodable snapshot meta ({exc})"
                ) from exc
            if not isinstance(meta, dict) or meta.get("schema") != SNAPSHOT_FILE_SCHEMA:
                raise DataPlaneError(f"{self.path}: unsupported snapshot schema")
            self.meta = meta
            self._network = StringTable(payload, _U32.size + meta_length)
            self._element = StringTable(payload, self._network.end)
            self._detector_at = self._element.end
            if self._detector_at + int(meta.get("detector_bytes", 0)) > len(payload):
                raise DataPlaneError(f"{self.path}: truncated detector blob")
        except DataPlaneError:
            self._artifact.close()
            raise

    @property
    def seed(self) -> int:
        return int(self.meta.get("seed", 0))

    def network_lines(self) -> list:
        """The raw network rule lines (decoded from the mapping)."""
        return [self._network.get(i) for i in range(len(self._network))]

    def element_lines(self) -> list:
        """The raw element rule lines (decoded from the mapping)."""
        return [self._element.get(i) for i in range(len(self._element))]

    def load_detector(self):
        """Unpickle the trained detector from the mapped buffer."""
        blob = self._artifact.payload[self._detector_at :]
        try:
            return pickle.loads(blob)
        except Exception as exc:  # pickle raises arbitrarily on corruption
            raise DataPlaneError(
                f"{self.path}: undecodable detector ({exc})"
            ) from exc
        finally:
            blob.release()

    def to_state(self) -> ServeState:
        """The full :class:`ServeState` this snapshot packs."""
        return ServeState(
            detector=self.load_detector(),
            network_lines=self.network_lines(),
            element_lines=self.element_lines(),
            seed=self.seed,
        )

    def close(self) -> None:
        self._artifact.close()

    def __enter__(self) -> "SnapshotReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_state(path: Union[str, Path]) -> ServeState:
    """One-shot load: open, decode everything, release the mapping."""
    with SnapshotReader(path) as reader:
        return reader.to_state()


def publish_snapshot(path: Union[str, Path], ctx=None) -> Path:
    """Resolve the serving state through the graph and pack it.

    This is the supervisor's boot step: one graph resolution (warm run
    caches recompute nothing), one atomic container, N mmap'd shard
    boots. Returns the snapshot path.
    """
    from .daemon import resolve_serve_state

    path = Path(path)
    write_snapshot(path, resolve_serve_state(ctx))
    return path
