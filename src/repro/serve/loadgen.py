"""Deterministic load generator: turn "millions of users" into numbers.

``generate_queries(seed, count)`` produces a reproducible query stream —
same seed, same queries, byte for byte — mixing the three ops the way a
browsing session does: mostly request-filtering checks, a steady trickle
of never-seen-before scripts (each one a verdict-cache miss, so the
batched prewarm path has real work), and occasional full page loads.

Two harnesses consume the stream:

- :func:`run_inprocess` drives a :class:`~repro.serve.batcher.ServeEngine`
  directly — the benchmark path, comparing the naive one-query-per-call
  baseline against the batched path;
- :func:`run_network` drives a live daemon over TCP from concurrent
  client connections — the CI smoke path.

Both report queries/sec plus p50/p99 latency from a
``ns_buckets`` histogram, the shape ``BENCH_serve.json`` records.
"""

from __future__ import annotations

import random
import time
from typing import Any, Dict, List, Optional, Sequence

from ..obs.hist import Histogram, ns_buckets
from . import protocol

#: Query mix: weights for (url, script, page).
DEFAULT_MIX = (0.7, 0.2, 0.1)

#: Reconnect attempts per failed round trip before a worker gives up.
RECONNECT_ATTEMPTS = 5

#: URL path vocabularies: some token-rich enough to probe rule buckets.
_URL_WORDS = (
    "assets", "static", "bundle", "advert", "banner", "analytics",
    "widget", "player", "track", "detect", "render", "vendor",
)

_HOSTS = (
    "cdn.example-news.com", "static.bloghost.net", "media.streamsite.org",
    "ads.trafficpartner.com", "scripts.pagetools.io",
)

#: Script templates; ``{n}`` keeps every generated source unique, so each
#: one is a genuine verdict-cache miss for the detector.
_SCRIPT_TEMPLATES = (
    "var q{n} = document.getElementById('ad-slot-{n}');\n"
    "if (!q{n} || q{n}.offsetHeight === 0) {{\n"
    "  showAdblockWall('overlay-{n}');\n"
    "  setTimeout(checkAgain, 1{n} % 977);\n"
    "}}\n",
    "function render{n}() {{\n"
    "  var el = document.createElement('div');\n"
    "  el.className = 'gallery-item-{n}';\n"
    "  document.body.appendChild(el);\n"
    "}}\nrender{n}();\n",
    "(function() {{\n"
    "  var bait = document.createElement('div');\n"
    "  bait.className = 'adsbox banner_ad';\n"
    "  document.body.appendChild(bait);\n"
    "  if (bait.offsetParent === null) {{ window.__abd{n} = true; }}\n"
    "}})();\n",
    "var metrics{n} = {{ page: 'p{n}', clicks: 0 }};\n"
    "window.addEventListener('scroll', function() {{ metrics{n}.clicks += 1; }});\n",
)

_PAGE_HTML = (
    "<html><body>"
    "<div class='content'>story {n}</div>"
    "<div class='adsbox'>sponsor {n}</div>"
    "</body></html>"
)


def _make_url(rng: random.Random, n: int) -> str:
    host = rng.choice(_HOSTS)
    words = [rng.choice(_URL_WORDS) for _ in range(rng.randint(1, 3))]
    return f"https://{host}/{'/'.join(words)}/item{n}.js"


def _make_script(rng: random.Random, n: int) -> str:
    return rng.choice(_SCRIPT_TEMPLATES).format(n=n)


def generate_queries(
    seed: int, count: int, mix: Sequence[float] = DEFAULT_MIX
) -> List[Dict[str, Any]]:
    """A reproducible query stream of ``count`` wire-format queries."""
    rng = random.Random(seed)
    url_w, script_w, page_w = mix
    queries: List[Dict[str, Any]] = []
    for n in range(count):
        roll = rng.random() * (url_w + script_w + page_w)
        if roll < url_w:
            queries.append(
                protocol.url_query(
                    _make_url(rng, n),
                    page_url=f"https://{rng.choice(_HOSTS)}/",
                    resource_type=rng.choice(("script", "image", "xmlhttprequest")),
                )
            )
        elif roll < url_w + script_w:
            queries.append(protocol.script_query(_make_script(rng, n)))
        else:
            queries.append(
                {
                    "op": "page",
                    "page": {
                        "url": f"https://{rng.choice(_HOSTS)}/article{n}",
                        "html": _PAGE_HTML.format(n=n),
                        "subresources": [
                            {"url": _make_url(rng, n), "resource_type": "script"}
                        ],
                        "scripts": [
                            {"source": _make_script(rng, n), "url": _make_url(rng, n)}
                        ],
                    },
                }
            )
    return queries


def _summarise(
    count: int, errors: int, wall_s: float, latency: Histogram
) -> Dict[str, Any]:
    quantiles = latency.quantiles()
    return {
        "queries": count,
        "errors": errors,
        "wall_s": round(wall_s, 6),
        "qps": round(count / wall_s, 2) if wall_s > 0 else 0.0,
        "p50_ns": quantiles["p50"],
        "p90_ns": quantiles["p90"],
        "p99_ns": quantiles["p99"],
    }


def run_inprocess(
    engine,
    queries: Sequence[Dict[str, Any]],
    batch_size: int = 64,
    batched: bool = True,
) -> Dict[str, Any]:
    """Drive an engine directly; ``batched=False`` is the naive baseline.

    Naive mode answers one query per engine call — the cost a blocker
    pays without request batching. Batched mode answers in
    ``batch_size`` slices through the prewarm path. Latency per query is
    attributed as the elapsed time of its call divided evenly across the
    call's queries, so both modes histogram the same quantity.
    """
    latency = Histogram(ns_buckets())
    errors = 0
    started = time.perf_counter()
    if batched:
        slices = [
            list(queries[i : i + batch_size])
            for i in range(0, len(queries), batch_size)
        ]
    else:
        slices = [[query] for query in queries]
    for chunk in slices:
        t0 = time.perf_counter_ns()
        answers = engine.answer_batch(chunk, batched=batched)
        per_query = (time.perf_counter_ns() - t0) // max(len(chunk), 1)
        for answer in answers:
            latency.observe(per_query)
            if not answer.get("ok"):
                errors += 1
    wall = time.perf_counter() - started
    return _summarise(len(queries), errors, wall, latency)


def run_network(
    host: str,
    port: int,
    queries: Sequence[Dict[str, Any]],
    concurrency: int = 8,
    batch_size: int = 1,
    timeout: float = 60.0,
    shards: Optional[int] = None,
    reconnect: bool = True,
) -> Dict[str, Any]:
    """Drive a live daemon from ``concurrency`` client connections.

    Queries are dealt round-robin across workers; each worker owns one
    connection. With ``batch_size=1`` (the naive baseline) every query
    is its own round trip — the cost a client pays without request
    batching. With ``batch_size>1`` each worker wraps its share into
    ``batch`` frames, amortising a round trip (and the server's
    prewarm pass) across the whole frame; per-query latency is the
    frame's elapsed time divided evenly across its queries, so both
    modes histogram the same quantity.

    Against a sharded daemon, pass ``shards``: concurrency is rounded
    up to a multiple of the shard count so the kernel's connection
    balancing has enough connections to spread, and each worker samples
    ``health`` at the end to report how many distinct shards the run
    actually landed on (``shards_hit``).

    A round trip that dies on a connection error (a shard was killed
    mid-query) is retried on a fresh connection up to
    :data:`RECONNECT_ATTEMPTS` times when ``reconnect`` is on — against
    a supervisor port the kernel re-balances the new connection to a
    live shard, so a shard death costs reconnects, not errors.

    The summary is honest about incomplete runs: ``errors`` counts
    protocol-level failures (``ok: false`` answers) plus queries no
    worker ever answered (also reported separately as ``unanswered``),
    ``reconnects`` counts re-dials, and ``timed_out`` reports whether
    any worker was still alive when the join deadline expired.
    """
    import threading

    concurrency = max(1, min(concurrency, len(queries) or 1))
    if shards and shards > 1:
        # Connection spreading: at least one connection per shard, and a
        # whole number of connections per shard so no shard idles.
        concurrency = ((max(concurrency, shards) + shards - 1) // shards) * shards
    batch_size = max(1, batch_size)
    shares: List[List[Dict[str, Any]]] = [[] for _ in range(concurrency)]
    for index, query in enumerate(queries):
        shares[index % concurrency].append(query)
    histograms = [Histogram(ns_buckets()) for _ in range(concurrency)]
    error_counts = [0] * concurrency
    answered_counts = [0] * concurrency
    reconnect_counts = [0] * concurrency
    shards_seen: List[set] = [set() for _ in range(concurrency)]

    def worker(slot: int) -> None:
        client: Optional[protocol.ServeClient] = None

        def drop_client() -> None:
            nonlocal client
            if client is not None:
                try:
                    client.close()
                except OSError:
                    pass
                client = None

        def ask(message: Dict[str, Any]) -> Dict[str, Any]:
            # One logical round trip, retried across reconnects: a frame
            # cut off by a dying shard is re-asked in full on a fresh
            # connection (answers are only counted on success, so a
            # retry never double-counts).
            nonlocal client
            attempts = 0
            while True:
                try:
                    if client is None:
                        client = protocol.ServeClient(host, port, timeout=timeout)
                    return client.ask(message)
                except (OSError, ValueError):
                    drop_client()
                    attempts += 1
                    if not reconnect or attempts > RECONNECT_ATTEMPTS:
                        raise
                    reconnect_counts[slot] += 1
                    time.sleep(0.05 * attempts)

        try:
            share = shares[slot]
            if batch_size == 1:
                for query in share:
                    t0 = time.perf_counter_ns()
                    answer = ask(query)
                    histograms[slot].observe(time.perf_counter_ns() - t0)
                    answered_counts[slot] += 1
                    if not answer.get("ok"):
                        error_counts[slot] += 1
            else:
                for start in range(0, len(share), batch_size):
                    frame = share[start : start + batch_size]
                    t0 = time.perf_counter_ns()
                    response = ask(protocol.batch_query(frame))
                    per_query = (time.perf_counter_ns() - t0) // len(frame)
                    answers = response.get("answers", []) if response.get("ok") else []
                    for index in range(len(frame)):
                        histograms[slot].observe(per_query)
                        answered_counts[slot] += 1
                        answer = answers[index] if index < len(answers) else {}
                        if not answer.get("ok"):
                            error_counts[slot] += 1
            if shards and shards > 1:
                try:
                    health = ask({"op": "health"})
                except (OSError, ValueError):
                    health = {}
                if health.get("shard") is not None:
                    shards_seen[slot].add(int(health["shard"]))
        finally:
            drop_client()

    threads = [
        threading.Thread(target=worker, args=(slot,), daemon=True)
        for slot in range(concurrency)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    deadline = time.monotonic() + timeout
    timed_out = False
    for thread in threads:
        thread.join(max(0.0, deadline - time.monotonic()))
        if thread.is_alive():
            timed_out = True
    wall = time.perf_counter() - started
    latency = Histogram(ns_buckets())
    for histogram in histograms:
        latency.merge(histogram)
    unanswered = max(0, len(queries) - sum(answered_counts))
    summary = _summarise(len(queries), sum(error_counts) + unanswered, wall, latency)
    summary["unanswered"] = unanswered
    summary["reconnects"] = sum(reconnect_counts)
    summary["concurrency"] = concurrency
    summary["batch_size"] = batch_size
    summary["timed_out"] = timed_out
    if shards and shards > 1:
        summary["shards_hit"] = len(set().union(*shards_seen))
    return summary
