"""``python -m repro.serve`` — same CLI as ``python -m repro serve``."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
