"""Epoch-swap hot reload: track list churn without dropping queries.

A deployed blocker has to follow filter-list revisions ("A Longitudinal
Analysis of Online Ad-Blocking Blacklists" measures exactly that churn)
while answering queries continuously. The serve daemon does it the way
the §4 replay engine walks revisions: the next matcher is derived from
the current one in O(delta) via
:meth:`~repro.filterlist.matcher.NetworkMatcher.apply_delta`, never by
re-tokenising the full rule set.

Concurrency model — the classic epoch swap:

1. every query batch *acquires* the current :class:`ServeEpoch`
   (an in-flight counter) and releases it when its answers are out;
2. a reload builds the next epoch off to the side (queries keep
   flowing), then swaps the ``current`` pointer — new batches land on
   the new epoch immediately;
3. the old epoch is *drained*: the reloader waits for its in-flight
   count to reach zero, then retires it.

No query is ever cancelled or answered against a torn-down matcher, so
``serve.dropped`` stays 0 by construction; queries in flight during a
swap are answered by whichever epoch they acquired.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.online import OnlineAdblocker
from ..filterlist.matcher import NetworkMatcher
from ..filterlist.rules import ElementRule, NetworkRule, RuleParseError, parse_rule
from ..web.adblocker import Adblocker


def partition_rule_lines(lines: Sequence[str]):
    """Parse raw lines into (network_rules, element_rules, skipped).

    Blank lines, comments (``!``), headers (``[...]``), and unparseable
    lines are skipped and counted — the same tolerance real adblockers
    (and :func:`~repro.synthesis.listgen.apply_list_patch`) apply.
    """
    network: List[NetworkRule] = []
    element: List[ElementRule] = []
    skipped = 0
    for line in lines:
        line = line.strip()
        if not line or line.startswith("!") or line.startswith("["):
            skipped += 1
            continue
        try:
            rule = parse_rule(line)
        except RuleParseError:
            skipped += 1
            continue
        if isinstance(rule, ElementRule):
            element.append(rule)
        else:
            network.append(rule)
    return network, element, skipped


class ServeEpoch:
    """One immutable serving generation: an adblocker plus an in-flight gate."""

    def __init__(self, index: int, online: OnlineAdblocker) -> None:
        self.index = index
        self.online = online
        self._lock = threading.Lock()
        self._inflight = 0
        self._draining = False
        #: Set once the epoch is draining and its last query released.
        self.drained = threading.Event()

    @property
    def inflight(self) -> int:
        """Queries currently holding this epoch."""
        return self._inflight

    def acquire(self) -> bool:
        """Enter the epoch; ``False`` once it has begun draining."""
        with self._lock:
            if self._draining:
                return False
            self._inflight += 1
            return True

    def release(self) -> None:
        """Leave the epoch; fires ``drained`` for the last leaver."""
        with self._lock:
            self._inflight -= 1
            if self._draining and self._inflight <= 0:
                self.drained.set()

    def begin_drain(self) -> None:
        """Stop admitting queries; ``drained`` fires at in-flight zero."""
        with self._lock:
            self._draining = True
            if self._inflight <= 0:
                self.drained.set()


class EpochChain:
    """The current epoch plus the delta history that produced it.

    The chain owns the detector and the shared verdict cache: both
    survive every swap (a reload changes *rules*, not the model), so a
    vendor script scanned in epoch N is still cached in epoch N+5. The
    raw-line ``deltas`` history is what pool workers fold forward to
    reach the parent's epoch (:mod:`repro.serve.batcher`).
    """

    def __init__(
        self,
        detector,
        network_rules: Sequence[NetworkRule],
        element_rules: Sequence[ElementRule],
        verdict_cache: Optional[Dict[str, bool]] = None,
    ) -> None:
        self.detector = detector
        self.verdict_cache: Dict[str, bool] = (
            verdict_cache if verdict_cache is not None else {}
        )
        matcher = NetworkMatcher(network_rules)
        self._current = ServeEpoch(
            0, self._make_online(list(network_rules), list(element_rules), matcher)
        )
        self._reload_lock = threading.Lock()
        #: Raw-line delta per reload: epoch N is deltas[:N] applied to epoch 0.
        self.deltas: List[Tuple[Tuple[str, ...], Tuple[str, ...]]] = []
        #: Epochs fully drained and retired.
        self.retired = 0

    def _make_online(self, network, element, matcher) -> OnlineAdblocker:
        blocker = Adblocker.from_parts(network, element, matcher)
        return OnlineAdblocker(
            self.detector, adblocker=blocker, verdict_cache=self.verdict_cache
        )

    @property
    def current(self) -> ServeEpoch:
        return self._current

    def acquire(self) -> ServeEpoch:
        """The current epoch, acquired — retrying across a concurrent swap."""
        while True:
            epoch = self._current
            if epoch.acquire():
                return epoch

    def reload(
        self,
        added_lines: Sequence[str],
        removed_lines: Sequence[str],
        wait: bool = True,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Swap in a new epoch with ``added``/``removed`` raw rule lines.

        O(delta): the new matcher is derived with ``apply_delta`` and the
        element-rule list is edited by raw line, so reload cost scales
        with the revision diff, not the subscription size. With ``wait``
        the call returns only after the old epoch drained (the CI smoke
        gate); the swap itself is immediate either way. The summary's
        ``drained`` field reports whether the old epoch actually reached
        in-flight zero — ``False`` on a drain timeout (e.g. an epoch
        still held by an uncollected pool future), in which case it is
        not counted as retired.
        """
        added_net, added_elem, skipped_a = partition_rule_lines(added_lines)
        removed_net, removed_elem, skipped_r = partition_rule_lines(removed_lines)
        with self._reload_lock:
            old = self._current
            blocker = old.online.adblocker
            matcher = blocker.matcher.apply_delta(added_net, removed_net)
            removed_net_raw = {rule.raw for rule in removed_net}
            removed_elem_raw = {rule.raw for rule in removed_elem}
            network = [
                rule
                for rule in blocker._network_rules
                if rule.raw not in removed_net_raw
            ] + added_net
            element = [
                rule
                for rule in blocker._element_rules
                if rule.raw not in removed_elem_raw
            ] + added_elem
            new = ServeEpoch(
                old.index + 1, self._make_online(network, element, matcher)
            )
            self.deltas.append((tuple(added_lines), tuple(removed_lines)))
            self._current = new
            old.begin_drain()
        drained = old.drained.wait(timeout) if wait else old.drained.is_set()
        if drained:
            self.retired += 1
        return {
            "epoch": new.index,
            "added": len(added_net) + len(added_elem),
            "removed": len(removed_net) + len(removed_elem),
            "skipped": skipped_a + skipped_r,
            "drained": drained,
        }

    def fold_to(self, deltas: Sequence[Tuple[Sequence[str], Sequence[str]]]) -> int:
        """Apply any deltas beyond this chain's history (worker-side sync).

        Pool workers fork with epoch 0 and receive the parent's full
        delta history with each batch; this replays only the suffix they
        have not seen. Idempotent, and O(new deltas) per call.
        """
        applied = 0
        while len(self.deltas) < len(deltas):
            added, removed = deltas[len(self.deltas)]
            self.reload(added, removed, wait=True)
            applied += 1
        return applied
