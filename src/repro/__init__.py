"""repro — reproduction of "The Ad Wars" (IMC 2017).

A full-system reproduction of *The Ad Wars: Retrospective Measurement and
Analysis of Anti-Adblock Filter Lists* (Iqbal, Shafiq, Qian; IMC '17),
including every substrate the paper depends on:

- :mod:`repro.jsast` — JavaScript tokenizer/parser/AST/eval-unpacker
- :mod:`repro.filterlist` — Adblock Plus filter-list engine
- :mod:`repro.web` — DOM/HTTP/HAR/browser/adblocker web substrate
- :mod:`repro.wayback` — Wayback Machine simulator
- :mod:`repro.synthesis` — synthetic web + filter-list history generator
- :mod:`repro.core` — the paper's ML anti-adblock script detector (§5)
- :mod:`repro.analysis` — the measurement pipelines (§3–§4)
- :mod:`repro.experiments` — one driver per paper table/figure
"""

__version__ = "1.0.0"

__all__ = [
    "jsast",
    "filterlist",
    "web",
    "wayback",
    "synthesis",
    "core",
    "analysis",
    "experiments",
]
