"""Fault taxonomy for the ingest layer.

A five-year archive crawl fails *partially and constantly* (cf. Hashmi
et al.'s longitudinal blacklist study and the paper's own §4.1 exclusion
accounting), so the resilience layer classifies failures rather than
treating every exception the same way:

- **transient** faults (connection resets, rate limiting, timeouts,
  truncated responses) are worth retrying with backoff;
- **permanent** faults (the archive refuses the URL, a hard protocol
  error) are not — the slot degrades to *missing* immediately.

Anything that is *not* a :class:`CrawlFault` — a ``KeyboardInterrupt``,
a programming bug — propagates untouched: the retry machinery must never
mask a real defect as flaky infrastructure.
"""

from __future__ import annotations


class CrawlFault(Exception):
    """Base class for classified ingest failures."""

    #: Stable machine-readable fault kind (metrics / event payloads).
    kind = "fault"
    #: Whether retrying the operation can plausibly succeed.
    transient = True


class TransientFault(CrawlFault):
    """A retryable failure: connection reset, HTTP 5xx, rate limiting."""

    kind = "transient"


class TimeoutFault(CrawlFault):
    """The operation exceeded its time allowance.

    Retryable, but each occurrence also charges the per-slot timeout
    budget (:attr:`~repro.resilience.retry.RetryPolicy.timeout_charge_ms`)
    — a slot that keeps timing out runs out of budget before it runs out
    of retries.
    """

    kind = "timeout"


class TruncatedResponse(CrawlFault):
    """The response arrived incomplete (content-length mismatch).

    Modelled as detectable — like a browser noticing a short read — so
    the slot is retried instead of silently storing corrupt data.
    """

    kind = "truncated"


class PermanentFault(CrawlFault):
    """A failure retrying cannot fix; the slot degrades immediately."""

    kind = "permanent"
    transient = False


class RetryExhausted(Exception):
    """A slot gave up: retries or time budget exhausted, or a permanent fault.

    Carries the final underlying :class:`CrawlFault` and how many retries
    were spent, so the caller can degrade the slot and account for it.
    """

    def __init__(self, key: str, retries: int, fault: CrawlFault) -> None:
        super().__init__(f"{key}: gave up after {retries} retries ({fault.kind})")
        self.key = key
        self.retries = retries
        self.fault = fault


class JournalMismatch(Exception):
    """A journal's header does not match the crawl trying to resume from it.

    Resuming from a journal written by a different campaign (different
    domains, months, seed, or schema) would silently mix two runs'
    records; the journal refuses instead. Delete or move the stale
    journal file to start fresh.
    """
