"""Crash-safe crawl journals: an append-only JSONL log of completed slots.

A five-year crawl that dies at slot 180 000 must not discard slots
1–179 999. Every ingest loop (the Wayback crawl, the live crawl, the
corpus build) appends one line per completed work unit — the slot key
plus the pickled result payload — and flushes immediately, so the
journal survives a ``kill -9`` at any byte offset:

- the **header** line pins the journal schema, the scope (which loop
  wrote it), and a caller-supplied *fingerprint* of the campaign
  (domains digest, date window, seed …). Resuming against a journal
  whose fingerprint differs raises :class:`JournalMismatch` rather than
  silently mixing two runs' records.
- **slot** lines carry a JSON key (list of strings) and a
  base64(pickle) payload with a SHA-256 integrity digest. A corrupt or
  torn line — the classic crash artifact — is skipped with a warning;
  the slot is simply re-crawled, which is always safe because slot
  production is deterministic.
- a **complete** line marks the crawl finished, letting a re-run serve
  the whole result from the journal without touching the source.

Payloads round-trip through :mod:`pickle`; combined with the interning
pass in :mod:`repro.resilience.canonical`, a result assembled from
journaled + freshly-crawled slots is pickle-byte-identical to an
uninterrupted run's.
"""

from __future__ import annotations

import base64
import hashlib
import json
import logging
import pickle
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from .errors import JournalMismatch

logger = logging.getLogger("repro.resilience.journal")

SCHEMA = "repro.crawl-journal/1"

#: Journal slot keys: a tuple of strings (domain, ISO month, rank …).
SlotKey = Tuple[str, ...]


def _payload_encode(payload: Any) -> Tuple[str, str]:
    raw = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    return (
        base64.b64encode(raw).decode("ascii"),
        hashlib.sha256(raw).hexdigest()[:16],
    )


class CrawlJournal:
    """One scope's append-only slot journal (``<dir>/<scope>.jsonl``)."""

    def __init__(
        self,
        directory: Union[str, Path],
        scope: str,
        fingerprint: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.directory = Path(directory)
        self.scope = scope
        self.fingerprint: Dict[str, Any] = dict(fingerprint or {})
        self.path = self.directory / f"{scope}.jsonl"
        self._handle = None
        # An empty file (crash before the header flushed) gets a fresh header.
        self._header_written = self.path.exists() and self.path.stat().st_size > 0

    # -- writing -------------------------------------------------------------

    def _write_line(self, record: Dict[str, Any]) -> None:
        if self._handle is None:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("a", encoding="utf-8")
        if not self._header_written:
            header = {
                "kind": "header",
                "schema": SCHEMA,
                "scope": self.scope,
                "fingerprint": self.fingerprint,
            }
            self._handle.write(json.dumps(header, sort_keys=True) + "\n")
            self._header_written = True
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        # Flush per line: the journal must survive a crash at any point.
        self._handle.flush()

    def append(self, key: SlotKey, payload: Any) -> None:
        """Record one completed slot (pickled payload, integrity digest)."""
        data, digest = _payload_encode(payload)
        self._write_line(
            {"kind": "slot", "key": list(key), "data": data, "sha": digest}
        )

    def mark_complete(self) -> None:
        """Record that the crawl covered every slot (enables cold re-serve)."""
        self._write_line({"kind": "complete"})

    def close(self) -> None:
        """Close the underlying file handle (appends reopen it)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # -- reading -------------------------------------------------------------

    def load(self) -> "JournalState":
        """Parse the journal from disk into resumable state.

        Missing file → empty state. A header whose schema/scope/
        fingerprint differ from this journal's raises
        :class:`JournalMismatch`. Corrupt slot lines (torn writes, bad
        digests) are skipped with a warning — those slots re-crawl.
        """
        state = JournalState()
        if not self.path.exists():
            return state
        seen_header = False
        for line_no, line in enumerate(
            self.path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                logger.warning(
                    "journal %s line %d: unparseable (torn write?); skipped",
                    self.path,
                    line_no,
                )
                continue
            kind = record.get("kind")
            if kind == "header":
                self._check_header(record)
                seen_header = True
            elif kind == "slot":
                self._load_slot(record, line_no, state)
            elif kind == "complete":
                state.complete = True
        if state.slots and not seen_header:
            raise JournalMismatch(f"{self.path}: journal has slots but no header")
        return state

    def _check_header(self, record: Dict[str, Any]) -> None:
        if record.get("schema") != SCHEMA:
            raise JournalMismatch(
                f"{self.path}: schema {record.get('schema')!r} != {SCHEMA!r}"
            )
        if record.get("scope") != self.scope:
            raise JournalMismatch(
                f"{self.path}: scope {record.get('scope')!r} != {self.scope!r}"
            )
        if self.fingerprint and record.get("fingerprint") != self.fingerprint:
            raise JournalMismatch(
                f"{self.path}: fingerprint {record.get('fingerprint')!r} does not "
                f"match this campaign ({self.fingerprint!r}); delete the stale "
                "journal to start fresh"
            )

    def _load_slot(
        self, record: Dict[str, Any], line_no: int, state: "JournalState"
    ) -> None:
        try:
            raw = base64.b64decode(record["data"], validate=True)
            if hashlib.sha256(raw).hexdigest()[:16] != record["sha"]:
                raise ValueError("integrity digest mismatch")
            payload = pickle.loads(raw)
        except Exception as exc:  # corrupt entry: re-crawl that slot
            logger.warning(
                "journal %s line %d: corrupt slot (%s); skipped", self.path, line_no, exc
            )
            return
        state.slots[tuple(record["key"])] = payload


class JournalState:
    """What a loaded journal knows: completed slots + completion flag."""

    def __init__(self) -> None:
        self.slots: Dict[SlotKey, Any] = {}
        self.complete = False

    def __len__(self) -> int:
        return len(self.slots)

    def take(self, key: SlotKey) -> Any:
        """Pop one journaled payload (``KeyError`` if absent)."""
        return self.slots.pop(key)

    def __contains__(self, key: SlotKey) -> bool:
        return key in self.slots
