"""Deterministic fault injection for the synthetic ingest stack.

Real archive crawls fail partially and constantly; the synthetic
:class:`~repro.wayback.archive.WaybackArchive` never does. This module
closes that gap *deterministically*: a :class:`FaultSchedule` derives
each slot's fate — nothing, a burst of transient errors, timeouts, a
truncated response, or a permanent failure — purely from
``(seed, slot key)`` via SHA-256, so the same seed always injects the
same faults at the same slots, a property the resume-determinism and
retry-accounting tests rely on.

:class:`FaultInjector` turns a schedule into raises: it counts how many
faults it has already delivered per slot and stops after the planned
burst, so a retried slot eventually succeeds (transient kinds) or never
does (permanent). :class:`FaultyArchive` mounts an injector in front of
a real archive at the ``closest()`` boundary — the single chokepoint
both the availability lookup and the capture fetch go through — and the
same injector can be mounted as a :class:`~repro.web.browser.Browser`
interceptor for page-load-level faults.

Enable end to end with ``REPRO_FAULT_SEED=<int>`` (or the CLI's
``--inject-faults``); see :mod:`repro.resilience.policy`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, Optional

from ..obs.trace import emit_event
from .errors import (
    CrawlFault,
    PermanentFault,
    TimeoutFault,
    TransientFault,
    TruncatedResponse,
)
from .retry import seeded_unit


class FaultKind(str, Enum):
    """What a scheduled fault does to the slot."""

    TRANSIENT = "transient"
    TIMEOUT = "timeout"
    TRUNCATED = "truncated"
    PERMANENT = "permanent"


_EXCEPTION_FOR = {
    FaultKind.TRANSIENT: TransientFault,
    FaultKind.TIMEOUT: TimeoutFault,
    FaultKind.TRUNCATED: TruncatedResponse,
    FaultKind.PERMANENT: PermanentFault,
}


@dataclass(frozen=True)
class FaultPlan:
    """One slot's fate: the fault kind and how many raises to deliver."""

    kind: FaultKind
    #: Faults delivered before the slot starts succeeding (ignored for
    #: permanent faults, which never stop failing).
    failures: int = 1

    def exception(self, key: str) -> CrawlFault:
        """Instantiate the fault exception for a slot."""
        return _EXCEPTION_FOR[self.kind](f"injected {self.kind.value} fault: {key}")


@dataclass(frozen=True)
class FaultSchedule:
    """Seeded per-slot fault assignment (rates sum to the failure rate)."""

    seed: int
    transient_rate: float = 0.10
    timeout_rate: float = 0.02
    truncated_rate: float = 0.02
    permanent_rate: float = 0.005
    #: Transient-ish bursts deliver 1..max_failures raises.
    max_failures: int = 2

    def plan(self, key: str) -> Optional[FaultPlan]:
        """The slot's fault plan, or ``None`` for a healthy slot."""
        u = seeded_unit(self.seed, "fault-kind", key)
        edges = (
            (self.transient_rate, FaultKind.TRANSIENT),
            (self.timeout_rate, FaultKind.TIMEOUT),
            (self.truncated_rate, FaultKind.TRUNCATED),
            (self.permanent_rate, FaultKind.PERMANENT),
        )
        cumulative = 0.0
        for rate, kind in edges:
            cumulative += rate
            if u < cumulative:
                if kind is FaultKind.PERMANENT:
                    return FaultPlan(kind=kind)
                burst = seeded_unit(self.seed, "fault-burst", key)
                failures = 1 + int(burst * self.max_failures)
                return FaultPlan(kind=kind, failures=failures)
        return None

    def planned_slots(self, keys: Iterable[str]) -> Dict[str, FaultPlan]:
        """The non-``None`` plans for a key set (test/report helper)."""
        plans = {}
        for key in keys:
            plan = self.plan(key)
            if plan is not None:
                plans[key] = plan
        return plans


class FaultInjector:
    """Delivers a schedule's faults, counting per-slot deliveries.

    ``check(key)`` raises the slot's planned fault until the burst is
    spent, then returns normally — so the caller's retry loop sees the
    exact failure sequence the schedule prescribes, independent of
    process restarts (resumed runs never re-check journaled slots, and
    un-journaled slots restart their burst from zero in both the
    interrupted and the uninterrupted run).
    """

    def __init__(self, schedule: FaultSchedule) -> None:
        self.schedule = schedule
        self._delivered: Dict[str, int] = {}
        self.injected = 0

    def check(self, key: str) -> None:
        """Raise the slot's next scheduled fault, if any remain."""
        plan = self.schedule.plan(key)
        if plan is None:
            return
        if plan.kind is FaultKind.PERMANENT:
            self.injected += 1
            emit_event("crawl_fault", slot=key, kind=plan.kind.value)
            raise plan.exception(key)
        delivered = self._delivered.get(key, 0)
        if delivered < plan.failures:
            self._delivered[key] = delivered + 1
            self.injected += 1
            emit_event("crawl_fault", slot=key, kind=plan.kind.value)
            raise plan.exception(key)

    # -- browser mounting ----------------------------------------------------

    def browser_interceptor(self, key: str):
        """An interceptor for :class:`repro.web.browser.Browser`.

        Returns a callable suitable for the browser's ``interceptor``
        hook, bound to one slot key. It checks the *same* key as the
        archive boundary, sharing the slot's burst accounting — so the
        total transient failures a slot can see stays bounded by the
        schedule's ``max_failures`` no matter how many fault boundaries
        the slot crosses (a transient-only schedule with
        ``max_failures <= max_retries`` always eventually succeeds).
        """

        def intercept(snapshot):
            self.check(key)
            return snapshot

        return intercept


def slot_key(domain: str, month) -> str:
    """Canonical injector/retry key for a (domain, month) crawl slot."""
    return f"{domain}|{month.isoformat()}"


class FaultyArchive:
    """A :class:`WaybackArchive` proxy that injects scheduled faults.

    Faults fire at ``closest()`` — the chokepoint every availability
    lookup and capture fetch goes through — keyed by (domain, requested
    month). Every other attribute delegates to the wrapped archive.
    """

    def __init__(self, archive, injector: FaultInjector) -> None:
        self._archive = archive
        self.injector = injector

    def closest(self, domain: str, requested):
        self.injector.check(slot_key(domain, requested))
        return self._archive.closest(domain, requested)

    def __getattr__(self, name: str):
        return getattr(self._archive, name)
