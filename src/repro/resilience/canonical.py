"""Interning canonicalization: make resumed results pickle-byte-identical.

``pickle`` memoizes by object *identity*: two equal strings that are the
same object serialize as one definition plus a back-reference, while two
equal-but-distinct objects serialize twice. A fresh crawl naturally
shares objects (every record of a month holds the *same* ``date``; a
record's ``html`` is the same string as its HAR's ``page_html``), but
records reloaded from a journal are unpickled one slot at a time, so all
cross-record sharing is lost — equal values, different bytes.

The fix is the same one the feature store uses (DESIGN.md §3.3): run
**every** construction path — fresh, resumed, fault-retried — through
one value-interning pass before the result is returned. After
canonicalization, object sharing is a pure function of the values, so
two runs that produce equal records produce identical pickles, which is
what the resume-determinism tests pin.

Only ``str`` and ``datetime.date`` are interned: those are the shared
leaf types of crawl records, and ``pickle`` does not memoize numbers at
all (so they never need help).
"""

from __future__ import annotations

from datetime import date
from typing import Dict, Iterable, Optional


class Interner:
    """Value-keyed canonical object tables for strings and dates."""

    def __init__(self) -> None:
        self._strings: Dict[str, str] = {}
        self._dates: Dict[date, date] = {}

    def string(self, value: Optional[str]) -> Optional[str]:
        if value is None:
            return None
        canonical = self._strings.get(value)
        if canonical is None:
            canonical = self._strings.setdefault(value, value)
        return canonical

    def date(self, value: Optional[date]) -> Optional[date]:
        if value is None:
            return None
        canonical = self._dates.get(value)
        if canonical is None:
            canonical = self._dates.setdefault(value, value)
        return canonical

    def string_dict(self, mapping: Dict[str, str]) -> Dict[str, str]:
        """Rebuild a str→str dict with both sides interned."""
        return {self.string(key): self.string(value) for key, value in mapping.items()}


def canonicalize_har(har, interner: Interner) -> None:
    """Intern every string inside a :class:`~repro.web.har.HarFile`."""
    har.page_url = interner.string(har.page_url)
    har.started = interner.string(har.started)
    har.page_html = interner.string(har.page_html)
    for entry in har.entries:
        request, response = entry.request, entry.response
        request.url = interner.string(request.url)
        request.method = interner.string(request.method)
        request.resource_type = interner.string(request.resource_type)
        request.page_url = interner.string(request.page_url)
        request.headers = interner.string_dict(request.headers)
        response.status_text = interner.string(response.status_text)
        response.mime_type = interner.string(response.mime_type)
        response.body = interner.string(response.body)
        response.headers = interner.string_dict(response.headers)


def canonicalize_records(records: Iterable) -> None:
    """Intern shared values across a crawl's records, in place.

    Iteration order defines which object becomes canonical for each
    value; callers must iterate in the result's record order so two
    equal-valued results canonicalize to identical object graphs.
    """
    interner = Interner()
    for record in records:
        record.domain = interner.string(record.domain)
        record.html = interner.string(record.html)
        record.month = interner.date(record.month)
        record.capture_date = interner.date(record.capture_date)
        if record.har is not None:
            canonicalize_har(record.har, interner)
