"""Per-domain circuit breakers: degrade, don't abort.

A domain that fails persistently — every month's capture times out, the
archive keeps refusing it — should cost a bounded number of attempts and
then be recorded as *missing*, exactly like the paper records excluded
and never-archived domains, instead of burning the retry budget on all
sixty of its monthly slots (or worse, aborting a multi-day run).

The breaker counts *consecutive* slot failures per key. Reaching the
threshold opens the circuit: subsequent slots for that key are degraded
without any attempt. A success closes the circuit and resets the count.
The state transition is reported to the caller (``record_failure``
returns ``True`` exactly once per opening) so metrics count each opened
domain once, whether the failures came from live attempts or from a
journal being replayed on resume.
"""

from __future__ import annotations

from typing import Dict, List


class CircuitBreaker:
    """Consecutive-failure breaker over string keys (domains)."""

    def __init__(self, threshold: int = 3) -> None:
        if threshold < 1:
            raise ValueError("circuit threshold must be >= 1")
        self.threshold = threshold
        self._failures: Dict[str, int] = {}
        self._open: Dict[str, bool] = {}

    def is_open(self, key: str) -> bool:
        """Whether slots for ``key`` should be degraded without attempts."""
        return self._open.get(key, False)

    def record_failure(self, key: str) -> bool:
        """Note one slot failure; returns ``True`` iff this opened the circuit."""
        count = self._failures.get(key, 0) + 1
        self._failures[key] = count
        if count >= self.threshold and not self._open.get(key, False):
            self._open[key] = True
            return True
        return False

    def record_success(self, key: str) -> None:
        """Note one slot success: closes the circuit and resets the count."""
        self._failures[key] = 0
        self._open[key] = False

    def open_keys(self) -> List[str]:
        """Every key whose circuit is currently open, sorted."""
        return sorted(key for key, is_open in self._open.items() if is_open)
