"""Fault tolerance for the ingest layer: retries, journals, fault injection.

The §4 pipeline hinges on a five-year, ~300K-URL archive crawl — the
most failure-prone stage of the whole reproduction. This package is the
resilience layer that lets that stage (and the live crawl and corpus
build) survive the failures a production ingest system sees daily:

- :mod:`~repro.resilience.errors` — the fault taxonomy (transient /
  timeout / truncated / permanent) the retry machinery classifies on;
- :mod:`~repro.resilience.retry` — exponential backoff with *seeded*
  jitter and per-slot time budgets, deterministic end to end;
- :mod:`~repro.resilience.circuit` — per-domain circuit breakers that
  degrade a persistently failing domain to *missing* instead of
  aborting the run;
- :mod:`~repro.resilience.journal` — crash-safe JSONL checkpoint
  journals, so an interrupted crawl resumes from its last completed
  slot and reproduces the uninterrupted result byte for byte;
- :mod:`~repro.resilience.canonical` — the value-interning pass that
  makes resumed results pickle-identical to fresh ones;
- :mod:`~repro.resilience.faults` — a deterministic fault-injection
  harness over the synthetic archive/browser, for tests and the
  ``--inject-faults`` dev mode;
- :mod:`~repro.resilience.policy` — the environment-resolved bundle
  (``REPRO_MAX_RETRIES``, ``REPRO_RETRY_BASE_MS``,
  ``REPRO_CRAWL_JOURNAL``, ``REPRO_FAULT_SEED``) every ingest loop
  shares.

The package imports only :mod:`repro.obs` (and the standard library), so
any ingest layer may depend on it without cycles.
"""

from .canonical import Interner, canonicalize_records
from .circuit import CircuitBreaker
from .errors import (
    CrawlFault,
    JournalMismatch,
    PermanentFault,
    RetryExhausted,
    TimeoutFault,
    TransientFault,
    TruncatedResponse,
)
from .faults import FaultInjector, FaultKind, FaultPlan, FaultSchedule, FaultyArchive, slot_key
from .journal import CrawlJournal, JournalState
from .policy import ResiliencePolicy, default_resilience
from .retry import RetryPolicy, VirtualClock, real_sleeper, retry_call, seeded_unit

__all__ = [
    "Interner",
    "canonicalize_records",
    "CircuitBreaker",
    "CrawlFault",
    "JournalMismatch",
    "PermanentFault",
    "RetryExhausted",
    "TimeoutFault",
    "TransientFault",
    "TruncatedResponse",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSchedule",
    "FaultyArchive",
    "slot_key",
    "CrawlJournal",
    "JournalState",
    "ResiliencePolicy",
    "default_resilience",
    "RetryPolicy",
    "VirtualClock",
    "real_sleeper",
    "retry_call",
    "seeded_unit",
]
