"""One resolved resilience configuration shared by every ingest loop.

:class:`ResiliencePolicy` bundles the retry policy, circuit-breaker
threshold, journal directory, and (optional) fault schedule. The default
instance resolves from the validated ``REPRO_*`` knobs
(:mod:`repro.obs.config`), so ``WaybackCrawler``, ``LiveCrawler`` and
``build_corpus`` pick up journaling and fault injection from the
environment without any caller plumbing — the same pattern the feature
store uses for ``REPRO_FEATURE_CACHE``.

Sleeping is policy too: with fault injection active the policy hands out
a :class:`~repro.resilience.retry.VirtualClock` (the synthetic archive's
faults should cost metrics, not wall-clock), while a plain run gets
:func:`~repro.resilience.retry.real_sleeper` for crawls against real
infrastructure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..obs.config import crawl_journal_dir, fault_seed, max_retries, retry_base_ms
from .circuit import CircuitBreaker
from .faults import FaultInjector, FaultSchedule
from .journal import CrawlJournal
from .retry import RetryPolicy, Sleeper, VirtualClock, real_sleeper


@dataclass
class ResiliencePolicy:
    """Retry + breaker + journal + fault settings for one campaign."""

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker_threshold: int = 3
    journal_dir: Optional[str] = None
    fault_schedule: Optional[FaultSchedule] = None

    @classmethod
    def from_env(cls) -> "ResiliencePolicy":
        """Resolve from the validated ``REPRO_*`` knobs."""
        seed = fault_seed()
        return cls(
            retry=RetryPolicy(max_retries=max_retries(), base_ms=retry_base_ms()),
            journal_dir=crawl_journal_dir(),
            fault_schedule=FaultSchedule(seed=seed) if seed is not None else None,
        )

    # -- per-crawl components ------------------------------------------------

    def journal(
        self, scope: str, fingerprint: Optional[Dict[str, Any]] = None
    ) -> Optional[CrawlJournal]:
        """This scope's journal, or ``None`` when journaling is disabled."""
        if self.journal_dir is None:
            return None
        return CrawlJournal(self.journal_dir, scope, fingerprint)

    def breaker(self) -> CircuitBreaker:
        """A fresh circuit breaker (state is per-crawl, never shared)."""
        return CircuitBreaker(threshold=self.breaker_threshold)

    def injector(self) -> Optional[FaultInjector]:
        """A fresh fault injector, or ``None`` when injection is disabled."""
        if self.fault_schedule is None:
            return None
        return FaultInjector(self.fault_schedule)

    def sleeper(self) -> Sleeper:
        """Backoff sleeper: virtual under fault injection, real otherwise."""
        if self.fault_schedule is not None:
            return VirtualClock()
        return real_sleeper


def default_resilience() -> ResiliencePolicy:
    """A fresh environment-resolved policy (no caching: knobs may change)."""
    return ResiliencePolicy.from_env()
