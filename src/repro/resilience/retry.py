"""Deterministic retry: exponential backoff with seeded jitter and budgets.

Production retry loops draw jitter from a global RNG, which makes two
runs of the same crawl schedule different sleeps — unacceptable in a
reproduction where an interrupted-then-resumed run must equal an
uninterrupted one. Here every delay is a pure function of
``(policy.seed, slot key, attempt)``: the jitter comes from a SHA-256
hash, so the full backoff schedule of any slot can be recomputed — by a
resumed run, by a test, or by an operator reading the journal.

Time is injectable. :func:`real_sleeper` actually sleeps (for crawls
against a live archive); :class:`VirtualClock` only accumulates — the
deterministic fault-injection dev mode and the tests use it so a
24 000-slot crawl with a 10% failure schedule finishes in seconds while
still exercising (and metering) every backoff decision.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Callable, Optional

from .errors import CrawlFault, RetryExhausted, TimeoutFault

#: A sleeper receives a delay in milliseconds.
Sleeper = Callable[[float], None]


def seeded_unit(seed: int, *parts: object) -> float:
    """A deterministic float in ``[0, 1)`` from a seed and key parts."""
    payload = "|".join(str(part) for part in (seed,) + parts)
    digest = hashlib.sha256(payload.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


@dataclass(frozen=True)
class RetryPolicy:
    """How a slot is retried: attempts, backoff shape, time budgets."""

    #: Retries after the first attempt (0 disables retrying).
    max_retries: int = 3
    #: First backoff delay; doubles (``multiplier``) per further retry.
    base_ms: float = 50.0
    multiplier: float = 2.0
    #: Ceiling on any single backoff delay.
    max_backoff_ms: float = 30_000.0
    #: Jitter fraction: delay is scaled by ``1 + jitter * u`` with a
    #: seeded ``u`` in [0, 1) — deterministic, unlike ``random()``.
    jitter: float = 0.5
    seed: int = 0
    #: Total time allowance per slot (backoff + timeout charges); an
    #: exhausted budget degrades the slot even with retries remaining.
    slot_budget_ms: float = 120_000.0
    #: Virtual cost charged against the slot budget per timeout fault.
    timeout_charge_ms: float = 10_000.0

    def backoff_ms(self, key: str, attempt: int) -> float:
        """The delay before retry ``attempt`` (1-based) of slot ``key``."""
        raw = self.base_ms * self.multiplier ** (attempt - 1)
        jittered = raw * (1.0 + self.jitter * seeded_unit(self.seed, key, attempt))
        return min(jittered, self.max_backoff_ms)


class VirtualClock:
    """A sleeper that records time instead of spending it."""

    def __init__(self) -> None:
        self.slept_ms = 0.0

    def __call__(self, delay_ms: float) -> None:
        self.slept_ms += delay_ms


def real_sleeper(delay_ms: float) -> None:
    """Actually sleep ``delay_ms`` milliseconds."""
    time.sleep(delay_ms / 1000.0)


def retry_call(
    fn: Callable[[], object],
    *,
    key: str,
    policy: RetryPolicy,
    sleeper: Sleeper,
    on_retry: Optional[Callable[[CrawlFault, int, float], None]] = None,
):
    """Call ``fn`` under ``policy``; returns its value or raises.

    Transient :class:`CrawlFault` subclasses are retried with
    deterministic backoff until ``max_retries`` or the slot's time
    budget is exhausted; permanent faults give up immediately. Both
    give-up paths raise :class:`RetryExhausted` carrying the final fault
    and the retries spent. ``on_retry(fault, attempt, delay_ms)`` fires
    before each backoff sleep (metrics/event hook). Exceptions that are
    not :class:`CrawlFault` propagate untouched.
    """
    retries = 0
    budget_ms = policy.slot_budget_ms
    while True:
        try:
            return fn()
        except CrawlFault as fault:
            if not fault.transient:
                raise RetryExhausted(key, retries, fault) from fault
            if isinstance(fault, TimeoutFault):
                budget_ms -= policy.timeout_charge_ms
            retries += 1
            if retries > policy.max_retries or budget_ms <= 0:
                raise RetryExhausted(key, retries - 1, fault) from fault
            delay_ms = policy.backoff_ms(key, retries)
            budget_ms -= delay_ms
            if on_retry is not None:
                on_retry(fault, retries, delay_ms)
            sleeper(delay_ms)
