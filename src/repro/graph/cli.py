"""``python -m repro graph`` — inspect and invalidate the run cache.

Subcommands (all read ``REPRO_RUN_CACHE`` / ``REPRO_SCALE`` etc. from
the environment, so the CLI sees exactly the keys a run would)::

    python -m repro graph                  # summary: nodes, entries, bytes
    python -m repro graph keys             # current key per node (+ cached?)
    python -m repro graph ls               # every cache entry on disk
    python -m repro graph invalidate NODE  # drop one node's entries
    python -m repro graph invalidate --all # drop the whole cache

``--json`` on any subcommand emits machine-readable output.
"""

from __future__ import annotations

import json
import sys
from typing import List, Optional

from ..obs.config import run_cache_dir
from .core import ArtifactGraph


def _build_graph(cache_dir: Optional[str]) -> ArtifactGraph:
    """The graph for the environment's campaign (world from REPRO_SCALE)."""
    from ..experiments.context import ExperimentContext
    from ..__main__ import EXPERIMENTS
    import importlib

    ctx = ExperimentContext.create()
    graph = ArtifactGraph.for_world(ctx.world, cache_dir=cache_dir)
    for name in EXPERIMENTS:
        module = importlib.import_module(f"repro.experiments.{name}")
        graph.register_experiment(name, module)
    # Materialise the standard feature nodes so listings show them.
    for feature_set in ("all", "literal", "keyword"):
        graph.spec(f"features:{feature_set}:u1")
    return graph


def main(argv: List[str]) -> int:
    """Entry point for the ``graph`` subcommand of ``python -m repro``."""
    args = list(argv)
    as_json = "--json" in args
    if as_json:
        args.remove("--json")
    command = args.pop(0) if args else "summary"
    cache_dir = run_cache_dir()

    if command == "invalidate":
        if not cache_dir:
            print("REPRO_RUN_CACHE is not set; nothing to invalidate", file=sys.stderr)
            return 2
        graph = _build_graph(cache_dir)
        if args == ["--all"]:
            removed = graph.invalidate()
        elif len(args) == 1 and not args[0].startswith("-"):
            try:
                graph.spec(args[0])
            except KeyError:
                print(f"unknown node: {args[0]}", file=sys.stderr)
                return 2
            removed = graph.invalidate(args[0])
        else:
            print("usage: python -m repro graph invalidate <node>|--all", file=sys.stderr)
            return 2
        print(json.dumps({"removed": removed}) if as_json else f"removed {removed} entries")
        return 0

    if command not in ("summary", "keys", "ls"):
        print(f"unknown graph command: {command}", file=sys.stderr)
        print(__doc__, file=sys.stderr)
        return 2

    graph = _build_graph(cache_dir)
    if command == "keys":
        rows = [
            {"node": name, "key": key, "cached": graph.has(name)}
            for name, key in graph.keys().items()
        ]
        if as_json:
            print(json.dumps(rows, indent=2))
        else:
            for row in rows:
                mark = "cached" if row["cached"] else "-"
                print(f"{row['node']:<24} {row['key'][:16]}  {mark}")
        return 0

    entries = graph.entries()
    if command == "ls":
        if as_json:
            print(json.dumps(entries, indent=2))
        else:
            if not entries:
                print("run cache is empty" if cache_dir else "REPRO_RUN_CACHE is not set")
            for entry in entries:
                print(f"{entry['node_dir']:<24} {entry['key'][:16]}  {entry['bytes']:>10} B")
        return 0

    # summary
    total = sum(entry["bytes"] for entry in entries)
    keys = graph.keys()
    warm = sum(1 for name in keys if graph.has(name))
    summary = {
        "cache_dir": cache_dir,
        "entries": len(entries),
        "bytes": total,
        "nodes": len(keys),
        "warm_nodes": warm,
    }
    if as_json:
        print(json.dumps(summary, indent=2))
    else:
        print(f"run cache: {cache_dir or '(disabled: REPRO_RUN_CACHE unset)'}")
        print(f"  entries: {summary['entries']} ({total} bytes)")
        print(f"  nodes:   {summary['nodes']} registered, {warm} warm at current keys")
    return 0
