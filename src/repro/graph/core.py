"""The content-addressed artifact graph: every stage is a keyed node.

The paper's pipeline is a DAG — list generation feeds the §4 replay and
the §5 corpus, the crawl feeds coverage, everything feeds tables and
figures — and before this module each subsystem cached its own slice
(matcher LRU, FeatureStore, ParsedRuleCache, RDPK stores) with no way to
reuse a finished *stage* across process restarts. Here the whole
campaign becomes one explicit graph:

- every :class:`~repro.experiments.context.ExperimentContext` stage
  (``lists``/``archive``/``crawl``/``coverage``/``live``/``corpus``/
  ``features:<set>:<unpack>``) and every experiment driver output
  (``exp:fig1`` … ``exp:rulereport``) is a node;
- a node's key is the SHA-256 of its canonicalised inputs — campaign
  parameters (seed, world config, list patch, fault schedule), literal
  node parameters, and the keys of its upstream nodes — combined with
  the :mod:`~repro.graph.version` code-version of its declared source
  scopes. Keys are pure functions of inputs, so they are identical
  across process restarts and worker counts, and change exactly when an
  input, seed, scale, patch, or relevant source file changes;
- values resolve through three layers, mirroring the FeatureStore:
  in-process memory, then the ``REPRO_RUN_CACHE`` directory
  (mmap-verified RDPK containers, :mod:`~repro.graph.store`), then
  compute. A warm process therefore recomputes only nodes whose keys
  changed — a one-line list patch invalidates coverage and the tables
  but leaves the archive crawl on disk.

Worker counts, pool modes, the data plane, rule stats, journals, and
every other knob that is proven not to change artifact bytes stay *out*
of the keys on purpose: a cache populated serially warm-starts a
parallel run and vice versa.

Everything is accounted: ``graph.hits`` / ``graph.misses`` /
``graph.stores`` / ``graph.errors`` / ``graph.bytes_read`` /
``graph.bytes_written`` counters in the unified metrics registry, one
span per fetch/store, and a per-node outcome table the run manifest
carries as its ``graph`` section.
"""

from __future__ import annotations

import hashlib
import json
import logging
import pickle
from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from ..obs.config import fault_seed, list_patch_file, max_retries, run_cache_dir
from ..obs.metrics import get_metrics
from ..obs.trace import span as trace_span
from .store import (
    GraphStoreError,
    delete_entries,
    entry_path,
    load_entry,
    scan_entries,
    store_entry,
)
from .version import code_version

logger = logging.getLogger("repro.graph")

#: Key-derivation revision: part of every node key, so a change to the
#: keying scheme itself orphans (never aliases) old cache entries.
GRAPH_SCHEMA = 1

#: Parameter groups a node may declare (subsets of the campaign params).
PARAM_GROUPS = ("world", "patch", "ingest")

#: Default parameter groups for experiment nodes: every driver output
#: derives from the campaign unless it says otherwise (``stability``).
EXPERIMENT_PARAM_GROUPS = PARAM_GROUPS


def canonical_json(payload: Any) -> str:
    """Deterministic JSON for digesting (sorted keys, dates via str)."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str
    )


def digest_text(text: str) -> str:
    """SHA-256 hex digest of a text payload."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class NodeSpec:
    """One node's identity: dependencies, code scopes, and parameters."""

    name: str
    #: Upstream node names whose keys enter this node's inputs-digest.
    deps: Tuple[str, ...] = ()
    #: Code scopes (:func:`~repro.graph.version.scope_digest`) whose
    #: sources this node's compute depends on.
    code: Tuple[str, ...] = ()
    #: Campaign parameter groups (of :data:`PARAM_GROUPS`) to include.
    params: Tuple[str, ...] = ()
    #: Literal node-specific parameters (JSON-able).
    extra: Tuple[Tuple[str, Any], ...] = ()
    #: Volatile nodes are never cached (their output depends on state
    #: outside the graph, e.g. a cross-run stats accumulator).
    volatile: bool = False

    @staticmethod
    def freeze_extra(extra: Optional[Mapping[str, Any]]) -> Tuple[Tuple[str, Any], ...]:
        """Canonicalise an extra-params mapping for the frozen spec."""
        if not extra:
            return ()
        return tuple(sorted((str(k), v) for k, v in extra.items()))


#: The campaign stage nodes (experiment nodes register dynamically).
#: Code scopes are the package subtrees whose edits change the stage's
#: output bytes; orchestration-only layers (obs, graph, context) are
#: deliberately absent.
STAGE_SPECS: Tuple[NodeSpec, ...] = (
    NodeSpec("lists", params=("world", "patch"), code=("synthesis", "filterlist")),
    NodeSpec("archive", params=("world",), code=("synthesis", "web", "wayback")),
    NodeSpec(
        "crawl",
        deps=("archive",),
        params=("ingest",),
        code=("synthesis", "web", "wayback", "resilience"),
    ),
    NodeSpec(
        "coverage",
        deps=("crawl", "lists"),
        code=("analysis", "filterlist", "web", "wayback"),
    ),
    NodeSpec(
        "live",
        deps=("lists",),
        params=("world", "ingest"),
        code=("analysis", "filterlist", "synthesis", "web", "resilience"),
    ),
    NodeSpec(
        "corpus",
        deps=("lists",),
        params=("world", "ingest"),
        code=("core", "filterlist", "synthesis", "web", "resilience"),
    ),
)


def feature_node_name(feature_set: str, unpack: bool) -> str:
    """Node name for one §5 feature extraction (``features:all:u1``)."""
    return f"features:{feature_set}:{'u1' if unpack else 'u0'}"


def feature_node_spec(feature_set: str, unpack: bool) -> NodeSpec:
    """Spec for one ``features:<set>:<unpack>`` node (deps: corpus)."""
    from ..core.featstore import EXTRACTOR_VERSION

    return NodeSpec(
        feature_node_name(feature_set, unpack),
        deps=("corpus",),
        code=("core", "jsast"),
        extra=NodeSpec.freeze_extra(
            {
                "extractor_version": EXTRACTOR_VERSION,
                "feature_set": feature_set,
                "unpack": unpack,
            }
        ),
    )


def campaign_params(world) -> Dict[str, Any]:
    """The campaign-wide parameter groups node keys draw from.

    - ``world``: seed plus every :class:`~repro.synthesis.world.WorldConfig`
      field (scale changes arrive here as ``n_sites``/``live_top``);
    - ``patch``: SHA-256 of the ``REPRO_LIST_PATCH`` file, or ``None``;
    - ``ingest``: the fault-injection schedule (``REPRO_FAULT_SEED``)
      and — only when faults are on, since without faults retries never
      fire — the retry allowance. Journal dirs and backoff delays stay
      out: resume and pacing are proven output-identical.
    """
    from dataclasses import asdict

    patch = list_patch_file()
    patch_digest = None
    if patch is not None:
        try:
            with open(patch, "rb") as handle:
                patch_digest = hashlib.sha256(handle.read()).hexdigest()
        except OSError:
            patch_digest = None
    faults = fault_seed()
    return {
        "world": {"seed": world.seed, "config": asdict(world.config)},
        "patch": {"sha256": patch_digest},
        "ingest": {
            "fault_seed": faults,
            "max_retries": max_retries() if faults is not None else None,
        },
    }


class ArtifactGraph:
    """Key derivation plus the three-layer node resolution engine."""

    def __init__(
        self,
        params: Mapping[str, Any],
        cache_dir: Optional[str] = None,
    ) -> None:
        self.params: Dict[str, Any] = {
            group: params.get(group) for group in PARAM_GROUPS
        }
        self.cache_dir = cache_dir
        self._specs: Dict[str, NodeSpec] = {spec.name: spec for spec in STAGE_SPECS}
        self._keys: Dict[str, str] = {}
        #: Memory layer: node name -> resolved value (one per process).
        self._memory: Dict[str, Any] = {}
        #: Per-node outcome rows for the run manifest's ``graph`` section.
        self._outcomes: Dict[str, Dict[str, Any]] = {}

    @classmethod
    def for_world(cls, world, cache_dir: Optional[str] = None) -> "ArtifactGraph":
        """The graph for one campaign (cache dir from ``REPRO_RUN_CACHE``)."""
        if cache_dir is None:
            cache_dir = run_cache_dir()
        return cls(campaign_params(world), cache_dir=cache_dir)

    # -- specs and keys -----------------------------------------------------

    @property
    def enabled(self) -> bool:
        """Whether a run-cache directory backs this graph."""
        return self.cache_dir is not None

    def register(self, spec: NodeSpec) -> NodeSpec:
        """Add (or re-pin) a node spec; key memo for it is dropped."""
        self._specs[spec.name] = spec
        self._keys.pop(spec.name, None)
        return spec

    def register_experiment(self, name: str, module) -> NodeSpec:
        """Build and register the ``exp:<name>`` spec from driver attrs.

        Drivers declare ``GRAPH_DEPS`` (upstream stage nodes),
        ``GRAPH_CODE`` (extra code scopes beyond their own module file),
        and optionally ``GRAPH_PARAM_GROUPS``, ``GRAPH_EXTRA``, and
        ``GRAPH_VOLATILE`` (bool or zero-arg callable).
        """
        deps = tuple(getattr(module, "GRAPH_DEPS", ()))
        code = (f"experiments/{name}.py",) + tuple(getattr(module, "GRAPH_CODE", ()))
        groups = tuple(
            getattr(module, "GRAPH_PARAM_GROUPS", EXPERIMENT_PARAM_GROUPS)
        )
        volatile = getattr(module, "GRAPH_VOLATILE", False)
        if callable(volatile):
            volatile = bool(volatile())
        spec = NodeSpec(
            f"exp:{name}",
            deps=deps,
            code=code,
            params=groups,
            extra=NodeSpec.freeze_extra(getattr(module, "GRAPH_EXTRA", None)),
            volatile=bool(volatile),
        )
        for dep in deps:
            self.spec(dep)  # unknown dependency fails at register time
        return self.register(spec)

    def spec(self, name: str) -> NodeSpec:
        """The spec for a node; feature nodes materialise on demand."""
        known = self._specs.get(name)
        if known is None and name.startswith("features:"):
            try:
                _, feature_set, flag = name.split(":")
            except ValueError:
                raise KeyError(f"malformed feature node name: {name!r}") from None
            if flag not in ("u0", "u1"):
                raise KeyError(f"malformed feature node name: {name!r}")
            known = self.register(feature_node_spec(feature_set, flag == "u1"))
        if known is None:
            raise KeyError(f"unknown graph node: {name!r}")
        return known

    def key(self, name: str) -> str:
        """The node's content address: H(inputs-digest, code-version).

        Inputs are the declared campaign parameter groups, the literal
        node parameters, and the *keys* of upstream nodes (so any
        upstream change propagates); the code version covers the node's
        declared source scopes. Memoized per graph.
        """
        cached = self._keys.get(name)
        if cached is not None:
            return cached
        spec = self.spec(name)
        payload = {
            "schema": GRAPH_SCHEMA,
            "node": name,
            "params": {group: self.params.get(group) for group in spec.params},
            "extra": dict(spec.extra),
            "deps": {dep: self.key(dep) for dep in spec.deps},
            "code": code_version(spec.code),
        }
        key = digest_text(canonical_json(payload))
        self._keys[name] = key
        return key

    def keys(self) -> Dict[str, str]:
        """Current keys of every registered node (stable name order)."""
        return {name: self.key(name) for name in sorted(self._specs)}

    # -- accounting ---------------------------------------------------------

    def _record(self, name: str, outcome: str, nbytes: int = 0) -> None:
        row = self._outcomes.setdefault(
            name, {"key": self.key(name), "outcome": outcome, "bytes": 0}
        )
        row["outcome"] = outcome
        if nbytes:
            row["bytes"] = nbytes

    def manifest_section(self) -> Dict[str, Any]:
        """The run manifest's ``graph`` section (cache dir + outcomes)."""
        return {
            "cache_dir": self.cache_dir,
            "nodes": {name: dict(row) for name, row in sorted(self._outcomes.items())},
        }

    # -- the three resolution layers ---------------------------------------

    def has(self, name: str) -> bool:
        """Cheap probe: does the run cache hold this node's current key?"""
        if not self.enabled or self.spec(name).volatile:
            return False
        return entry_path(self.cache_dir, name, self.key(name)).is_file()

    def fetch(self, name: str) -> Tuple[bool, Any]:
        """Run-cache layer: ``(True, value)`` on hit, ``(False, None)`` else.

        A corrupt or undecodable entry counts as ``graph.errors`` and a
        miss — the caller recomputes and overwrites it.
        """
        if not self.enabled or self.spec(name).volatile:
            return False, None
        key = self.key(name)
        path = entry_path(self.cache_dir, name, key)
        if not path.is_file():
            self._record(name, "miss")
            get_metrics().count("graph.misses")
            return False, None
        with trace_span(f"graph:fetch:{name}", key=key[:12]) as fetch_span:
            try:
                meta, value = load_entry(path)
            except GraphStoreError as exc:
                logger.warning("run-cache entry unusable, recomputing: %s", exc)
                fetch_span.set(outcome="error")
                self._record(name, "error")
                get_metrics().count("graph.errors")
                get_metrics().count("graph.misses")
                return False, None
            nbytes = path.stat().st_size
            fetch_span.set(outcome="hit", bytes=nbytes)
            self._record(name, "hit", nbytes)
            metrics = get_metrics()
            metrics.count("graph.hits")
            metrics.count("graph.bytes_read", nbytes)
            self._memory[name] = value
            return True, value

    def put(self, name: str, value: Any) -> None:
        """Memoise a computed value and persist it to the run cache."""
        self._memory[name] = value
        spec = self.spec(name)
        if not self.enabled or spec.volatile:
            self._record(name, "volatile" if spec.volatile else "computed")
            return
        key = self.key(name)
        path = entry_path(self.cache_dir, name, key)
        with trace_span(f"graph:store:{name}", key=key[:12]) as store_span:
            try:
                written = store_entry(path, {"node": name, "key": key}, value)
            except (OSError, pickle.PicklingError) as exc:
                logger.warning("run-cache store failed for %s: %s", name, exc)
                store_span.set(outcome="error")
                get_metrics().count("graph.errors")
                self._record(name, "computed")
                return
            store_span.set(bytes=written)
            metrics = get_metrics()
            metrics.count("graph.stores")
            metrics.count("graph.bytes_written", written)
            self._record(name, "stored", written)

    def resolve(self, name: str, compute: Callable[[], Any]) -> Any:
        """Memory -> run cache -> compute (the FeatureStore ordering)."""
        if name in self._memory:
            return self._memory[name]
        hit, value = self.fetch(name)
        if hit:
            return value
        value = compute()
        self.put(name, value)
        return value

    # -- maintenance --------------------------------------------------------

    def invalidate(self, name: Optional[str] = None) -> int:
        """Drop run-cache entries (one node or all); returns files removed."""
        if name is not None:
            self._memory.pop(name, None)
        else:
            self._memory.clear()
        if not self.enabled:
            return 0
        return delete_entries(self.cache_dir, name)

    def entries(self):
        """Raw run-cache listing (empty when persistence is disabled)."""
        if not self.enabled:
            return []
        return scan_entries(self.cache_dir)
