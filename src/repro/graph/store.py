"""Run-cache persistence: one RDPK container per materialised node.

Every cached node value is one atomic artifact under the run-cache
directory::

    <REPRO_RUN_CACHE>/<node-dir>/<node-key>.rdpg

where ``node-dir`` is the node name with path-hostile characters mapped
to ``_`` and ``node-key`` is the full ``(inputs-digest, code-version)``
key. The container reuses the data plane's verified header
(:mod:`repro.dataplane.format`, kind ``graph``): a little-endian
u32-length-prefixed JSON meta block (node name, key, schema, value
codec) followed by the value blob. Text values (rendered experiment
artifacts) are stored as raw UTF-8; everything else is a pickle.

Writers publish with the data plane's tmp + ``os.replace`` pattern, so
concurrent campaigns sharing one run cache race benignly (last writer
wins with an equivalent value — node keys pin the inputs). Readers mmap
the container, verify the payload SHA-256 once at open, and decode the
value lazily on hit.
"""

from __future__ import annotations

import json
import pickle
import re
import struct
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..dataplane.format import (
    KIND_GRAPH,
    DataPlaneError,
    MappedArtifact,
    write_artifact,
)

#: Run-cache entry layout revision (part of every entry's meta block;
#: readers reject other revisions as a miss, never as corruption).
STORE_SCHEMA = 1

#: File extension of run-cache entries.
ENTRY_SUFFIX = ".rdpg"

_U32 = struct.Struct("<I")

_UNSAFE = re.compile(r"[^A-Za-z0-9._-]")


class GraphStoreError(DataPlaneError):
    """A run-cache entry is missing, corrupt, or undecodable."""


def node_dirname(name: str) -> str:
    """Filesystem directory name for a node (``exp:fig1`` -> ``exp_fig1``)."""
    return _UNSAFE.sub("_", name)


def entry_path(cache_dir: Union[str, Path], name: str, key: str) -> Path:
    """Where one ``(node, key)`` value lives under the run cache."""
    return Path(cache_dir) / node_dirname(name) / f"{key}{ENTRY_SUFFIX}"


def store_entry(path: Union[str, Path], meta: Dict[str, Any], value: Any) -> int:
    """Atomically persist one node value; returns bytes written.

    ``meta`` is extended with the value codec: ``str`` values are stored
    as raw UTF-8 (rendered artifacts stay greppable on disk), everything
    else as a protocol-4 pickle.
    """
    meta = dict(meta)
    meta["schema"] = STORE_SCHEMA
    if isinstance(value, str):
        meta["codec"] = "text"
        blob = value.encode("utf-8")
    else:
        meta["codec"] = "pickle"
        blob = pickle.dumps(value, protocol=4)
    meta_blob = json.dumps(meta, sort_keys=True).encode("utf-8")
    payload = b"".join((_U32.pack(len(meta_blob)), meta_blob, blob))
    return write_artifact(path, KIND_GRAPH, payload)


def load_entry(path: Union[str, Path]) -> Tuple[Dict[str, Any], Any]:
    """Load one node value; raises :class:`GraphStoreError` on any defect.

    The container header (magic, kind, length, payload SHA-256) is
    verified by the data plane at open; this adds the meta/codec layer.
    """
    try:
        with MappedArtifact(path, expect_kind=KIND_GRAPH) as artifact:
            payload = artifact.payload
            if len(payload) < _U32.size:
                raise GraphStoreError(f"{path}: truncated meta length")
            (meta_length,) = _U32.unpack_from(payload, 0)
            if _U32.size + meta_length > len(payload):
                raise GraphStoreError(f"{path}: truncated meta block")
            try:
                meta = json.loads(bytes(payload[_U32.size : _U32.size + meta_length]))
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                raise GraphStoreError(f"{path}: undecodable meta ({exc})") from exc
            if not isinstance(meta, dict) or meta.get("schema") != STORE_SCHEMA:
                raise GraphStoreError(f"{path}: unsupported entry schema")
            # The blob slice exports the mmap's buffer: decode, then
            # release it before MappedArtifact closes the mapping.
            blob = payload[_U32.size + meta_length :]
            try:
                codec = meta.get("codec")
                if codec == "text":
                    value: Any = bytes(blob).decode("utf-8")
                elif codec == "pickle":
                    try:
                        value = pickle.loads(blob)
                    except Exception as exc:  # pickle raises arbitrarily on corruption
                        raise GraphStoreError(
                            f"{path}: undecodable value ({exc})"
                        ) from exc
                else:
                    raise GraphStoreError(f"{path}: unknown codec {codec!r}")
            finally:
                blob.release()
            return meta, value
    except DataPlaneError as exc:
        if isinstance(exc, GraphStoreError):
            raise
        raise GraphStoreError(str(exc)) from exc


def read_meta(path: Union[str, Path]) -> Dict[str, Any]:
    """Only the meta block of one entry (used by the inspect CLI)."""
    meta, _value = load_entry(path)
    return meta


def scan_entries(cache_dir: Union[str, Path]) -> List[Dict[str, Any]]:
    """Every entry in a run cache as ``{node, key, bytes, path}`` rows.

    Rows are sorted by (node directory, key) so listings are stable; the
    node *name* is read from the meta block lazily by the CLI only when
    asked, keeping the scan cheap for large caches.
    """
    root = Path(cache_dir)
    rows: List[Dict[str, Any]] = []
    if not root.is_dir():
        return rows
    for path in sorted(root.glob(f"*/*{ENTRY_SUFFIX}")):
        rows.append(
            {
                "node_dir": path.parent.name,
                "key": path.stem,
                "bytes": path.stat().st_size,
                "path": str(path),
            }
        )
    return rows


def delete_entries(
    cache_dir: Union[str, Path], name: Optional[str] = None
) -> int:
    """Delete run-cache entries; returns how many files were removed.

    ``name=None`` clears the whole cache; otherwise only the one node's
    directory is cleared (every key — invalidation is by node, the keys
    themselves already encode *why* an entry went stale).
    """
    root = Path(cache_dir)
    if not root.is_dir():
        return 0
    targets = (
        [root / node_dirname(name)] if name is not None else sorted(root.iterdir())
    )
    removed = 0
    for directory in targets:
        if not directory.is_dir():
            continue
        for path in sorted(directory.glob(f"*{ENTRY_SUFFIX}")):
            path.unlink(missing_ok=True)
            removed += 1
        try:
            directory.rmdir()
        except OSError:
            pass  # non-empty (foreign files) or concurrently repopulated
    return removed
