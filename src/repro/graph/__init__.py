"""Content-addressed incremental artifact graph (run-cache warm starts).

Public surface:

- :class:`~repro.graph.core.ArtifactGraph` — node keys, three-layer
  resolution (memory -> ``REPRO_RUN_CACHE`` -> compute), invalidation;
- :class:`~repro.graph.core.NodeSpec` and the stage specs;
- :func:`~repro.graph.version.code_version` /
  :func:`~repro.graph.version.scope_digest` — the code-version half of
  every key;
- the :mod:`~repro.graph.store` container helpers;
- ``python -m repro graph`` (:mod:`~repro.graph.cli`) for inspection.
"""

from .core import (
    GRAPH_SCHEMA,
    ArtifactGraph,
    NodeSpec,
    STAGE_SPECS,
    campaign_params,
    canonical_json,
    feature_node_name,
    feature_node_spec,
)
from .store import (
    GraphStoreError,
    delete_entries,
    entry_path,
    load_entry,
    scan_entries,
    store_entry,
)
from .version import code_version, reset_scope_cache, scope_digest

__all__ = [
    "GRAPH_SCHEMA",
    "ArtifactGraph",
    "NodeSpec",
    "STAGE_SPECS",
    "campaign_params",
    "canonical_json",
    "feature_node_name",
    "feature_node_spec",
    "GraphStoreError",
    "delete_entries",
    "entry_path",
    "load_entry",
    "scan_entries",
    "store_entry",
    "code_version",
    "reset_scope_cache",
    "scope_digest",
]
