"""Code-version digests: which source changes invalidate which nodes.

Every artifact-graph node is keyed by ``(inputs-digest, code-version)``.
The code-version half comes from here: a node declares the *code scopes*
its compute transitively depends on — either a package subtree under
``src/repro`` (``"filterlist"``) or a single module file
(``"experiments/fig1.py"``) — and the scope digest is the SHA-256 of the
scope's source bytes. Editing ``experiments/fig1.py`` therefore
invalidates only the ``exp:fig1`` node; editing ``jsast/`` invalidates
the feature nodes and every experiment that declared the ``jsast``
scope; editing orchestration-only layers (``obs``, ``graph`` itself,
``experiments/context.py``) invalidates nothing, because no node
declares them — the repo's standing invariant is that observability and
caching layers never change artifact bytes.

Digests are pure functions of the on-disk source tree, so they are
identical across process restarts and worker counts.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Dict, Iterable, Tuple

#: Scope-name -> hex digest, memoized for the process lifetime (the
#: source tree does not change under a running campaign).
_SCOPE_DIGESTS: Dict[str, str] = {}


def package_root() -> Path:
    """The installed ``repro`` package directory (source checkout)."""
    import repro

    return Path(repro.__file__).resolve().parent


def scope_digest(scope: str) -> str:
    """SHA-256 over one code scope's source bytes.

    A scope ending in ``.py`` is a single module file; anything else is
    a package subtree whose ``*.py`` files are hashed in sorted relative
    order (path and content both enter the hash, so renames invalidate).
    A missing scope hashes to a fixed marker instead of raising — the
    node simply keys on "scope absent".
    """
    cached = _SCOPE_DIGESTS.get(scope)
    if cached is not None:
        return cached
    root = package_root()
    target = root / scope
    digest = hashlib.sha256()
    if scope.endswith(".py"):
        files = [target] if target.is_file() else []
    else:
        files = sorted(target.rglob("*.py")) if target.is_dir() else []
    if not files:
        digest.update(b"missing-scope:" + scope.encode("utf-8"))
    for path in files:
        digest.update(str(path.relative_to(root)).encode("utf-8"))
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x00")
    result = digest.hexdigest()
    _SCOPE_DIGESTS[scope] = result
    return result


def code_version(scopes: Iterable[str]) -> str:
    """One combined digest for a node's declared code scopes."""
    parts = [f"{scope}={scope_digest(scope)}" for scope in sorted(set(scopes))]
    return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()


def reset_scope_cache() -> Tuple[str, ...]:
    """Drop memoized scope digests (tests that edit source trees)."""
    stale = tuple(_SCOPE_DIGESTS)
    _SCOPE_DIGESTS.clear()
    return stale
