"""HTTP request/response models for the simulated web."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from .url import hostname, is_third_party, registered_domain, resource_type_from_url


@dataclass
class Request:
    """One HTTP request as observed by the crawler.

    ``resource_type`` uses filter-rule vocabulary (``script``, ``image``,
    ``stylesheet``, ``subdocument``, ``xmlhttprequest``, …) and defaults to
    an inference from the URL extension.
    """

    url: str
    method: str = "GET"
    resource_type: str = ""
    page_url: str = ""
    headers: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.resource_type:
            self.resource_type = resource_type_from_url(self.url)

    @property
    def host(self) -> str:
        """The request URL's host."""
        return hostname(self.url)

    @property
    def domain(self) -> str:
        """The request URL's registered domain (eTLD+1)."""
        return registered_domain(self.url)

    def third_party_for(self, page_domain: str) -> bool:
        """Whether this request is third-party to a page domain."""
        return is_third_party(self.url, page_domain)


@dataclass
class Response:
    """One HTTP response paired with a request.

    ``size`` declares the body size without materialising the bytes —
    simulated responses of known size (images, media) set it instead of
    carrying megabytes of filler, which is what keeps a 5,000-site ×
    60-month crawl in memory.
    """

    status: int = 200
    status_text: str = "OK"
    mime_type: str = "text/html"
    body: str = ""
    size: Optional[int] = None
    headers: Dict[str, str] = field(default_factory=dict)

    @property
    def body_size(self) -> int:
        """Response body bytes (declared size or encoded length)."""
        if self.size is not None:
            return self.size
        return len(self.body.encode("utf-8", errors="replace"))

    @property
    def is_redirect(self) -> bool:
        """Whether the status is a 3XX."""
        return 300 <= self.status < 400

    @property
    def redirect_location(self) -> Optional[str]:
        """The Location header of a redirect, if any."""
        return self.headers.get("Location") if self.is_redirect else None


@dataclass
class Exchange:
    """A request/response pair — one HAR entry."""

    request: Request
    response: Response

    @property
    def url(self) -> str:
        """The request URL of this exchange."""
        return self.request.url
