"""Web substrate: URLs, DOM, HTTP, HAR capture, browser, adblocker.

Substitutes for the paper's Selenium + Firefox (Firebug/NetExport) +
Adblock Plus stack.
"""

from .adblocker import Adblocker, AdblockLog, LogEntry
from .browser import Browser, VisitResult
from .dom import Document, Element, parse_html
from .har import HarFile, is_partial, merge_hars
from .http import Exchange, Request, Response
from .page import PageSnapshot, Script, Subresource
from .url import (
    SplitURL,
    hostname,
    is_third_party,
    normalize_url,
    registered_domain,
    resource_type_from_url,
    split_url,
)

__all__ = [
    "Adblocker",
    "AdblockLog",
    "LogEntry",
    "Browser",
    "VisitResult",
    "Document",
    "Element",
    "parse_html",
    "HarFile",
    "is_partial",
    "merge_hars",
    "Exchange",
    "Request",
    "Response",
    "PageSnapshot",
    "Script",
    "Subresource",
    "SplitURL",
    "hostname",
    "is_third_party",
    "normalize_url",
    "registered_domain",
    "resource_type_from_url",
    "split_url",
]
