"""URL parsing and domain utilities for the web substrate.

Implements just enough URL machinery for filter-list matching and the
Wayback pipeline: host extraction, registered-domain computation against an
embedded public-suffix snapshot, third-party tests, and resource-type
inference from URL shape (used when a HAR entry lacks an explicit type).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional

#: Multi-label public suffixes that matter for registered-domain grouping.
#: A snapshot, not the full PSL — the synthetic world only mints domains
#: under these and single-label TLDs.
MULTI_LABEL_SUFFIXES = frozenset(
    """co.uk org.uk ac.uk gov.uk com.au net.au org.au co.jp ne.jp or.jp
    com.br net.br org.br com.cn net.cn org.cn co.in net.in org.in com.mx
    com.tr com.tw co.kr co.za com.ar com.sg com.hk com.my co.nz""".split()
)


@dataclass(frozen=True)
class SplitURL:
    """Parsed URL components."""

    scheme: str
    host: str
    port: Optional[int]
    path: str
    query: str
    fragment: str

    @property
    def origin(self) -> str:
        """scheme://host[:port] of the URL."""
        port = f":{self.port}" if self.port else ""
        return f"{self.scheme}://{self.host}{port}"

    def geturl(self) -> str:
        """Reassemble the full URL string."""
        url = self.origin + self.path
        if self.query:
            url += "?" + self.query
        if self.fragment:
            url += "#" + self.fragment
        return url


@lru_cache(maxsize=65536)
def split_url(url: str) -> SplitURL:
    """Split ``url`` into components; tolerant of scheme-relative URLs."""
    fragment = ""
    if "#" in url:
        url, fragment = url.split("#", 1)
    query = ""
    if "?" in url:
        url, query = url.split("?", 1)
    scheme = ""
    rest = url
    if "://" in url:
        scheme, rest = url.split("://", 1)
    elif url.startswith("//"):
        rest = url[2:]
    hostport, _, path = rest.partition("/")
    path = "/" + path if path or rest.endswith("/") else "/"
    host, _, port_text = hostport.partition(":")
    port = int(port_text) if port_text.isdigit() else None
    return SplitURL(
        scheme=scheme.lower() or "http",
        host=host.lower(),
        port=port,
        path=path,
        query=query,
        fragment=fragment,
    )


def hostname(url: str) -> str:
    """The lowercased host of ``url`` (empty for relative URLs)."""
    return split_url(url).host


@lru_cache(maxsize=65536)
def registered_domain(host_or_url: str) -> str:
    """Collapse a host to its registrable domain (eTLD+1).

    ``ads.cdn.example.co.uk`` → ``example.co.uk``;
    ``www.example.com`` → ``example.com``. Hosts that are already bare, or
    IP addresses, come back unchanged.
    """
    host = hostname(host_or_url) if "/" in host_or_url or "://" in host_or_url else host_or_url.lower()
    host = host.strip(".")
    if not host or host.replace(".", "").isdigit():
        return host
    labels = host.split(".")
    if len(labels) <= 2:
        return host
    last_two = ".".join(labels[-2:])
    if last_two in MULTI_LABEL_SUFFIXES:
        return ".".join(labels[-3:])
    return last_two


@lru_cache(maxsize=65536)
def is_third_party(request_url: str, page_domain: str) -> bool:
    """Whether a request crosses registrable-domain boundaries.

    This is the ``$third-party`` notion in filter rules: a request is
    first-party only when its registered domain equals the page's.
    """
    request_domain = registered_domain(request_url)
    page_registered = registered_domain(page_domain)
    if not request_domain or not page_registered:
        return False
    return request_domain != page_registered


_EXTENSION_TYPES = {
    ".js": "script",
    ".mjs": "script",
    ".css": "stylesheet",
    ".png": "image",
    ".jpg": "image",
    ".jpeg": "image",
    ".gif": "image",
    ".webp": "image",
    ".svg": "image",
    ".ico": "image",
    ".woff": "font",
    ".woff2": "font",
    ".ttf": "font",
    ".mp4": "media",
    ".webm": "media",
    ".mp3": "media",
    ".swf": "object",
    ".json": "xmlhttprequest",
    ".html": "subdocument",
    ".htm": "subdocument",
}


@lru_cache(maxsize=65536)
def resource_type_from_url(url: str, default: str = "other") -> str:
    """Guess the filter-rule resource type from the URL's extension."""
    path = split_url(url).path.lower()
    dot = path.rfind(".")
    if dot >= 0 and "/" not in path[dot:]:
        return _EXTENSION_TYPES.get(path[dot:], default)
    return default


def normalize_url(url: str, base_scheme: str = "http") -> str:
    """Give scheme-relative URLs a scheme so matching sees full URLs."""
    if url.startswith("//"):
        return f"{base_scheme}:{url}"
    return url
