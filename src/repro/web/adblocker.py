"""An Adblock-Plus-like adblocker over our filter-list engine.

The paper runs Firefox with Adblock Plus subscribed to the anti-adblock
lists and reads ABP's logs to learn which element-hiding rules triggered.
This class reproduces that: subscribe to filter lists, process page loads,
and keep a structured log of every rule that fires.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Union

from ..filterlist.matcher import NetworkMatcher
from ..filterlist.parser import FilterList
from ..filterlist.rules import ElementRule, NetworkRule
from ..filterlist.selectors import SelectorParseError, parse_selector_group
from .dom import Document
from .url import is_third_party, registered_domain


@dataclass
class LogEntry:
    """One triggered rule, ABP-log style."""

    kind: str  # "request-blocked" | "request-allowed" | "element-hidden"
    rule: Union[NetworkRule, ElementRule]
    target: str  # URL or selector target description
    page_domain: str = ""


@dataclass
class AdblockLog:
    """Structured log of rule firings for one or more page loads."""

    entries: List[LogEntry] = field(default_factory=list)

    def add(self, entry: LogEntry) -> None:
        """Append one log entry."""
        self.entries.append(entry)

    def triggered_element_rules(self) -> List[ElementRule]:
        """Element rules that fired, in order."""
        return [e.rule for e in self.entries if e.kind == "element-hidden"]

    def triggered_network_rules(self) -> List[NetworkRule]:
        """Network rules that fired (blocked or allowed)."""
        return [
            e.rule
            for e in self.entries
            if e.kind in ("request-blocked", "request-allowed")
        ]

    def clear(self) -> None:
        """Drop all log entries."""
        self.entries.clear()


class Adblocker:
    """Filter lists applied to page loads, with a trigger log."""

    def __init__(self, filter_lists: Optional[List[FilterList]] = None) -> None:
        self._network_rules: List[NetworkRule] = []
        self._element_rules: List[ElementRule] = []
        self._matcher: Optional[NetworkMatcher] = None
        #: Parsed selector cache: selectors are re-applied on every page
        #: load, so parse each rule's selector once.
        self._selector_cache: dict = {}
        #: Optional per-rule sink (duck-typed as
        #: :class:`repro.analysis.rulestats.ScopedRuleStats`); ``None``
        #: costs one attribute check per page load.
        self.rule_stats = None
        self.log = AdblockLog()
        for filter_list in filter_lists or []:
            self.subscribe(filter_list)

    def subscribe(self, filter_list: FilterList) -> None:
        """Add a filter list's rules (rebuilds the URL index lazily)."""
        self._network_rules.extend(filter_list.network_rules)
        self._element_rules.extend(filter_list.element_rules)
        self._matcher = None

    @classmethod
    def from_parts(
        cls,
        network_rules: List[NetworkRule],
        element_rules: List[ElementRule],
        matcher: NetworkMatcher,
    ) -> "Adblocker":
        """Build an adblocker around an already-indexed matcher.

        The serve daemon's epoch swap goes through here: a hot reload
        derives the next matcher in O(delta) via
        :meth:`NetworkMatcher.apply_delta` and wraps it without the
        O(rules) re-index that ``subscribe`` + lazy rebuild would pay.
        The rule lists are adopted as-is (not copied).
        """
        blocker = cls()
        blocker._network_rules = list(network_rules)
        blocker._element_rules = list(element_rules)
        blocker._matcher = matcher
        return blocker

    @property
    def matcher(self) -> NetworkMatcher:
        """The token-indexed URL matcher (rebuilt after subscribe)."""
        if self._matcher is None:
            self._matcher = NetworkMatcher(self._network_rules)
        self._matcher.rule_stats = self.rule_stats
        return self._matcher

    @property
    def rule_count(self) -> int:
        """Total subscribed rules, both kinds."""
        return len(self._network_rules) + len(self._element_rules)

    # -- request filtering -----------------------------------------------------

    def should_block(
        self, url: str, page_url: str = "", resource_type: str = "other"
    ) -> bool:
        """Adblocker decision for one request; logs the outcome."""
        page_domain = registered_domain(page_url) if page_url else ""
        third_party = is_third_party(url, page_domain) if page_domain else None
        result = self.matcher.match(url, page_domain, resource_type, third_party)
        if result.blocked:
            self.log.add(
                LogEntry("request-blocked", result.rule, url, page_domain)
            )
            return True
        if result.exception is not None:
            self.log.add(
                LogEntry("request-allowed", result.exception, url, page_domain)
            )
        return False

    # -- element hiding ----------------------------------------------------------

    def hide_elements(self, document: Document, page_url: str) -> List[ElementRule]:
        """Apply element-hiding rules to a document; return triggered rules.

        Exception (``#@#``) rules disable matching blocking rules with the
        same selector on that domain, as in Adblock Plus.
        """
        page_domain = registered_domain(page_url)
        disabled_selectors = {
            rule.selector
            for rule in self._element_rules
            if rule.is_exception and rule.applies_to(page_domain)
        }
        triggered: List[ElementRule] = []
        for rule in self._element_rules:
            if rule.is_exception:
                continue
            if not rule.applies_to(page_domain):
                continue
            if rule.selector in disabled_selectors:
                continue
            if rule.selector not in self._selector_cache:
                try:
                    self._selector_cache[rule.selector] = parse_selector_group(
                        rule.selector
                    )
                except SelectorParseError:
                    self._selector_cache[rule.selector] = None
            selectors = self._selector_cache[rule.selector]
            if selectors is None:
                continue
            hit = False
            for element in document.iter():
                if any(selector.matches(element) for selector in selectors):
                    element.hidden = True
                    hit = True
            if hit:
                triggered.append(rule)
                self.log.add(
                    LogEntry("element-hidden", rule, rule.selector, page_domain)
                )
        rule_stats = self.rule_stats
        if rule_stats is not None:
            for rule in triggered:
                rule_stats.record_element_hit(rule.raw)
        return triggered
