"""A simulated browser: loads page snapshots, records HARs, runs adblockers.

Stands in for the paper's Selenium-driven Firefox (+Firebug/NetExport for
HAR capture, +Adblock Plus for element-hiding detection). ``visit``
resolves a :class:`~repro.web.page.PageSnapshot` into a parsed DOM and a
HAR of every request the page load performs; an optional adblocker filters
requests and hides elements, logging each triggered rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from .adblocker import Adblocker
from .dom import Document, parse_html
from .har import HarFile
from .http import Exchange, Request, Response
from .page import PageSnapshot, Subresource
from .url import normalize_url, resource_type_from_url


@dataclass
class VisitResult:
    """Everything a page visit produced."""

    url: str
    har: HarFile
    document: Document
    blocked_urls: List[str] = field(default_factory=list)
    hidden_rules: List = field(default_factory=list)

    @property
    def request_urls(self) -> List[str]:
        """Every requested URL, duplicates removed."""
        return self.har.request_urls()


class Browser:
    """Loads :class:`PageSnapshot` objects and records the traffic.

    ``url_rewriter`` lets the Wayback simulator wrap every subresource URL
    with the archive prefix, exactly like the real Wayback Machine rewrites
    archived pages.

    ``interceptor`` runs on the snapshot before the page load and may
    raise (or substitute the snapshot) — the resilience layer's fault
    injector mounts here to simulate page loads failing the way a real
    browser does against a flaky archive.
    """

    def __init__(
        self,
        adblocker: Optional[Adblocker] = None,
        url_rewriter: Optional[Callable[[str], str]] = None,
        parse_dom: bool = True,
        interceptor: Optional[Callable[[PageSnapshot], PageSnapshot]] = None,
    ) -> None:
        self.adblocker = adblocker
        self.url_rewriter = url_rewriter
        #: Skip DOM construction when the caller only needs the HAR (the
        #: Wayback crawler stores raw HTML and parses lazily downstream).
        self.parse_dom = parse_dom
        self.interceptor = interceptor

    def _rewrite(self, url: str) -> str:
        url = normalize_url(url)
        if self.url_rewriter is not None:
            return self.url_rewriter(url)
        return url

    def visit(self, snapshot: PageSnapshot) -> VisitResult:
        """Load a page snapshot; returns the HAR, DOM and adblock effects."""
        if self.interceptor is not None:
            snapshot = self.interceptor(snapshot)
        page_url = self._rewrite(snapshot.url)
        har = HarFile(page_url=page_url, page_html=snapshot.html)
        blocked: List[str] = []

        # The main document request.
        main_request = Request(url=page_url, resource_type="document", page_url=page_url)
        main_response = Response(
            status=snapshot.status,
            mime_type="text/html",
            body=snapshot.html,
            headers={"Location": snapshot.redirect_to} if snapshot.redirect_to else {},
        )
        har.add(Exchange(request=main_request, response=main_response))

        if self.parse_dom and snapshot.html:
            document = parse_html(snapshot.html)
        else:
            document = Document.new_page()

        # Subresource requests, optionally filtered by the adblocker.
        for resource in snapshot.subresources:
            url = self._rewrite(resource.url)
            resource_type = resource.resource_type or resource_type_from_url(resource.url)
            if self.adblocker is not None and self.adblocker.should_block(
                # Filter rules match against the original (truncated) URL,
                # not the archive-prefixed one.
                normalize_url(resource.url),
                page_url=snapshot.url,
                resource_type=resource_type,
            ):
                blocked.append(url)
                continue
            request = Request(
                url=url, resource_type=resource_type, page_url=page_url
            )
            response = Response(
                status=200,
                mime_type=_mime_for(resource_type),
                body=resource.content,
                size=None if resource.content else max(resource.size, 0),
            )
            har.add(Exchange(request=request, response=response))

        hidden_rules: List = []
        if self.adblocker is not None and self.parse_dom:
            hidden_rules = self.adblocker.hide_elements(document, snapshot.url)

        return VisitResult(
            url=page_url,
            har=har,
            document=document,
            blocked_urls=blocked,
            hidden_rules=hidden_rules,
        )


def _mime_for(resource_type: str) -> str:
    return {
        "script": "application/javascript",
        "stylesheet": "text/css",
        "image": "image/png",
        "xmlhttprequest": "application/json",
        "subdocument": "text/html",
        "font": "font/woff2",
        "media": "video/mp4",
    }.get(resource_type, "application/octet-stream")
