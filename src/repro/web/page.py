"""Page snapshot model: what a website serves at a point in time.

A :class:`PageSnapshot` is the unit the synthetic world produces, the
Wayback simulator archives, and the browser visits. It carries the page
HTML, the set of subresource requests loading the page makes, and the
JavaScript the page ships (both external files and inline blocks) — the
scripts are what §5's ML corpus is built from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .url import registered_domain


@dataclass
class Script:
    """One JavaScript asset on a page."""

    source: str
    url: str = ""  # empty for inline scripts
    vendor: str = ""  # anti-adblock vendor label, "" for none
    is_anti_adblock: bool = False

    @property
    def inline(self) -> bool:
        """Whether the script has no URL (inline in the page)."""
        return not self.url


@dataclass
class Subresource:
    """One subresource request the page makes when loading."""

    url: str
    resource_type: str = ""
    size: int = 2048
    content: str = ""


@dataclass
class PageSnapshot:
    """A website's homepage as served on a particular visit."""

    url: str
    html: str = ""
    subresources: List[Subresource] = field(default_factory=list)
    scripts: List[Script] = field(default_factory=list)
    #: Extra response headers for the main document (e.g. redirects).
    status: int = 200
    redirect_to: Optional[str] = None
    metadata: Dict[str, str] = field(default_factory=dict)

    @property
    def domain(self) -> str:
        """The page's registered domain."""
        return registered_domain(self.url)

    def request_urls(self) -> List[str]:
        """URLs of all subresources."""
        return [resource.url for resource in self.subresources]

    def external_scripts(self) -> List[Script]:
        """Scripts loaded from a URL."""
        return [script for script in self.scripts if not script.inline]

    def inline_scripts(self) -> List[Script]:
        """Scripts embedded in the page."""
        return [script for script in self.scripts if script.inline]

    def anti_adblock_scripts(self) -> List[Script]:
        """Scripts flagged as anti-adblocking (ground truth)."""
        return [script for script in self.scripts if script.is_anti_adblock]

    @property
    def uses_anti_adblock(self) -> bool:
        """Whether any script on the page is anti-adblocking."""
        return any(script.is_anti_adblock for script in self.scripts)
