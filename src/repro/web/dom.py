"""A small DOM: element tree, HTML parsing, and serialization.

Substitutes for the browser DOM the paper drives through Selenium: enough
structure for element-hiding rules to match (tags, ids, classes,
attributes, ancestry) and for anti-adblock HTML baits (hidden ``div``
elements, overlay notices) to be represented and hidden.
"""

from __future__ import annotations

from html.parser import HTMLParser
from typing import Dict, Iterator, List, Optional

VOID_TAGS = frozenset(
    "area base br col embed hr img input link meta param source track wbr".split()
)


class Element:
    """One DOM element with attributes, children and a parent pointer."""

    __slots__ = ("tag", "attrs", "children", "parent", "text", "hidden")

    def __init__(
        self,
        tag: str,
        attrs: Optional[Dict[str, str]] = None,
        text: str = "",
    ) -> None:
        self.tag = tag.lower()
        self.attrs: Dict[str, str] = dict(attrs or {})
        self.children: List[Element] = []
        self.parent: Optional[Element] = None
        self.text = text
        #: Set by the adblocker when an element-hiding rule fires.
        self.hidden = False

    # -- tree construction ---------------------------------------------------

    def append(self, child: "Element") -> "Element":
        """Attach a child element and set its parent pointer."""
        child.parent = self
        self.children.append(child)
        return child

    def make_child(self, tag: str, attrs: Optional[Dict[str, str]] = None, text: str = "") -> "Element":
        """Create, attach, and return a new child element."""
        return self.append(Element(tag, attrs, text))

    # -- queries ---------------------------------------------------------------

    @property
    def id(self) -> Optional[str]:
        """The element's id attribute, if any."""
        return self.attrs.get("id")

    @property
    def classes(self) -> List[str]:
        """The element's class list."""
        return self.attrs.get("class", "").split()

    def iter(self) -> Iterator["Element"]:
        """This element and all descendants, pre-order."""
        stack = [self]
        while stack:
            element = stack.pop()
            yield element
            stack.extend(reversed(element.children))

    def get_element_by_id(self, element_id: str) -> Optional["Element"]:
        """First element with the given id, if any."""
        for element in self.iter():
            if element.attrs.get("id") == element_id:
                return element
        return None

    def get_elements_by_tag(self, tag: str) -> List["Element"]:
        """All descendants (inclusive) with the tag."""
        tag = tag.lower()
        return [element for element in self.iter() if element.tag == tag]

    def get_elements_by_class(self, class_name: str) -> List["Element"]:
        """All descendants (inclusive) carrying the class."""
        return [element for element in self.iter() if class_name in element.classes]

    # -- serialization -----------------------------------------------------------

    def to_html(self, indent: int = 0) -> str:
        """Serialise the subtree as indented HTML."""
        pad = "  " * indent
        attrs = "".join(
            f' {name}="{value}"' if value != "" else f" {name}"
            for name, value in self.attrs.items()
        )
        if self.tag in VOID_TAGS:
            return f"{pad}<{self.tag}{attrs}>"
        inner: List[str] = []
        if self.text:
            inner.append("  " * (indent + 1) + self.text)
        inner.extend(child.to_html(indent + 1) for child in self.children)
        if inner:
            body = "\n".join(inner)
            return f"{pad}<{self.tag}{attrs}>\n{body}\n{pad}</{self.tag}>"
        return f"{pad}<{self.tag}{attrs}></{self.tag}>"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        suffix = f"#{self.id}" if self.id else ""
        return f"<Element {self.tag}{suffix} children={len(self.children)}>"


class Document:
    """A parsed HTML document."""

    def __init__(self, root: Optional[Element] = None) -> None:
        self.root = root or Element("html")

    @property
    def head(self) -> Optional[Element]:
        """The document's <head> element, if present."""
        return next((c for c in self.root.children if c.tag == "head"), None)

    @property
    def body(self) -> Optional[Element]:
        """The document's <body> element, if present."""
        return next((c for c in self.root.children if c.tag == "body"), None)

    def iter(self) -> Iterator[Element]:
        """All elements in pre-order."""
        return self.root.iter()

    def get_element_by_id(self, element_id: str) -> Optional[Element]:
        """First element with the given id, if any."""
        return self.root.get_element_by_id(element_id)

    def visible_elements(self) -> List[Element]:
        """Elements not hidden by the adblocker (hiding is inherited)."""
        visible = []
        stack = [(self.root, False)]
        while stack:
            element, inherited = stack.pop()
            hidden = inherited or element.hidden
            if not hidden:
                visible.append(element)
            for child in reversed(element.children):
                stack.append((child, hidden))
        return visible

    def to_html(self) -> str:
        """Serialise the subtree as indented HTML."""
        return "<!DOCTYPE html>\n" + self.root.to_html()

    @classmethod
    def new_page(cls, title: str = "") -> "Document":
        """A blank document with head/body scaffolding."""
        document = cls()
        head = document.root.make_child("head")
        if title:
            head.make_child("title", text=title)
        document.root.make_child("body")
        return document


class _TreeBuilder(HTMLParser):

    def __init__(self) -> None:
        """html.parser-based builder producing our Element tree."""
        super().__init__(convert_charrefs=True)
        self.root = Element("html")
        self._stack = [self.root]
        self._saw_html = False

    def handle_starttag(self, tag: str, attrs) -> None:
        """html.parser hook: open an element."""
        tag = tag.lower()
        if tag == "html" and not self._saw_html:
            self._saw_html = True
            for name, value in attrs:
                self.root.attrs[name] = value or ""
            return
        element = Element(tag, {name: (value or "") for name, value in attrs})
        self._stack[-1].append(element)
        if tag not in VOID_TAGS:
            self._stack.append(element)

    def handle_startendtag(self, tag: str, attrs) -> None:
        """html.parser hook: self-closing element."""
        element = Element(tag, {name: (value or "") for name, value in attrs})
        self._stack[-1].append(element)

    def handle_endtag(self, tag: str) -> None:
        """html.parser hook: close the matching element."""
        tag = tag.lower()
        if tag == "html":
            return
        for index in range(len(self._stack) - 1, 0, -1):
            if self._stack[index].tag == tag:
                del self._stack[index:]
                return
        # Unmatched close tag: ignore, as browsers do.

    def handle_data(self, data: str) -> None:
        """html.parser hook: accumulate text content."""
        text = data.strip()
        if text:
            current = self._stack[-1]
            current.text = (current.text + " " + text).strip() if current.text else text


def parse_html(html: str) -> Document:
    """Parse an HTML string into a :class:`Document` (lenient, browser-like)."""
    builder = _TreeBuilder()
    builder.feed(html)
    builder.close()
    return Document(root=builder.root)
