"""HTTP Archive (HAR) 1.2 files.

The paper's crawler stores every page visit as a HAR file (via Firebug +
NetExport) and later extracts request URLs from the archived HARs to match
against HTTP filter rules. This module reads/writes the HAR JSON shape,
supports the union-merge the paper applies to pages that kept refreshing,
and implements the partial-snapshot heuristic (discard HARs smaller than
10% of the year's average).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from .http import Exchange, Request, Response

HAR_VERSION = "1.2"
CREATOR = {"name": "repro-adwars-crawler", "version": "1.0"}


@dataclass
class HarFile:
    """An in-memory HAR document for one page visit."""

    page_url: str
    started: str = ""  # ISO timestamp string; informational only
    entries: List[Exchange] = field(default_factory=list)
    page_html: str = ""

    # -- core operations ---------------------------------------------------

    def add(self, exchange: Exchange) -> None:
        """Append one request/response entry."""
        self.entries.append(exchange)

    def request_urls(self) -> List[str]:
        """Every request URL, in order, duplicates removed."""
        seen = set()
        urls = []
        for entry in self.entries:
            if entry.url not in seen:
                seen.add(entry.url)
                urls.append(entry.url)
        return urls

    def requests(self) -> List[Request]:
        """The request objects of every entry."""
        return [entry.request for entry in self.entries]

    @property
    def total_size(self) -> int:
        """Total response body bytes — the HAR 'size' used for the 10% rule."""
        return sum(entry.response.body_size for entry in self.entries)

    def merge(self, other: "HarFile") -> "HarFile":
        """Union of requests across two HARs for the same page.

        Pages that keep refreshing produce multiple HARs; the paper takes
        the union of all HTTP requests.
        """
        merged = HarFile(
            page_url=self.page_url, started=self.started, page_html=self.page_html
        )
        seen = set()
        for entry in list(self.entries) + list(other.entries):
            if entry.url not in seen:
                seen.add(entry.url)
                merged.add(entry)
        return merged

    # -- (de)serialization ---------------------------------------------------

    def to_dict(self) -> Dict:
        """The HAR 1.2 JSON structure as a dict."""
        return {
            "log": {
                "version": HAR_VERSION,
                "creator": dict(CREATOR),
                "pages": [
                    {
                        "startedDateTime": self.started,
                        "id": "page_1",
                        "title": self.page_url,
                    }
                ],
                "entries": [
                    {
                        "pageref": "page_1",
                        "startedDateTime": self.started,
                        "request": {
                            "method": entry.request.method,
                            "url": entry.request.url,
                            "headers": [
                                {"name": name, "value": value}
                                for name, value in entry.request.headers.items()
                            ],
                            "_resourceType": entry.request.resource_type,
                        },
                        "response": {
                            "status": entry.response.status,
                            "statusText": entry.response.status_text,
                            "content": {
                                "size": entry.response.body_size,
                                "mimeType": entry.response.mime_type,
                                "text": entry.response.body,
                            },
                            "headers": [
                                {"name": name, "value": value}
                                for name, value in entry.response.headers.items()
                            ],
                        },
                    }
                    for entry in self.entries
                ],
            }
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """The HAR 1.2 document as JSON text."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Dict) -> "HarFile":
        """Parse a HAR 1.2 dict into a HarFile."""
        log = data.get("log", {})
        pages = log.get("pages", [])
        page_url = pages[0]["title"] if pages else ""
        started = pages[0].get("startedDateTime", "") if pages else ""
        har = cls(page_url=page_url, started=started)
        for raw_entry in log.get("entries", []):
            raw_request = raw_entry.get("request", {})
            raw_response = raw_entry.get("response", {})
            content = raw_response.get("content", {})
            request = Request(
                url=raw_request.get("url", ""),
                method=raw_request.get("method", "GET"),
                resource_type=raw_request.get("_resourceType", ""),
                page_url=page_url,
                headers={
                    header["name"]: header["value"]
                    for header in raw_request.get("headers", [])
                },
            )
            body_text = content.get("text", "")
            response = Response(
                status=raw_response.get("status", 200),
                status_text=raw_response.get("statusText", ""),
                mime_type=content.get("mimeType", ""),
                body=body_text,
                size=content.get("size") if not body_text else None,
                headers={
                    header["name"]: header["value"]
                    for header in raw_response.get("headers", [])
                },
            )
            har.add(Exchange(request=request, response=response))
        return har

    @classmethod
    def from_json(cls, text: str) -> "HarFile":
        """Parse HAR 1.2 JSON text into a HarFile."""
        return cls.from_dict(json.loads(text))


def merge_hars(hars: Iterable[HarFile]) -> Optional[HarFile]:
    """Union-merge any number of HARs for the same page."""
    merged: Optional[HarFile] = None
    for har in hars:
        merged = har if merged is None else merged.merge(har)
    return merged


def is_partial(har: HarFile, yearly_average_size: float, threshold: float = 0.10) -> bool:
    """The paper's partial-snapshot rule: size < 10% of the year's average."""
    if yearly_average_size <= 0:
        return False
    return har.total_size < threshold * yearly_average_size
