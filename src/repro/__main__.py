"""Command-line entry point: ``python -m repro [options] [experiment ...]``.

Runs experiment drivers by name and prints their artifacts; with no
arguments, lists what is available. Scale comes from ``REPRO_SCALE``.
``all`` expands to every experiment. When ``REPRO_RUN_CACHE`` points at
a directory, finished stages and experiment outputs persist there and
warm-start later runs (``python -m repro graph`` inspects that cache;
``python -m repro serve`` boots the always-on matching/detection daemon
from it — see docs/SERVING.md).

Options:
  --trace              record a hierarchical span tree of the run and
                       print it to stderr at the end
  --metrics-out=PATH   write a machine-readable run manifest to PATH
                       (``run.json``) plus a JSONL event log next to it
  --journal=DIR        checkpoint crawl/ingest slots to DIR (same as
                       ``REPRO_CRAWL_JOURNAL``); an interrupted run
                       re-invoked with the same DIR resumes and produces
                       the identical result
  --inject-faults[=SEED]
                       dev mode: run the crawl against a deterministic
                       fault schedule (transient errors, timeouts,
                       truncations, a few permanently-broken domains)
                       derived from SEED (default 0); same as
                       ``REPRO_FAULT_SEED``
  -v / -vv             diagnostic logging at INFO / DEBUG (stderr)
  -q, --quiet          errors only
"""

from __future__ import annotations

import importlib
import logging
import sys
import time

EXPERIMENTS = (
    "fig1",
    "table1",
    "fig2",
    "sec33",
    "fig3",
    "fig5",
    "fig6",
    "fig7",
    "sec43",
    "table2",
    "table3",
    "sec5live",
    "stability",
    "rulereport",
)

logger = logging.getLogger("repro.cli")


class _CliError(Exception):
    """A bad command line (message printed to stderr, exit status 2)."""


def _parse_args(argv: list) -> dict:
    """Hand-rolled flag parsing (keeps the CLI dependency-free)."""
    opts = {
        "names": [],
        "trace": False,
        "metrics_out": None,
        "journal": None,
        "inject_faults": None,
        "verbosity": 0,
        "help": False,
    }
    args = list(argv)
    while args:
        arg = args.pop(0)
        if not arg.startswith("-"):
            opts["names"].append(arg)
        elif arg == "--help":
            opts["help"] = True
        elif arg == "--trace":
            opts["trace"] = True
        elif arg == "--metrics-out":
            if not args:
                raise _CliError("--metrics-out requires a path")
            opts["metrics_out"] = args.pop(0)
        elif arg.startswith("--metrics-out="):
            opts["metrics_out"] = arg.split("=", 1)[1]
        elif arg == "--journal":
            if not args:
                raise _CliError("--journal requires a directory")
            opts["journal"] = args.pop(0)
        elif arg.startswith("--journal="):
            opts["journal"] = arg.split("=", 1)[1]
        elif arg == "--inject-faults":
            opts["inject_faults"] = "0"
        elif arg.startswith("--inject-faults="):
            seed = arg.split("=", 1)[1]
            if not seed.lstrip("-").isdigit():
                raise _CliError("--inject-faults takes an integer seed")
            opts["inject_faults"] = seed
        elif arg in ("-v", "--verbose"):
            opts["verbosity"] = max(opts["verbosity"], 1)
        elif arg == "-vv":
            opts["verbosity"] = 2
        elif arg in ("-q", "--quiet"):
            opts["verbosity"] = -1
        else:
            raise _CliError(f"unknown option: {arg}")
    return opts


def main(argv: list) -> int:
    """Dispatch experiment names from the command line."""
    if argv and argv[0] == "graph":
        # Run-cache inspection has its own small CLI (no experiment run).
        from repro.graph.cli import main as graph_main

        return graph_main(argv[1:])
    if argv and argv[0] == "serve":
        # The always-on matching/detection daemon (and its loadgen).
        from repro.serve.cli import main as serve_main

        return serve_main(argv[1:])
    try:
        opts = _parse_args(argv)
    except _CliError as error:
        print(str(error), file=sys.stderr)
        return 2
    names = opts["names"]
    if "all" in names:
        names = [n for n in names if n != "all"] + [
            n for n in EXPERIMENTS if n not in names
        ]
    if not names or opts["help"]:
        print(__doc__)
        print("available experiments:")
        for name in EXPERIMENTS:
            print(f"  {name}")
        print("\nexample: REPRO_SCALE=0.2 python -m repro fig6 sec43")
        return 0
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        return 2

    # Export the resilience flags before config_snapshot() so the one
    # validated knob path (and the run manifest) sees them.
    import os

    if opts["journal"] is not None:
        os.environ["REPRO_CRAWL_JOURNAL"] = opts["journal"]
    if opts["inject_faults"] is not None:
        os.environ["REPRO_FAULT_SEED"] = opts["inject_faults"]

    from repro.obs import (
        RunManifest,
        config_snapshot,
        configure_logging,
        enable_tracing,
        get_metrics,
        get_tracer,
        reset_metrics,
        span,
    )
    from repro.experiments.context import shared_context

    configure_logging(opts["verbosity"])
    config = config_snapshot()
    manifest = RunManifest(opts["metrics_out"]) if opts["metrics_out"] else None
    metrics = reset_metrics()
    if opts["trace"]:
        enable_tracing(sink=manifest.sink if manifest else None)

    ctx = shared_context()
    graph = ctx.graph
    for name in names:
        module = importlib.import_module(f"repro.experiments.{name}")
        graph.register_experiment(name, module)
        logger.info("experiment %s: starting", name)
        started = time.perf_counter()
        with span(f"experiment:{name}"):
            # The rendered artifact is itself a graph node: a warm run
            # cache serves it without touching any upstream stage.
            rendered = graph.resolve(
                f"exp:{name}", lambda: module.render(module.run(ctx))
            )
        wall = time.perf_counter() - started
        print("=" * 72)
        print(rendered)
        logger.info("experiment %s: finished in %.2fs", name, wall)
        if manifest is not None:
            manifest.record_artifact(name, rendered, wall_s=wall)

    # Flush the rule-stats plane (if it collected anything): publish
    # totals + histograms into the metrics registry, fold the payload
    # into the cross-run accumulator when one is configured, and carry
    # the summary as the manifest's ``rules`` section.
    from repro.analysis.rulestats import RuleStatsStore, get_rule_stats

    extra = {"graph": graph.manifest_section()}
    collector = get_rule_stats()
    if collector is not None and collector.has_data():
        collector.absorb_into(metrics)
        extra["rules"] = collector.manifest_summary()
        if config.rule_stats_dir:
            store = RuleStatsStore(config.rule_stats_dir)
            key = {"schema": 1, "seed": ctx.world.seed, "scale": config.scale}
            path = store.merge_into(key, collector.as_payload())
            logger.info("rule stats folded into %s", path)

    if manifest is not None:
        for stage in ctx.stage_report():
            manifest.record_stage(**stage)
        manifest.finalize(
            seed=ctx.world.seed,
            config=config.as_dict(),
            metrics=metrics.as_dict(),
            spans=get_tracer().as_dicts(),
            experiments=list(names),
            extra=extra,
        )
        logger.info("run manifest written to %s", manifest.path)
    if opts["trace"]:
        tree = get_tracer().render()
        if tree:
            print("\n[trace]\n" + tree, file=sys.stderr)
    return 0


def console_main() -> None:
    """Console-script entry point (`repro-experiments`)."""
    raise SystemExit(main(sys.argv[1:]))


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
